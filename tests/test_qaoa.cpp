// QAOA library tests: Hamiltonian, ansatz structure, engine agreement,
// plans, training behaviour, and the approximation ratio.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "qaoa/hamiltonian.hpp"
#include "qaoa/mixer.hpp"
#include "qaoa/sampling.hpp"
#include "qaoa/train.hpp"

namespace {

using namespace qarch;
using circuit::GateKind;
using qaoa::MixerSpec;

graph::Graph square() {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  return g;
}

TEST(Hamiltonian, TermsMirrorEdges) {
  graph::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 4.0);
  const qaoa::MaxCutHamiltonian h(g);
  EXPECT_DOUBLE_EQ(h.constant(), 3.0);
  ASSERT_EQ(h.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(h.terms()[0].coefficient, -1.0);
  EXPECT_DOUBLE_EQ(h.terms()[1].coefficient, -2.0);
}

TEST(Hamiltonian, ClassicalValueEqualsCutWeight) {
  const graph::Graph g = square();
  const qaoa::MaxCutHamiltonian h(g);
  EXPECT_DOUBLE_EQ(h.classical_value({1, -1, 1, -1}), 4.0);
  EXPECT_DOUBLE_EQ(h.classical_value({1, 1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(h.classical_value({1, 1, -1, -1}), 2.0);
  EXPECT_THROW(h.classical_value({2, 0, 0, 0}), Error);
}

TEST(Hamiltonian, EnergyAtZeroZZEqualsHalfTotalWeight) {
  const graph::Graph g = square();
  const qaoa::MaxCutHamiltonian h(g);
  EXPECT_DOUBLE_EQ(h.energy({0, 0, 0, 0}), 2.0);  // m/2 at <ZZ>=0
}

TEST(MixerSpec, ParseAndPrintRoundTrip) {
  const MixerSpec s = MixerSpec::parse("('rx', 'ry')");
  EXPECT_EQ(s.gates, (std::vector<GateKind>{GateKind::RX, GateKind::RY}));
  EXPECT_EQ(s.to_string(), "('rx', 'ry')");
  EXPECT_EQ(MixerSpec::parse("h,p").gates,
            (std::vector<GateKind>{GateKind::H, GateKind::P}));
  EXPECT_THROW(MixerSpec::parse(""), Error);
  EXPECT_THROW(MixerSpec::parse("nope"), Error);
}

TEST(MixerLayer, SharedParameterAndTwoBetaConvention) {
  const auto c = qaoa::build_mixer_circuit(3, MixerSpec::qnas());
  EXPECT_EQ(c.num_params(), 1u);           // one shared β
  EXPECT_EQ(c.num_gates(), 6u);            // (rx, ry) on each of 3 qubits
  for (const auto& g : c.gates()) {
    ASSERT_EQ(g.param.kind, circuit::ParamExpr::Kind::Symbol);
    EXPECT_EQ(g.param.index, 0u);
    EXPECT_DOUBLE_EQ(g.param.scale, 2.0);  // RX(2β), RY(2β) — Fig. 6
  }
}

TEST(MixerLayer, FixedGatesCarryNoParameter) {
  const auto c = qaoa::build_mixer_circuit(2, MixerSpec::parse("h,p"));
  EXPECT_EQ(c.gates()[0].kind, GateKind::H);
  EXPECT_EQ(c.gates()[0].param.kind, circuit::ParamExpr::Kind::None);
  EXPECT_EQ(c.gates()[2].kind, GateKind::P);
  EXPECT_EQ(c.gates()[2].param.kind, circuit::ParamExpr::Kind::Symbol);
}

TEST(MixerLayer, TwoQubitGatesApplyAsRing) {
  // Extension: two-qubit kinds in a mixer spec are applied as an entangling
  // ring (see test_entangling_mixer.cpp for the full coverage).
  MixerSpec ring;
  ring.gates = {GateKind::CZ};
  const auto layer = qaoa::build_mixer_circuit(4, ring);
  EXPECT_EQ(layer.num_gates(), 4u);
  EXPECT_EQ(layer.two_qubit_gate_count(), 4u);
  // A single-qubit register cannot host an entangling ring.
  EXPECT_THROW(qaoa::build_mixer_circuit(1, ring), Error);
}

TEST(Ansatz, LayerStructureAndParameterCount) {
  const graph::Graph g = square();
  for (std::size_t p : {1u, 2u, 3u}) {
    const auto c = qaoa::build_qaoa_circuit(g, p, MixerSpec::baseline());
    EXPECT_EQ(c.num_params(), 2 * p);
    // Per layer: |E| RZZ gates + n RX gates.
    EXPECT_EQ(c.num_gates(), p * (g.num_edges() + g.num_vertices()));
    EXPECT_EQ(c.two_qubit_gate_count(), p * g.num_edges());
  }
  EXPECT_THROW(qaoa::build_qaoa_circuit(g, 0, MixerSpec::baseline()), Error);
}

TEST(Ansatz, KnownP1EnergyOnSquareGraph) {
  // For a triangle-free graph at p=1 with the standard RX mixer
  // (Wang et al. 2018): <C_uv> = 1/2 + (1/4) sin(4β) sin(γ)
  // (cos^{d_u - 1}γ + cos^{d_v - 1}γ). On the 4-cycle (all degrees 2) this
  // sums to <C> = 2 + 2 sin(4β) sin(γ) cos(γ) under our RZZ(-γ w) sign
  // convention. Check the simulated energy against the closed form.
  const graph::Graph g = square();
  const qaoa::EnergyEvaluator ev(g, {});
  const auto c = qaoa::build_qaoa_circuit(g, 1, MixerSpec::baseline());
  for (double gamma : {0.2, 0.7, 1.1}) {
    for (double beta : {0.15, 0.4}) {
      const double analytic = 2.0 + 2.0 * std::sin(4 * beta) *
                                        std::sin(gamma) * std::cos(gamma);
      const double got = ev.energy(c, std::vector<double>{gamma, beta});
      EXPECT_NEAR(got, analytic, 1e-9) << "γ=" << gamma << " β=" << beta;
    }
  }
}

TEST(Energy, EnginesAgreeOnRandomGraphs) {
  Rng rng(19);
  for (int t = 0; t < 3; ++t) {
    const auto g = graph::erdos_renyi_connected(7, 0.45, rng);
    const auto c = qaoa::build_qaoa_circuit(g, 2, MixerSpec::qnas());
    std::vector<double> theta(c.num_params());
    for (auto& x : theta) x = rng.uniform(-1.5, 1.5);

    qaoa::EnergyOptions sv_opt;
    sv_opt.engine = qaoa::EngineKind::Statevector;
    qaoa::EnergyOptions tn_opt;
    tn_opt.engine = qaoa::EngineKind::TensorNetwork;

    const double e_sv = qaoa::EnergyEvaluator(g, sv_opt).energy(c, theta);
    const double e_tn = qaoa::EnergyEvaluator(g, tn_opt).energy(c, theta);
    EXPECT_NEAR(e_sv, e_tn, 1e-8);
  }
}

TEST(Energy, TensorNetworkPlanReuseIsConsistent) {
  Rng rng(23);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, MixerSpec::qnas());
  qaoa::EnergyOptions opt;
  opt.engine = qaoa::EngineKind::TensorNetwork;
  const qaoa::EnergyEvaluator ev(g, opt);
  const auto plan = ev.make_plan(c);
  for (int i = 0; i < 4; ++i) {
    std::vector<double> theta(c.num_params());
    for (auto& x : theta) x = rng.uniform(-2, 2);
    EXPECT_NEAR(plan->energy(theta), ev.energy(c, theta), 1e-9);
  }
}

TEST(Energy, InnerWorkersDoNotChangeResult) {
  Rng rng(29);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, MixerSpec::baseline());
  const std::vector<double> theta{0.5, 0.3};
  qaoa::EnergyOptions serial_opt;
  serial_opt.engine = qaoa::EngineKind::TensorNetwork;
  serial_opt.inner_workers = 1;
  qaoa::EnergyOptions par_opt = serial_opt;
  par_opt.inner_workers = 6;
  const double a = qaoa::EnergyEvaluator(g, serial_opt).energy(c, theta);
  const double b = qaoa::EnergyEvaluator(g, par_opt).energy(c, theta);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(Energy, BoundedByMaxCut) {
  Rng rng(37);
  const auto g = graph::random_regular(8, 3, rng);
  const double cmax = graph::maxcut_exact(g).value;
  const auto c = qaoa::build_qaoa_circuit(g, 2, MixerSpec::qnas());
  const qaoa::EnergyEvaluator ev(g, {});
  for (int t = 0; t < 5; ++t) {
    std::vector<double> theta(c.num_params());
    for (auto& x : theta) x = rng.uniform(-3, 3);
    const double e = ev.energy(c, theta);
    EXPECT_LE(e, cmax + 1e-9);
    EXPECT_GE(e, -1e-9);  // <C> is a mean of nonnegative cut values
  }
}

TEST(Train, ImprovesOverInitialEnergy) {
  Rng rng(41);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, MixerSpec::baseline());
  const qaoa::EnergyEvaluator ev(g, {});
  qaoa::TrainOptions topt;
  const double initial =
      ev.energy(c, std::vector<double>(c.num_params(), topt.initial_value));
  optim::CobylaConfig cc;
  cc.max_evals = 150;
  const auto r = qaoa::train_qaoa(c, ev, optim::Cobyla(cc), topt);
  EXPECT_GT(r.energy, initial);
  EXPECT_GT(r.energy, 0.6 * graph::maxcut_exact(g).value);
  EXPECT_EQ(r.theta.size(), c.num_params());
}

TEST(Train, DeterministicAcrossRuns) {
  Rng rng(43);
  const auto g = graph::random_regular(6, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, MixerSpec::qnas());
  const qaoa::EnergyEvaluator ev(g, {});
  optim::CobylaConfig cc;
  cc.max_evals = 80;
  const auto a = qaoa::train_qaoa(c, ev, optim::Cobyla(cc));
  const auto b = qaoa::train_qaoa(c, ev, optim::Cobyla(cc));
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.theta, b.theta);
}

TEST(ApproximationRatio, DefinitionAndValidation) {
  EXPECT_DOUBLE_EQ(qaoa::approximation_ratio(9.0, 10.0), 0.9);
  EXPECT_THROW(qaoa::approximation_ratio(1.0, 0.0), Error);
}

TEST(Sampling, TrainedCircuitBeatsUniformSampling) {
  // On 10-node 4-regular graphs a trained p=1 circuit concentrates mass on
  // good cuts: its expected best-of-64 sampled cut should reach the optimum
  // region (this is why the paper's Fig. 7/9 ratios sit near 1.0).
  Rng rng(47);
  const auto g = graph::random_regular(10, 4, rng);
  const double cmax = graph::maxcut_exact(g).value;
  const auto c = qaoa::build_qaoa_circuit(g, 1, MixerSpec::qnas());
  const qaoa::EnergyEvaluator ev(g, {});
  optim::CobylaConfig cc;
  cc.max_evals = 200;
  const auto trained = qaoa::train_qaoa(c, ev, optim::Cobyla(cc));
  Rng srng(3);
  const double best =
      qaoa::expected_best_cut(c, trained.theta, g, 64, 8, srng);
  EXPECT_GE(best / cmax, 0.9);
  EXPECT_LE(best / cmax, 1.0 + 1e-12);
}

}  // namespace
