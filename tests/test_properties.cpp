// Cross-family property sweeps (parameterized): invariants that must hold on
// every graph family and mixer the library supports.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/extra_generators.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/sampling.hpp"
#include "qaoa/train.hpp"
#include "sim/state_utils.hpp"

namespace {

using namespace qarch;

graph::Graph make_family(const std::string& family, Rng& rng) {
  if (family == "er") return graph::erdos_renyi_connected(7, 0.5, rng);
  if (family == "regular") return graph::random_regular(8, 3, rng);
  if (family == "cycle") return graph::cycle(7);
  if (family == "complete") return graph::complete(6);
  if (family == "bipartite") return graph::complete_bipartite(3, 4);
  if (family == "grid") return graph::grid(2, 4);
  if (family == "ba") return graph::barabasi_albert(9, 2, rng);
  if (family == "weighted")
    return graph::with_random_weights(graph::random_regular(8, 3, rng), 0.2,
                                      2.0, rng);
  throw qarch::Error("unknown family " + family);
}

class FamilyProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilyProperties, EnergyBoundedByMaxCutEverywhere) {
  Rng rng(std::hash<std::string>{}(GetParam()));
  const graph::Graph g = make_family(GetParam(), rng);
  const double cmax = graph::maxcut_exact(g).value;
  const auto ansatz = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::qnas());
  const qaoa::EnergyEvaluator ev(g, {});
  for (int t = 0; t < 3; ++t) {
    std::vector<double> theta(ansatz.num_params());
    for (auto& x : theta) x = rng.uniform(-3, 3);
    const double e = ev.energy(ansatz, theta);
    EXPECT_LE(e, cmax + 1e-9) << GetParam();
    EXPECT_GE(e, -1e-9) << GetParam();
  }
}

TEST_P(FamilyProperties, EnginesAgreeEverywhere) {
  Rng rng(1 + std::hash<std::string>{}(GetParam()));
  const graph::Graph g = make_family(GetParam(), rng);
  const auto ansatz =
      qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::baseline());
  std::vector<double> theta{rng.uniform(-2, 2), rng.uniform(-2, 2)};
  qaoa::EnergyOptions sv;
  sv.engine = qaoa::EngineKind::Statevector;
  qaoa::EnergyOptions tn;
  tn.engine = qaoa::EngineKind::TensorNetwork;
  EXPECT_NEAR(qaoa::EnergyEvaluator(g, sv).energy(ansatz, theta),
              qaoa::EnergyEvaluator(g, tn).energy(ansatz, theta), 1e-8)
      << GetParam();
}

TEST_P(FamilyProperties, TrainingNeverExceedsOptimumAndImproves) {
  Rng rng(2 + std::hash<std::string>{}(GetParam()));
  const graph::Graph g = make_family(GetParam(), rng);
  const double cmax = graph::maxcut_exact(g).value;
  const auto ansatz =
      qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::baseline());
  const qaoa::EnergyEvaluator ev(g, {});
  qaoa::TrainOptions topt;
  const double initial =
      ev.energy(ansatz, std::vector<double>(2, topt.initial_value));
  optim::CobylaConfig cc;
  cc.max_evals = 60;
  const auto trained = qaoa::train_qaoa(ansatz, ev, optim::Cobyla(cc), topt);
  EXPECT_GE(trained.energy, initial - 1e-9) << GetParam();
  EXPECT_LE(trained.energy, cmax + 1e-9) << GetParam();
}

TEST_P(FamilyProperties, SampledBestCutConsistent) {
  Rng rng(3 + std::hash<std::string>{}(GetParam()));
  const graph::Graph g = make_family(GetParam(), rng);
  const double cmax = graph::maxcut_exact(g).value;
  const auto ansatz = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const std::vector<double> theta{0.4, 0.3};
  Rng srng(9);
  const double best = qaoa::expected_best_cut(ansatz, theta, g, 64, 4, srng);
  EXPECT_LE(best, cmax + 1e-9) << GetParam();
  EXPECT_GE(best, 0.0) << GetParam();
  // Sampling from the simulated state keeps the state normalized.
  const sim::StatevectorSimulator sv;
  const auto state = sv.run_from_plus(ansatz, theta);
  EXPECT_NEAR(linalg::norm(state), 1.0, 1e-10);
}

TEST_P(FamilyProperties, ExactSolverDominatesHeuristics) {
  Rng rng(4 + std::hash<std::string>{}(GetParam()));
  const graph::Graph g = make_family(GetParam(), rng);
  const double exact = graph::maxcut_exact(g).value;
  Rng hrng(5);
  EXPECT_LE(graph::maxcut_greedy(g).value, exact + 1e-12) << GetParam();
  EXPECT_LE(graph::maxcut_multistart(g, 10, hrng).value, exact + 1e-12)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyProperties,
                         ::testing::Values("er", "regular", "cycle",
                                           "complete", "bipartite", "grid",
                                           "ba", "weighted"),
                         [](const auto& info) { return info.param; });

}  // namespace
