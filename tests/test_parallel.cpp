// Tests for the parallel runtime: pool, parallel_for, task pool, two-level.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/task_pool.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/two_level.hpp"

namespace {

using namespace qarch;
using namespace qarch::parallel;

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ExecutesManyTasksExactlyOnce) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw Error("boom"); });
  EXPECT_THROW(f.get(), Error);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i)
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 20);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int calls = 0;
  parallel_for(5, 5, [&](std::size_t) { ++calls; }, 4);
  EXPECT_EQ(calls, 0);
  parallel_for(7, 8, [&](std::size_t i) { EXPECT_EQ(i, 7u); ++calls; }, 4);
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SerialFallbackMatchesParallel) {
  std::vector<double> a(257), b(257);
  parallel_for(0, a.size(), [&](std::size_t i) { a[i] = i * 1.5; }, 1);
  parallel_for(0, b.size(), [&](std::size_t i) { b[i] = i * 1.5; }, 6, 16);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, RethrowsBodyException) {
  EXPECT_THROW(
      parallel_for(0, 100, [&](std::size_t i) {
        if (i == 37) throw Error("inner");
      }, 4),
      Error);
}

TEST(ParallelMap, PreservesOrder) {
  std::vector<int> in(100);
  std::iota(in.begin(), in.end(), 0);
  const auto out = parallel_map(in, [](int x) { return x * x; }, 8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPool, PriorityOrdersDispatchHighestFirst) {
  ThreadPool pool(1);
  // Park the single worker so every subsequent submission queues; release
  // only after the whole mixed-priority batch is enqueued.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker = pool.submit([opened] { opened.wait(); });

  std::vector<int> order;
  std::mutex order_mutex;
  std::vector<std::future<void>> tasks;
  const auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mutex);
      order.push_back(tag);
    };
  };
  tasks.push_back(pool.submit(record(0)));         // default priority
  tasks.push_back(pool.submit(record(51), 5));     // first of the 5s
  tasks.push_back(pool.submit(record(1), 1));
  tasks.push_back(pool.submit(record(52), 5));     // FIFO among equals
  tasks.push_back(pool.submit(record(-1), -1));    // below default

  gate.set_value();
  blocker.get();
  for (auto& t : tasks) t.get();
  EXPECT_EQ(order, (std::vector<int>{51, 52, 1, 0, -1}));
}

TEST(TaskPool, ApplyAsyncForwardsPriority) {
  TaskPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker = pool.apply_async([opened] { opened.wait(); });

  std::vector<int> order;
  std::mutex order_mutex;
  auto low = pool.apply_async([&] {
    std::lock_guard<std::mutex> lock(order_mutex);
    order.push_back(0);
  });
  auto high = pool.apply_async(
      [&] {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.push_back(9);
      },
      9);
  gate.set_value();
  blocker.get();
  low.get();
  high.get();
  EXPECT_EQ(order, (std::vector<int>{9, 0}));
}

TEST(TaskPool, StarmapAsyncAppliesTuples) {
  TaskPool pool(4);
  std::vector<std::tuple<int, int>> args{{1, 2}, {3, 4}, {5, 6}};
  auto handle = pool.starmap_async([](int a, int b) { return a + b; }, args);
  EXPECT_EQ(handle.size(), 3u);
  const auto results = handle.get();
  EXPECT_EQ(results, (std::vector<int>{3, 7, 11}));
}

TEST(TaskPool, MapAsyncOrdered) {
  TaskPool pool(4);
  std::vector<int> args{5, 1, 9, 2};
  auto handle = pool.map_async([](int x) { return x * 10; }, args);
  EXPECT_EQ(handle.get(), (std::vector<int>{50, 10, 90, 20}));
}

TEST(TaskPool, ReadyPollsNonBlocking) {
  TaskPool pool(1);
  std::vector<int> args{1};
  auto handle = pool.map_async(
      [](int x) {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        return x;
      },
      args);
  // Might already be done on a fast machine, but get() must agree with it.
  handle.get();
  EXPECT_TRUE(handle.ready());
}

TEST(TwoLevel, SplitsBudgetAndRunsAll) {
  TwoLevelExecutor exec(3, 2);
  EXPECT_EQ(exec.outer_workers(), 3u);
  EXPECT_EQ(exec.inner_workers(), 2u);
  const auto results = exec.run<std::size_t>(
      10, [](std::size_t i, std::size_t inner) { return i * 100 + inner; });
  ASSERT_EQ(results.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(results[i], i * 100 + 2);
}

TEST(TwoLevel, RejectsZeroWorkers) {
  EXPECT_THROW(TwoLevelExecutor(0, 1), Error);
  EXPECT_THROW(TwoLevelExecutor(1, 0), Error);
}

TEST(ParallelFor, ActuallyRunsConcurrently) {
  // With 4 workers and 4 sleeping tasks, wall time should be well under the
  // serial 4x sleep. Generous margins keep this robust on loaded machines.
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(0, 4, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }, 4);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 0.35);
}

}  // namespace
