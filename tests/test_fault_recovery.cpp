// Fault-tolerance tests: the QARCH_FAULT grammar, retry-with-backoff, the
// deadline/timeout surface, drain/park/resume across service instances on a
// shared checkpoint file, checkpoint-file corruption tolerance, and a real
// fork()-based kill-and-resume (a worker crashes mid-training with
// _Exit(137); a fresh process restarted on the same paths finishes the run
// bit-identically).
//
// NOTE: this file is intentionally NOT named test_eval_service / test_parallel
// — the TSan CI leg filters to those, and fork() under TSan is unsupported.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "search/combinations.hpp"
#include "search/eval_service.hpp"
#include "search/fault.hpp"
#include "search/report_io.hpp"
#include "session.hpp"

namespace {

using namespace qarch;

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 30;
  s.shots = 32;
  s.sample_trials = 2;
  return s;
}

graph::Graph test_graph(std::uint64_t seed, std::size_t n = 6,
                        std::size_t degree = 3) {
  Rng rng(seed);
  return graph::random_regular(n, degree, rng);
}

/// Puts the process-global injector back to inert no matter how a test exits.
struct FaultGuard {
  FaultGuard() { search::FaultInjector::instance().reset(); }
  ~FaultGuard() { search::FaultInjector::instance().reset(); }
};

std::string temp_path(const std::string& name) {
  const std::string p =
      "/tmp/qarch_fault_" + std::to_string(::getpid()) + "_" + name;
  std::remove(p.c_str());
  return p;
}

bool wait_for_file(const std::string& path, double timeout_seconds) {
  const int ticks = static_cast<int>(timeout_seconds * 1000.0);
  for (int i = 0; i < ticks; ++i) {
    if (std::ifstream(path).good()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(FaultPlan, GrammarParses) {
  const auto fail = search::parse_fault_plan("fail=0.1,seed=7");
  EXPECT_DOUBLE_EQ(fail.fail_rate, 0.1);
  EXPECT_EQ(fail.seed, 7u);
  EXPECT_TRUE(fail.enabled());

  const auto first = search::parse_fault_plan("failfirst=2");
  EXPECT_EQ(first.fail_first, 2u);
  EXPECT_TRUE(first.enabled());

  const auto delay = search::parse_fault_plan("delay=0.01@0.5");
  EXPECT_DOUBLE_EQ(delay.delay_seconds, 0.01);
  EXPECT_DOUBLE_EQ(delay.delay_rate, 0.5);
  EXPECT_TRUE(delay.enabled());

  const auto crash = search::parse_fault_plan("crash=checkpoint:3");
  EXPECT_EQ(crash.crash_point, "checkpoint");
  EXPECT_EQ(crash.crash_after, 3u);
  EXPECT_TRUE(crash.enabled());

  EXPECT_FALSE(search::parse_fault_plan("").enabled());
  EXPECT_THROW(search::parse_fault_plan("bogus=1"), Error);
  EXPECT_THROW(search::parse_fault_plan("fail=notanumber"), Error);
}

TEST(FaultPlan, InjectorVerdictsAreDeterministic) {
  FaultGuard guard;
  auto& inj = search::FaultInjector::instance();

  search::FaultPlan all;
  all.fail_rate = 1.0;
  inj.configure(all);
  EXPECT_THROW(inj.on_evaluation("k", 0), search::FaultInjected);
  EXPECT_GE(inj.injected_failures(), 1u);

  search::FaultPlan none;
  none.fail_rate = 0.0;
  inj.configure(none);
  EXPECT_NO_THROW(inj.on_evaluation("k", 0));

  search::FaultPlan slow;
  slow.delay_seconds = 0.001;
  slow.delay_rate = 1.0;
  inj.configure(slow);
  EXPECT_NO_THROW(inj.on_evaluation("k", 0));
  EXPECT_GE(inj.injected_delays(), 1u);

  // Visiting a point that is not the crash point is a no-op.
  search::FaultPlan crash;
  crash.crash_point = "never-visited";
  crash.crash_after = 1;
  inj.configure(crash);
  inj.at_point("checkpoint");
}

TEST(FaultRecovery, RetryWithBackoffRecovers) {
  FaultGuard guard;
  const auto g = test_graph(31);

  // Clean reference, injector inert.
  search::EvalService reference(fast_session());
  const auto expected = reference.submit(g, qaoa::MixerSpec::qnas(), 1).wait();

  // First two attempts of every job fail; the third succeeds.
  search::FaultPlan plan;
  plan.fail_first = 2;
  search::FaultInjector::instance().configure(plan);

  search::EvalService service(fast_session());
  search::JobOptions options;
  options.max_retries = 3;
  options.retry_backoff_seconds = 0.001;
  auto ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1, options);
  const auto& r = ticket.wait();

  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.theta, expected.theta);
  const auto stats = service.stats();
  EXPECT_EQ(stats.retried, 2u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(FaultRecovery, ExhaustedRetriesFail) {
  FaultGuard guard;
  search::FaultPlan plan;
  plan.fail_first = 10;  // more than the retry budget
  search::FaultInjector::instance().configure(plan);

  search::EvalService service(fast_session());
  search::JobOptions options;
  options.max_retries = 1;
  options.retry_backoff_seconds = 0.001;
  auto ticket = service.submit(test_graph(37), qaoa::MixerSpec::qnas(), 1,
                               options);
  EXPECT_THROW(ticket.wait(), Error);

  const auto stats = service.stats();
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(FaultRecovery, DeadlineExpiresQueuedJobAndWaitForTimesOut) {
  const auto g = test_graph(41);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  ASSERT_GE(cohort.size(), 3u);

  SessionConfig session = fast_session();
  session.workers = 1;
  search::EvalService service(session);

  // Occupy the single worker long enough that the jobs behind it stay
  // queued past their deadlines.
  search::JobOptions big;
  big.training_evals = 2000;
  auto blocker = service.submit(g, cohort[0], 1, big);

  search::JobOptions doomed_options;
  doomed_options.deadline_seconds = 1e-4;
  auto doomed = service.submit(g, cohort[1], 1, doomed_options);
  auto queued = service.submit(g, cohort[2], 1);

  // Still queued behind the blocker: a zero-timeout poll returns nullptr.
  EXPECT_EQ(queued.wait_for(0.0), nullptr);

  // The deadline job expires from the WAITER side — no worker ever has to
  // dispatch it for the wait to resolve.
  EXPECT_THROW(doomed.wait(), Error);
  EXPECT_TRUE(doomed.expired());
  EXPECT_FALSE(doomed.cancelled());
  EXPECT_GE(service.stats().deadline_expired, 1u);

  // collect() skips expired tickets like cancelled ones instead of throwing.
  EXPECT_TRUE(service.collect({doomed}).empty());

  // Everything without a deadline still completes.
  const auto* r = queued.wait_for(-1.0);
  ASSERT_NE(r, nullptr);
  EXPECT_GT(r->eval_seconds, 0.0);
  (void)blocker.wait();
}

TEST(FaultRecovery, DrainParksAndSecondServiceResumes) {
  const auto g = test_graph(43);
  const std::string ckpt = temp_path("drain_ckpt.json");
  constexpr std::size_t kBudget = 1000;

  // Clean uninterrupted reference.
  search::JobOptions options;
  options.training_evals = kBudget;
  search::CandidateResult expected;
  {
    search::EvalService reference(fast_session());
    expected = reference.submit(g, qaoa::MixerSpec::qnas(), 1, options).wait();
  }

  std::size_t parked = 0;
  {
    SessionConfig session = fast_session();
    session.workers = 1;
    session.checkpoint_path = ckpt;
    session.checkpoint_evals = 5;
    search::EvalService service(session);
    auto ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1, options);
    // The first in-flight checkpoint lands on disk after ~5 of the 1000
    // budgeted objective calls — once it exists the job is provably
    // mid-training, and drain() must park it rather than lose it.
    ASSERT_TRUE(wait_for_file(ckpt, 30.0)) << "no checkpoint persisted";
    parked = service.drain(30.0);
    EXPECT_GE(parked, 1u);
    EXPECT_GE(service.stats().parked, 1u);
  }

  // A fresh service on the same path picks the checkpoint up and the SAME
  // submission resumes mid-training to a bit-identical result: nothing was
  // lost to the drain and nothing retrained from step 0.
  SessionConfig session = fast_session();
  session.workers = 1;
  session.checkpoint_path = ckpt;
  session.checkpoint_evals = 5;
  search::EvalService service(session);
  EXPECT_GE(service.stats().checkpoints_loaded, 1u);
  const auto r = service.submit(g, qaoa::MixerSpec::qnas(), 1, options).wait();
  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.ratio, expected.ratio);
  EXPECT_EQ(r.theta, expected.theta);
  EXPECT_EQ(r.evaluations, expected.evaluations);
  const auto stats = service.stats();
  EXPECT_GE(stats.resumed, 1u);
  EXPECT_EQ(stats.checkpoints_discarded, 0u);
  std::remove(ckpt.c_str());
}

TEST(FaultRecovery, CheckpointFileCorruptionTolerated) {
  const std::string path = temp_path("corrupt_ckpt.json");

  // Missing file.
  EXPECT_TRUE(search::load_checkpoints(path, "v-a").empty());

  // Garbage file.
  { std::ofstream(path) << "{not json at all"; }
  EXPECT_TRUE(search::load_checkpoints(path, "v-a").empty());

  // Version mismatch: a valid file written under another code version loads
  // as empty (checkpoints are never comparable across semantics changes).
  search::TrainingCheckpoint ck;
  ck.graph_fp = "fp";
  ck.mixer = qaoa::MixerSpec::qnas();
  ck.p = 1;
  ck.training_evals = 30;
  ck.engine = "sv";
  ck.state.optimizer = "cobyla";
  ck.state.evaluations = 7;
  ck.state.numbers = {1.5, -2.5};
  search::save_checkpoints({ck}, path, "v-a");
  EXPECT_TRUE(search::load_checkpoints(path, "v-b").empty());

  // Same version round-trips.
  const auto loaded = search::load_checkpoints(path, "v-a");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].graph_fp, "fp");
  EXPECT_EQ(loaded[0].state.optimizer, "cobyla");
  EXPECT_EQ(loaded[0].state.evaluations, 7u);
  EXPECT_EQ(loaded[0].state.numbers, ck.state.numbers);

  // A service pointed at a corrupt checkpoint file starts clean, no throw.
  { std::ofstream(path) << "]]]"; }
  SessionConfig session = fast_session();
  session.checkpoint_path = path;
  search::EvalService service(session);
  EXPECT_EQ(service.stats().checkpoints_loaded, 0u);
  std::remove(path.c_str());
}

TEST(FaultRecovery, OptimStateJsonRoundTripsNonFiniteValues) {
  optim::OptimState state;
  state.optimizer = "multi-start";
  state.evaluations = 123;
  state.history = {2.0, 1.0, 0.5};
  state.numbers = {0.25, std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::quiet_NaN()};
  state.words = {0ull, 1ull, 0xFFFFFFFFFFFFFFFFull};
  optim::OptimState child;
  child.optimizer = "cobyla";
  child.evaluations = 9;
  child.numbers = {3.14};
  state.child.push_back(child);

  const auto round =
      search::optim_state_from_json(search::optim_state_to_json(state));
  EXPECT_EQ(round.optimizer, state.optimizer);
  EXPECT_EQ(round.evaluations, state.evaluations);
  EXPECT_EQ(round.history, state.history);
  EXPECT_EQ(round.words, state.words);
  ASSERT_EQ(round.numbers.size(), state.numbers.size());
  EXPECT_EQ(round.numbers[0], 0.25);
  EXPECT_EQ(round.numbers[1], std::numeric_limits<double>::infinity());
  EXPECT_EQ(round.numbers[2], -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(round.numbers[3]));
  ASSERT_EQ(round.child.size(), 1u);
  EXPECT_EQ(round.child[0].optimizer, "cobyla");
  EXPECT_EQ(round.child[0].evaluations, 9u);
  EXPECT_EQ(round.child[0].numbers, child.numbers);
}

// The real thing: a worker process is hard-killed (_Exit(137), as SIGKILL
// would) in the middle of training, and a fresh process restarted on the
// same checkpoint path resumes the run and finishes it bit-identically.
TEST(FaultRecovery, KillMidRunThenResumeAcrossProcesses) {
  const auto g = test_graph(47);
  const std::string ckpt = temp_path("kill_ckpt.json");
  constexpr std::size_t kBudget = 1000;

  search::JobOptions options;
  options.training_evals = kBudget;
  search::CandidateResult expected;
  {
    search::EvalService reference(fast_session());
    expected = reference.submit(g, qaoa::MixerSpec::qnas(), 1, options).wait();
  }

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: crash on the SECOND checkpoint persist (~10 of 1000 evals in),
    // so at least one checkpoint is already safely on disk.
    try {
      search::FaultPlan plan;
      plan.crash_point = "checkpoint";
      plan.crash_after = 2;
      search::FaultInjector::instance().configure(plan);
      SessionConfig session = fast_session();
      session.workers = 1;
      session.checkpoint_path = ckpt;
      session.checkpoint_evals = 5;
      search::EvalService service(session);
      auto ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1, options);
      (void)ticket.wait();
      std::_Exit(0);  // unreachable when the crash fires
    } catch (...) {
      std::_Exit(42);
    }
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137) << "child did not die at the crash point";

  // Restart "the process" on the same path: the checkpoint loads, the same
  // submission resumes mid-training, and the result matches the
  // uninterrupted reference exactly — no evaluation lost, none redone from
  // step 0, none double-counted.
  SessionConfig session = fast_session();
  session.workers = 1;
  session.checkpoint_path = ckpt;
  session.checkpoint_evals = 5;
  search::EvalService service(session);
  EXPECT_GE(service.stats().checkpoints_loaded, 1u);
  const auto r = service.submit(g, qaoa::MixerSpec::qnas(), 1, options).wait();
  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.ratio, expected.ratio);
  EXPECT_EQ(r.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(r.theta, expected.theta);
  EXPECT_EQ(r.evaluations, expected.evaluations);
  const auto stats = service.stats();
  EXPECT_GE(stats.resumed, 1u);
  EXPECT_EQ(stats.checkpoints_discarded, 0u);
  EXPECT_EQ(stats.completed, 1u);
  std::remove(ckpt.c_str());
}

}  // namespace
