// Contraction planning: the bitset CostModel against a set-based reference,
// the lazy priority-queue contractor, deterministic parallel bake-offs, and
// the shared/persistent PlanCache (find/insert/merge semantics, disk
// round-trip, corruption and version-mismatch tolerance).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/mixer.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/network.hpp"
#include "qtensor/ordering.hpp"
#include "qtensor/plan_cache.hpp"
#include "qtensor/planner.hpp"
#include "search/report_io.hpp"

namespace {

using namespace qarch;
using qtensor::CachedPlan;
using qtensor::PlanCost;
using qtensor::TensorNetwork;
using qtensor::VarId;

/// The original set-of-sets symbolic replay the CostModel replaced; kept as
/// an independent oracle.
PlanCost reference_cost(const TensorNetwork& network,
                        const std::vector<VarId>& order) {
  std::vector<std::set<VarId>> tensors;
  tensors.reserve(network.tensors.size());
  for (const qtensor::Tensor& t : network.tensors)
    tensors.emplace_back(t.labels().begin(), t.labels().end());

  PlanCost cost;
  for (VarId v : order) {
    std::set<VarId> merged;
    std::size_t factors = 0;
    std::vector<std::set<VarId>> rest;
    rest.reserve(tensors.size());
    for (auto& s : tensors) {
      if (s.count(v) > 0) {
        merged.insert(s.begin(), s.end());
        ++factors;
      } else {
        rest.push_back(std::move(s));
      }
    }
    if (factors == 0) continue;
    const double entries = std::pow(2.0, static_cast<double>(merged.size()));
    cost.flops += entries * static_cast<double>(factors);
    cost.peak_entries = std::max(cost.peak_entries, entries);
    cost.width = std::max(cost.width, merged.size());
    merged.erase(v);
    rest.push_back(std::move(merged));
    tensors = std::move(rest);
  }
  return cost;
}

/// A <Z_u Z_v> lightcone network of a random-regular QAOA instance.
TensorNetwork edge_network(std::size_t n, std::size_t p, std::size_t edge,
                           std::uint64_t seed = 7) {
  Rng rng(seed);
  const graph::Graph g = graph::random_regular(n, 3, rng);
  const auto ansatz = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
  std::vector<double> theta(ansatz.num_params(), 0.37);
  const graph::Edge& e = g.edges()[edge % g.num_edges()];
  const auto cone = qtensor::lightcone_circuit(ansatz, {e.u, e.v});
  return qtensor::expectation_zz_network(cone, theta, e.u, e.v);
}

TEST(CostModel, MatchesSetBasedReference) {
  Rng rng(41);
  for (int trial = 0; trial < 8; ++trial) {
    const TensorNetwork net =
        edge_network(10 + 2 * (trial % 3), 1 + trial % 2,
                     static_cast<std::size_t>(trial), 100 + trial);
    const qtensor::CostModel model(net);
    // Heuristic orders and random permutations must all score identically.
    std::vector<std::vector<VarId>> orders;
    orders.push_back(qtensor::order_greedy_degree(net));
    orders.push_back(qtensor::order_greedy_fill(net));
    orders.push_back(qtensor::order_priority(net));
    orders.push_back(qtensor::order_random(net, rng));
    for (const auto& order : orders) {
      const PlanCost got = model.cost(order);
      const PlanCost want = reference_cost(net, order);
      EXPECT_EQ(got.width, want.width);
      EXPECT_DOUBLE_EQ(got.flops, want.flops);
      EXPECT_DOUBLE_EQ(got.peak_entries, want.peak_entries);
    }
  }
}

TEST(Ordering, PriorityOrderIsAValidElimination) {
  const TensorNetwork net = edge_network(12, 2, 1);
  const auto order = qtensor::order_priority(net);
  // Exactly the active variables, each eliminated once.
  const auto active = net.variables();
  EXPECT_EQ(order.size(), active.size());
  EXPECT_EQ(std::set<VarId>(order.begin(), order.end()),
            std::set<VarId>(active.begin(), active.end()));
  // And the order actually contracts: same scalar as greedy-degree.
  const qtensor::SerialCpuBackend backend;
  const auto a = qtensor::contract(net, order, backend);
  const auto b =
      qtensor::contract(net, qtensor::order_greedy_degree(net), backend);
  EXPECT_NEAR(a.value.real(), b.value.real(), 1e-9);
  EXPECT_NEAR(a.value.imag(), b.value.imag(), 1e-9);
}

TEST(Planner, PlanIsIdenticalAtEveryWorkerCount) {
  const TensorNetwork net = edge_network(14, 2, 0);
  qtensor::PlannerOptions opt;
  opt.random_restarts = 6;
  opt.workers = 1;
  const auto serial = qtensor::plan_contraction(net, opt);
  for (std::size_t workers : {2u, 4u, 8u}) {
    opt.workers = workers;
    const auto parallel = qtensor::plan_contraction(net, opt);
    EXPECT_EQ(parallel.order, serial.order) << workers << " workers";
    EXPECT_EQ(parallel.heuristic, serial.heuristic);
    EXPECT_EQ(parallel.cost.width, serial.cost.width);
    EXPECT_DOUBLE_EQ(parallel.cost.flops, serial.cost.flops);
  }
}

TEST(Planner, DeterministicUnderConcurrentCalls) {
  const TensorNetwork net = edge_network(12, 1, 2);
  qtensor::PlannerOptions opt;
  opt.random_restarts = 4;
  opt.workers = 2;  // nested: concurrent planners, each with its own pool
  const auto expected = qtensor::plan_contraction(net, opt);
  std::vector<qtensor::ContractionPlan> plans(8);
  parallel::parallel_for(0, plans.size(), [&](std::size_t i) {
    plans[i] = qtensor::plan_contraction(net, opt);
  });
  for (const auto& p : plans) {
    EXPECT_EQ(p.order, expected.order);
    EXPECT_EQ(p.heuristic, expected.heuristic);
    EXPECT_DOUBLE_EQ(p.cost.flops, expected.cost.flops);
  }
}

TEST(Planner, StructureSeedingIsReproducible) {
  // seed_from_structure mixes network_structure_hash into the restart RNG:
  // the same structure must draw the same random orders in every process.
  const TensorNetwork net = edge_network(12, 2, 3);
  qtensor::PlannerOptions opt;
  opt.try_greedy_degree = false;
  opt.try_greedy_fill = false;
  opt.try_priority = false;
  opt.random_restarts = 3;  // only the random competitor remains
  const auto a = qtensor::plan_contraction(net, opt);
  const auto b = qtensor::plan_contraction(net, opt);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(qtensor::network_structure_hash(net),
            qtensor::network_structure_hash(net));
}

// ---------------------------------------------------------------------------
// PlanCache semantics and persistence.
// ---------------------------------------------------------------------------

CachedPlan sample_plan(const std::string& key, std::uint64_t hash,
                       std::vector<VarId> order) {
  CachedPlan p;
  p.shape_key = key;
  p.structure_hash = hash;
  p.order = std::move(order);
  p.heuristic = "greedy-fill";
  return p;
}

TEST(PlanCache, FindIsKeyedByShapeAndStructure) {
  qtensor::PlanCache cache;
  cache.insert(sample_plan("shape-a", 11, {0, 1, 2}));
  EXPECT_EQ(cache.size(), 1u);

  const auto hit = cache.find("shape-a", 11);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->order, (std::vector<VarId>{0, 1, 2}));
  EXPECT_EQ(hit->heuristic, "greedy-fill");

  // Either half of the key mismatching is a miss.
  EXPECT_FALSE(cache.find("shape-a", 12).has_value());
  EXPECT_FALSE(cache.find("shape-b", 11).has_value());
}

TEST(PlanCache, InsertOverwritesButMergeDoesNot) {
  qtensor::PlanCache cache;
  cache.insert(sample_plan("s", 1, {0, 1}));
  cache.insert(sample_plan("s", 1, {1, 0}));  // last writer wins
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find("s", 1)->order, (std::vector<VarId>{1, 0}));

  // merge() must not clobber live in-memory decisions with stale disk state,
  // but does adopt genuinely new keys.
  cache.merge({sample_plan("s", 1, {0, 1}), sample_plan("t", 2, {5})});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("s", 1)->order, (std::vector<VarId>{1, 0}));
  EXPECT_EQ(cache.find("t", 2)->order, (std::vector<VarId>{5}));
}

TEST(PlanCache, SnapshotIsSortedAndRoundTripsThroughDisk) {
  qtensor::PlanCache cache;
  cache.insert(sample_plan("zeta", 9, {3, 1, 4}));
  cache.insert(sample_plan("alpha", 2, {2, 7}));
  const auto snap = cache.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].shape_key, "alpha");  // deterministic persistence order
  EXPECT_EQ(snap[1].shape_key, "zeta");

  const std::string path = "test_plan_cache_roundtrip.json";
  search::save_plan_cache(snap, path, "test-v1");
  const auto loaded = search::load_plan_cache(path, "test-v1");
  ASSERT_EQ(loaded.size(), 2u);
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].shape_key, snap[i].shape_key);
    EXPECT_EQ(loaded[i].structure_hash, snap[i].structure_hash);
    EXPECT_EQ(loaded[i].order, snap[i].order);
    EXPECT_EQ(loaded[i].heuristic, snap[i].heuristic);
  }
  std::remove(path.c_str());
}

TEST(PlanCache, CorruptMissingAndMismatchedFilesLoadEmpty) {
  // Missing file.
  EXPECT_TRUE(search::load_plan_cache("no_such_plan_cache.json", "test-v1")
                  .empty());

  const std::string path = "test_plan_cache_corrupt.json";
  {
    std::ofstream out(path);
    out << "{ this is not json ]";
  }
  EXPECT_TRUE(search::load_plan_cache(path, "test-v1").empty());

  // Valid file, older cache code version: ignored, never fatal.
  search::save_plan_cache({sample_plan("s", 1, {0})}, path, "test-v1");
  EXPECT_TRUE(search::load_plan_cache(path, "test-v2").empty());
  EXPECT_EQ(search::load_plan_cache(path, "test-v1").size(), 1u);
  std::remove(path.c_str());
}

TEST(GraphFamilies, RingGenerator) {
  const graph::Graph g = graph::ring(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  for (std::size_t v = 0; v < 6; ++v)
    EXPECT_EQ(g.neighbors(v).size(), 2u) << "vertex " << v;
}

}  // namespace
