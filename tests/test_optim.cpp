// Optimizer tests on standard objectives: convergence, budgets, histories.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "optim/cobyla.hpp"
#include "optim/grid_search.hpp"
#include "optim/nelder_mead.hpp"
#include "optim/spsa.hpp"

namespace {

using namespace qarch;
using optim::Objective;

double sphere(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s += v * v;
  return s;
}

double shifted_quadratic(std::span<const double> x) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - (1.0 + static_cast<double>(i));
    s += d * d;
  }
  return s + 0.5;
}

double rosenbrock2(std::span<const double> x) {
  const double a = 1.0 - x[0];
  const double b = x[1] - x[0] * x[0];
  return a * a + 100.0 * b * b;
}

// A smooth periodic landscape like a QAOA energy surface.
double cosine_valley(std::span<const double> x) {
  double s = 0.0;
  for (double v : x) s -= std::cos(v - 0.7);
  return s;
}

struct OptimizerCase {
  std::string name;
  std::function<std::unique_ptr<optim::Optimizer>(std::size_t budget)> make;
};

class DerivativeFree : public ::testing::TestWithParam<OptimizerCase> {};

TEST_P(DerivativeFree, MinimizesSphere) {
  const auto opt = GetParam().make(300);
  const auto r = opt->minimize(sphere, {1.5, -2.0});
  EXPECT_LT(r.value, 0.05) << GetParam().name;
  EXPECT_LE(r.evaluations, 300u);
}

TEST_P(DerivativeFree, MinimizesShiftedQuadratic) {
  const auto opt = GetParam().make(400);
  const auto r = opt->minimize(shifted_quadratic, {0.0, 0.0, 0.0});
  EXPECT_LT(r.value, 0.6) << GetParam().name;  // optimum is 0.5
  EXPECT_NEAR(r.x[0], 1.0, 0.35);
  EXPECT_NEAR(r.x[1], 2.0, 0.35);
  EXPECT_NEAR(r.x[2], 3.0, 0.35);
}

TEST_P(DerivativeFree, MinimizesCosineValley) {
  const auto opt = GetParam().make(300);
  const auto r = opt->minimize(cosine_valley, {0.0, 0.0});
  EXPECT_LT(r.value, -1.9) << GetParam().name;  // optimum = -2
}

TEST_P(DerivativeFree, RespectsEvaluationBudget) {
  const std::size_t budget = 50;
  const auto opt = GetParam().make(budget);
  std::size_t calls = 0;
  const Objective counted = [&](std::span<const double> x) {
    ++calls;
    return sphere(x);
  };
  const auto r = opt->minimize(counted, {2.0, 2.0});
  EXPECT_LE(calls, budget + 1);  // +1 tolerance for a final candidate probe
  EXPECT_EQ(r.evaluations, calls);
}

TEST_P(DerivativeFree, HistoryIsMonotoneNonIncreasing) {
  const auto opt = GetParam().make(200);
  const auto r = opt->minimize(rosenbrock2, {-1.0, 1.0});
  ASSERT_FALSE(r.history.empty());
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1] + 1e-15);
  // The reported best value matches the history tail.
  EXPECT_NEAR(r.value, r.history.back(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizers, DerivativeFree,
    ::testing::Values(
        OptimizerCase{"cobyla",
                      [](std::size_t budget) -> std::unique_ptr<optim::Optimizer> {
                        optim::CobylaConfig c;
                        c.max_evals = budget;
                        return std::make_unique<optim::Cobyla>(c);
                      }},
        OptimizerCase{"nelder_mead",
                      [](std::size_t budget) -> std::unique_ptr<optim::Optimizer> {
                        optim::NelderMeadConfig c;
                        c.max_evals = budget;
                        return std::make_unique<optim::NelderMead>(c);
                      }},
        OptimizerCase{"spsa",
                      [](std::size_t budget) -> std::unique_ptr<optim::Optimizer> {
                        optim::SpsaConfig c;
                        c.max_evals = budget;
                        return std::make_unique<optim::Spsa>(c);
                      }}),
    [](const auto& info) { return info.param.name; });

TEST(Cobyla, ConvergesOnRosenbrockWithLargerBudget) {
  optim::CobylaConfig cfg;
  cfg.max_evals = 2000;
  const auto r = optim::Cobyla(cfg).minimize(rosenbrock2, {-1.0, 1.0});
  EXPECT_LT(r.value, 0.5);
}

TEST(Cobyla, RejectsTinyBudget) {
  optim::CobylaConfig cfg;
  cfg.max_evals = 2;
  EXPECT_THROW(optim::Cobyla(cfg).minimize(sphere, {1.0, 1.0}), Error);
}

TEST(Cobyla, OneDimensionalProblem) {
  optim::CobylaConfig cfg;
  cfg.max_evals = 100;
  const auto r = optim::Cobyla(cfg).minimize(
      [](std::span<const double> x) { return (x[0] - 3.0) * (x[0] - 3.0); },
      {0.0});
  EXPECT_NEAR(r.x[0], 3.0, 0.05);
}

TEST(NelderMead, DeterministicAcrossRuns) {
  optim::NelderMeadConfig cfg;
  cfg.max_evals = 150;
  const auto a = optim::NelderMead(cfg).minimize(rosenbrock2, {0.0, 0.0});
  const auto b = optim::NelderMead(cfg).minimize(rosenbrock2, {0.0, 0.0});
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.x, b.x);
}

TEST(Spsa, SeedChangesTrajectoryButNotQuality) {
  optim::SpsaConfig c1;
  c1.max_evals = 300;
  c1.seed = 1;
  optim::SpsaConfig c2 = c1;
  c2.seed = 2;
  const auto r1 = optim::Spsa(c1).minimize(sphere, {2.0, -2.0});
  const auto r2 = optim::Spsa(c2).minimize(sphere, {2.0, -2.0});
  EXPECT_LT(r1.value, 0.1);
  EXPECT_LT(r2.value, 0.1);
}

TEST(GridSearch, FindsGridOptimum) {
  optim::GridSearchConfig cfg;
  cfg.lo = -2.0;
  cfg.hi = 2.0;
  cfg.points_per_axis = 21;  // grid includes 0 exactly
  const auto r = optim::GridSearch(cfg).minimize(sphere, {9.0, 9.0});
  EXPECT_NEAR(r.value, 0.0, 1e-12);
  EXPECT_EQ(r.evaluations, 441u);
}

TEST(GridSearch, RejectsHighDimensions) {
  const std::vector<double> x0(4, 0.0);
  EXPECT_THROW(optim::GridSearch().minimize(sphere, x0), Error);
}

}  // namespace
