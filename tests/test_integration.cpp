// Cross-module integration tests: the full QArchSearch pipeline end to end,
// on small instances so they stay fast.
#include <gtest/gtest.h>

#include <filesystem>

#include "circuit/optimizer.hpp"
#include "circuit/qasm_parser.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "qaoa/sampling.hpp"
#include "search/dataset.hpp"
#include "search/engine.hpp"
#include "search/report_io.hpp"
#include "search/rl_predictor.hpp"
#include "sim/noise.hpp"

namespace {

using namespace qarch;

search::SearchConfig small_config() {
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session.backend = BackendChoice::Statevector;
  cfg.session.training_evals = 40;
  cfg.session.shots = 32;
  cfg.session.sample_trials = 2;
  return cfg;
}

TEST(Integration, SearchTrainSampleExportImport) {
  // Search → best candidate → re-simulate with both engines → sample →
  // export to QASM → re-import → identical sampled scores.
  Rng rng(101);
  const auto g = graph::random_regular(6, 3, rng);
  const auto report =
      search::SearchEngine(small_config()).run_exhaustive(g, 2);
  const auto& best = report.best;

  // Re-simulate best candidate with both engines: energies agree.
  const auto ansatz = qaoa::build_qaoa_circuit(g, best.p, best.mixer);
  qaoa::EnergyOptions sv_opt;
  sv_opt.engine = qaoa::EngineKind::Statevector;
  qaoa::EnergyOptions tn_opt;
  tn_opt.engine = qaoa::EngineKind::TensorNetwork;
  const double e_sv = qaoa::EnergyEvaluator(g, sv_opt).energy(ansatz, best.theta);
  const double e_tn = qaoa::EnergyEvaluator(g, tn_opt).energy(ansatz, best.theta);
  EXPECT_NEAR(e_sv, best.energy, 1e-9);
  EXPECT_NEAR(e_tn, best.energy, 1e-8);

  // QASM round trip of the trained circuit preserves sampled behaviour.
  const std::string qasm = circuit::to_qasm(ansatz, best.theta);
  const auto imported = circuit::parse_qasm(qasm);
  Rng s1(7), s2(7);
  const double cut_a = qaoa::expected_best_cut(ansatz, best.theta, g, 64, 4, s1);
  const double cut_b = qaoa::expected_best_cut(imported, {}, g, 64, 4, s2);
  EXPECT_NEAR(cut_a, cut_b, 1e-9);
}

TEST(Integration, OptimizerPreservesSearchedCandidateEnergy) {
  Rng rng(103);
  const auto g = graph::random_regular(6, 3, rng);
  const auto mixer = qaoa::MixerSpec::parse("rx,rx,ry");  // mergeable
  const auto ansatz = qaoa::build_qaoa_circuit(g, 1, mixer);
  const auto optimized = circuit::optimize(ansatz);
  EXPECT_LT(optimized.num_gates(), ansatz.num_gates());

  const qaoa::EnergyEvaluator ev(g, {});
  const std::vector<double> theta{0.7, 0.4};
  EXPECT_NEAR(ev.energy(ansatz, theta), ev.energy(optimized, theta), 1e-10);
}

TEST(Integration, ConstrainedSearchSkipsUntrainableCandidates) {
  Rng rng(107);
  const auto g = graph::random_regular(6, 3, rng);
  auto cfg = small_config();
  cfg.constraints.add(std::make_shared<search::TrainableConstraint>())
      .add(std::make_shared<search::NoImmediateRepeatConstraint>());
  const auto report = search::SearchEngine(cfg).run_exhaustive(g, 2);
  // 30 total - 2 untrainable ("h", "h,h") - 5 repeats ("x,x" style) with
  // "h,h" counted once by whichever constraint fires first.
  EXPECT_LT(report.num_candidates, 30u);
  for (const auto& c : report.evaluated) {
    bool trainable = false;
    for (auto gk : c.mixer.gates)
      trainable = trainable || circuit::is_parameterized(gk);
    EXPECT_TRUE(trainable);
  }
}

TEST(Integration, ReinforceDrivenEngineRunsAndImproves) {
  Rng rng(109);
  const auto g = graph::random_regular(6, 3, rng);
  auto cfg = small_config();
  cfg.batch = 8;
  search::ReinforceConfig rl;
  rl.k_max = 2;
  rl.budget = 24;
  search::ReinforcePredictor pred(cfg.alphabet, rl);
  const auto report = search::SearchEngine(cfg).run(g, pred);
  EXPECT_EQ(report.num_candidates, 24u);
  EXPECT_GT(report.best.ratio, 0.5);
  EXPECT_GT(pred.baseline(), 0.0);  // rewards were propagated
}

TEST(Integration, DatasetSearchReportPersistsPerGraph) {
  Rng rng(113);
  const auto graphs = graph::regular_dataset(2, 6, 3, rng);
  search::DatasetSearchConfig dcfg;
  dcfg.engine = small_config();
  dcfg.k_max = 1;
  dcfg.node_slots = 2;
  const auto dataset_report = search::search_dataset(graphs, dcfg);

  const std::string path = "/tmp/qarch_integration_report.json";
  search::save_report(dataset_report.per_graph[0], path);
  const auto loaded = search::load_report(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded.best.mixer, dataset_report.per_graph[0].best.mixer);
}

TEST(Integration, NoisyRescoringRanksMixersConsistently) {
  // Score baseline and qnas under light noise; both should stay above the
  // random-cut floor m/2 and below their noiseless energies.
  Rng rng(127);
  const auto g = graph::random_regular(8, 3, rng);
  sim::NoiseModel light;
  light.p1 = 0.002;
  light.p2 = 0.01;
  for (const auto& mixer :
       {qaoa::MixerSpec::baseline(), qaoa::MixerSpec::qnas()}) {
    const auto ansatz = qaoa::build_qaoa_circuit(g, 1, mixer);
    const qaoa::EnergyEvaluator ev(g, {});
    optim::CobylaConfig cc;
    cc.max_evals = 100;
    const auto trained = qaoa::train_qaoa(ansatz, ev, optim::Cobyla(cc));
    Rng nrng(5);
    const double noisy =
        sim::noisy_cut_expectation(ansatz, trained.theta, g, light, 48, nrng);
    EXPECT_LT(noisy, trained.energy + 0.2);
    EXPECT_GT(noisy, 0.4 * trained.energy);
  }
}

TEST(Integration, ExactClassicalOptimaAnchorRatios) {
  // All ratio computations in the pipeline divide by the same exact optimum;
  // verify the evaluator's anchor equals the standalone solver's.
  Rng rng(131);
  const auto g = graph::random_regular(8, 3, rng);
  const search::Evaluator ev(g, {});
  EXPECT_DOUBLE_EQ(ev.classical_optimum(), graph::maxcut_exact(g).value);
}

}  // namespace
