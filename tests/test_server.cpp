// qarchd protocol conformance: every test drives a real in-process daemon on
// an ephemeral loopback port through the qarch_client library (or a raw
// socket where the client is too well-behaved to produce the abuse), and
// asserts the wire behaviour promised in src/server/README.md — status
// codes for malformed input, tenant isolation, admission control, long-poll
// semantics, cancel over the wire, and bit-for-bit parity between a wire
// response and a direct in-process EvalService evaluation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/optimizer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/hamiltonian.hpp"
#include "qaoa/objective.hpp"
#include "query/sampler.hpp"
#include "search/eval_service.hpp"
#include "search/fault.hpp"
#include "search/report_io.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "session.hpp"
#include "sim/sim_program.hpp"

namespace {

using namespace qarch;
using server::ApiError;
using server::ClientOptions;
using server::QarchClient;
using server::QarchServer;
using server::ServerConfig;
using server::TenantSpec;

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 20;
  s.shots = 32;
  s.sample_trials = 2;
  s.workers = 2;
  s.server_io_threads = 4;
  return s;
}

graph::Graph test_graph(std::uint64_t seed, std::size_t n = 6,
                        std::size_t degree = 3) {
  Rng rng(seed);
  return graph::random_regular(n, degree, rng);
}

ServerConfig base_config() {
  ServerConfig config;
  config.session = fast_session();
  config.tenants = {TenantSpec{.name = "alice", .api_key = "key-a"},
                    TenantSpec{.name = "bob", .api_key = "key-b"}};
  return config;
}

QarchClient make_client(const QarchServer& server, const std::string& key,
                        int retries = 2) {
  ClientOptions options;
  options.port = const_cast<QarchServer&>(server).port();
  options.api_key = key;
  options.max_retries = retries;
  return QarchClient(options);
}

json::Value ring_body(std::size_t n = 4, const std::string& mixer = "rx",
                      std::size_t p = 1) {
  json::Value gen = json::Value::object();
  gen.set("name", "ring");
  gen.set("n", n);
  json::Value body = json::Value::object();
  body.set("generator", std::move(gen));
  body.set("mixer", mixer);
  body.set("p", p);
  return body;
}

// Pins the daemon's worker(s) for a while: COBYLA may converge before any
// single budget, so busy-ness comes from a queue of DISTINCT heavy jobs,
// not one huge one. Returns the tickets (poll them to quiesce).
std::vector<std::string> flood_heavy(QarchClient& client, std::size_t count,
                                     std::uint64_t seed0) {
  std::vector<std::string> tickets;
  for (std::size_t i = 0; i < count; ++i)
    tickets.push_back(client.submit(QarchClient::submit_body(
        test_graph(seed0 + i, 10, 3), "rx", 2, /*budget=*/400)));
  return tickets;
}

int api_status(QarchClient& client, const std::string& method,
               const std::string& target, const std::string& body) {
  try {
    (void)client.request(method, target, body);
    return 200;
  } catch (const ApiError& e) {
    return e.status();
  }
}

// ---------------------------------------------------------------------------
// Pure parsing units
// ---------------------------------------------------------------------------

TEST(TenantSpec, ParsesTheFullGrammar) {
  const auto minimal = TenantSpec::parse("alice:key-a");
  EXPECT_EQ(minimal.name, "alice");
  EXPECT_EQ(minimal.api_key, "key-a");
  EXPECT_EQ(minimal.weight, 1.0);
  EXPECT_EQ(minimal.rate, -1.0);
  EXPECT_EQ(minimal.burst, -1.0);
  EXPECT_EQ(minimal.max_inflight, -1);

  const auto full = TenantSpec::parse("bob:key-b:4:2.5:10:8");
  EXPECT_EQ(full.weight, 4.0);
  EXPECT_EQ(full.rate, 2.5);
  EXPECT_EQ(full.burst, 10.0);
  EXPECT_EQ(full.max_inflight, 8);

  EXPECT_THROW((void)TenantSpec::parse("justaname"), InvalidArgument);
  EXPECT_THROW((void)TenantSpec::parse(":key"), InvalidArgument);
  EXPECT_THROW((void)TenantSpec::parse("a:k:notanumber"), InvalidArgument);
  EXPECT_THROW((void)TenantSpec::parse("a:k:0"), InvalidArgument);  // weight
  EXPECT_THROW((void)TenantSpec::parse("a:k:1:1:1:1:extra"), InvalidArgument);
}

TEST(SubmitJson, BuildsGraphsFromBothForms) {
  json::Value body = json::parse(
      R"({"graph":{"n":3,"edges":[[0,1],[1,2,2.5]]},"mixer":"rx","p":1})");
  const auto g = server::graph_from_submit_json(body, 32);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges()[1].weight, 2.5);

  json::Value gen = json::parse(
      R"({"generator":{"name":"regular","n":6,"degree":3,"seed":11}})");
  const auto rg = server::graph_from_submit_json(gen, 32);
  EXPECT_EQ(rg.num_vertices(), 6u);
  EXPECT_EQ(rg.degree(0), 3u);
  // Same seed, same graph: wire submissions are reproducible.
  EXPECT_EQ(search::graph_fingerprint(rg),
            search::graph_fingerprint(server::graph_from_submit_json(gen, 32)));
}

TEST(SubmitJson, RejectsMalformedGraphSpecs) {
  const auto reject = [](const char* text) {
    EXPECT_THROW(
        (void)server::graph_from_submit_json(json::parse(text), 8),
        InvalidArgument)
        << text;
  };
  reject(R"({"mixer":"rx"})");                                 // neither form
  reject(R"({"graph":{"n":3,"edges":[[0,1]]},"generator":{}})");  // both
  reject(R"({"graph":{"n":99,"edges":[]}})");                  // too large
  reject(R"({"graph":{"n":3,"edges":[[0,1,1.0,9]]}})");        // bad arity
  reject(R"({"graph":{"n":3,"edges":[[0,0]]}})");              // self loop
  reject(R"({"graph":{"n":3,"edges":[[0,5]]}})");              // out of range
  reject(R"({"generator":{"name":"mobius","n":4}})");          // unknown
  reject(R"({"generator":{"name":"grid","rows":4,"cols":4}})");  // 16 > 8
  reject(R"({"graph":{"n":-3,"edges":[]}})");                  // negative n
}

// ---------------------------------------------------------------------------
// Wire conformance
// ---------------------------------------------------------------------------

TEST(QarchServer, HealthzIsUnauthenticated) {
  QarchServer server(base_config());
  server.start();
  QarchClient anon = make_client(server, "");
  const json::Value health = anon.healthz();
  EXPECT_EQ(health.at("status").as_string(), "ok");
  EXPECT_EQ(health.at("engine").as_string(), "sv");
}

TEST(QarchServer, MissingOrUnknownApiKeyIs401) {
  QarchServer server(base_config());
  server.start();
  QarchClient anon = make_client(server, "");
  QarchClient wrong = make_client(server, "not-a-key");
  EXPECT_EQ(api_status(anon, "GET", "/v1/stats", ""), 401);
  EXPECT_EQ(api_status(wrong, "POST", "/v1/submit", ring_body().dump()), 401);
  EXPECT_EQ(server.counters().unauthorized, 2u);
  EXPECT_EQ(server.counters().submits, 0u);
}

TEST(QarchServer, MalformedJsonIs400) {
  QarchServer server(base_config());
  server.start();
  QarchClient alice = make_client(server, "key-a");
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", "{nope"), 400);
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", ""), 400);
  // Unknown top-level fields are typos, not extensions: reject loudly.
  json::Value typo = ring_body();
  typo.set("bugdet", 50);
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", typo.dump()), 400);
  // Bad wait_ms on an otherwise fine request.
  const std::string ticket = alice.submit(ring_body());
  EXPECT_EQ(api_status(alice, "GET", "/v1/result/" + ticket + "?wait_ms=soon",
                       ""),
            400);
  EXPECT_EQ(server.counters().bad_requests, 4u);
}

TEST(QarchServer, UnknownTicketAndEndpointAre404) {
  QarchServer server(base_config());
  server.start();
  QarchClient alice = make_client(server, "key-a");
  EXPECT_EQ(api_status(alice, "GET", "/v1/result/t-999", ""), 404);
  EXPECT_EQ(api_status(alice, "POST", "/v1/cancel/t-999", ""), 404);
  EXPECT_EQ(api_status(alice, "GET", "/v2/everything", ""), 404);
}

TEST(QarchServer, CrossTenantTicketLookupIs404) {
  QarchServer server(base_config());
  server.start();
  QarchClient alice = make_client(server, "key-a");
  QarchClient bob = make_client(server, "key-b");
  const std::string ticket = alice.submit(ring_body());
  // Bob can neither read nor cancel Alice's ticket — and the answer is
  // indistinguishable from "no such ticket".
  EXPECT_EQ(api_status(bob, "GET", "/v1/result/" + ticket, ""), 404);
  EXPECT_EQ(api_status(bob, "POST", "/v1/cancel/" + ticket, ""), 404);
  // Alice still can.
  EXPECT_EQ(alice.result(ticket, 20000.0).at("status").as_string(), "done");
}

TEST(QarchServer, WrongMethodIs405) {
  QarchServer server(base_config());
  server.start();
  QarchClient alice = make_client(server, "key-a");
  EXPECT_EQ(api_status(alice, "GET", "/v1/submit", ""), 405);
  EXPECT_EQ(api_status(alice, "POST", "/v1/stats", ""), 405);
  EXPECT_EQ(api_status(alice, "POST", "/healthz", ""), 405);
}

TEST(QarchServer, OversizedBodyIs413) {
  ServerConfig config = base_config();
  config.session.server_max_body_bytes = 256;
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");
  // Rejected on the Content-Length header, before any body bytes are
  // buffered or parsed.
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", std::string(1024, 'x')),
            413);
  EXPECT_EQ(server.counters().submits, 0u);
}

TEST(QarchServer, OversizedHeaderSectionIs431) {
  QarchServer server(base_config());
  server.start();
  server::Socket conn = server::tcp_connect("127.0.0.1", server.port(), 5.0);
  std::string request = "GET /healthz HTTP/1.1\r\nHost: x\r\n";
  request += "X-Padding: " + std::string(16384, 'p') + "\r\n\r\n";
  ASSERT_TRUE(conn.send_all(request));
  server::HttpResponse response;
  server::read_http_response(conn, response, server::HttpLimits{});
  EXPECT_EQ(response.status, 431);
}

TEST(QarchServer, EngineFieldIsAnAssertionNotARequest) {
  QarchServer server(base_config());  // forced statevector
  server.start();
  QarchClient alice = make_client(server, "key-a");
  json::Value body = ring_body();
  body.set("engine", "tn");
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", body.dump()), 409);
  body.set("engine", "sv");
  EXPECT_NO_THROW((void)alice.submit(body));
}

TEST(QarchServer, WireResultMatchesDirectServiceBitForBit) {
  const auto g = test_graph(21);
  ServerConfig config = base_config();
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");

  const json::Value body = QarchClient::submit_body(g, "rx,ry", 1);
  const search::CandidateResult wire = alice.evaluate(body);

  // An equally configured in-process service must produce the identical
  // candidate: the daemon adds transport, not semantics.
  search::EvalService direct(config.session);
  const auto direct_ticket = direct.submit(g, qaoa::MixerSpec::parse("rx,ry"), 1);
  const search::CandidateResult expected = direct_ticket.wait();
  EXPECT_EQ(wire.energy, expected.energy);
  EXPECT_EQ(wire.ratio, expected.ratio);
  EXPECT_EQ(wire.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(wire.theta, expected.theta);
  EXPECT_EQ(wire.evaluations, expected.evaluations);

  // Second submit of the same candidate: served from the service cache with
  // ZERO new program compilations, and flagged as such on the wire.
  const std::size_t compiles = sim::program_compile_count();
  const std::string ticket = alice.submit(body);
  const json::Value again = alice.result(ticket, 20000.0);
  EXPECT_EQ(again.at("status").as_string(), "done");
  EXPECT_TRUE(again.at("from_cache").as_bool());
  EXPECT_EQ(sim::program_compile_count(), compiles);
  const auto cached = search::candidate_from_json(again.at("result"));
  EXPECT_EQ(cached.energy, expected.energy);
  EXPECT_EQ(cached.theta, expected.theta);
}

/// The sampler a /v1/sample request resolves to, built the same way the
/// daemon builds it (ansatz simplification + engine-reconciled options), so
/// wire draws can be compared bit-for-bit against direct ones.
query::Sampler direct_sampler(const SessionConfig& session,
                              const graph::Graph& g, const std::string& mixer,
                              std::size_t p, qaoa::EngineKind engine) {
  circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::parse(mixer));
  if (session.simplify_circuit) ansatz = circuit::optimize(ansatz);
  const qaoa::EnergyOptions energy = session.energy_options(engine);
  query::SamplerOptions so;
  so.engine = engine == qaoa::EngineKind::Statevector
                  ? query::SamplerEngine::Statevector
                  : query::SamplerEngine::TensorNetwork;
  so.query = query::query_options(energy.qtensor);
  so.tn_backend = energy.qtensor.backend;
  so.sv_plan = energy.sv_plan;
  so.sv_workers = energy.inner_workers;
  return query::Sampler(ansatz, so);
}

TEST(QarchServer, SampleOverTheWireMatchesDirectSampler) {
  const auto g = test_graph(31);
  ServerConfig config = base_config();
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");

  const std::vector<double> theta = {0.4, -0.7};
  const std::size_t shots = 48;
  const std::uint64_t seed = 12345;

  json::Value body = QarchClient::submit_body(g, "rx", 1);
  json::Value theta_json = json::Value::array();
  for (const double t : theta) theta_json.push_back(t);
  body.set("theta", std::move(theta_json));
  body.set("shots", shots);
  body.set("seed", seed);

  // Statevector daemon, both engines requestable per call: draws must match
  // an identically configured direct sampler at the same seed bit-for-bit.
  for (const std::string& engine : {std::string("sv"), std::string("tn")}) {
    body.set("engine", engine);
    const json::Value response =
        alice.request("POST", "/v1/sample", body.dump());
    EXPECT_EQ(response.at("engine").as_string(), engine);
    ASSERT_EQ(response.at("samples").size(), shots);
    ASSERT_EQ(response.at("values").size(), shots);

    const query::Sampler sampler = direct_sampler(
        config.session, g, "rx", 1,
        engine == "sv" ? qaoa::EngineKind::Statevector
                       : qaoa::EngineKind::TensorNetwork);
    Rng rng(seed);
    const std::vector<std::size_t> expected =
        sampler.sample(theta, shots, rng);
    const qaoa::Hamiltonian ham(g);
    for (std::size_t i = 0; i < shots; ++i) {
      EXPECT_EQ(
          static_cast<std::size_t>(response.at("samples").at(i).as_number()),
          expected[i]);
      EXPECT_DOUBLE_EQ(response.at("values").at(i).as_number(),
                       ham.classical_value_bits(expected[i]));
    }
  }

  // A non-default Hamiltonian reprices the same draws.
  body.set("engine", "sv");
  body.set("hamiltonian", "mis");
  body.set("mis_penalty", 2.5);
  const json::Value mis_response =
      alice.request("POST", "/v1/sample", body.dump());
  const qaoa::Hamiltonian mis = qaoa::Hamiltonian::mis(g, 2.5);
  const query::Sampler sampler = direct_sampler(
      config.session, g, "rx", 1, qaoa::EngineKind::Statevector);
  Rng rng(seed);
  const auto expected = sampler.sample(theta, shots, rng);
  for (std::size_t i = 0; i < shots; ++i)
    EXPECT_DOUBLE_EQ(mis_response.at("values").at(i).as_number(),
                     mis.classical_value_bits(expected[i]));

  // The wire counter ticked once per sample request.
  const json::Value stats = alice.stats();
  EXPECT_EQ(stats.at("server").at("samples").as_number(), 3.0);
}

TEST(QarchServer, SampleRejectsMalformedRequests) {
  QarchServer server(base_config());
  server.start();
  QarchClient alice = make_client(server, "key-a");

  json::Value body = ring_body();
  json::Value theta = json::Value::array();
  theta.push_back(0.1);
  theta.push_back(0.2);
  body.set("theta", std::move(theta));
  body.set("shots", 4);
  EXPECT_EQ(api_status(alice, "POST", "/v1/sample", body.dump()), 200);
  EXPECT_EQ(api_status(alice, "GET", "/v1/sample", ""), 405);

  json::Value bad = json::parse(body.dump());
  bad.set("budget", 10);  // a submit field, not a sample field
  EXPECT_EQ(api_status(alice, "POST", "/v1/sample", bad.dump()), 400);

  json::Value no_theta = ring_body();
  no_theta.set("shots", 4);
  EXPECT_EQ(api_status(alice, "POST", "/v1/sample", no_theta.dump()), 400);

  json::Value short_theta = json::parse(body.dump());
  json::Value one = json::Value::array();
  one.push_back(0.1);
  short_theta.set("theta", std::move(one));
  EXPECT_EQ(api_status(alice, "POST", "/v1/sample", short_theta.dump()), 400);

  json::Value no_shots = json::parse(body.dump());
  no_shots.set("shots", 0);
  EXPECT_EQ(api_status(alice, "POST", "/v1/sample", no_shots.dump()), 400);
}

TEST(QarchServer, ObjectiveSubmitMatchesDirectServiceBitForBit) {
  const auto g = test_graph(37);
  ServerConfig config = base_config();
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");

  json::Value body = QarchClient::submit_body(g, "rx", 1);
  body.set("objective", "cvar");
  body.set("cvar_alpha", 0.5);
  body.set("hamiltonian", "mis");
  const search::CandidateResult wire = alice.evaluate(body);

  search::EvalService direct(config.session);
  search::JobOptions options;
  options.objective = qaoa::ObjectiveSpec{};
  options.objective->kind = qaoa::ObjectiveKind::CVaR;
  options.objective->alpha = 0.5;
  options.hamiltonian = qaoa::HamiltonianSpec{};
  options.hamiltonian->kind = qaoa::HamiltonianKind::MIS;
  const search::CandidateResult expected =
      direct.submit(g, qaoa::MixerSpec::parse("rx"), 1, options).wait();
  EXPECT_EQ(wire.energy, expected.energy);
  EXPECT_EQ(wire.ratio, expected.ratio);
  EXPECT_EQ(wire.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(wire.theta, expected.theta);

  // The spec'd candidate and the default candidate are distinct wire
  // submissions (no false cache hit between them).
  const std::string default_ticket =
      alice.submit(QarchClient::submit_body(g, "rx", 1));
  const json::Value default_result = alice.result(default_ticket, 20000.0);
  EXPECT_EQ(default_result.at("status").as_string(), "done");
  EXPECT_FALSE(default_result.at("from_cache").as_bool());

  // Unknown kinds and orphaned parameter fields are the client's fault.
  json::Value bad = QarchClient::submit_body(g, "rx", 1);
  bad.set("objective", "nope");
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", bad.dump()), 400);
  json::Value orphan = QarchClient::submit_body(g, "rx", 1);
  orphan.set("cvar_alpha", 0.5);
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", orphan.dump()), 400);
  json::Value orphan_ham = QarchClient::submit_body(g, "rx", 1);
  orphan_ham.set("mis_penalty", 2.0);
  EXPECT_EQ(api_status(alice, "POST", "/v1/submit", orphan_ham.dump()), 400);
}

TEST(QarchClient, KeepAliveReusesOneConnectionAndSurvivesRestart) {
  ServerConfig config = base_config();
  std::optional<QarchServer> daemon;
  daemon.emplace(config);
  daemon->start();
  const std::uint16_t port = daemon->port();

  ClientOptions options;
  options.port = port;
  options.api_key = "key-a";
  options.max_retries = 4;
  options.retry_backoff_seconds = 0.01;
  QarchClient client(options);

  // Several sequential requests ride ONE connection.
  (void)client.healthz();
  (void)client.stats();
  (void)client.submit(ring_body());
  (void)client.stats();
  EXPECT_EQ(client.connections_opened(), 1u);

  // Restart the daemon on the same port: the cached socket goes stale. The
  // next request recovers on a fresh connection (at most one extra for the
  // dead-socket discovery) without surfacing an error.
  daemon->stop();
  daemon.reset();
  config.port = port;
  daemon.emplace(config);
  daemon->start();
  EXPECT_NO_THROW((void)client.stats());
  EXPECT_GE(client.connections_opened(), 2u);
  EXPECT_LE(client.connections_opened(), 3u);

  // And stays on the new connection afterwards.
  const std::size_t settled = client.connections_opened();
  (void)client.healthz();
  (void)client.stats();
  EXPECT_EQ(client.connections_opened(), settled);
}

TEST(QarchServer, LongPollWaitsAndImmediatePollReportsPending) {
  ServerConfig config = base_config();
  config.session.workers = 1;
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");

  // Heavy jobs pin the single worker...
  const auto blockers = flood_heavy(alice, 4, 220);
  // ...so the queued job is still pending for an immediate poll.
  const std::string ticket = alice.submit(ring_body());
  EXPECT_EQ(alice.result(ticket, 0.0).at("status").as_string(), "pending");
  // A long-poll rides out the queue wait and returns done.
  const json::Value done = alice.result(ticket, 30000.0);
  EXPECT_EQ(done.at("status").as_string(), "done");
  for (const auto& t : blockers) (void)alice.result(t, 30000.0);
}

TEST(QarchServer, CancelAndDeadlineOverTheWire) {
  ServerConfig config = base_config();
  config.session.workers = 1;
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");

  const auto blockers = flood_heavy(alice, 8, 230);

  // Cancel a queued submission over the wire.
  const std::string doomed = alice.submit(ring_body(4, "ry"));
  EXPECT_TRUE(alice.cancel(doomed));
  EXPECT_EQ(alice.result(doomed).at("status").as_string(), "cancelled");
  EXPECT_EQ(server.counters().cancels, 1u);

  // A queued job whose deadline passes resolves expired, not stuck.
  json::Value dated = ring_body(4, "rz");
  dated.set("deadline_ms", 20.0);
  const std::string expired = alice.submit(dated);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(alice.result(expired, 1000.0).at("status").as_string(), "expired");

  for (const auto& t : blockers) (void)alice.result(t, 30000.0);
}

TEST(QarchServer, TokenBucketRateLimits) {
  ServerConfig config = base_config();
  // burst 2, refill 0: exactly two submits, then 429 forever — fully
  // deterministic, no sleeps.
  config.tenants = {TenantSpec{.name = "limited",
                               .api_key = "key-l",
                               .weight = 1.0,
                               .rate = 0.0,
                               .burst = 2.0},
                    TenantSpec{.name = "free", .api_key = "key-f"}};
  QarchServer server(config);
  server.start();
  QarchClient limited = make_client(server, "key-l");
  QarchClient free_rider = make_client(server, "key-f");

  (void)limited.submit(ring_body(4, "rx"));
  (void)limited.submit(ring_body(4, "ry"));
  try {
    (void)limited.submit(ring_body(4, "rz"));
    FAIL() << "third submit must be rate-limited";
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 429);
    EXPECT_NE(std::string(e.what()).find("rate limit"), std::string::npos);
  }
  EXPECT_EQ(server.counters().rate_limited, 1u);
  EXPECT_EQ(server.counters().submits, 2u);
  // Rate limiting is per tenant: the other tenant is unaffected.
  EXPECT_NO_THROW((void)free_rider.submit(ring_body(4, "rz")));
}

TEST(QarchServer, InflightQuotaCountsOutstandingTickets) {
  ServerConfig config = base_config();
  config.session.workers = 1;
  config.tenants = {TenantSpec{.name = "quota",
                               .api_key = "key-q",
                               .weight = 1.0,
                               .rate = -1.0,
                               .burst = -1.0,
                               .max_inflight = 1},
                    TenantSpec{.name = "blocker", .api_key = "key-x"}};
  QarchServer server(config);
  server.start();
  QarchClient blocker = make_client(server, "key-x");
  QarchClient quota = make_client(server, "key-q");

  const auto blockers = flood_heavy(blocker, 4, 240);

  const std::string first = quota.submit(ring_body(4, "rx"));
  try {
    (void)quota.submit(ring_body(4, "ry"));
    FAIL() << "second outstanding ticket must exceed the quota";
  } catch (const ApiError& e) {
    EXPECT_EQ(e.status(), 429);
  }
  EXPECT_EQ(server.counters().quota_rejected, 1u);
  // Resolving the outstanding ticket (here: cancelling it) frees the slot.
  EXPECT_TRUE(quota.cancel(first));
  EXPECT_NO_THROW((void)quota.submit(ring_body(4, "ry")));
  for (const auto& t : blockers) (void)blocker.result(t, 30000.0);
}

TEST(QarchServer, StatsReportPerTenantQueues) {
  QarchServer server(base_config());
  server.start();
  QarchClient alice = make_client(server, "key-a");
  (void)alice.evaluate(ring_body());
  const json::Value stats = alice.stats();
  EXPECT_EQ(stats.at("engine").as_string(), "sv");
  EXPECT_GE(stats.at("service").at("completed").as_number(), 1.0);
  EXPECT_EQ(stats.at("server").at("submits").as_number(), 1.0);
  const json::Value& tenants = stats.at("tenants");
  ASSERT_EQ(tenants.size(), 2u);
  bool saw_alice = false;
  for (std::size_t i = 0; i < tenants.size(); ++i)
    if (tenants.at(i).at("name").as_string() == "alice") {
      saw_alice = true;
      EXPECT_EQ(tenants.at(i).at("submitted").as_number(), 1.0);
      EXPECT_EQ(tenants.at(i).at("outstanding").as_number(), 0.0);
    }
  EXPECT_TRUE(saw_alice);
}

TEST(QarchServer, StopUnblocksLongPollsAndDrains) {
  // Evaluation speed must not decide this test: a 20 ms injected delay per
  // objective call makes every queued job take >= 400 ms deterministically,
  // so the flood is guaranteed to still be running when stop() fires.
  struct FaultGuard {
    ~FaultGuard() { search::FaultInjector::instance().reset(); }
  } guard;
  search::FaultPlan slow;
  slow.delay_seconds = 0.02;
  slow.delay_rate = 1.0;
  search::FaultInjector::instance().configure(slow);

  ServerConfig config = base_config();
  config.session.workers = 1;
  QarchServer server(config);
  server.start();
  QarchClient alice = make_client(server, "key-a");
  const auto blockers = flood_heavy(alice, 12, 250);

  // A long poll on the last queued job is parked on an IO thread...
  json::Value polled;
  std::thread poller([&] {
    QarchClient c = make_client(server, "key-a");
    polled = c.result(blockers.back(), 25000.0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // ...and stop() must not wait the full 25 s for it: the poll answers
  // "pending" as soon as shutdown begins, then the service drains.
  const auto t0 = std::chrono::steady_clock::now();
  server.stop(5.0);
  poller.join();
  const double stop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(stop_seconds, 15.0);
  EXPECT_EQ(polled.at("status").as_string(), "pending");

  // The daemon is gone: new connections fail, but as a clean client error.
  QarchClient after = make_client(server, "key-a", /*retries=*/0);
  EXPECT_THROW((void)after.healthz(), Error);
}

}  // namespace
