// OpenQASM 2.0 importer tests: round-trip with the exporter, angle grammar,
// interchange constructs, and diagnostics.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/qasm_parser.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

TEST(QasmParser, MinimalProgram) {
  const Circuit c = circuit::parse_qasm(
      "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx "
      "q[0],q[1];\n");
  EXPECT_EQ(c.num_qubits(), 2u);
  ASSERT_EQ(c.num_gates(), 2u);
  EXPECT_EQ(c.gates()[0].kind, GateKind::H);
  EXPECT_EQ(c.gates()[1].kind, GateKind::CX);
  EXPECT_EQ(c.gates()[1].q0, 0u);
  EXPECT_EQ(c.gates()[1].q1, 1u);
}

TEST(QasmParser, AngleExpressions) {
  const Circuit c = circuit::parse_qasm(
      "OPENQASM 2.0;\nqreg q[1];\n"
      "rx(pi/2) q[0];\nry(-pi) q[0];\nrz(3*pi/4) q[0];\np(0.25) q[0];\n"
      "rx(2*(1+0.5)) q[0];\nry(1e-3) q[0];\n");
  ASSERT_EQ(c.num_gates(), 6u);
  EXPECT_NEAR(c.gates()[0].param.constant, M_PI / 2, 1e-12);
  EXPECT_NEAR(c.gates()[1].param.constant, -M_PI, 1e-12);
  EXPECT_NEAR(c.gates()[2].param.constant, 3 * M_PI / 4, 1e-12);
  EXPECT_NEAR(c.gates()[3].param.constant, 0.25, 1e-12);
  EXPECT_NEAR(c.gates()[4].param.constant, 3.0, 1e-12);
  EXPECT_NEAR(c.gates()[5].param.constant, 1e-3, 1e-12);
}

TEST(QasmParser, CommentsBlankLinesAndMultiLineStatements) {
  const Circuit c = circuit::parse_qasm(
      "// header comment\nOPENQASM 2.0;\n\nqreg q[2]; // inline\n"
      "h\nq[0];\n"   // statement split across lines
      "cz q[0], q[1];\n");
  EXPECT_EQ(c.num_gates(), 2u);
}

TEST(QasmParser, IgnoresClassicalConstructs) {
  const Circuit c = circuit::parse_qasm(
      "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nbarrier q[0];\n"
      "measure q[0] -> c[0];\n");
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(QasmParser, RoundTripsWithExporter) {
  Rng rng(3);
  const sim::StatevectorSimulator sv;
  for (int trial = 0; trial < 5; ++trial) {
    Circuit c(3, 1);
    c.h(0);
    c.rx(1, ParamExpr::symbol(0, 2.0));
    c.rzz(0, 2, ParamExpr::constant_angle(rng.uniform(-3, 3)));
    c.cx(2, 1);
    c.p(0, ParamExpr::constant_angle(rng.uniform(-3, 3)));
    c.swap(0, 1);
    const std::vector<double> theta{rng.uniform(-3, 3)};

    const std::string qasm = circuit::to_qasm(c, theta);
    const Circuit back = circuit::parse_qasm(qasm);
    ASSERT_EQ(back.num_gates(), c.num_gates());
    // The re-imported circuit has constants bound; actions must match.
    const auto sa = sv.run_from_plus(c, theta);
    const auto sb = sv.run_from_plus(back, {});
    for (std::size_t i = 0; i < sa.size(); ++i)
      EXPECT_NEAR(std::abs(sa[i] - sb[i]), 0.0, 1e-10);
  }
}

TEST(QasmParser, ErrorsCarryLineNumbers) {
  try {
    circuit::parse_qasm("OPENQASM 2.0;\nqreg q[2];\nbogus q[0];\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(QasmParser, RejectsMalformedPrograms) {
  EXPECT_THROW(circuit::parse_qasm(""), Error);                       // empty
  EXPECT_THROW(circuit::parse_qasm("qreg q[2];\nh q[0];\n"), Error);  // no header
  EXPECT_THROW(circuit::parse_qasm("OPENQASM 3.0;\nqreg q[1];\n"), Error);
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nh q[0];\nqreg q[1];\n"),
      Error);  // gate before qreg
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[5];\n"),
      Error);  // out of range
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx q[0];\n"),
      Error);  // missing angle
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh(0.5) q[0];\n"),
      Error);  // spurious angle
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0];\n"),
      Error);  // wrong operand count
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[0]"),
      Error);  // missing semicolon
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg q[1];\nrx(1/0) q[0];\n"),
      Error);  // division by zero
}

TEST(QasmParser, CustomRegisterName) {
  const Circuit c = circuit::parse_qasm(
      "OPENQASM 2.0;\nqreg psi[3];\nh psi[2];\n");
  EXPECT_EQ(c.num_qubits(), 3u);
  EXPECT_EQ(c.gates()[0].q0, 2u);
  EXPECT_THROW(
      circuit::parse_qasm("OPENQASM 2.0;\nqreg psi[3];\nh other[0];\n"),
      Error);
}

}  // namespace
