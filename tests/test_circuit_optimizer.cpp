// Circuit optimizer pass tests: every simplification must preserve the
// circuit's action on |+>^n exactly (up to global phase — validated through
// ZZ expectations, which are phase-blind).
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "circuit/optimizer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using circuit::Circuit;
using circuit::GateKind;
using circuit::OptimizeOptions;
using circuit::OptimizeStats;
using circuit::ParamExpr;

/// Checks U|+> equality (exact amplitudes) between two circuits.
void expect_same_action(const Circuit& a, const Circuit& b,
                        std::span<const double> theta) {
  const sim::StatevectorSimulator sv;
  const auto sa = sv.run_from_plus(a, theta);
  const auto sb = sv.run_from_plus(b, theta);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i)
    EXPECT_NEAR(std::abs(sa[i] - sb[i]), 0.0, 1e-10) << "amplitude " << i;
}

TEST(Optimizer, MergesAdjacentSameAxisRotations) {
  Circuit c(2, 1);
  c.rx(0, ParamExpr::constant_angle(0.3));
  c.rx(0, ParamExpr::constant_angle(0.4));
  c.ry(1, ParamExpr::symbol(0, 2.0));
  c.ry(1, ParamExpr::symbol(0, 2.0));

  OptimizeStats stats;
  const Circuit opt = circuit::optimize(c, {}, &stats);
  EXPECT_EQ(opt.num_gates(), 2u);
  EXPECT_EQ(stats.merged_rotations, 2u);
  EXPECT_DOUBLE_EQ(opt.gates()[0].param.constant, 0.7);
  EXPECT_DOUBLE_EQ(opt.gates()[1].param.scale, 4.0);
  expect_same_action(c, opt, std::vector<double>{0.9});
}

TEST(Optimizer, DoesNotMergeDifferentSymbols) {
  Circuit c(1, 2);
  c.rx(0, ParamExpr::symbol(0));
  c.rx(0, ParamExpr::symbol(1));
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 2u);  // cannot prove angles equal
}

TEST(Optimizer, CancelsSelfInversePairs) {
  Circuit c(2);
  c.h(0);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);
  c.x(1);
  OptimizeStats stats;
  const Circuit opt = circuit::optimize(c, {}, &stats);
  EXPECT_EQ(opt.num_gates(), 1u);
  EXPECT_EQ(opt.gates()[0].kind, GateKind::X);
  EXPECT_EQ(stats.cancelled_pairs, 2u);
}

TEST(Optimizer, CancelsDualPairs) {
  Circuit c(1);
  c.s(0);
  c.append({GateKind::Sdg, 0, 0, ParamExpr::none()});
  c.t(0);
  c.append({GateKind::Tdg, 0, 0, ParamExpr::none()});
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 0u);
}

TEST(Optimizer, CancelsOppositeRotations) {
  Circuit c(1);
  c.rz(0, ParamExpr::constant_angle(1.2));
  c.rz(0, ParamExpr::constant_angle(-1.2));
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 0u);
}

TEST(Optimizer, DropsIdentitiesAndZeroRotations) {
  Circuit c(2, 1);
  c.append({GateKind::I, 0, 0, ParamExpr::none()});
  c.rx(0, ParamExpr::constant_angle(0.0));
  c.ry(1, ParamExpr::symbol(0, 0.0));
  c.h(1);
  OptimizeStats stats;
  const Circuit opt = circuit::optimize(c, {}, &stats);
  EXPECT_EQ(opt.num_gates(), 1u);
  EXPECT_EQ(stats.removed_identities, 3u);
}

TEST(Optimizer, ScansPastDisjointGates) {
  // rx(q0), h(q1), rx(q0): the h on q1 must not block the q0 merge.
  Circuit c(2);
  c.rx(0, ParamExpr::constant_angle(0.2));
  c.h(1);
  c.rx(0, ParamExpr::constant_angle(0.5));
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 2u);
  expect_same_action(c, opt, {});
}

TEST(Optimizer, BlockedByOverlappingGate) {
  // rx(q0), cx(q0,q1), rx(q0): the cx touches q0, so no merge.
  Circuit c(2);
  c.rx(0, ParamExpr::constant_angle(0.2));
  c.cx(0, 1);
  c.rx(0, ParamExpr::constant_angle(0.5));
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 3u);
}

TEST(Optimizer, SymmetricTwoQubitGateMatchingIsOrderFree) {
  Circuit c(2);
  c.rzz(0, 1, ParamExpr::constant_angle(0.4));
  c.rzz(1, 0, ParamExpr::constant_angle(0.3));  // reversed qubit order
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 1u);
  expect_same_action(c, opt, {});
}

TEST(Optimizer, DirectionalCxRequiresExactOrder) {
  Circuit c(2);
  c.cx(0, 1);
  c.cx(1, 0);  // NOT an inverse pair
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 2u);
}

TEST(Optimizer, FixedPointOnCascades) {
  // rx(a) rx(-a/2) rx(-a/2) requires two rounds to vanish completely.
  Circuit c(1);
  c.rx(0, ParamExpr::constant_angle(1.0));
  c.rx(0, ParamExpr::constant_angle(-0.5));
  c.rx(0, ParamExpr::constant_angle(-0.5));
  const Circuit opt = circuit::optimize(c);
  EXPECT_EQ(opt.num_gates(), 0u);
}

TEST(Optimizer, PreservesRandomCircuitSemantics) {
  Rng rng(97);
  const sim::StatevectorSimulator sv;
  for (int trial = 0; trial < 8; ++trial) {
    Circuit c(4);
    const GateKind pool[] = {GateKind::H,  GateKind::RX, GateKind::RY,
                             GateKind::RZ, GateKind::X,  GateKind::CX,
                             GateKind::CZ, GateKind::RZZ, GateKind::S,
                             GateKind::I};
    for (int i = 0; i < 24; ++i) {
      const GateKind k = pool[rng.uniform_int(10)];
      ParamExpr param = circuit::is_parameterized(k)
                            ? ParamExpr::constant_angle(rng.uniform(-2, 2))
                            : ParamExpr::none();
      if (circuit::is_two_qubit(k)) {
        std::size_t a = rng.uniform_int(4), b = rng.uniform_int(4);
        while (b == a) b = rng.uniform_int(4);
        c.append({k, a, b, param});
      } else {
        c.append({k, rng.uniform_int(4), 0, param});
      }
    }
    const Circuit opt = circuit::optimize(c);
    EXPECT_LE(opt.num_gates(), c.num_gates());
    expect_same_action(c, opt, {});
  }
}

TEST(Optimizer, PassTogglesRespected) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  c.rx(0, ParamExpr::constant_angle(0.1));
  c.rx(0, ParamExpr::constant_angle(0.2));

  OptimizeOptions no_cancel;
  no_cancel.cancel_inverses = false;
  EXPECT_EQ(circuit::optimize(c, no_cancel).num_gates(), 3u);

  OptimizeOptions no_merge;
  no_merge.merge_rotations = false;
  EXPECT_EQ(circuit::optimize(c, no_merge).num_gates(), 2u);
}

TEST(Optimizer, StatsToStringMentionsCounts) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  OptimizeStats stats;
  circuit::optimize(c, {}, &stats);
  const std::string s = stats.to_string();
  EXPECT_NE(s.find("2 -> 0"), std::string::npos);
}

}  // namespace
