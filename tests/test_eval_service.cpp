// EvalService tests: the submit/ticket surface, concurrent multi-client
// usage, cancellation mid-queue, the candidate-result cache, determinism of
// SearchReport.best across worker counts, backend=Auto agreement with the
// forced engines, and the SessionConfig reconciliation.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "search/combinations.hpp"
#include "search/engine.hpp"
#include "search/eval_service.hpp"
#include "search/halving.hpp"
#include "session.hpp"
#include "sim/sim_program.hpp"

namespace {

using namespace qarch;

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 30;
  s.shots = 32;
  s.sample_trials = 2;
  return s;
}

graph::Graph test_graph(std::uint64_t seed, std::size_t n = 6,
                        std::size_t degree = 3) {
  Rng rng(seed);
  return graph::random_regular(n, degree, rng);
}

TEST(EvalService, SubmitMatchesDirectEvaluator) {
  const auto g = test_graph(11);
  const SessionConfig session = fast_session();

  search::EvalService service(session);
  auto ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto& r = ticket.wait();

  // The service wires the SAME EvaluatorOptions a direct client would build
  // through the session facade, so results are bit-identical.
  const search::Evaluator direct(
      g, session.evaluator_options(qaoa::EngineKind::Statevector));
  const auto expected = direct.evaluate(qaoa::MixerSpec::qnas(), 1);
  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(r.theta, expected.theta);

  EXPECT_TRUE(ticket.ready());
  EXPECT_FALSE(ticket.cache_hit());
  EXPECT_GE(r.queue_seconds, 0.0);
  EXPECT_GT(r.eval_seconds, 0.0);
  EXPECT_GE(ticket.finished_at(), ticket.submitted_at());
}

TEST(EvalService, ConcurrentMultiClientSubmitsAgreeWithSerial) {
  const auto g = test_graph(13);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 2, search::CombinationMode::Product);

  // Serial reference.
  const search::Evaluator direct(
      g, fast_session().evaluator_options(qaoa::EngineKind::Statevector));
  std::vector<double> expected;
  for (const auto& m : cohort) expected.push_back(direct.evaluate(m, 1).energy);

  // Four client threads hammer one shared 4-worker service with the same
  // cohort concurrently.
  SessionConfig session = fast_session();
  session.workers = 4;
  search::EvalService service(session);
  constexpr std::size_t kClients = 4;
  std::vector<std::vector<double>> energies(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto tickets = service.submit_batch(g, cohort, 1);
      for (const auto& r : service.collect(tickets))
        energies[c].push_back(r.energy);
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) EXPECT_EQ(energies[c], expected);

  // Dedup across clients: every candidate ran at most once service-wide.
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * cohort.size());
  EXPECT_EQ(stats.completed, cohort.size());
  EXPECT_EQ(stats.cache_misses, cohort.size());
  EXPECT_EQ(stats.cache_hits, (kClients - 1) * cohort.size());
}

TEST(EvalService, DuplicateSubmissionHitsResultCache) {
  const auto g = test_graph(17);
  search::EvalService service(fast_session());

  auto first = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto r1 = first.wait();
  auto second = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto r2 = second.wait();

  EXPECT_FALSE(first.cache_hit());
  EXPECT_TRUE(second.cache_hit());
  EXPECT_FALSE(r1.from_cache);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r1.energy, r2.energy);
  EXPECT_EQ(r1.theta, r2.theta);

  // A different budget is a different candidate as far as the cache goes.
  search::JobOptions deeper;
  deeper.training_evals = 60;
  auto third = service.submit(g, qaoa::MixerSpec::qnas(), 1, deeper);
  (void)third.wait();
  EXPECT_FALSE(third.cache_hit());

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(EvalService, ResultCacheCanBeDisabled) {
  const auto g = test_graph(17);
  SessionConfig session = fast_session();
  session.result_cache = 0;
  search::EvalService service(session);

  (void)service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  auto second = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  (void)second.wait();
  EXPECT_FALSE(second.cache_hit());
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(EvalService, CancellationMidQueue) {
  const auto g = test_graph(19, 8, 3);
  SessionConfig session = fast_session();
  session.workers = 1;           // one worker → everything else queues
  session.training_evals = 200;  // keep the blocker busy
  search::EvalService service(session);

  // The blocker occupies the single worker; the rest sit in the queue.
  auto blocker = service.submit(g, qaoa::MixerSpec::baseline(), 1);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  auto queued = service.submit_batch(g, cohort, 2);

  std::size_t cancelled = 0;
  for (auto& t : queued)
    if (t.cancel()) ++cancelled;
  EXPECT_GT(cancelled, 0u);

  for (auto& t : queued) {
    if (t.cancelled()) {
      EXPECT_TRUE(t.ready());
      EXPECT_THROW((void)t.wait(), Error);
    } else {
      (void)t.wait();  // raced into Running before the cancel — completes
    }
  }

  // The blocker itself is not cancellable once done.
  (void)blocker.wait();
  EXPECT_FALSE(blocker.cancel());

  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.completed + stats.cancelled, 1u + cohort.size());
}

TEST(EvalService, SearchBestIsDeterministicAcrossWorkerCounts) {
  const auto g = test_graph(23);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session = fast_session();

  cfg.session.workers = 1;
  const auto serial = search::SearchEngine(cfg).run_exhaustive(g, 2);
  cfg.session.workers = 4;
  const auto parallel = search::SearchEngine(cfg).run_exhaustive(g, 2);

  EXPECT_EQ(serial.best.mixer, parallel.best.mixer);
  EXPECT_EQ(serial.best.energy, parallel.best.energy);
  ASSERT_EQ(serial.evaluated.size(), parallel.evaluated.size());
  for (std::size_t i = 0; i < serial.evaluated.size(); ++i)
    EXPECT_EQ(serial.evaluated[i].energy, parallel.evaluated[i].energy);
}

TEST(EvalService, SearchReportCountsCacheHitsAndServiceTime) {
  const auto g = test_graph(29);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session = fast_session();
  // 40 random proposals over the 5 length-1 mixers guarantee duplicates.
  search::RandomPredictor pred(cfg.alphabet, 1, 40, /*seed=*/5);
  const auto report = search::SearchEngine(cfg).run(g, pred);

  EXPECT_EQ(report.num_candidates, 40u);
  EXPECT_EQ(report.cache_hits + report.cache_misses, 40u);
  EXPECT_LE(report.cache_misses, 5u);
  EXPECT_GT(report.cache_hits, 0u);
  EXPECT_GT(report.seconds, 0.0);
  for (const auto& c : report.evaluated) {
    EXPECT_GE(c.queue_seconds, 0.0);
    EXPECT_GE(c.eval_seconds, 0.0);
  }
}

TEST(EvalService, AutoPicksStatevectorOnSmallInstances) {
  const auto g = test_graph(31);  // 6 qubits << auto_statevector_qubits
  SessionConfig session = fast_session();
  EXPECT_EQ(search::auto_engine_choice(session, g, qaoa::MixerSpec::qnas(), 1),
            qaoa::EngineKind::Statevector);

  session.backend = BackendChoice::Auto;
  search::EvalService auto_service(session);
  const auto r_auto =
      auto_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(auto_service.stats().picked_statevector, 1u);
  EXPECT_EQ(auto_service.stats().picked_tensornetwork, 0u);

  session.backend = BackendChoice::Statevector;
  search::EvalService sv_service(session);
  const auto r_sv = sv_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(r_auto.energy, r_sv.energy);
  EXPECT_EQ(r_auto.theta, r_sv.theta);
}

TEST(EvalService, AutoPicksTensorNetworkOnLargeSparseInstances) {
  // 16 qubits, 3-regular, p=1: past the statevector cutoff with a narrow
  // per-edge lightcone — exactly the regime the paper ran QTensor in.
  const auto g = test_graph(37, 16, 3);
  SessionConfig session = fast_session();
  session.training_evals = 15;
  EXPECT_EQ(search::auto_engine_choice(session, g, qaoa::MixerSpec::qnas(), 1),
            qaoa::EngineKind::TensorNetwork);

  session.backend = BackendChoice::Auto;
  search::EvalService auto_service(session);
  const auto r_auto =
      auto_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(auto_service.stats().picked_tensornetwork, 1u);

  session.backend = BackendChoice::TensorNetwork;
  search::EvalService tn_service(session);
  const auto r_tn = tn_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(r_auto.energy, r_tn.energy);
  EXPECT_EQ(r_auto.theta, r_tn.theta);

  // Dense lightcones push Auto back to the statevector engine.
  session.auto_lightcone_qubits = 2;
  EXPECT_EQ(search::auto_engine_choice(session, g, qaoa::MixerSpec::qnas(), 1),
            qaoa::EngineKind::Statevector);
}

TEST(EvalService, ForcedEnginesAgreeNumerically) {
  // The two engines compute the same <C>; trained energies track closely
  // (same deterministic optimizer on numerically identical objectives).
  const auto g = test_graph(41);
  SessionConfig session = fast_session();
  search::EvalService sv(session);
  session.backend = BackendChoice::TensorNetwork;
  search::EvalService tn(session);
  const auto r_sv = sv.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  const auto r_tn = tn.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_NEAR(r_sv.energy, r_tn.energy, 1e-6);
}

TEST(EvalService, SharedServiceCompilesEachCandidatePlanOnce) {
  const auto g = test_graph(43);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);

  SessionConfig session = fast_session();
  session.workers = 2;
  search::EvalService service(session);

  sim::reset_program_compile_count();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 2; ++c)
    clients.emplace_back([&] {
      (void)service.collect(service.submit_batch(g, cohort, 1));
    });
  for (auto& t : clients) t.join();
  const auto compiles_shared = sim::program_compile_count();

  // Reference: one client, fresh service → the per-candidate baseline.
  search::EvalService reference(session);
  sim::reset_program_compile_count();
  (void)reference.collect(reference.submit_batch(g, cohort, 1));
  EXPECT_EQ(compiles_shared, sim::program_compile_count())
      << "two clients sharing a service must not duplicate compilations";
}

TEST(EvalService, HalvingSharesTheServiceAndBudgetsPerRound) {
  const auto g = test_graph(47);
  auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);

  SessionConfig session = fast_session();
  search::EvalService service(session);
  search::HalvingConfig cfg;
  cfg.initial_budget = 10;
  cfg.session = session;  // only backend/width matter for the shared form
  const auto report = search::successive_halving(service, g, cohort, cfg);

  EXPECT_EQ(report.rounds.front().candidates_in, cohort.size());
  EXPECT_EQ(report.rounds.back().candidates_in, 1u);
  EXPECT_GT(report.best.energy, 0.0);
  EXPECT_GT(report.seconds, 0.0);
  // Rounds ran at distinct budgets through JobOptions, so nothing hit the
  // result cache... except the final round re-scoring a survivor at a
  // budget it already ran (growth can repeat a budget only if it stalls,
  // which it doesn't here).
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(SessionConfig, ReconciliationAbsorbsEffectiveEnergy) {
  SessionConfig s;
  s.backend = BackendChoice::Auto;
  s.inner_workers = 3;
  s.training_evals = 77;
  s.restarts = 2;
  s.shots = 64;
  s.sample_trials = 4;
  s.base.energy.sv_plan.block_qubits = 12;
  s.base.energy.plan_cache_capacity = 5;

  const auto opt = s.evaluator_options(qaoa::EngineKind::Statevector);
  EXPECT_EQ(opt.energy.engine, qaoa::EngineKind::Statevector);
  EXPECT_EQ(opt.energy.inner_workers, 3u);
  EXPECT_EQ(opt.cobyla.max_evals, 77u);
  EXPECT_EQ(opt.restarts, 2u);
  EXPECT_EQ(opt.shots, 64u);
  EXPECT_EQ(opt.sample_trials, 4u);
  // Deep toggles pass through from base untouched.
  EXPECT_EQ(opt.energy.sv_plan.block_qubits, 12u);
  EXPECT_EQ(opt.energy.plan_cache_capacity, 5u);

  // Per-job budget override (the halving path).
  EXPECT_EQ(s.evaluator_options(qaoa::EngineKind::Statevector, 9)
                .cobyla.max_evals,
            9u);

  // energy_options() absorbs the effective_energy() contract: evaluator-side
  // pre-simplification turns the plan-level presimplify off.
  EXPECT_TRUE(s.simplify_circuit);
  EXPECT_FALSE(s.energy_options(qaoa::EngineKind::Statevector)
                   .sv_plan.presimplify);

  EXPECT_EQ(backend_from_name("auto"), BackendChoice::Auto);
  EXPECT_EQ(backend_from_name("sv"), BackendChoice::Statevector);
  EXPECT_EQ(backend_from_name("tn"), BackendChoice::TensorNetwork);
  EXPECT_EQ(backend_name(BackendChoice::Auto), "auto");
  EXPECT_THROW(backend_from_name("qpu"), Error);
}

TEST(GraphFingerprint, DistinguishesStructureNotIdentity) {
  const auto g1 = test_graph(53);
  const auto g2 = test_graph(53);  // same seed → same structure
  const auto g3 = test_graph(59);
  EXPECT_EQ(search::graph_fingerprint(g1), search::graph_fingerprint(g2));
  EXPECT_NE(search::graph_fingerprint(g1), search::graph_fingerprint(g3));

  graph::Graph w1(3), w2(3);
  w1.add_edge(0, 1, 1.0);
  w1.add_edge(1, 2, 2.0);
  w2.add_edge(0, 1, 1.0);
  w2.add_edge(1, 2, 2.5);  // weight differs
  EXPECT_NE(search::graph_fingerprint(w1), search::graph_fingerprint(w2));
}

}  // namespace
