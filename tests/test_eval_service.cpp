// EvalService tests: the submit/ticket surface, concurrent multi-client
// usage, cancellation mid-queue, the candidate-result cache, determinism of
// SearchReport.best across worker counts, backend=Auto agreement with the
// forced engines, and the SessionConfig reconciliation.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "qtensor/planner.hpp"
#include "search/combinations.hpp"
#include "search/engine.hpp"
#include "search/eval_service.hpp"
#include "search/fault.hpp"
#include "search/halving.hpp"
#include "search/report_io.hpp"
#include "session.hpp"
#include "sim/sim_program.hpp"

namespace {

using namespace qarch;

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 30;
  s.shots = 32;
  s.sample_trials = 2;
  return s;
}

graph::Graph test_graph(std::uint64_t seed, std::size_t n = 6,
                        std::size_t degree = 3) {
  Rng rng(seed);
  return graph::random_regular(n, degree, rng);
}

TEST(EvalService, SubmitMatchesDirectEvaluator) {
  const auto g = test_graph(11);
  const SessionConfig session = fast_session();

  search::EvalService service(session);
  auto ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto& r = ticket.wait();

  // The service wires the SAME EvaluatorOptions a direct client would build
  // through the session facade, so results are bit-identical.
  const search::Evaluator direct(
      g, session.evaluator_options(qaoa::EngineKind::Statevector));
  const auto expected = direct.evaluate(qaoa::MixerSpec::qnas(), 1);
  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(r.theta, expected.theta);

  EXPECT_TRUE(ticket.ready());
  EXPECT_FALSE(ticket.cache_hit());
  EXPECT_GE(r.queue_seconds, 0.0);
  EXPECT_GT(r.eval_seconds, 0.0);
  EXPECT_GE(ticket.finished_at(), ticket.submitted_at());
}

TEST(EvalService, ConcurrentMultiClientSubmitsAgreeWithSerial) {
  const auto g = test_graph(13);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 2, search::CombinationMode::Product);

  // Serial reference.
  const search::Evaluator direct(
      g, fast_session().evaluator_options(qaoa::EngineKind::Statevector));
  std::vector<double> expected;
  for (const auto& m : cohort) expected.push_back(direct.evaluate(m, 1).energy);

  // Four client threads hammer one shared 4-worker service with the same
  // cohort concurrently.
  SessionConfig session = fast_session();
  session.workers = 4;
  search::EvalService service(session);
  constexpr std::size_t kClients = 4;
  std::vector<std::vector<double>> energies(kClients);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto tickets = service.submit_batch(g, cohort, 1);
      for (const auto& r : service.collect(tickets))
        energies[c].push_back(r.energy);
    });
  }
  for (auto& t : clients) t.join();

  for (std::size_t c = 0; c < kClients; ++c) EXPECT_EQ(energies[c], expected);

  // Dedup across clients: every candidate ran at most once service-wide.
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * cohort.size());
  EXPECT_EQ(stats.completed, cohort.size());
  EXPECT_EQ(stats.cache_misses, cohort.size());
  EXPECT_EQ(stats.cache_hits, (kClients - 1) * cohort.size());
}

TEST(EvalService, DuplicateSubmissionHitsResultCache) {
  const auto g = test_graph(17);
  search::EvalService service(fast_session());

  auto first = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto r1 = first.wait();
  auto second = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto r2 = second.wait();

  EXPECT_FALSE(first.cache_hit());
  EXPECT_TRUE(second.cache_hit());
  EXPECT_FALSE(r1.from_cache);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r1.energy, r2.energy);
  EXPECT_EQ(r1.theta, r2.theta);

  // A different budget is a different candidate as far as the cache goes.
  search::JobOptions deeper;
  deeper.training_evals = 60;
  auto third = service.submit(g, qaoa::MixerSpec::qnas(), 1, deeper);
  (void)third.wait();
  EXPECT_FALSE(third.cache_hit());

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 2u);
}

TEST(EvalService, ResultCacheCanBeDisabled) {
  const auto g = test_graph(17);
  SessionConfig session = fast_session();
  session.result_cache = 0;
  search::EvalService service(session);

  (void)service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  auto second = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  (void)second.wait();
  EXPECT_FALSE(second.cache_hit());
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST(EvalService, CancellationMidQueue) {
  const auto g = test_graph(19, 8, 3);
  SessionConfig session = fast_session();
  session.workers = 1;           // one worker → everything else queues
  session.training_evals = 200;  // keep the blocker busy
  search::EvalService service(session);

  // The blocker occupies the single worker; the rest sit in the queue.
  auto blocker = service.submit(g, qaoa::MixerSpec::baseline(), 1);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  auto queued = service.submit_batch(g, cohort, 2);

  std::size_t cancelled = 0;
  for (auto& t : queued)
    if (t.cancel()) ++cancelled;
  EXPECT_GT(cancelled, 0u);

  for (auto& t : queued) {
    if (t.cancelled()) {
      EXPECT_TRUE(t.ready());
      EXPECT_THROW((void)t.wait(), Error);
    } else {
      (void)t.wait();  // raced into Running before the cancel — completes
    }
  }

  // The blocker itself is not cancellable once done.
  (void)blocker.wait();
  EXPECT_FALSE(blocker.cancel());

  const auto stats = service.stats();
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.completed + stats.cancelled, 1u + cohort.size());
}

TEST(EvalService, SearchBestIsDeterministicAcrossWorkerCounts) {
  const auto g = test_graph(23);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session = fast_session();

  cfg.session.workers = 1;
  const auto serial = search::SearchEngine(cfg).run_exhaustive(g, 2);
  cfg.session.workers = 4;
  const auto parallel = search::SearchEngine(cfg).run_exhaustive(g, 2);

  EXPECT_EQ(serial.best.mixer, parallel.best.mixer);
  EXPECT_EQ(serial.best.energy, parallel.best.energy);
  ASSERT_EQ(serial.evaluated.size(), parallel.evaluated.size());
  for (std::size_t i = 0; i < serial.evaluated.size(); ++i)
    EXPECT_EQ(serial.evaluated[i].energy, parallel.evaluated[i].energy);
}

TEST(EvalService, SearchReportCountsCacheHitsAndServiceTime) {
  const auto g = test_graph(29);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session = fast_session();
  // 40 random proposals over the 5 length-1 mixers guarantee duplicates.
  search::RandomPredictor pred(cfg.alphabet, 1, 40, /*seed=*/5);
  const auto report = search::SearchEngine(cfg).run(g, pred);

  EXPECT_EQ(report.num_candidates, 40u);
  EXPECT_EQ(report.cache_hits + report.cache_misses, 40u);
  EXPECT_LE(report.cache_misses, 5u);
  EXPECT_GT(report.cache_hits, 0u);
  EXPECT_GT(report.seconds, 0.0);
  for (const auto& c : report.evaluated) {
    EXPECT_GE(c.queue_seconds, 0.0);
    EXPECT_GE(c.eval_seconds, 0.0);
  }
}

TEST(EvalService, AutoPicksStatevectorOnSmallInstances) {
  const auto g = test_graph(31);  // 6 qubits << auto_statevector_qubits
  SessionConfig session = fast_session();
  EXPECT_EQ(search::auto_engine_choice(session, g, qaoa::MixerSpec::qnas(), 1),
            qaoa::EngineKind::Statevector);

  session.backend = BackendChoice::Auto;
  search::EvalService auto_service(session);
  const auto r_auto =
      auto_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(auto_service.stats().picked_statevector, 1u);
  EXPECT_EQ(auto_service.stats().picked_tensornetwork, 0u);

  session.backend = BackendChoice::Statevector;
  search::EvalService sv_service(session);
  const auto r_sv = sv_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(r_auto.energy, r_sv.energy);
  EXPECT_EQ(r_auto.theta, r_sv.theta);
}

TEST(EvalService, AutoPicksTensorNetworkOnLargeSparseInstances) {
  // 16 qubits, 3-regular, p=1: past the statevector cutoff with a narrow
  // per-edge lightcone — exactly the regime the paper ran QTensor in.
  const auto g = test_graph(37, 16, 3);
  SessionConfig session = fast_session();
  session.training_evals = 15;
  EXPECT_EQ(search::auto_engine_choice(session, g, qaoa::MixerSpec::qnas(), 1),
            qaoa::EngineKind::TensorNetwork);

  session.backend = BackendChoice::Auto;
  search::EvalService auto_service(session);
  const auto r_auto =
      auto_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(auto_service.stats().picked_tensornetwork, 1u);

  session.backend = BackendChoice::TensorNetwork;
  search::EvalService tn_service(session);
  const auto r_tn = tn_service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_EQ(r_auto.energy, r_tn.energy);
  EXPECT_EQ(r_auto.theta, r_tn.theta);

  // Dense lightcones push Auto back to the statevector engine.
  session.auto_lightcone_qubits = 2;
  EXPECT_EQ(search::auto_engine_choice(session, g, qaoa::MixerSpec::qnas(), 1),
            qaoa::EngineKind::Statevector);
}

TEST(EvalService, ForcedEnginesAgreeNumerically) {
  // The two engines compute the same <C>; trained energies track closely
  // (same deterministic optimizer on numerically identical objectives).
  const auto g = test_graph(41);
  SessionConfig session = fast_session();
  search::EvalService sv(session);
  session.backend = BackendChoice::TensorNetwork;
  search::EvalService tn(session);
  const auto r_sv = sv.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  const auto r_tn = tn.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  EXPECT_NEAR(r_sv.energy, r_tn.energy, 1e-6);
}

TEST(EvalService, SharedServiceCompilesEachCandidatePlanOnce) {
  const auto g = test_graph(43);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);

  SessionConfig session = fast_session();
  session.workers = 2;
  search::EvalService service(session);

  sim::reset_program_compile_count();
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 2; ++c)
    clients.emplace_back([&] {
      (void)service.collect(service.submit_batch(g, cohort, 1));
    });
  for (auto& t : clients) t.join();
  const auto compiles_shared = sim::program_compile_count();

  // Reference: one client, fresh service → the per-candidate baseline.
  search::EvalService reference(session);
  sim::reset_program_compile_count();
  (void)reference.collect(reference.submit_batch(g, cohort, 1));
  EXPECT_EQ(compiles_shared, sim::program_compile_count())
      << "two clients sharing a service must not duplicate compilations";
}

TEST(EvalService, HalvingSharesTheServiceAndBudgetsPerRound) {
  const auto g = test_graph(47);
  auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);

  SessionConfig session = fast_session();
  search::EvalService service(session);
  search::HalvingConfig cfg;
  cfg.initial_budget = 10;
  cfg.session = session;  // only backend/width matter for the shared form
  const auto report = search::successive_halving(service, g, cohort, cfg);

  EXPECT_EQ(report.rounds.front().candidates_in, cohort.size());
  EXPECT_EQ(report.rounds.back().candidates_in, 1u);
  EXPECT_GT(report.best.energy, 0.0);
  EXPECT_GT(report.seconds, 0.0);
  // Rounds ran at distinct budgets through JobOptions, so nothing hit the
  // result cache... except the final round re-scoring a survivor at a
  // budget it already ran (growth can repeat a budget only if it stalls,
  // which it doesn't here).
  EXPECT_EQ(service.stats().cache_hits, 0u);
}

TEST(SessionConfig, ReconciliationAbsorbsEffectiveEnergy) {
  SessionConfig s;
  s.backend = BackendChoice::Auto;
  s.inner_workers = 3;
  s.training_evals = 77;
  s.restarts = 2;
  s.shots = 64;
  s.sample_trials = 4;
  s.base.energy.sv_plan.block_qubits = 12;
  s.base.energy.plan_cache_capacity = 5;

  const auto opt = s.evaluator_options(qaoa::EngineKind::Statevector);
  EXPECT_EQ(opt.energy.engine, qaoa::EngineKind::Statevector);
  EXPECT_EQ(opt.energy.inner_workers, 3u);
  EXPECT_EQ(opt.cobyla.max_evals, 77u);
  EXPECT_EQ(opt.restarts, 2u);
  EXPECT_EQ(opt.shots, 64u);
  EXPECT_EQ(opt.sample_trials, 4u);
  // Deep toggles pass through from base untouched.
  EXPECT_EQ(opt.energy.sv_plan.block_qubits, 12u);
  EXPECT_EQ(opt.energy.plan_cache_capacity, 5u);

  // Per-job budget override (the halving path).
  EXPECT_EQ(s.evaluator_options(qaoa::EngineKind::Statevector, 9)
                .cobyla.max_evals,
            9u);

  // energy_options() absorbs the effective_energy() contract: evaluator-side
  // pre-simplification turns the plan-level presimplify off.
  EXPECT_TRUE(s.simplify_circuit);
  EXPECT_FALSE(s.energy_options(qaoa::EngineKind::Statevector)
                   .sv_plan.presimplify);

  EXPECT_EQ(backend_from_name("auto"), BackendChoice::Auto);
  EXPECT_EQ(backend_from_name("sv"), BackendChoice::Statevector);
  EXPECT_EQ(backend_from_name("tn"), BackendChoice::TensorNetwork);
  EXPECT_EQ(backend_name(BackendChoice::Auto), "auto");
  EXPECT_THROW(backend_from_name("qpu"), Error);
}

// ---------------------------------------------------------------------------
// Fair-share scheduling
// ---------------------------------------------------------------------------

TEST(EvalService, FairShareInterleavesConcurrentClients) {
  // One worker; a heavy blocker holds it while two registered clients queue
  // up, so the dispatch order below is decided purely by the scheduler.
  const auto blocker_graph = test_graph(61, 10, 3);
  const auto g = test_graph(62);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  session.workers = 1;
  search::EvalService service(session);

  search::JobOptions heavy;
  heavy.training_evals = 500;
  auto blocker =
      service.submit(blocker_graph, qaoa::MixerSpec::baseline(), 2, heavy);

  auto wide = service.register_client("wide", 1.0);
  auto interactive = service.register_client("interactive", 1.0);
  std::vector<search::EvalTicket> wide_tickets, inter_tickets;
  for (const auto& m : cohort) {  // 5 jobs for the wide client
    search::JobOptions job;
    job.training_evals = 60;
    job.client = wide.id();
    wide_tickets.push_back(service.submit(g, m, 1, job));
  }
  for (std::size_t i = 0; i < 3; ++i) {  // 3 near-equal-cost jobs after it
    search::JobOptions job;
    job.training_evals = 61;
    job.client = interactive.id();
    inter_tickets.push_back(service.submit(g, cohort[i], 1, job));
  }
  (void)blocker.wait();
  (void)service.collect(wide_tickets);
  (void)service.collect(inter_tickets);

  double inter_last = 0.0;
  for (const auto& t : inter_tickets)
    inter_last = std::max(inter_last, t.finished_at());
  std::size_t wide_before = 0;
  for (const auto& t : wide_tickets)
    if (t.finished_at() < inter_last) ++wide_before;
  // FIFO would finish all 5 wide jobs before the later-submitted interactive
  // cohort (wide_before == 5); deficit-weighted round robin alternates the
  // two equal-weight queues (exactly 3 in a race-free run).
  EXPECT_LE(wide_before, 4u);
  EXPECT_EQ(service.stats().clients_registered, 2u);
}

TEST(EvalService, FairShareHonorsClientWeights) {
  const auto blocker_graph = test_graph(63, 10, 3);
  const auto g = test_graph(64);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  session.workers = 1;
  search::EvalService service(session);

  search::JobOptions heavy;
  heavy.training_evals = 500;
  auto blocker =
      service.submit(blocker_graph, qaoa::MixerSpec::baseline(), 2, heavy);

  auto light = service.register_client("light", 1.0);
  auto favored = service.register_client("favored", 4.0);
  std::vector<search::EvalTicket> light_tickets, favored_tickets;
  for (const auto& m : cohort) {
    search::JobOptions job;
    job.training_evals = 60;
    job.client = light.id();
    light_tickets.push_back(service.submit(g, m, 1, job));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    search::JobOptions job;
    job.training_evals = 61;
    job.client = favored.id();
    favored_tickets.push_back(service.submit(g, cohort[i], 1, job));
  }
  (void)blocker.wait();
  (void)service.collect(light_tickets);
  (void)service.collect(favored_tickets);

  double favored_last = 0.0;
  for (const auto& t : favored_tickets)
    favored_last = std::max(favored_last, t.finished_at());
  std::size_t light_before = 0;
  for (const auto& t : light_tickets)
    if (t.finished_at() < favored_last) ++light_before;
  // Weight 4 lets the favored client drain its whole queue on one visit's
  // quantum (1 light job slips in race-free); equal weights would alternate
  // to ~4.
  EXPECT_LE(light_before, 2u);
}

TEST(EvalService, JobPriorityOrdersWithinOneClient) {
  const auto blocker_graph = test_graph(65, 10, 3);
  const auto g = test_graph(66);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  session.workers = 1;
  search::EvalService service(session);

  search::JobOptions heavy;
  heavy.training_evals = 500;
  auto blocker =
      service.submit(blocker_graph, qaoa::MixerSpec::baseline(), 2, heavy);

  auto client = service.register_client("prioritized", 1.0);
  std::vector<search::EvalTicket> tickets;
  for (std::size_t i = 0; i < 3; ++i) {
    search::JobOptions job;
    job.training_evals = 40;
    job.client = client.id();
    job.priority = i == 2 ? 7 : 0;  // the LAST submission outranks the rest
    tickets.push_back(service.submit(g, cohort[i], 1, job));
  }
  (void)blocker.wait();
  (void)service.collect(tickets);
  EXPECT_LT(tickets[2].finished_at(), tickets[0].finished_at());
  EXPECT_LT(tickets[2].finished_at(), tickets[1].finished_at());
}

TEST(EvalService, RegisterClientRejectsBadWeights) {
  search::EvalService service(fast_session());
  EXPECT_THROW((void)service.register_client("bad", 0.0), Error);
  EXPECT_THROW((void)service.register_client("bad", -1.0), Error);
  // A vanishing weight would make the scheduler spin ~1/weight rotations
  // inside the service mutex per dispatch, so it is rejected outright.
  EXPECT_THROW((void)service.register_client("bad", 1e-9), Error);
  EXPECT_THROW((void)service.register_client("bad", 1e9), Error);
}

TEST(EvalService, CrossServiceClientIdFallsBackToDefaultQueue) {
  // Client ids are process-wide unique, so an id minted by one service can
  // never be mistaken for another service's registered client — it takes
  // the documented default-queue fallback instead.
  search::EvalService a(fast_session());
  search::EvalService b(fast_session());
  const auto ca = a.register_client("a");
  const auto cb = b.register_client("b");
  EXPECT_NE(ca.id(), cb.id());

  const auto g = test_graph(103);
  search::JobOptions job;
  job.client = ca.id();  // foreign id on service b
  EXPECT_NO_THROW((void)b.submit(g, qaoa::MixerSpec::qnas(), 1, job).wait());
}

// ---------------------------------------------------------------------------
// Cancellation semantics
// ---------------------------------------------------------------------------

TEST(EvalService, CollectSkipsCancelledTickets) {
  const auto blocker_graph = test_graph(67, 10, 3);
  const auto g = test_graph(68);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  session.workers = 1;
  search::EvalService service(session);

  search::JobOptions heavy;
  heavy.training_evals = 400;
  auto blocker =
      service.submit(blocker_graph, qaoa::MixerSpec::baseline(), 2, heavy);
  auto tickets = service.submit_batch(g, cohort, 1);
  ASSERT_TRUE(tickets[1].cancel());  // queued behind the blocker: must succeed
  ASSERT_TRUE(tickets[3].cancel());

  // One cancelled ticket must not discard the rest of the batch.
  const auto results = service.collect(tickets);
  ASSERT_EQ(results.size(), cohort.size() - 2);
  std::vector<std::string> got, expected;
  for (const auto& r : results) got.push_back(r.mixer.to_string());
  for (std::size_t i = 0; i < cohort.size(); ++i)
    if (i != 1 && i != 3) expected.push_back(cohort[i].to_string());
  EXPECT_EQ(got, expected);  // surviving results keep ticket order
  (void)blocker.wait();
}

TEST(EvalService, ConcurrentCancelOfOneTicketReleasesOneWaiterOnly) {
  // Two copies of ONE handle cancelled from two threads while a third ticket
  // (a separate submission of the same candidate) still wants the result: a
  // double waiter decrement would withdraw the shared job and lose it.
  const auto blocker_graph = test_graph(69, 10, 3);
  const auto g = test_graph(70);
  SessionConfig session = fast_session();
  session.workers = 1;
  for (int iter = 0; iter < 20; ++iter) {
    search::EvalService service(session);
    search::JobOptions heavy;
    heavy.training_evals = 300;
    auto blocker =
        service.submit(blocker_graph, qaoa::MixerSpec::baseline(), 2, heavy);
    auto doomed = service.submit(g, qaoa::MixerSpec::qnas(), 1);
    auto survivor = service.submit(g, qaoa::MixerSpec::qnas(), 1);
    ASSERT_TRUE(survivor.cache_hit());  // attached to the same in-flight job

    search::EvalTicket doomed_copy = doomed;
    std::thread racer([&doomed_copy] { (void)doomed_copy.cancel(); });
    (void)doomed.cancel();
    racer.join();

    EXPECT_TRUE(doomed.cancelled());
    EXPECT_THROW((void)doomed.wait(), Error);
    // The survivor's waiter must still be counted: the job runs and
    // resolves normally once the blocker frees the worker.
    EXPECT_NO_THROW((void)survivor.wait());
    (void)blocker.wait();
  }
}

TEST(EvalService, CancelResubmitStressKeepsAccountsConsistent) {
  // Hammer concurrent cancel() + duplicate submit() of ONE candidate key.
  // result_cache = 0 keeps every post-completion submission publishing a
  // fresh job, so the cancellation window stays open the whole test.
  const auto g = test_graph(71);
  SessionConfig session = fast_session();
  session.workers = 2;
  session.result_cache = 0;
  session.training_evals = 6;
  search::EvalService service(session);

  const search::Evaluator reference(
      g, session.evaluator_options(qaoa::EngineKind::Statevector, 6));
  const double expected_energy =
      reference.evaluate(qaoa::MixerSpec::qnas(), 1).energy;

  constexpr std::size_t kThreads = 6;
  constexpr std::size_t kIters = 40;
  std::atomic<std::size_t> resolved{0}, withdrawn{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        auto ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1);
        if ((t + i) % 3 == 0) {
          search::EvalTicket copy = ticket;
          std::thread racer([&copy] { (void)copy.cancel(); });
          const bool mine = ticket.cancel();
          racer.join();
          if (ticket.cancelled()) {
            EXPECT_TRUE(mine);
            EXPECT_THROW((void)ticket.wait(), Error);
            ++withdrawn;
            continue;
          }
        }
        // No result may be lost: an un-cancelled ticket always resolves,
        // and always to the deterministic energy.
        EXPECT_EQ(ticket.wait().energy, expected_energy);
        ++resolved;
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto stats = service.stats();
  EXPECT_EQ(resolved + withdrawn, kThreads * kIters);
  EXPECT_EQ(stats.submitted, kThreads * kIters);
  // Every submission was accounted exactly once...
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.submitted);
  // ...and every published job either ran exactly once or was withdrawn
  // exactly once — the no-lost-result / no-double-run invariant.
  EXPECT_EQ(stats.completed + stats.cancelled, stats.cache_misses);
  EXPECT_EQ(stats.failed, 0u);

  // The service stays fully functional after the storm.
  auto after = service.submit(g, qaoa::MixerSpec::baseline(), 1);
  EXPECT_NO_THROW((void)after.wait());
}

// ---------------------------------------------------------------------------
// Persistent result cache
// ---------------------------------------------------------------------------

namespace persist {
std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}
}  // namespace persist

TEST(ReportIo, ResultCacheRoundTripsEntries) {
  search::CacheEntry e;
  e.graph_fp = std::string("\x00\xff\x1e\x7f raw", 8);  // arbitrary bytes
  e.training_evals = 42;
  e.engine = "sv";
  e.result.mixer = qaoa::MixerSpec::qnas();
  e.result.p = 2;
  e.result.energy = 3.25;
  e.result.ratio = 0.8125;
  e.result.sampled_ratio = 0.9375;
  e.result.theta = {0.1234567891234567, -2.5};
  e.result.evaluations = 37;

  const auto doc = search::result_cache_to_json({e}, "vX");
  const auto parsed = json::parse(doc.dump(2));
  const auto loaded = search::result_cache_from_json(parsed, "vX");
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].graph_fp, e.graph_fp);
  EXPECT_EQ(loaded[0].training_evals, 42u);
  EXPECT_EQ(loaded[0].engine, "sv");
  EXPECT_EQ(loaded[0].result.mixer, e.result.mixer);
  EXPECT_EQ(loaded[0].result.p, 2u);
  EXPECT_EQ(loaded[0].result.energy, e.result.energy);
  EXPECT_EQ(loaded[0].result.theta, e.result.theta);

  // A different cache code version invalidates the whole file.
  EXPECT_TRUE(search::result_cache_from_json(parsed, "vY").empty());
}

TEST(EvalService, PersistentCacheWarmStartsAcrossServices) {
  const std::string path = persist::temp_path("qarch_warm_start.json");
  std::remove(path.c_str());
  const auto g = test_graph(73);
  SessionConfig session = fast_session();
  session.cache_path = path;

  search::CandidateResult first;
  {
    search::EvalService cold(session);
    EXPECT_EQ(cold.stats().cache_loaded, 0u);
    first = cold.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }  // destructor persists the cache

  {
    search::EvalService warm(session);
    EXPECT_EQ(warm.stats().cache_loaded, 1u);
    auto ticket = warm.submit(g, qaoa::MixerSpec::qnas(), 1);
    const auto& r = ticket.wait();
    EXPECT_TRUE(ticket.cache_hit());
    EXPECT_TRUE(r.from_cache);
    EXPECT_EQ(r.energy, first.energy);
    EXPECT_EQ(r.theta, first.theta);  // %.17g JSON doubles round-trip exactly
    EXPECT_EQ(warm.stats().completed, 0u);  // nothing retrained

    // A different budget is still a cold candidate.
    search::JobOptions deeper;
    deeper.training_evals = 60;
    auto miss = warm.submit(g, qaoa::MixerSpec::qnas(), 1, deeper);
    (void)miss.wait();
    EXPECT_FALSE(miss.cache_hit());
  }

  // The second shutdown re-persisted the grown cache (2 entries now).
  search::EvalService third(session);
  EXPECT_EQ(third.stats().cache_loaded, 2u);
  std::remove(path.c_str());
}

TEST(EvalService, PersistentCacheIsGatedByResolvedEngine) {
  // Processes with different forced backends may share one cache file; a
  // tensor-network service must not warm-start from statevector-trained
  // entries (and vice versa). backend=Auto accepts either engine's results.
  const std::string path = persist::temp_path("qarch_engine_gate.json");
  std::remove(path.c_str());
  const auto g = test_graph(101);
  SessionConfig session = fast_session();  // backend = Statevector
  session.cache_path = path;
  {
    search::EvalService sv(session);
    (void)sv.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }

  SessionConfig tn_session = session;
  tn_session.backend = BackendChoice::TensorNetwork;
  {
    search::EvalService tn(tn_session);
    EXPECT_EQ(tn.stats().cache_loaded, 0u);  // sv entry filtered out
    auto ticket = tn.submit(g, qaoa::MixerSpec::qnas(), 1);
    (void)ticket.wait();
    EXPECT_FALSE(ticket.cache_hit());  // retrained on its own engine
    EXPECT_EQ(tn.stats().picked_tensornetwork, 1u);
  }  // cache_write on: rewrites the file WITHOUT erasing the sv entry

  {
    search::EvalService sv_again(session);
    EXPECT_EQ(sv_again.stats().cache_loaded, 1u);  // sv entry survived
    auto ticket = sv_again.submit(g, qaoa::MixerSpec::qnas(), 1);
    (void)ticket.wait();
    EXPECT_TRUE(ticket.cache_hit());
  }

  // Both engines' entries coexist in the file; an Auto service accepts
  // either, so the same-key twin dedups to one in-memory load.
  {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::size_t sv_entries = 0, tn_entries = 0;
    const auto doc = json::parse(buf.str());
    const auto& list = doc.at("entries");
    for (std::size_t i = 0; i < list.size(); ++i) {
      const std::string& engine = list.at(i).at("engine").as_string();
      sv_entries += engine == "sv" ? 1 : 0;
      tn_entries += engine == "tn" ? 1 : 0;
    }
    EXPECT_EQ(sv_entries, 1u);
    EXPECT_EQ(tn_entries, 1u);
  }
  SessionConfig auto_session = session;
  auto_session.backend = BackendChoice::Auto;
  auto_session.cache_write = false;
  search::EvalService any(auto_session);
  EXPECT_EQ(any.stats().cache_loaded, 1u);
  std::remove(path.c_str());
}

TEST(EvalService, SmallOrDisabledCacheDoesNotTruncateSharedFile) {
  // A service with a smaller in-memory bound — or caching disabled — must
  // not shrink a shared cache file it could not fully load.
  const std::string path = persist::temp_path("qarch_truncate_guard.json");
  std::remove(path.c_str());
  const auto g = test_graph(107);
  SessionConfig session = fast_session();
  session.cache_path = path;
  {
    search::EvalService writer(session);
    (void)writer.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
    (void)writer.submit(g, qaoa::MixerSpec::baseline(), 1).wait();
  }  // 2 entries on disk

  SessionConfig tiny = session;
  tiny.result_cache = 1;
  {
    search::EvalService bounded(tiny);
    EXPECT_EQ(bounded.stats().cache_loaded, 1u);  // LRU bound respected
    // A fresh third candidate evicts the loaded entry from the 1-slot LRU;
    // the eviction must not cost the file that entry either.
    search::JobOptions deeper;
    deeper.training_evals = 45;
    (void)bounded.submit(g, qaoa::MixerSpec::qnas(), 1, deeper).wait();
  }  // rewrite carries the unloaded AND the evicted entries through

  SessionConfig disabled = session;
  disabled.result_cache = 0;
  { search::EvalService off(disabled); }  // must not truncate the file

  search::EvalService reloaded(session);
  EXPECT_EQ(reloaded.stats().cache_loaded, 3u);  // nothing was lost
  std::remove(path.c_str());
}

TEST(EvalService, PersistentCacheToleratesCorruptFiles) {
  const std::string path = persist::temp_path("qarch_corrupt_cache.json");
  {
    std::ofstream out(path);
    out << "{ this is ] not json \x01\x02";
  }
  const auto g = test_graph(79);
  SessionConfig session = fast_session();
  session.cache_path = path;
  {
    search::EvalService service(session);  // must not throw
    EXPECT_EQ(service.stats().cache_loaded, 0u);
    (void)service.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }
  // The corrupt file was atomically replaced with a valid cache.
  search::EvalService reloaded(session);
  EXPECT_EQ(reloaded.stats().cache_loaded, 1u);
  std::remove(path.c_str());
}

TEST(EvalService, CacheWriteOffIsReadOnlyWarmStart) {
  const std::string path = persist::temp_path("qarch_readonly_cache.json");
  std::remove(path.c_str());
  const auto g = test_graph(83);
  SessionConfig session = fast_session();
  session.cache_path = path;
  {
    search::EvalService writer(session);
    (void)writer.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }
  std::string before;
  {
    std::ifstream in(path);
    before.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(before.empty());

  session.cache_write = false;
  {
    search::EvalService reader(session);
    EXPECT_EQ(reader.stats().cache_loaded, 1u);
    (void)reader.submit(g, qaoa::MixerSpec::baseline(), 1).wait();  // new entry
  }
  std::string after;
  {
    std::ifstream in(path);
    after.assign(std::istreambuf_iterator<char>(in), {});
  }
  EXPECT_EQ(before, after);  // file untouched by the read-only service
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Persistent contraction-plan cache (the tier below the result cache)
// ---------------------------------------------------------------------------

SessionConfig tn_plan_session(const std::string& plan_path) {
  SessionConfig s = fast_session();
  s.backend = BackendChoice::TensorNetwork;
  s.training_evals = 10;
  s.cache_path.clear();  // results NOT cached: every run retrains
  s.plan_cache_path = plan_path;
  return s;
}

TEST(EvalService, PlanCacheWarmStartSkipsThePlanner) {
  const std::string path = persist::temp_path("qarch_plan_warm.json");
  std::remove(path.c_str());
  const auto g = test_graph(113);
  const SessionConfig session = tn_plan_session(path);

  qtensor::reset_planner_invocation_count();
  search::CandidateResult first;
  {
    search::EvalService cold(session);
    EXPECT_EQ(cold.stats().plans_loaded, 0u);
    first = cold.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }  // destructor persists the planned orders
  EXPECT_GT(qtensor::planner_invocation_count(), 0u);

  qtensor::reset_planner_invocation_count();
  {
    search::EvalService warm(session);
    EXPECT_GT(warm.stats().plans_loaded, 0u);
    auto ticket = warm.submit(g, qaoa::MixerSpec::qnas(), 1);
    const auto& r = ticket.wait();
    // Unlike the result cache, the candidate IS retrained — plan reuse is
    // orthogonal to result reuse — but compiling its programs planned
    // nothing: every elimination order came from disk.
    EXPECT_FALSE(ticket.cache_hit());
    EXPECT_NEAR(r.energy, first.energy, 1e-8);
  }
  EXPECT_EQ(qtensor::planner_invocation_count(), 0u);
  std::remove(path.c_str());
}

TEST(EvalService, PlanCacheToleratesCorruptFiles) {
  const std::string path = persist::temp_path("qarch_plan_corrupt.json");
  {
    std::ofstream out(path);
    out << "]] not a plan cache {";
  }
  const auto g = test_graph(127);
  const SessionConfig session = tn_plan_session(path);
  {
    search::EvalService service(session);  // must not throw
    EXPECT_EQ(service.stats().plans_loaded, 0u);
    (void)service.submit(g, qaoa::MixerSpec::baseline(), 1).wait();
  }
  // The corrupt file was atomically replaced with a valid plan cache.
  search::EvalService reloaded(session);
  EXPECT_GT(reloaded.stats().plans_loaded, 0u);
  std::remove(path.c_str());
}

TEST(EvalService, PlanCacheWriteOffLeavesFileUntouched) {
  const std::string path = persist::temp_path("qarch_plan_readonly.json");
  std::remove(path.c_str());
  const auto g = test_graph(131);
  SessionConfig session = tn_plan_session(path);
  {
    search::EvalService writer(session);
    (void)writer.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }
  std::string before;
  {
    std::ifstream in(path);
    before.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(before.empty());

  session.cache_write = false;
  {
    search::EvalService reader(session);
    EXPECT_GT(reader.stats().plans_loaded, 0u);
    // A new candidate shape plans in memory but must not touch the file.
    (void)reader.submit(g, qaoa::MixerSpec::baseline(), 1).wait();
  }
  std::string after;
  {
    std::ifstream in(path);
    after.assign(std::istreambuf_iterator<char>(in), {});
  }
  EXPECT_EQ(before, after);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Halving accounting
// ---------------------------------------------------------------------------

TEST(Halving, WarmCacheRunSpendsNoNewEvaluations) {
  const auto g = test_graph(89);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  search::EvalService service(session);
  search::HalvingConfig cfg;
  cfg.initial_budget = 10;
  cfg.session = session;

  const auto cold = search::successive_halving(service, g, cohort, cfg);
  EXPECT_GT(cold.total_evaluations, 0u);

  // Same sweep against the warm service: every round is served from the
  // result cache, so zero NEW objective calls are billed.
  const auto warm = search::successive_halving(service, g, cohort, cfg);
  EXPECT_EQ(warm.total_evaluations, 0u);
  EXPECT_EQ(warm.best.energy, cold.best.energy);
  EXPECT_EQ(warm.best.mixer, cold.best.mixer);
}

TEST(Halving, StagnantBudgetRoundsDoNotDoubleCount) {
  // budget_growth == 1.0 re-scores survivors at an unchanged budget: those
  // rounds are cache hits and must not re-bill their original evaluations.
  const auto g = test_graph(97);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  search::HalvingConfig cfg;
  cfg.initial_budget = 10;
  cfg.budget_growth = 1.0;
  cfg.session = session;
  const auto report = search::successive_halving(g, cohort, cfg);
  ASSERT_GT(report.rounds.size(), 1u);  // the re-scoring rounds exist

  // Exact bill: one fresh run per unique candidate, nothing else.
  const search::Evaluator direct(
      g, session.evaluator_options(qaoa::EngineKind::Statevector, 10));
  std::size_t fresh = 0;
  for (const auto& m : cohort) fresh += direct.evaluate(m, 1).evaluations;
  EXPECT_EQ(report.total_evaluations, fresh);
}

// ---------------------------------------------------------------------------
// SessionConfig::base precedence
// ---------------------------------------------------------------------------

TEST(SessionConfig, BaseDeepTogglesSurviveReconciliation) {
  SessionConfig s;
  s.inner_workers = 2;
  s.training_evals = 77;
  s.simplify_circuit = false;
  // Deep engine toggles only reachable through the escape hatch:
  s.base.energy.sv_compile_plan = false;
  s.base.energy.sv_batch_expectations = false;
  s.base.energy.sv_plan.simd = false;
  s.base.energy.sv_plan.phase_tables = false;
  s.base.energy.sv_plan.fuse_single_qubit = false;
  s.base.energy.qtensor.compile_programs = false;
  s.base.energy.qtensor.slice_above_width = 20;
  s.base.energy.qtensor.random_restarts = 3;
  s.base.energy.plan_cache_capacity = 2;
  s.base.cobyla.rho_begin = 0.25;
  s.base.cobyla.rho_end = 1e-4;
  s.base.restart_perturbation = 2.5;
  s.base.restart_seed = 123;
  s.base.sample_seed = 321;

  const auto opt = s.evaluator_options(qaoa::EngineKind::TensorNetwork, 33);
  // Named knobs win where both exist...
  EXPECT_EQ(opt.energy.engine, qaoa::EngineKind::TensorNetwork);
  EXPECT_EQ(opt.energy.inner_workers, 2u);
  EXPECT_EQ(opt.cobyla.max_evals, 33u);
  EXPECT_FALSE(opt.simplify_circuit);
  // ...but every deep toggle must survive the merge untouched.
  EXPECT_FALSE(opt.energy.sv_compile_plan);
  EXPECT_FALSE(opt.energy.sv_batch_expectations);
  EXPECT_FALSE(opt.energy.sv_plan.simd);
  EXPECT_FALSE(opt.energy.sv_plan.phase_tables);
  EXPECT_FALSE(opt.energy.sv_plan.fuse_single_qubit);
  EXPECT_FALSE(opt.energy.qtensor.compile_programs);
  EXPECT_EQ(opt.energy.qtensor.slice_above_width, 20u);
  EXPECT_EQ(opt.energy.qtensor.random_restarts, 3u);
  EXPECT_EQ(opt.energy.plan_cache_capacity, 2u);
  EXPECT_EQ(opt.cobyla.rho_begin, 0.25);
  EXPECT_EQ(opt.cobyla.rho_end, 1e-4);
  EXPECT_EQ(opt.restart_perturbation, 2.5);
  EXPECT_EQ(opt.restart_seed, 123u);
  EXPECT_EQ(opt.sample_seed, 321u);

  // The same toggles survive through energy_options(); with the evaluator
  // NOT pre-simplifying, the plan-level presimplify keeps base's value.
  const auto en = s.energy_options(qaoa::EngineKind::Statevector);
  EXPECT_FALSE(en.sv_compile_plan);
  EXPECT_FALSE(en.sv_plan.simd);
  EXPECT_TRUE(en.sv_plan.presimplify);

  // Named-knob precedence over a conflicting base value is part of the
  // contract, not an accident: the facade's budget beats base.cobyla's.
  s.base.cobyla.max_evals = 999;
  EXPECT_EQ(s.evaluator_options(qaoa::EngineKind::Statevector).cobyla.max_evals,
            77u);
}

// A deliberate three-way race on ticket resolution. While one worker is
// pinned by a blocker, queued jobs are concurrently cancelled (twice each,
// from two threads, through duplicate tickets sharing ONE deduped job),
// expired (deadlines far shorter than the blocker), and completed — all
// while a collect() in a fourth thread is already waiting on those same
// tickets. However the races land, every scheduled job must resolve exactly
// once: completed + cancelled + deadline_expired + failed == cache_misses.
TEST(EvalService, RacedCancelExpiryCompletionResolvesEveryJobOnce) {
  // 150 ms of injected delay per evaluation job guarantees the blocker
  // outlives the 50 ms deadlines below no matter how quickly COBYLA
  // converges on this machine.
  struct FaultGuard {
    ~FaultGuard() { search::FaultInjector::instance().reset(); }
  } guard;
  search::FaultPlan slow;
  slow.delay_seconds = 0.15;
  slow.delay_rate = 1.0;
  search::FaultInjector::instance().configure(slow);

  const auto blocker_graph = test_graph(71, 10, 3);
  const auto g = test_graph(72);
  const auto cohort = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  SessionConfig session = fast_session();
  session.workers = 1;
  search::EvalService service(session);

  search::JobOptions heavy;
  heavy.training_evals = 500;
  auto blocker =
      service.submit(blocker_graph, qaoa::MixerSpec::baseline(), 2, heavy);

  // p distinguishes the three fates; mixers are distinct within each fate.
  // The cancel cohort is submitted TWICE: the duplicate dedups onto the same
  // in-flight job (a cache hit), so the two cancelling threads race on one
  // underlying job through different handles.
  std::vector<search::EvalTicket> cancel_a, cancel_b, doomed, winners;
  for (std::size_t i = 0; i < 3; ++i) {
    cancel_a.push_back(service.submit(g, cohort[i], 3));
    cancel_b.push_back(service.submit(g, cohort[i], 3));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    search::JobOptions job;
    job.deadline_seconds = 0.05;  // the blocker alone outlives this
    doomed.push_back(service.submit(g, cohort[i], 2, job));
  }
  for (std::size_t i = 0; i < 3; ++i)
    winners.push_back(service.submit(g, cohort[i], 1));

  // The collector is already blocked inside collect() when the cancellations
  // and expiries start landing — resolution must wake it, not strand it.
  std::thread collector([&] {
    (void)service.collect(winners);
    (void)service.collect(doomed);
    (void)service.collect(cancel_a);
  });
  std::thread canceller_a([&] {
    for (auto& t : cancel_a) (void)t.cancel();
  });
  std::thread canceller_b([&] {
    for (auto& t : cancel_b) (void)t.cancel();
  });
  canceller_a.join();
  canceller_b.join();
  (void)blocker.wait();
  collector.join();

  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 13u);  // blocker + 3x2 + 3 + 3
  EXPECT_EQ(stats.cache_hits, 3u);  // the duplicate cancel submissions
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.submitted);
  EXPECT_EQ(stats.cancelled, 3u);   // once per job, despite racing handles
  EXPECT_EQ(stats.deadline_expired, 3u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.completed + stats.cancelled + stats.deadline_expired +
                stats.failed,
            stats.cache_misses);
}

// ---------------------------------------------------------------------------
// Generalized objectives / Hamiltonians through the service, and the timed
// cache-refresh cross-pollination satellite.
// ---------------------------------------------------------------------------

TEST(EvalService, ObjectiveAndHamiltonianAreDistinctCacheKeys) {
  const auto g = test_graph(211);
  SessionConfig session = fast_session();
  search::EvalService service(session);

  // Default objective, CVaR objective, and a MIS Hamiltonian are three
  // distinct candidates for the same (graph, mixer, p, budget).
  auto base = service.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto r_base = base.wait();

  search::JobOptions cvar;
  cvar.objective = qaoa::ObjectiveSpec{};
  cvar.objective->kind = qaoa::ObjectiveKind::CVaR;
  cvar.objective->alpha = 0.5;
  auto cvar_ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1, cvar);
  const auto r_cvar = cvar_ticket.wait();
  EXPECT_FALSE(cvar_ticket.cache_hit());

  search::JobOptions mis;
  mis.hamiltonian = qaoa::HamiltonianSpec{};
  mis.hamiltonian->kind = qaoa::HamiltonianKind::MIS;
  auto mis_ticket = service.submit(g, qaoa::MixerSpec::qnas(), 1, mis);
  (void)mis_ticket.wait();
  EXPECT_FALSE(mis_ticket.cache_hit());

  // Resubmitting each spec hits its own cache entry.
  auto cvar_again = service.submit(g, qaoa::MixerSpec::qnas(), 1, cvar);
  const auto r_cvar2 = cvar_again.wait();
  EXPECT_TRUE(cvar_again.cache_hit());
  EXPECT_EQ(r_cvar.energy, r_cvar2.energy);
  EXPECT_EQ(r_cvar.theta, r_cvar2.theta);

  // An explicit default spec and an omitted spec are the SAME candidate
  // (the key stays byte-identical to the pre-objective format).
  search::JobOptions explicit_default;
  explicit_default.objective = qaoa::ObjectiveSpec{};
  explicit_default.hamiltonian = qaoa::HamiltonianSpec{};
  auto dup = service.submit(g, qaoa::MixerSpec::qnas(), 1, explicit_default);
  const auto r_dup = dup.wait();
  EXPECT_TRUE(dup.cache_hit());
  EXPECT_EQ(r_base.energy, r_dup.energy);

  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(EvalService, ObjectiveTaggedEntriesSurvivePersistence) {
  const std::string path = persist::temp_path("qarch_objective_cache.json");
  std::remove(path.c_str());
  const auto g = test_graph(223);
  SessionConfig session = fast_session();
  session.cache_path = path;

  search::JobOptions cvar;
  cvar.objective = qaoa::ObjectiveSpec{};
  cvar.objective->kind = qaoa::ObjectiveKind::CVaR;

  search::CandidateResult first;
  {
    search::EvalService cold(session);
    first = cold.submit(g, qaoa::MixerSpec::qnas(), 1, cvar).wait();
    // The default-objective candidate is a distinct entry.
    (void)cold.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }

  search::EvalService warm(session);
  EXPECT_EQ(warm.stats().cache_loaded, 2u);
  auto hit = warm.submit(g, qaoa::MixerSpec::qnas(), 1, cvar);
  const auto& r = hit.wait();
  EXPECT_TRUE(hit.cache_hit());
  EXPECT_EQ(r.energy, first.energy);
  EXPECT_EQ(r.theta, first.theta);
  EXPECT_EQ(warm.stats().completed, 0u);
  std::remove(path.c_str());
}

TEST(EvalService, TimedCacheRefreshCrossPollinates) {
  const std::string path = persist::temp_path("qarch_cache_refresh.json");
  std::remove(path.c_str());
  const auto g = test_graph(227);
  SessionConfig session = fast_session();
  session.cache_path = path;

  // The long-lived reader polls the shared file at most every 10 ms.
  SessionConfig reader_session = session;
  reader_session.cache_refresh_seconds = 0.01;
  search::EvalService reader(reader_session);
  EXPECT_EQ(reader.stats().cache_loaded, 0u);  // file did not exist yet

  // A second process trains the candidate and persists on shutdown.
  search::CandidateResult trained;
  {
    search::EvalService writer(session);
    trained = writer.submit(g, qaoa::MixerSpec::qnas(), 1).wait();
  }

  // Past the refresh interval, the reader's next submit re-reads the file
  // and serves the candidate from cache without training.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  auto ticket = reader.submit(g, qaoa::MixerSpec::qnas(), 1);
  const auto& r = ticket.wait();
  EXPECT_TRUE(ticket.cache_hit());
  EXPECT_EQ(r.energy, trained.energy);
  EXPECT_EQ(r.theta, trained.theta);
  const auto stats = reader.stats();
  EXPECT_GE(stats.cache_refreshes, 1u);
  EXPECT_EQ(stats.cache_loaded, 1u);
  EXPECT_EQ(stats.completed, 0u);

  // cache_refresh_seconds = 0 (the default) never re-reads.
  search::EvalService no_refresh(session);
  std::remove(path.c_str());
}

TEST(GraphFingerprint, DistinguishesStructureNotIdentity) {
  const auto g1 = test_graph(53);
  const auto g2 = test_graph(53);  // same seed → same structure
  const auto g3 = test_graph(59);
  EXPECT_EQ(search::graph_fingerprint(g1), search::graph_fingerprint(g2));
  EXPECT_NE(search::graph_fingerprint(g1), search::graph_fingerprint(g3));

  graph::Graph w1(3), w2(3);
  w1.add_edge(0, 1, 1.0);
  w1.add_edge(1, 2, 2.0);
  w2.add_edge(0, 1, 1.0);
  w2.add_edge(1, 2, 2.5);  // weight differs
  EXPECT_NE(search::graph_fingerprint(w1), search::graph_fingerprint(w2));
}

}  // namespace
