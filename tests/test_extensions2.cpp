// Tests for the second extension wave: graph families + edge-list IO,
// multi-start optimization, successive halving, the contraction planner,
// and the p=1 landscape scanner.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/extra_generators.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "optim/multistart.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/landscape.hpp"
#include "qtensor/planner.hpp"
#include "search/combinations.hpp"
#include "search/halving.hpp"

namespace {

using namespace qarch;

// ---------------------------------------------------------------------------
// Graph families
// ---------------------------------------------------------------------------

TEST(GraphFamilies, CycleAndPath) {
  const auto c5 = graph::cycle(5);
  EXPECT_EQ(c5.num_edges(), 5u);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(c5).value, 4.0);  // odd cycle: n-1
  const auto c6 = graph::cycle(6);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(c6).value, 6.0);  // even cycle: n
  const auto p4 = graph::path(4);
  EXPECT_EQ(p4.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(p4).value, 3.0);
  EXPECT_THROW(graph::cycle(2), Error);
}

TEST(GraphFamilies, CompleteAndBipartite) {
  const auto k5 = graph::complete(5);
  EXPECT_EQ(k5.num_edges(), 10u);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(k5).value, 6.0);  // 2*3
  const auto k23 = graph::complete_bipartite(2, 3);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(k23).value, 6.0);  // all edges
  const auto s6 = graph::star(6);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(s6).value, 5.0);
}

TEST(GraphFamilies, GridIsBipartite) {
  const auto g = graph::grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 17u);  // 3*3 + 2*4
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(g).value,
                   static_cast<double>(g.num_edges()));
}

TEST(GraphFamilies, BarabasiAlbertDegreesAndSize) {
  Rng rng(3);
  const auto g = graph::barabasi_albert(30, 2, rng);
  EXPECT_EQ(g.num_vertices(), 30u);
  // Seed clique K3 (3 edges) + 27 vertices x 2 edges.
  EXPECT_EQ(g.num_edges(), 3u + 27u * 2u);
  EXPECT_TRUE(g.is_connected());
  for (std::size_t v = 3; v < 30; ++v) EXPECT_GE(g.degree(v), 2u);
  EXPECT_THROW(graph::barabasi_albert(3, 3, rng), Error);
}

TEST(GraphFamilies, RandomWeightsPreserveTopology) {
  Rng rng(5);
  const auto base = graph::cycle(6);
  const auto weighted = graph::with_random_weights(base, 0.5, 2.0, rng);
  EXPECT_EQ(weighted.num_edges(), base.num_edges());
  for (const auto& e : weighted.edges()) {
    EXPECT_GE(e.weight, 0.5);
    EXPECT_LE(e.weight, 2.0);
    EXPECT_TRUE(base.has_edge(e.u, e.v));
  }
}

TEST(GraphIo, EdgeListRoundTrip) {
  Rng rng(7);
  const auto g =
      graph::with_random_weights(graph::random_regular(8, 3, rng), 0.1, 3.0,
                                 rng);
  const auto back = graph::from_edge_list(graph::to_edge_list(g));
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_EQ(back.edges()[i].u, g.edges()[i].u);
    EXPECT_EQ(back.edges()[i].v, g.edges()[i].v);
    EXPECT_DOUBLE_EQ(back.edges()[i].weight, g.edges()[i].weight);
  }
  EXPECT_THROW(graph::from_edge_list("3"), Error);
  EXPECT_THROW(graph::from_edge_list("3 2\n0 1 1.0"), Error);  // truncated
}

// ---------------------------------------------------------------------------
// Multi-start optimizer
// ---------------------------------------------------------------------------

double multimodal(std::span<const double> x) {
  // Global optimum -2 at x ≈ 3.7; a local trap at x ≈ 0 with value ≈ -1.
  const double a = x[0];
  return -std::exp(-a * a) - 2.0 * std::exp(-(a - 3.7) * (a - 3.7));
}

TEST(MultiStart, EscapesLocalTrap) {
  const optim::OptimizerFactory factory = [](std::size_t budget) {
    optim::CobylaConfig c;
    c.max_evals = budget;
    c.rho_begin = 0.5;
    return std::make_unique<optim::Cobyla>(c);
  };
  // Single run from the trap stays in it.
  const auto single = factory(60)->minimize(multimodal, {0.0});
  EXPECT_GT(single.value, -1.5);

  optim::MultiStartConfig cfg;
  cfg.restarts = 6;
  cfg.total_evals = 360;
  cfg.perturbation = 3.0;
  cfg.seed = 11;
  const optim::MultiStart ms(factory, cfg);
  const auto multi = ms.minimize(multimodal, {0.0});
  EXPECT_LT(multi.value, -1.9);  // found the global basin
  EXPECT_LE(multi.evaluations, cfg.total_evals + cfg.restarts);
}

TEST(MultiStart, HistoryIsMonotoneAcrossRestarts) {
  const optim::OptimizerFactory factory = [](std::size_t budget) {
    optim::CobylaConfig c;
    c.max_evals = budget;
    return std::make_unique<optim::Cobyla>(c);
  };
  optim::MultiStartConfig cfg;
  cfg.restarts = 3;
  cfg.total_evals = 90;
  const optim::MultiStart ms(factory, cfg);
  const auto r = ms.minimize(
      [](std::span<const double> x) { return x[0] * x[0]; }, {2.0});
  for (std::size_t i = 1; i < r.history.size(); ++i)
    EXPECT_LE(r.history[i], r.history[i - 1] + 1e-15);
}

TEST(MultiStart, ValidatesConfig) {
  const optim::OptimizerFactory factory = [](std::size_t budget) {
    optim::CobylaConfig c;
    c.max_evals = budget;
    return std::make_unique<optim::Cobyla>(c);
  };
  optim::MultiStartConfig bad;
  bad.restarts = 0;
  EXPECT_THROW(optim::MultiStart(factory, bad), Error);
  EXPECT_THROW(optim::MultiStart(nullptr, {}), Error);
}

// ---------------------------------------------------------------------------
// Successive halving
// ---------------------------------------------------------------------------

TEST(Halving, ConvergesToASingleSurvivor) {
  Rng rng(13);
  const auto g = graph::random_regular(8, 3, rng);
  auto candidates = search::all_combinations(
      search::GateAlphabet::standard(), 2, search::CombinationMode::Product);
  search::HalvingConfig cfg;
  cfg.initial_budget = 20;
  cfg.session.workers = 4;
  cfg.session.backend = BackendChoice::Statevector;
  const auto report = search::successive_halving(g, candidates, cfg);

  ASSERT_FALSE(report.rounds.empty());
  EXPECT_EQ(report.rounds.front().candidates_in, 30u);
  EXPECT_EQ(report.rounds.back().candidates_in, 1u);
  // Cohort shrinks strictly and budget grows per round.
  for (std::size_t r = 1; r < report.rounds.size(); ++r) {
    EXPECT_LT(report.rounds[r].candidates_in,
              report.rounds[r - 1].candidates_in);
    EXPECT_GE(report.rounds[r].budget, report.rounds[r - 1].budget);
  }
  EXPECT_GT(report.best.energy, 0.0);
  EXPECT_GT(report.total_evaluations, 0u);
}

TEST(Halving, WinnerIsCompetitiveWithFullSweep) {
  Rng rng(17);
  const auto g = graph::random_regular(8, 3, rng);
  auto candidates = search::all_combinations(
      search::GateAlphabet::standard(), 2, search::CombinationMode::Product);

  search::HalvingConfig cfg;
  cfg.initial_budget = 20;
  cfg.session.backend = BackendChoice::Statevector;
  const auto halved = search::successive_halving(g, candidates, cfg);

  // Full sweep at 100 evals per candidate (much more compute).
  search::EvaluatorOptions full;
  full.energy.engine = qaoa::EngineKind::Statevector;
  full.cobyla.max_evals = 100;
  const search::Evaluator evaluator(g, full);
  double best_full = 0.0;
  for (const auto& m : candidates)
    best_full = std::max(best_full, evaluator.evaluate(m, 1).energy);

  EXPECT_GE(halved.best.energy, 0.93 * best_full);
}

TEST(Halving, ValidatesConfig) {
  Rng rng(19);
  const auto g = graph::random_regular(6, 3, rng);
  search::HalvingConfig bad;
  bad.keep_fraction = 1.0;
  EXPECT_THROW(
      search::successive_halving(g, {qaoa::MixerSpec::baseline()}, bad),
      Error);
  EXPECT_THROW(search::successive_halving(g, {}, {}), Error);
}

// ---------------------------------------------------------------------------
// Contraction planner
// ---------------------------------------------------------------------------

TEST(Planner, CostModelMatchesMeasuredWidth) {
  Rng rng(23);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(c.num_params(), 0.3);
  const auto net = qtensor::expectation_zz_network(c, theta, g.edges()[0].u,
                                                   g.edges()[0].v);
  const auto order = qtensor::order_greedy_degree(net);
  const auto cost = qtensor::estimate_cost(net, order);
  EXPECT_EQ(cost.width, qtensor::contraction_width(net, order));
  EXPECT_GT(cost.flops, 0.0);
  EXPECT_NEAR(cost.peak_entries,
              std::pow(2.0, static_cast<double>(cost.width)), 1e-9);
}

TEST(Planner, PicksTheCheapestHeuristic) {
  Rng rng(29);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(c.num_params(), 0.3);
  const auto net = qtensor::expectation_zz_network(c, theta, g.edges()[0].u,
                                                   g.edges()[0].v);
  const auto plan = qtensor::plan_contraction(net);
  EXPECT_FALSE(plan.order.empty());
  // The winner must be at least as cheap as each individual heuristic.
  const auto degree_cost =
      qtensor::estimate_cost(net, qtensor::order_greedy_degree(net));
  const auto fill_cost =
      qtensor::estimate_cost(net, qtensor::order_greedy_fill(net));
  EXPECT_LE(plan.cost.flops, degree_cost.flops);
  EXPECT_LE(plan.cost.flops, fill_cost.flops);
  EXPECT_FALSE(plan.heuristic.empty());

  qtensor::PlannerOptions none;
  none.try_greedy_degree = false;
  none.try_greedy_fill = false;
  none.try_priority = false;
  none.random_restarts = 0;
  EXPECT_THROW(qtensor::plan_contraction(net, none), Error);
}

// ---------------------------------------------------------------------------
// Landscape scanner
// ---------------------------------------------------------------------------

TEST(Landscape, PeakMatchesAnalyticOptimumOnCycle) {
  // On the 4-cycle, <C> = 2 + 2 sin(4β) sin γ cos γ has max 4 at
  // sin(4β) sin(2γ) = 2·(1/2)... precisely max value = 2 + 2·(1)·(1/2)·... —
  // evaluate: max of sinγcosγ = 1/2 at γ=π/4, sin4β = 1 at β=π/8 → <C> = 3.
  graph::Graph g = graph::cycle(4);
  const qaoa::EnergyEvaluator ev(g, {});
  qaoa::LandscapeOptions opts;
  opts.gamma_points = 41;
  opts.beta_points = 41;
  opts.workers = 4;
  const auto land =
      qaoa::scan_landscape(g, qaoa::MixerSpec::baseline(), ev, opts);
  const auto peak = land.peak();
  EXPECT_NEAR(peak.value, 3.0, 0.05);
  EXPECT_EQ(land.values.size(), 41u * 41u);
}

TEST(Landscape, SerialAndParallelScansMatch) {
  Rng rng(31);
  const auto g = graph::random_regular(6, 3, rng);
  const qaoa::EnergyEvaluator ev(g, {});
  qaoa::LandscapeOptions serial;
  serial.gamma_points = 9;
  serial.beta_points = 9;
  qaoa::LandscapeOptions parallel = serial;
  parallel.workers = 4;
  const auto a = qaoa::scan_landscape(g, qaoa::MixerSpec::qnas(), ev, serial);
  const auto b = qaoa::scan_landscape(g, qaoa::MixerSpec::qnas(), ev, parallel);
  for (std::size_t i = 0; i < a.values.size(); ++i)
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
}

TEST(Landscape, AsciiRenderingHasOneRowPerGammaSample) {
  graph::Graph g = graph::cycle(4);
  const qaoa::EnergyEvaluator ev(g, {});
  qaoa::LandscapeOptions opts;
  opts.gamma_points = 8;
  opts.beta_points = 8;
  const auto land =
      qaoa::scan_landscape(g, qaoa::MixerSpec::baseline(), ev, opts);
  const std::string art = land.ascii();
  // Header line + 8 rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 9);
}

}  // namespace
