// Tests for the circuit IR: construction, parameters, inverse, drawing, QASM.
#include <gtest/gtest.h>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;
using circuit::ParamExpr;

TEST(ParamExpr, EvaluatesAllKinds) {
  const std::vector<double> theta{0.5, 2.0};
  EXPECT_DOUBLE_EQ(ParamExpr::none().value(theta), 0.0);
  EXPECT_DOUBLE_EQ(ParamExpr::constant_angle(1.25).value(theta), 1.25);
  EXPECT_DOUBLE_EQ(ParamExpr::symbol(1, 3.0).value(theta), 6.0);
  EXPECT_THROW(ParamExpr::symbol(5).value(theta), Error);
}

TEST(Circuit, AppendValidation) {
  Circuit c(2, 1);
  EXPECT_THROW(c.h(5), Error);                       // qubit range
  EXPECT_THROW(c.cx(0, 0), Error);                   // distinct qubits
  EXPECT_THROW(c.rx(0, ParamExpr::symbol(3)), Error);  // unregistered param
  EXPECT_THROW(c.append({GateKind::H, 0, 0, ParamExpr::constant_angle(1.0)}),
               Error);                               // fixed gate with angle
  c.rx(0, ParamExpr::symbol(0));
  EXPECT_EQ(c.num_gates(), 1u);
}

TEST(Circuit, AddParamGrowsSpace) {
  Circuit c(1);
  EXPECT_EQ(c.add_param(), 0u);
  EXPECT_EQ(c.add_param(), 1u);
  EXPECT_EQ(c.num_params(), 2u);
}

TEST(Circuit, ComposeShiftsParameters) {
  Circuit a(2);
  const std::size_t pa = a.add_param();
  a.rx(0, ParamExpr::symbol(pa));

  Circuit b(2);
  const std::size_t pb = b.add_param();
  b.ry(1, ParamExpr::symbol(pb, 2.0));

  a.compose(b);
  EXPECT_EQ(a.num_params(), 2u);
  EXPECT_EQ(a.num_gates(), 2u);
  EXPECT_EQ(a.gates()[1].param.index, 1u);  // shifted
  EXPECT_DOUBLE_EQ(a.gates()[1].param.scale, 2.0);

  Circuit wrong(3);
  EXPECT_THROW(a.compose(wrong), Error);
}

TEST(Circuit, DepthAccountsForParallelGates) {
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);        // all in one layer
  EXPECT_EQ(c.depth(), 1u);
  c.cx(0, 1);    // second layer
  c.h(2);        // still second layer (q2 free)
  EXPECT_EQ(c.depth(), 2u);
  c.cx(1, 2);    // third layer
  EXPECT_EQ(c.depth(), 3u);
}

TEST(Circuit, TwoQubitGateCount) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cz(1, 2);
  c.rzz(0, 2, ParamExpr::constant_angle(0.3));
  EXPECT_EQ(c.two_qubit_gate_count(), 3u);
}

TEST(CircuitInverse, UndoesTheCircuit) {
  // U U† must act as identity: running both on |+>^n returns |+>^n.
  Circuit c(3, 2);
  c.h(0);
  c.rx(1, ParamExpr::symbol(0, 2.0));
  c.cx(0, 1);
  c.rzz(1, 2, ParamExpr::symbol(1, -1.0));
  c.s(2);
  c.t(0);
  c.p(2, ParamExpr::constant_angle(0.77));

  Circuit round_trip = c;
  round_trip.compose(c.inverse());

  const std::vector<double> theta{0.6, 1.3, 0.6, 1.3};
  const sim::StatevectorSimulator sv;
  const sim::State out = sv.run_from_plus(round_trip, theta);
  const sim::State plus = sim::plus_state(3);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i].real(), plus[i].real(), 1e-10);
    EXPECT_NEAR(out[i].imag(), plus[i].imag(), 1e-10);
  }
}

TEST(CircuitInverse, MapsKindsCorrectly) {
  const Gate s{GateKind::S, 0, 0, ParamExpr::none()};
  EXPECT_EQ(s.inverse().kind, GateKind::Sdg);
  const Gate t{GateKind::T, 0, 0, ParamExpr::none()};
  EXPECT_EQ(t.inverse().kind, GateKind::Tdg);
  const Gate rx{GateKind::RX, 0, 0, ParamExpr::symbol(0, 2.0)};
  EXPECT_DOUBLE_EQ(rx.inverse().param.scale, -2.0);
  const Gate p{GateKind::P, 0, 0, ParamExpr::constant_angle(0.5)};
  EXPECT_DOUBLE_EQ(p.inverse().param.constant, -0.5);
  const Gate h{GateKind::H, 0, 0, ParamExpr::none()};
  EXPECT_EQ(h.inverse().kind, GateKind::H);
}

TEST(Drawer, RendersEveryQubitRowAndGateLabels) {
  Circuit c(3, 1);
  c.h(0);
  c.rx(1, ParamExpr::symbol(0, 2.0));
  c.cx(0, 2);
  const std::string art = circuit::draw(c);
  EXPECT_NE(art.find("q0"), std::string::npos);
  EXPECT_NE(art.find("q1"), std::string::npos);
  EXPECT_NE(art.find("q2"), std::string::npos);
  EXPECT_NE(art.find("[h]"), std::string::npos);
  EXPECT_NE(art.find("rx(2*t0)"), std::string::npos);
  EXPECT_NE(art.find("cx"), std::string::npos);
}

TEST(Qasm, EmitsBoundAngles) {
  Circuit c(2, 1);
  c.h(0);
  c.rx(1, ParamExpr::symbol(0, 2.0));
  c.cx(0, 1);
  const std::string qasm = circuit::to_qasm(c, std::vector<double>{0.25});
  EXPECT_NE(qasm.find("OPENQASM 2.0"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2]"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("rx(0.5) q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
}

TEST(GateToString, HumanReadable) {
  const Gate g{GateKind::RX, 3, 0, ParamExpr::symbol(1, 2.0)};
  EXPECT_EQ(g.to_string(), "rx(2*t1) q3");
  const Gate cz{GateKind::CZ, 0, 2, ParamExpr::none()};
  EXPECT_EQ(cz.to_string(), "cz q0,q2");
}

}  // namespace
