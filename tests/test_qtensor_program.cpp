// Compiled contraction plans (qtensor::ContractionProgram): randomized
// statevector-vs-qtensor energy equivalence across mixers, graph families,
// and depths — on the compiled path — plus the rebind-per-theta contract,
// the slicing decision, concurrent replays, and the network_build_count
// plan-reuse probe.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/extra_generators.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "qaoa/train.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/network.hpp"
#include "qtensor/program.hpp"
#include "search/evaluator.hpp"

namespace {

using namespace qarch;
using circuit::GateKind;
using linalg::cplx;
using qtensor::Tensor;
using qtensor::VarId;

/// Random circuit with SYMBOL-parameterized gates so the program's
/// rebind-per-theta path is exercised (constant-angle circuits would bake
/// every tensor and rebind nothing).
circuit::Circuit random_symbolic_circuit(std::size_t n, std::size_t gates,
                                         std::size_t params, Rng& rng) {
  circuit::Circuit c(n);
  for (std::size_t i = 0; i < params; ++i) c.add_param();
  const GateKind one_q[] = {GateKind::H,  GateKind::X,  GateKind::RX,
                            GateKind::RY, GateKind::RZ, GateKind::P,
                            GateKind::S,  GateKind::T};
  const GateKind two_q[] = {GateKind::CX, GateKind::CZ, GateKind::RZZ};
  auto param_for = [&](GateKind k) {
    if (!circuit::is_parameterized(k)) return circuit::ParamExpr::none();
    if (rng.bernoulli(0.7))
      return circuit::ParamExpr::symbol(rng.uniform_int(params),
                                        rng.uniform(-2.0, 2.0));
    return circuit::ParamExpr::constant_angle(rng.uniform(-3.0, 3.0));
  };
  for (std::size_t i = 0; i < gates; ++i) {
    if (n >= 2 && rng.bernoulli(0.35)) {
      const GateKind k = two_q[rng.uniform_int(3)];
      std::size_t a = rng.uniform_int(n), b = rng.uniform_int(n);
      while (b == a) b = rng.uniform_int(n);
      c.append({k, a, b, param_for(k)});
    } else {
      const GateKind k = one_q[rng.uniform_int(8)];
      c.append({k, rng.uniform_int(n), 0, param_for(k)});
    }
  }
  return c;
}

std::vector<double> random_theta(std::size_t params, Rng& rng) {
  std::vector<double> theta(params);
  for (double& t : theta) t = rng.uniform(-2.0, 2.0);
  return theta;
}

// ---------------------------------------------------------------------------
// Program vs the rebuild-per-call simulator, across thetas (rebind contract).
// ---------------------------------------------------------------------------

TEST(ContractionProgram, MatchesSimulatorAcrossThetas) {
  Rng rng(19);
  const qtensor::QTensorSimulator reference;
  const qtensor::SerialCpuBackend backend;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(3);
    const circuit::Circuit c = random_symbolic_circuit(n, 14, 3, rng);
    const std::size_t u = rng.uniform_int(n);
    std::size_t v = rng.uniform_int(n);
    while (v == u) v = rng.uniform_int(n);

    const qtensor::ContractionProgram program(c, u, v);
    // One compilation, many thetas: every replay must match a from-scratch
    // network build + contraction at the same parameters.
    for (int step = 0; step < 4; ++step) {
      const auto theta = random_theta(3, rng);
      const double compiled = program.expectation_zz(theta, backend);
      const double rebuilt = reference.expectation_zz(c, theta, u, v);
      EXPECT_NEAR(compiled, rebuilt, 1e-9)
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(ContractionProgram, RepeatedReplaySameThetaIsStable) {
  // Scratch buffers are reused across replays; stale state would show up as
  // a drifting value.
  Rng rng(23);
  const circuit::Circuit c = random_symbolic_circuit(4, 12, 2, rng);
  const qtensor::ContractionProgram program(c, 0, 2);
  const qtensor::SerialCpuBackend backend;
  const std::vector<double> theta{0.3, -1.1};
  const double first = program.expectation_zz(theta, backend);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(program.expectation_zz(theta, backend), first);
}

TEST(ContractionProgram, ConcurrentReplaysAgree) {
  Rng rng(29);
  const circuit::Circuit c = random_symbolic_circuit(5, 16, 2, rng);
  const qtensor::ContractionProgram program(c, 1, 3);
  const qtensor::SerialCpuBackend backend;
  const std::vector<double> theta{0.7, 0.2};
  const double expected = program.expectation_zz(theta, backend);
  std::vector<double> got(16, 0.0);
  parallel::parallel_for(
      0, got.size(),
      [&](std::size_t i) { got[i] = program.expectation_zz(theta, backend); },
      4);
  for (double g : got) EXPECT_EQ(g, expected);
}

TEST(ContractionProgram, SlicedScheduleMatchesUnsliced) {
  Rng rng(31);
  const qtensor::SerialCpuBackend backend;
  for (int trial = 0; trial < 4; ++trial) {
    const circuit::Circuit c = random_symbolic_circuit(5, 16, 2, rng);
    qtensor::ProgramOptions sliced;
    sliced.slice_above_width = 2;  // force the slicing decision
    sliced.max_slice_vars = 3;
    const qtensor::ContractionProgram with(c, 0, 3, sliced);
    const qtensor::ContractionProgram without(c, 0, 3);
    EXPECT_GE(with.stats().slice_vars, 1u);
    EXPECT_EQ(without.stats().slice_vars, 0u);
    for (int step = 0; step < 3; ++step) {
      const auto theta = random_theta(2, rng);
      EXPECT_NEAR(with.expectation_zz(theta, backend),
                  without.expectation_zz(theta, backend), 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(ContractionProgram, StatsReflectCompilation) {
  Rng rng(3);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const auto& e = g.edges()[0];
  const qtensor::ContractionProgram program(c, e.u, e.v);
  const auto& st = program.stats();
  EXPECT_GT(st.tensors, 0u);
  EXPECT_GT(st.bound_tensors, 0u);  // QAOA gates are symbol-parameterized
  EXPECT_GT(st.steps, 0u);
  EXPECT_GT(st.width, 0u);
  EXPECT_GT(st.est_flops, 0.0);
  EXPECT_FALSE(st.heuristic.empty());
}

// ---------------------------------------------------------------------------
// Backend product_into (the allocation-free kernel the replay uses).
// ---------------------------------------------------------------------------

TEST(Backend, ProductIntoMatchesProduct) {
  Rng rng(41);
  auto random_tensor = [&](std::vector<VarId> labels) {
    std::vector<cplx> data(std::size_t{1} << labels.size());
    for (auto& x : data) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return Tensor(std::move(labels), std::move(data));
  };
  const Tensor t1 = random_tensor({0, 1, 2});
  const Tensor t2 = random_tensor({2, 3});
  const std::vector<VarId> out_labels = {3, 0, 1, 2};
  const qtensor::SerialCpuBackend serial;
  const qtensor::ParallelCpuBackend par(4, /*parallel_threshold_rank=*/0);
  const Tensor expected = serial.product({&t1, &t2}, out_labels);
  // The fused kernel must equal "materialize the product, then fold the
  // first (eliminated) variable" exactly.
  const Tensor folded = expected.sum_over(out_labels[0]);
  for (const qtensor::Backend* b :
       {static_cast<const qtensor::Backend*>(&serial),
        static_cast<const qtensor::Backend*>(&par)}) {
    std::vector<cplx> out(expected.size(), cplx{9.0, 9.0});
    b->product_into({&t1, &t2}, out_labels, out.data());
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_LT(std::abs(out[i] - expected.data()[i]), 1e-12) << b->name();

    std::vector<cplx> summed(folded.size(), cplx{9.0, 9.0});
    b->product_sum_into({&t1, &t2}, out_labels, summed.data());
    for (std::size_t i = 0; i < summed.size(); ++i)
      EXPECT_LT(std::abs(summed[i] - folded.data()[i]), 1e-12) << b->name();
  }
}

// ---------------------------------------------------------------------------
// Randomized statevector-vs-qtensor ENERGY equivalence across mixers, graph
// families, and p — compiled and legacy tensor-network paths.
// ---------------------------------------------------------------------------

struct EnergyCase {
  const char* name;
  qaoa::MixerSpec mixer;
};

class EnergyEquivalence : public ::testing::TestWithParam<EnergyCase> {};

TEST_P(EnergyEquivalence, AllEnginesAgreeAcrossGraphFamiliesAndDepth) {
  const qaoa::MixerSpec mixer = GetParam().mixer;
  Rng rng(57);
  std::vector<graph::Graph> graphs;
  graphs.push_back(graph::random_regular(8, 3, rng));
  graphs.push_back(graph::erdos_renyi_connected(7, 0.4, rng));
  graphs.push_back(graph::complete(5));

  for (const auto& g : graphs) {
    for (std::size_t p : {std::size_t{1}, std::size_t{2}}) {
      const auto ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
      const auto theta = random_theta(ansatz.num_params(), rng);

      qaoa::EnergyOptions sv;
      sv.engine = qaoa::EngineKind::Statevector;
      qaoa::EnergyOptions tn_compiled;
      tn_compiled.engine = qaoa::EngineKind::TensorNetwork;
      qaoa::EnergyOptions tn_legacy = tn_compiled;
      tn_legacy.qtensor.compile_programs = false;

      const qaoa::EnergyEvaluator ev_sv(g, sv);
      const qaoa::EnergyEvaluator ev_c(g, tn_compiled);
      const qaoa::EnergyEvaluator ev_l(g, tn_legacy);

      const double e_sv = ev_sv.energy(ansatz, theta);
      const double e_c = ev_c.energy(ansatz, theta);
      const double e_l = ev_l.energy(ansatz, theta);
      EXPECT_NEAR(e_c, e_sv, 1e-8)
          << GetParam().name << " n=" << g.num_vertices() << " p=" << p;
      EXPECT_NEAR(e_l, e_sv, 1e-8)
          << GetParam().name << " n=" << g.num_vertices() << " p=" << p;

      // Per-term expectations must agree index-by-index too.
      const auto zz_sv = ev_sv.zz_expectations(ansatz, theta);
      const auto zz_c = ev_c.zz_expectations(ansatz, theta);
      ASSERT_EQ(zz_sv.size(), zz_c.size());
      for (std::size_t k = 0; k < zz_sv.size(); ++k)
        EXPECT_NEAR(zz_c[k], zz_sv[k], 1e-8) << "term " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mixers, EnergyEquivalence,
    ::testing::Values(
        EnergyCase{"baseline_rx", qaoa::MixerSpec::baseline()},
        EnergyCase{"qnas_rx_ry", qaoa::MixerSpec::qnas()},
        EnergyCase{"entangling_rx_rzz",
                   qaoa::MixerSpec{{GateKind::RX, GateKind::RZZ}}},
        EnergyCase{"entangling_ry_cx",
                   qaoa::MixerSpec{{GateKind::RY, GateKind::CX}}}),
    [](const ::testing::TestParamInfo<EnergyCase>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Plan-reuse contract on backend=qtensor: one network build per edge per
// candidate, zero rebuilds across thetas / plan_for hits / restarts.
// ---------------------------------------------------------------------------

TEST(PlanReuse, EnergyCallsNeverRebuildNetworks) {
  Rng rng(71);
  const auto g = graph::random_regular(8, 3, rng);
  const auto ansatz = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::qnas());

  qaoa::EnergyOptions opt;
  opt.engine = qaoa::EngineKind::TensorNetwork;
  const qaoa::EnergyEvaluator evaluator(g, opt);

  qtensor::reset_network_build_count();
  const auto plan = evaluator.plan_for(ansatz);
  const std::uint64_t after_compile = qtensor::network_build_count();
  // Exactly one build per compiled program: shape dedup compiles one
  // representative per distinct lightcone shape, never more than one per
  // edge and at least one overall.
  const auto info = plan->info();
  EXPECT_EQ(after_compile, info.compiled_programs);
  EXPECT_EQ(info.compiled_programs, info.distinct_shapes);
  EXPECT_LE(info.compiled_programs, g.num_edges());
  EXPECT_GE(info.compiled_programs, 1u);

  for (int i = 0; i < 5; ++i) {
    std::vector<double> theta(ansatz.num_params(), 0.1 * (i + 1));
    (void)plan->energy(theta);
  }
  EXPECT_EQ(qtensor::network_build_count(), after_compile);

  // Cache hit: the same structure never compiles twice.
  (void)evaluator.plan_for(ansatz);
  std::vector<double> theta(ansatz.num_params(), 0.5);
  (void)evaluator.energy(ansatz, theta);
  EXPECT_EQ(qtensor::network_build_count(), after_compile);
}

// ---------------------------------------------------------------------------
// Lightcone-shape dedup: symmetric edges share one compiled program.
// ---------------------------------------------------------------------------

TEST(ShapeDedup, RingGraphCompilesOneProgram) {
  // On a cycle every edge lightcone is a rotation of every other: one
  // compiled program must serve all 10 terms — and still match statevector.
  const graph::Graph g = graph::ring(10);
  const auto ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::baseline());

  qaoa::EnergyOptions opt;
  opt.engine = qaoa::EngineKind::TensorNetwork;
  const qaoa::EnergyEvaluator ev(g, opt);
  const auto plan = ev.plan_for(ansatz);
  const auto info = plan->info();
  EXPECT_EQ(info.terms, g.num_edges());
  EXPECT_EQ(info.distinct_shapes, 1u);
  EXPECT_EQ(info.compiled_programs, 1u);

  qaoa::EnergyOptions sv;
  sv.engine = qaoa::EngineKind::Statevector;
  const qaoa::EnergyEvaluator ev_sv(g, sv);
  const std::vector<double> theta(ansatz.num_params(), 0.4);
  EXPECT_NEAR(plan->energy(theta), ev_sv.energy(ansatz, theta), 1e-8);
}

TEST(ShapeDedup, RegularGraphSharesPrograms) {
  Rng rng(83);
  const auto g = graph::random_regular(10, 3, rng);
  const auto ansatz =
      qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::baseline());

  qaoa::EnergyOptions opt;
  opt.engine = qaoa::EngineKind::TensorNetwork;
  const qaoa::EnergyEvaluator ev(g, opt);
  const auto info = ev.plan_for(ansatz)->info();
  EXPECT_EQ(info.terms, g.num_edges());
  EXPECT_EQ(info.compiled_programs, info.distinct_shapes);
  // Degree-regular p=1 cones differ only by local cycle structure: far
  // fewer classes than edges.
  EXPECT_LT(info.compiled_programs, g.num_edges());
  EXPECT_GE(info.compiled_programs, 1u);
}

TEST(ShapeDedup, DedupOffCompilesPerEdgeAndAgrees) {
  Rng rng(89);
  const auto g = graph::random_regular(8, 3, rng);
  const auto ansatz = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const std::vector<double> theta(ansatz.num_params(), -0.7);

  qaoa::EnergyOptions on;
  on.engine = qaoa::EngineKind::TensorNetwork;
  qaoa::EnergyOptions off = on;
  off.qtensor.dedup_shapes = false;

  const qaoa::EnergyEvaluator ev_on(g, on);
  const qaoa::EnergyEvaluator ev_off(g, off);
  const auto plan_on = ev_on.plan_for(ansatz);
  const auto plan_off = ev_off.plan_for(ansatz);

  // The ablation path compiles one program per edge; dedup compiles one per
  // shape class. Both evaluate to the same energy and per-term values.
  EXPECT_EQ(plan_off->info().compiled_programs, g.num_edges());
  EXPECT_LE(plan_on->info().compiled_programs, g.num_edges());
  EXPECT_NEAR(plan_on->energy(theta), plan_off->energy(theta), 1e-9);
  const auto zz_on = plan_on->zz_expectations(theta);
  const auto zz_off = plan_off->zz_expectations(theta);
  ASSERT_EQ(zz_on.size(), zz_off.size());
  for (std::size_t k = 0; k < zz_on.size(); ++k)
    EXPECT_NEAR(zz_on[k], zz_off[k], 1e-9) << "term " << k;
}

TEST(PlanReuse, MultistartRestartsShareOneCompilation) {
  Rng rng(73);
  const auto g = graph::random_regular(6, 3, rng);

  search::EvaluatorOptions opt;
  opt.energy.engine = qaoa::EngineKind::TensorNetwork;
  opt.cobyla.max_evals = 12;
  opt.restarts = 3;
  opt.shots = 8;
  opt.sample_trials = 1;
  const search::Evaluator evaluator(g, opt);

  qtensor::reset_network_build_count();
  const auto result = evaluator.evaluate(qaoa::MixerSpec::baseline(), 1);
  // The whole candidate — every COBYLA step of every restart, plus the
  // sampling pass (statevector-based) — builds at most one network per edge
  // (one per distinct lightcone shape, with dedup typically far fewer).
  EXPECT_LE(qtensor::network_build_count(), g.num_edges());
  EXPECT_GE(qtensor::network_build_count(), 1u);
  EXPECT_GT(result.evaluations, 0u);
}

}  // namespace
