// Tests for the complex matrix layer and the gate matrices built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.hpp"
#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace {

using namespace qarch;
using linalg::cplx;
using linalg::Matrix;

TEST(Matrix, IdentityAndIndexing) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(id(i, j), (i == j ? cplx{1, 0} : cplx{0, 0}));
}

TEST(Matrix, MatmulKnownProduct) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = a.matmul(b);
  EXPECT_EQ(c(0, 0), cplx(19, 0));
  EXPECT_EQ(c(0, 1), cplx(22, 0));
  EXPECT_EQ(c(1, 0), cplx(43, 0));
  EXPECT_EQ(c(1, 1), cplx(50, 0));
  EXPECT_THROW(a.matmul(Matrix(3, 3)), Error);
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  const Matrix m(2, 2, {cplx{1, 2}, cplx{3, 4}, cplx{5, 6}, cplx{7, 8}});
  const Matrix d = m.dagger();
  EXPECT_EQ(d(0, 1), (cplx{5, -6}));
  EXPECT_EQ(d(1, 0), (cplx{3, -4}));
}

TEST(Matrix, KronProductShapeAndValues) {
  const Matrix a(2, 2, {1, 0, 0, 1});
  const Matrix x(2, 2, {0, 1, 1, 0});
  const Matrix k = a.kron(x);
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_EQ(k(0, 1), cplx(1, 0));
  EXPECT_EQ(k(2, 3), cplx(1, 0));
  EXPECT_EQ(k(0, 2), cplx(0, 0));
}

TEST(Matrix, ApplyMatchesManualMatvec) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const auto y = m.apply({1.0, 1.0, 1.0});
  EXPECT_EQ(y[0], cplx(6, 0));
  EXPECT_EQ(y[1], cplx(15, 0));
}

TEST(Matrix, UnitaryAndDiagonalPredicates) {
  EXPECT_TRUE(Matrix::identity(4).is_unitary());
  EXPECT_TRUE(Matrix::identity(4).is_diagonal());
  const Matrix not_unitary(2, 2, {1, 1, 0, 1});
  EXPECT_FALSE(not_unitary.is_unitary());
  EXPECT_FALSE(not_unitary.is_diagonal());
}

TEST(VectorOps, InnerAndNorm) {
  const std::vector<cplx> a{{1, 0}, {0, 1}};
  const std::vector<cplx> b{{0, 1}, {1, 0}};
  const cplx ip = linalg::inner(a, b);
  EXPECT_NEAR(ip.real(), 0.0, 1e-12);
  EXPECT_NEAR(linalg::norm(a), std::sqrt(2.0), 1e-12);
}

// Every gate matrix must be unitary for every sampled angle.
class GateUnitarity : public ::testing::TestWithParam<circuit::GateKind> {};

TEST_P(GateUnitarity, MatrixIsUnitaryAtSampledAngles) {
  for (double theta : {-2.7, -0.5, 0.0, 0.3, 1.1, 3.14159}) {
    const Matrix m = circuit::gate_matrix(GetParam(), theta);
    EXPECT_TRUE(m.is_unitary(1e-10))
        << circuit::gate_name(GetParam()) << " at theta=" << theta;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateUnitarity,
    ::testing::Values(
        circuit::GateKind::I, circuit::GateKind::X, circuit::GateKind::Y,
        circuit::GateKind::Z, circuit::GateKind::H, circuit::GateKind::S,
        circuit::GateKind::Sdg, circuit::GateKind::T, circuit::GateKind::Tdg,
        circuit::GateKind::RX, circuit::GateKind::RY, circuit::GateKind::RZ,
        circuit::GateKind::P, circuit::GateKind::CX, circuit::GateKind::CZ,
        circuit::GateKind::SWAP, circuit::GateKind::RZZ),
    [](const auto& info) { return circuit::gate_name(info.param); });

TEST(GateMatrices, DiagonalPredicateMatchesMatrices) {
  using circuit::GateKind;
  for (GateKind k :
       {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
        GateKind::S, GateKind::T, GateKind::RX, GateKind::RY, GateKind::RZ,
        GateKind::P, GateKind::CX, GateKind::CZ, GateKind::SWAP,
        GateKind::RZZ}) {
    const Matrix m = circuit::gate_matrix(k, 0.7);
    EXPECT_EQ(circuit::is_diagonal(k), m.is_diagonal(1e-12))
        << circuit::gate_name(k);
  }
}

TEST(GateMatrices, KnownIdentities) {
  using circuit::GateKind;
  // H^2 = I
  const Matrix h = circuit::gate_matrix(GateKind::H);
  EXPECT_LT(h.matmul(h).distance(Matrix::identity(2)), 1e-12);
  // S^2 = Z
  const Matrix s = circuit::gate_matrix(GateKind::S);
  EXPECT_LT(s.matmul(s).distance(circuit::gate_matrix(GateKind::Z)), 1e-12);
  // T^2 = S
  const Matrix t = circuit::gate_matrix(GateKind::T);
  EXPECT_LT(t.matmul(t).distance(s), 1e-12);
  // RX(2π) = -I
  const Matrix rx2pi = circuit::gate_matrix(GateKind::RX, 2 * M_PI);
  EXPECT_LT(rx2pi.distance(Matrix::identity(2).scaled(-1.0)), 1e-12);
  // RZ(θ) equals P(θ) up to global phase e^{-iθ/2}.
  const double theta = 0.9;
  const Matrix rz = circuit::gate_matrix(GateKind::RZ, theta);
  const Matrix p = circuit::gate_matrix(GateKind::P, theta)
                       .scaled(std::exp(cplx{0, -theta / 2}));
  EXPECT_LT(rz.distance(p), 1e-12);
  // CX = (I⊗H) CZ (I⊗H) — verify via explicit composition on 4x4s.
  const Matrix ih = Matrix::identity(2).kron(h);
  const Matrix cz = circuit::gate_matrix(GateKind::CZ);
  const Matrix cx = circuit::gate_matrix(GateKind::CX);
  EXPECT_LT(ih.matmul(cz).matmul(ih).distance(cx), 1e-12);
}

TEST(GateMatrices, RotationComposition) {
  using circuit::GateKind;
  // RX(a) RX(b) = RX(a+b)
  const Matrix a = circuit::gate_matrix(GateKind::RX, 0.4);
  const Matrix b = circuit::gate_matrix(GateKind::RX, 1.1);
  const Matrix ab = circuit::gate_matrix(GateKind::RX, 1.5);
  EXPECT_LT(a.matmul(b).distance(ab), 1e-12);
  // RZZ(a) RZZ(b) = RZZ(a+b)
  const Matrix ra = circuit::gate_matrix(GateKind::RZZ, 0.4);
  const Matrix rb = circuit::gate_matrix(GateKind::RZZ, 1.1);
  const Matrix rab = circuit::gate_matrix(GateKind::RZZ, 1.5);
  EXPECT_LT(ra.matmul(rb).distance(rab), 1e-12);
}

TEST(GateNames, RoundTrip) {
  using circuit::GateKind;
  for (GateKind k :
       {GateKind::I, GateKind::X, GateKind::H, GateKind::RX, GateKind::RY,
        GateKind::RZ, GateKind::P, GateKind::CX, GateKind::CZ, GateKind::RZZ,
        GateKind::SWAP, GateKind::S, GateKind::Sdg, GateKind::T,
        GateKind::Tdg, GateKind::Y, GateKind::Z})
    EXPECT_EQ(circuit::gate_from_name(circuit::gate_name(k)), k);
  EXPECT_THROW(circuit::gate_from_name("bogus"), Error);
}

}  // namespace
