// SIMD streaming passes: randomized equivalence of the AVX2/FMA bodies
// against the scalar fallback on deliberately awkward shapes — lengths below
// the vector width, odd lengths, unaligned slice bases, and every qubit
// target including q = 0 where complex lanes interleave inside one register.
// On a scalar build (QARCH_ENABLE_AVX2=OFF) or a non-AVX2 CPU both paths run
// the same body and the tests simply pin the fallback's semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <iterator>
#include <vector>

#include "common/rng.hpp"
#include "sim/simd.hpp"
#include "sim/state_utils.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using sim::simd::cplx;

std::vector<cplx> random_state(Rng& rng, std::size_t n) {
  std::vector<cplx> z(n);
  for (auto& a : z) a = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return z;
}

cplx random_phase(Rng& rng) {
  return std::polar(1.0, rng.uniform(-3.14, 3.14));
}

/// The multiplicative passes perform the same operations per amplitude in
/// both bodies, so scalar/SIMD results agree to the last ulp or two: the
/// only permitted divergence is compiler FMA-contraction of the scalar body
/// on -mfma builds (the AVX2 body never contracts). 1e-14 is ~50 ulp at
/// |z| <= 2 — far below any algorithmic difference, far above contraction
/// noise.
void expect_ulp_close(const std::vector<cplx>& a, const std::vector<cplx>& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].real(), b[i].real(), 1e-14) << what << " re @" << i;
    EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-14) << what << " im @" << i;
  }
}

// Sizes straddling every vector-width boundary: below one register (1..3),
// odd, prime, and page-ish.
constexpr std::size_t kOddSizes[] = {1, 2, 3, 5, 7, 9, 15, 17, 31, 63, 257};

TEST(Simd, ScaleRunMatchesScalarOnOddSizes) {
  Rng rng(11);
  for (const std::size_t n : kOddSizes) {
    const auto src = random_state(rng, n);
    const cplx w = random_phase(rng);
    auto a = src, b = src;
    sim::simd::scale_run(a.data(), n, w, /*use_simd=*/true);
    sim::simd::scale_run(b.data(), n, w, /*use_simd=*/false);
    expect_ulp_close(a, b, "scale_run");
  }
}

TEST(Simd, Pattern2MatchesScalarOnOddSizes) {
  Rng rng(12);
  for (const std::size_t n : kOddSizes) {
    const auto src = random_state(rng, n);
    const cplx w0 = random_phase(rng), w1 = random_phase(rng);
    auto a = src, b = src;
    sim::simd::mul_pattern2(a.data(), n, w0, w1, true);
    sim::simd::mul_pattern2(b.data(), n, w0, w1, false);
    expect_ulp_close(a, b, "mul_pattern2");
  }
}

TEST(Simd, CplxMulRunsMatchesScalarOnOddSizes) {
  Rng rng(13);
  for (const std::size_t n : kOddSizes) {
    const auto acc0 = random_state(rng, n);
    const auto x = random_state(rng, n);
    auto a = acc0, b = acc0;
    sim::simd::cplx_mul_runs(a.data(), x.data(), n, true);
    sim::simd::cplx_mul_runs(b.data(), x.data(), n, false);
    expect_ulp_close(a, b, "cplx_mul_runs");
  }
}

TEST(Simd, CplxAddRunsMatchesScalarOnOddSizes) {
  Rng rng(14);
  for (const std::size_t n : kOddSizes) {
    const auto x = random_state(rng, n);
    const auto y = random_state(rng, n);
    std::vector<cplx> a(n), b(n);
    sim::simd::cplx_add_runs(a.data(), x.data(), y.data(), n, true);
    sim::simd::cplx_add_runs(b.data(), x.data(), y.data(), n, false);
    expect_ulp_close(a, b, "cplx_add_runs");
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(b[i], x[i] + y[i]) << "scalar add @" << i;
  }
}

TEST(Simd, Diag1SliceMatchesScalarOnUnalignedBases) {
  Rng rng(13);
  for (const std::size_t n : kOddSizes) {
    for (const std::size_t base : {std::size_t{0}, std::size_t{1},
                                   std::size_t{6}, std::size_t{129}}) {
      for (std::size_t q = 0; q < 9; ++q) {
        const auto src = random_state(rng, n);
        const cplx d0 = random_phase(rng), d1 = random_phase(rng);
        auto a = src, b = src;
        sim::simd::diag1_slice(a.data(), n, base, q, d0, d1, true);
        sim::simd::diag1_slice(b.data(), n, base, q, d0, d1, false);
        expect_ulp_close(a, b, "diag1_slice");
      }
    }
  }
}

TEST(Simd, Diag2SliceMatchesScalarOnUnalignedBases) {
  Rng rng(14);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = kOddSizes[rng.uniform_int(std::size(kOddSizes))];
    const std::size_t base = rng.uniform_int(200);
    std::size_t q0 = rng.uniform_int(8), q1 = rng.uniform_int(8);
    while (q1 == q0) q1 = rng.uniform_int(8);
    const auto src = random_state(rng, n);
    const cplx d[4] = {random_phase(rng), random_phase(rng),
                       random_phase(rng), random_phase(rng)};
    auto a = src, b = src;
    sim::simd::diag2_slice(a.data(), n, base, q0, q1, d, true);
    sim::simd::diag2_slice(b.data(), n, base, q0, q1, d, false);
    expect_ulp_close(a, b, "diag2_slice");
  }
}

TEST(Simd, TableSliceMatchesScalar) {
  Rng rng(15);
  for (const std::size_t n : kOddSizes) {
    const std::size_t classes = 1 + rng.uniform_int(17);
    std::vector<cplx> lut(classes);
    for (auto& w : lut) w = random_phase(rng);
    std::vector<std::uint16_t> cls(n);
    for (auto& c : cls) c = static_cast<std::uint16_t>(rng.uniform_int(classes));
    const auto src = random_state(rng, n);
    auto a = src, b = src;
    sim::simd::table_slice(a.data(), cls.data(), lut.data(), n, true);
    sim::simd::table_slice(b.data(), cls.data(), lut.data(), n, false);
    expect_ulp_close(a, b, "table_slice");
  }
}

TEST(Simd, SinglePairRangeMatchesScalarOnAllTargets) {
  Rng rng(16);
  for (std::size_t nq = 1; nq <= 7; ++nq) {
    const std::size_t dim = std::size_t{1} << nq;
    for (std::size_t q = 0; q < nq; ++q) {
      // Random (non-unitary is fine — the kernel is plain linear algebra).
      cplx m[4];
      for (auto& c : m) c = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      // Unaligned pair sub-ranges, including a 1-pair range.
      const std::size_t pairs = dim / 2;
      const std::size_t klo = rng.uniform_int(pairs);
      const std::size_t khi = klo + 1 + rng.uniform_int(pairs - klo);
      const auto src = random_state(rng, dim);
      auto a = src, b = src;
      sim::simd::single_pair_range(a.data(), q, m, klo, khi, true);
      sim::simd::single_pair_range(b.data(), q, m, klo, khi, false);
      expect_ulp_close(a, b, "single_pair_range");
    }
  }
}

TEST(Simd, ZzAccumulateMatchesScalarWithinRounding) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t nq = 2 + rng.uniform_int(8);  // 2..9 qubits
    const std::size_t dim = std::size_t{1} << nq;
    const auto state = random_state(rng, dim);
    std::vector<std::size_t> masks;
    for (std::size_t k = 0; k < 1 + rng.uniform_int(10); ++k) {
      std::size_t u = rng.uniform_int(nq), v = rng.uniform_int(nq);
      while (v == u) v = rng.uniform_int(nq);
      masks.push_back((std::size_t{1} << u) | (std::size_t{1} << v));
    }
    // Unaligned [lo, hi) exercises the vector body's scalar head/tail.
    const std::size_t lo = rng.uniform_int(dim);
    const std::size_t hi = lo + rng.uniform_int(dim - lo + 1);
    std::vector<double> acc_simd(masks.size(), 0.0);
    std::vector<double> acc_scalar(masks.size(), 0.0);
    sim::simd::zz_accumulate(state.data(), lo, hi, masks.data(), masks.size(),
                             acc_simd.data(), true);
    sim::simd::zz_accumulate(state.data(), lo, hi, masks.data(), masks.size(),
                             acc_scalar.data(), false);
    // The vector body associates its partial sums differently (four running
    // lanes per mask), so equality holds to rounding, not bit-for-bit.
    for (std::size_t k = 0; k < masks.size(); ++k)
      EXPECT_NEAR(acc_simd[k], acc_scalar[k], 1e-12) << "mask " << k;
  }
}

TEST(Simd, KernelsMatchAcrossSimdToggleOnSmallStates) {
  // End-to-end: full kernels on states BELOW the vector width (1-2 qubits)
  // and on every target qubit of a mid-size state.
  Rng rng(18);
  for (std::size_t nq = 1; nq <= 6; ++nq) {
    const std::size_t dim = std::size_t{1} << nq;
    for (std::size_t q = 0; q < nq; ++q) {
      const auto src = random_state(rng, dim);
      const cplx d0 = random_phase(rng), d1 = random_phase(rng);
      sim::State a = src, b = src;
      sim::kernel_diag1(a, q, d0, d1, 1, 14, true);
      sim::kernel_diag1(b, q, d0, d1, 1, 14, false);
      expect_ulp_close(a, b, "kernel_diag1");

      cplx m[4];
      for (auto& c : m) c = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
      a = src;
      b = src;
      sim::kernel_single(a, q, m, 1, 14, true);
      sim::kernel_single(b, q, m, 1, 14, false);
      expect_ulp_close(a, b, "kernel_single");
    }
  }
}

TEST(Simd, RuntimeToggleForcesScalarPath) {
  // set_runtime_enabled(false) must force active() off; kernels stay correct.
  const bool was = sim::simd::runtime_enabled();
  sim::simd::set_runtime_enabled(false);
  EXPECT_FALSE(sim::simd::active());
  Rng rng(19);
  auto z = random_state(rng, 9);
  auto ref = z;
  const cplx w = random_phase(rng);
  sim::simd::scale_run(z.data(), z.size(), w, true);
  sim::simd::scale_run(ref.data(), ref.size(), w, false);
  expect_ulp_close(z, ref, "scale_run under disabled runtime");
  sim::simd::set_runtime_enabled(was);
}

}  // namespace
