// Tests for the common runtime: RNG, stats, CSV, CLI, plotting, errors.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/ascii_plot.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/timer.hpp"

namespace {

using namespace qarch;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(21);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(5);
  const auto p = rng.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(3);
  Rng child = parent.split();
  // The child stream must not replay the parent stream.
  Rng parent2(3);
  parent2.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child() == parent()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Stats, MeanStdMedian) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944487, 1e-9);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
}

TEST(Stats, SingletonAndEmpty) {
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
  const std::vector<double> none;
  EXPECT_THROW(mean(none), Error);
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = "/tmp/qarch_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row(std::vector<std::string>{"plain", "needs,\"quotes\""});
    w.row(std::vector<double>{1.5, 2.0});
    w.close();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"needs,\"\"quotes\"\"\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::filesystem::remove(path);
}

TEST(Csv, RejectsWidthMismatch) {
  CsvWriter w("/tmp/qarch_csv_test2.csv", {"x"});
  EXPECT_THROW(w.row(std::vector<std::string>{"a", "b"}), Error);
  std::filesystem::remove("/tmp/qarch_csv_test2.csv");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--n", "10", "--flag", "--p=0.5", "file.txt"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int("n", 0), 10);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_DOUBLE_EQ(cli.get_double("p", 0.0), 0.5);
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "file.txt");
}

TEST(Cli, RejectsNonNumericValues) {
  const char* argv[] = {"prog", "--n", "abc"};
  Cli cli(3, argv);
  EXPECT_THROW(cli.get_int("n", 0), Error);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  AsciiPlot plot("title", "x", "y");
  plot.add({"s1", {1, 2, 3}, {1, 4, 9}});
  plot.add({"s2", {1, 2, 3}, {9, 4, 1}});
  const std::string out = plot.render(32, 8);
  EXPECT_NE(out.find("title"), std::string::npos);
  EXPECT_NE(out.find("s1"), std::string::npos);
  EXPECT_NE(out.find("s2"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

TEST(AsciiPlot, BarChartScalesWithinRange) {
  const std::string out =
      ascii_barh("bars", {{"a", 0.5}, {"b", 1.0}}, 10, 0.0, 1.0);
  // b's bar must be longer than a's.
  const auto pa = out.find("a |");
  const auto pb = out.find("b |");
  ASSERT_NE(pa, std::string::npos);
  ASSERT_NE(pb, std::string::npos);
  const auto count_hashes = [&](std::size_t from) {
    std::size_t c = 0;
    for (std::size_t i = from; i < out.size() && out[i] != '\n'; ++i)
      if (out[i] == '#') ++c;
    return c;
  };
  EXPECT_LT(count_hashes(pa), count_hashes(pb));
}

TEST(ErrorMacros, CheckAndRequireThrowDistinctTypes) {
  EXPECT_THROW(QARCH_REQUIRE(false, "msg"), InvalidArgument);
  EXPECT_THROW(QARCH_CHECK(false, "msg"), InternalError);
  EXPECT_NO_THROW(QARCH_REQUIRE(true, ""));
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  // Just verify monotonicity and reset.
  const double t1 = t.seconds();
  const double t2 = t.seconds();
  EXPECT_GE(t2, t1);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
