// Umbrella-header smoke test: includes the entire public API in one TU and
// exercises one representative call per subsystem — catches missing
// includes, ODR issues, and broken public signatures.
#include <gtest/gtest.h>

#include "qarch.hpp"

namespace {

using namespace qarch;

TEST(Umbrella, EverySubsystemIsReachable) {
  // common
  Rng rng(1);
  EXPECT_LT(rng.uniform(), 1.0);
  EXPECT_EQ(json::parse("[1]").size(), 1u);

  // graph
  const auto g = graph::cycle(4);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(g).value, 4.0);

  // linalg + circuit
  EXPECT_TRUE(circuit::gate_matrix(circuit::GateKind::H).is_unitary());
  circuit::Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  EXPECT_EQ(circuit::optimize(c).num_gates(), 2u);

  // sim
  const auto state = sim::StatevectorSimulator().run(c, {}, sim::zero_state(2));
  EXPECT_NEAR(sim::expectation_zz(state, 0, 1), 1.0, 1e-12);
  EXPECT_NEAR(sim::PauliString::parse("ZZ").expectation(state), 1.0, 1e-12);

  // qtensor (the <ZZ> network assumes the |+>^n initial state)
  const auto plus_run = sim::StatevectorSimulator().run_from_plus(c, {});
  const auto net = qtensor::expectation_zz_network(c, {}, 0, 1);
  const auto plan = qtensor::plan_contraction(net);
  const auto r =
      qtensor::contract(net, plan.order, qtensor::SerialCpuBackend{});
  EXPECT_NEAR(r.value.real(), sim::expectation_zz(plus_run, 0, 1), 1e-10);

  // optim
  optim::CobylaConfig cc;
  cc.max_evals = 30;
  const auto opt = optim::Cobyla(cc).minimize(
      [](std::span<const double> x) { return x[0] * x[0]; }, {1.0});
  EXPECT_LT(opt.value, 0.1);

  // qaoa
  const auto ansatz = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  EXPECT_EQ(ansatz.num_params(), 2u);

  // nn
  Rng nn_rng(2);
  nn::Mlp mlp({2, 4, 1}, {nn::Activation::Tanh, nn::Activation::Identity},
              nn_rng);
  EXPECT_EQ(mlp.forward({0.1, 0.2}).size(), 1u);

  // search
  const auto combos = search::all_combinations(
      search::GateAlphabet::standard(), 1, search::CombinationMode::Product);
  EXPECT_EQ(combos.size(), 5u);

  // parallel
  std::atomic<int> count{0};
  parallel::parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); }, 4);
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
