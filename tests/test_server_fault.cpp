// Wire-level fault injection for qarchd: seeded connection drops, a client
// that must retry through them, and a real fork()-based mid-response daemon
// kill (crash point "server_response" fires between a response's header and
// body sends — the worst possible moment: the job is finished, the client
// has half an answer). A fresh daemon restarted on the same cache and
// checkpoint paths must converge the retrying client to exactly the result
// an uninterrupted run produces.
//
// NOTE: this file is intentionally NOT named test_eval_service /
// test_parallel — the TSan CI leg filters to those, and fork() under TSan
// is unsupported.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "search/evaluator.hpp"
#include "search/fault.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "session.hpp"

namespace {

using namespace qarch;
using server::ApiError;
using server::ClientOptions;
using server::QarchClient;
using server::QarchServer;
using server::ServerConfig;
using server::TenantSpec;

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 20;
  s.shots = 32;
  s.sample_trials = 2;
  s.workers = 1;
  s.server_io_threads = 4;
  return s;
}

graph::Graph test_graph(std::uint64_t seed, std::size_t n = 6,
                        std::size_t degree = 3) {
  Rng rng(seed);
  return graph::random_regular(n, degree, rng);
}

/// Puts the process-global injector back to inert no matter how a test exits.
struct FaultGuard {
  FaultGuard() { search::FaultInjector::instance().reset(); }
  ~FaultGuard() { search::FaultInjector::instance().reset(); }
};

std::string temp_path(const std::string& name) {
  const std::string p =
      "/tmp/qarch_server_fault_" + std::to_string(::getpid()) + "_" + name;
  std::remove(p.c_str());
  return p;
}

bool wait_for_file(const std::string& path, double timeout_seconds) {
  const int ticks = static_cast<int>(timeout_seconds * 1000.0);
  for (int i = 0; i < ticks; ++i) {
    if (std::ifstream(path).good()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

search::CandidateResult direct_reference(const SessionConfig& session,
                                         const graph::Graph& g,
                                         const std::string& mixer,
                                         std::size_t p) {
  const search::Evaluator direct(
      g, session.evaluator_options(qaoa::EngineKind::Statevector));
  return direct.evaluate(qaoa::MixerSpec::parse(mixer), p);
}

TEST(QarchServerFault, SeededDropsConvergeThroughClientRetries) {
  // A third of all accepted connections are abandoned after the request is
  // read and before any byte of the response is written — the client cannot
  // tell whether its submit landed. Idempotent submits (result cache +
  // in-flight dedup) plus retries must still converge to the exact answer.
  FaultGuard guard;
  search::FaultPlan plan;
  plan.drop_rate = 0.35;
  // Seed 12 is chosen so the verdict sequence for 1-based connection
  // ordinals starts 1,1,0,0,1,1,1,0,1,0 — the submit connection itself is
  // dropped twice before it lands, then polls keep getting cut. That makes
  // the drops (and the idempotent-resubmit path) fire deterministically even
  // though the total number of connections depends on job timing.
  plan.seed = 12;
  search::FaultInjector::instance().configure(plan);

  ServerConfig config;
  config.session = fast_session();
  config.tenants = {TenantSpec{.name = "t", .api_key = "k"}};
  QarchServer server(config);
  server.start();

  ClientOptions options;
  options.port = server.port();
  options.api_key = "k";
  options.max_retries = 10;
  options.retry_backoff_seconds = 0.01;
  QarchClient client(options);

  const auto g = test_graph(61);
  const auto expected = direct_reference(config.session, g, "rx,ry", 1);
  const auto r =
      client.evaluate(QarchClient::submit_body(g, "rx,ry", 1), 200.0);
  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.theta, expected.theta);
  EXPECT_EQ(r.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(r.evaluations, expected.evaluations);

  // The fault actually fired (>= 2 drops on the submit alone, by seed), and
  // the server counted every abandonment.
  EXPECT_GE(search::FaultInjector::instance().dropped_connections(), 2u);
  EXPECT_GE(server.counters().dropped, 2u);
}

TEST(QarchServerFault, TotalDropExhaustsRetriesWithTransportError) {
  FaultGuard guard;
  search::FaultPlan plan;
  plan.drop_rate = 1.0;
  search::FaultInjector::instance().configure(plan);

  ServerConfig config;
  config.session = fast_session();
  config.tenants = {TenantSpec{.name = "t", .api_key = "k"}};
  QarchServer server(config);
  server.start();

  ClientOptions options;
  options.port = server.port();
  options.api_key = "k";
  options.max_retries = 2;
  options.retry_backoff_seconds = 0.01;
  QarchClient client(options);

  // Every attempt reads a clean TCP close: a transport Error after retry
  // exhaustion, never an ApiError (no response was ever parsed).
  try {
    client.submit(QarchClient::submit_body(test_graph(62), "rx", 1));
    FAIL() << "submit through a 100% drop plan should not succeed";
  } catch (const ApiError& e) {
    FAIL() << "expected a transport error, got ApiError: " << e.what();
  } catch (const Error&) {
  }
  EXPECT_GE(search::FaultInjector::instance().dropped_connections(), 3u);
}

// The headline crash test. Child 1 serves with crash=server_response:2: the
// submit response (visit 1) goes out whole, then the daemon is hard-killed
// between header and body of the first result poll (visit 2) — the client
// holds a half-written response and the process is gone. A second child on
// the same cache/checkpoint paths must bring the retrying client to the
// clean-run answer, bit for bit.
TEST(QarchServerFault, MidResponseKillThenRestartConverges) {
  FaultGuard guard;
  const std::string cache = temp_path("crash_cache.json");
  const std::string ckpt = temp_path("crash_ckpt.json");
  const std::string port1_file = temp_path("port1");
  const std::string port2_file = temp_path("port2");
  const std::string done_file = temp_path("done");

  SessionConfig session = fast_session();
  session.cache_path = cache;
  session.checkpoint_path = ckpt;
  session.checkpoint_evals = 5;

  const auto g = test_graph(63);
  const auto expected = direct_reference(session, g, "ry,rz", 1);
  const json::Value body = QarchClient::submit_body(g, "ry,rz", 1);

  const auto serve = [&](const char* port_file, bool crash) {
    // Child body: never returns. gtest assertions are useless here; exit
    // codes carry the verdict (137 = died at the crash point, 0 = clean).
    try {
      ::alarm(120);  // belt-and-braces: no orphaned child outlives the test
      if (crash) {
        search::FaultPlan plan;
        plan.crash_point = "server_response";
        plan.crash_after = 2;
        search::FaultInjector::instance().configure(plan);
      } else {
        search::FaultInjector::instance().reset();
      }
      ServerConfig config;
      config.session = session;
      config.tenants = {TenantSpec{.name = "t", .api_key = "k"}};
      QarchServer daemon(config);
      daemon.start();
      { std::ofstream(port_file) << daemon.port(); }
      while (!std::ifstream(done_file).good())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      daemon.stop(10.0);
      std::_Exit(0);
    } catch (...) {
      std::_Exit(42);
    }
  };

  const auto client_for = [&](const std::string& port_file, int retries) {
    std::uint16_t port = 0;
    std::ifstream(port_file) >> port;
    ClientOptions options;
    options.port = port;
    options.api_key = "k";
    options.max_retries = retries;
    options.retry_backoff_seconds = 0.01;
    return QarchClient(options);
  };

  const pid_t first = fork();
  ASSERT_NE(first, -1);
  if (first == 0) serve(port1_file.c_str(), /*crash=*/true);
  ASSERT_TRUE(wait_for_file(port1_file, 30.0));
  QarchClient doomed = client_for(port1_file, /*retries=*/2);

  // Submit succeeds (response visit 1)...
  const std::string ticket = doomed.submit(body);
  // ... and the first poll kills the daemon mid-response.
  try {
    (void)doomed.result(ticket, 30000.0);
    FAIL() << "poll against the crashing daemon should not complete";
  } catch (const Error&) {
  }
  int status = 0;
  ASSERT_EQ(::waitpid(first, &status, 0), first);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 137) << "child did not die at the crash point";

  // Restart "the daemon" on the same paths and let the client converge. Its
  // old ticket is gone (404 from a fresh process) — evaluate() resubmits,
  // and the persisted result cache answers without redoing the training.
  const pid_t second = fork();
  ASSERT_NE(second, -1);
  if (second == 0) serve(port2_file.c_str(), /*crash=*/false);
  ASSERT_TRUE(wait_for_file(port2_file, 30.0));
  QarchClient survivor = client_for(port2_file, /*retries=*/8);
  const auto r = survivor.evaluate(body, 200.0);
  EXPECT_EQ(r.energy, expected.energy);
  EXPECT_EQ(r.theta, expected.theta);
  EXPECT_EQ(r.sampled_ratio, expected.sampled_ratio);
  EXPECT_EQ(r.evaluations, expected.evaluations);

  { std::ofstream(done_file) << "done"; }
  ASSERT_EQ(::waitpid(second, &status, 0), second);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "restarted daemon failed clean shutdown";

  for (const auto& p : {cache, ckpt, port1_file, port2_file, done_file})
    std::remove(p.c_str());
}

}  // namespace
