// The compiled query subsystem (src/query): amplitude programs vs the
// statevector and the legacy one-shot qtensor path, batched amplitude
// slices, reduced-density-matrix marginals, direct tensor-network sampling
// (determinism per seed, agreement in distribution with the statevector
// engine), and the shared-plan-cache warm-replay probe.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "graph/extra_generators.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/mixer.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/plan_cache.hpp"
#include "qtensor/planner.hpp"
#include "query/program.hpp"
#include "query/sampler.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using linalg::cplx;

std::vector<double> random_theta(std::size_t params, Rng& rng) {
  std::vector<double> theta(params);
  for (double& t : theta) t = rng.uniform(-2.0, 2.0);
  return theta;
}

std::vector<int> bits_of(std::size_t basis, std::size_t n) {
  std::vector<int> bits(n);
  for (std::size_t q = 0; q < n; ++q) bits[q] = (basis >> q) & 1U ? 1 : 0;
  return bits;
}

/// A varied pool of small test instances (graph, mixer, p).
struct Instance {
  graph::Graph g;
  qaoa::MixerSpec mixer;
  std::size_t p;
};

std::vector<Instance> test_instances(Rng& rng) {
  std::vector<Instance> out;
  out.push_back({graph::cycle(5), qaoa::MixerSpec::parse("rx"), 2});
  out.push_back({graph::complete(4), qaoa::MixerSpec::parse("rx,ry"), 1});
  out.push_back(
      {graph::random_regular(6, 3, rng), qaoa::MixerSpec::parse("rx,cz"), 1});
  out.push_back(
      {graph::erdos_renyi_connected(5, 0.6, rng), qaoa::MixerSpec::parse("h,rz,h"), 2});
  return out;
}

// ---------------------------------------------------------------------------
// Amplitudes: compiled program vs statevector vs the legacy one-shot path.
// ---------------------------------------------------------------------------

TEST(AmplitudeProgram, MatchesStatevectorAndLegacyPath) {
  Rng rng(101);
  const sim::StatevectorSimulator sv;
  const qtensor::SerialCpuBackend backend;
  qtensor::QTensorOptions legacy_opts;
  legacy_opts.compile_programs = false;  // the pre-query rebuild-per-call path
  const qtensor::QTensorSimulator legacy(legacy_opts);

  for (Instance& inst : test_instances(rng)) {
    const circuit::Circuit ansatz =
        qaoa::build_qaoa_circuit(inst.g, inst.p, inst.mixer);
    const query::AmplitudeProgram program(ansatz);
    const std::size_t n = inst.g.num_vertices();
    for (int step = 0; step < 3; ++step) {
      const auto theta = random_theta(ansatz.num_params(), rng);
      const sim::State psi = sv.run_from_plus(ansatz, theta);
      for (int trial = 0; trial < 4; ++trial) {
        const std::size_t basis = rng.uniform_int(std::size_t{1} << n);
        const std::vector<int> bits = bits_of(basis, n);
        const cplx compiled = program.amplitude(theta, bits, backend);
        const cplx one_shot = legacy.amplitude(ansatz, theta, bits);
        EXPECT_NEAR(compiled.real(), psi[basis].real(), 1e-8);
        EXPECT_NEAR(compiled.imag(), psi[basis].imag(), 1e-8);
        EXPECT_NEAR(compiled.real(), one_shot.real(), 1e-8);
        EXPECT_NEAR(compiled.imag(), one_shot.imag(), 1e-8);
      }
    }
  }
}

TEST(BatchedAmplitudeProgram, SlicesMatchSingleAmplitudes) {
  Rng rng(202);
  const qtensor::SerialCpuBackend backend;
  const graph::Graph g = graph::random_regular(6, 3, rng);
  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::parse("rx"));
  const std::size_t n = g.num_vertices();

  const std::vector<std::size_t> open = {1, 4};
  const query::BatchedAmplitudeProgram batched(ansatz, open);
  const query::AmplitudeProgram single(ansatz);

  const auto theta = random_theta(ansatz.num_params(), rng);
  // Fix the non-open qubits to a random assignment (ascending qubit order).
  std::vector<int> fixed;
  std::vector<int> bits(n, 0);
  for (std::size_t q = 0; q < n; ++q) {
    if (q == open[0] || q == open[1]) continue;
    const int b = rng.bernoulli(0.5) ? 1 : 0;
    fixed.push_back(b);
    bits[q] = b;
  }
  const std::vector<cplx> batch = batched.amplitudes(theta, fixed, backend);
  ASSERT_EQ(batch.size(), 4U);
  // Output index bit j = value of open_qubits[j] (LSB-first).
  for (std::size_t idx = 0; idx < 4; ++idx) {
    bits[open[0]] = static_cast<int>(idx & 1U);
    bits[open[1]] = static_cast<int>((idx >> 1) & 1U);
    const cplx expect = single.amplitude(theta, bits, backend);
    EXPECT_NEAR(batch[idx].real(), expect.real(), 1e-8);
    EXPECT_NEAR(batch[idx].imag(), expect.imag(), 1e-8);
  }
}

// ---------------------------------------------------------------------------
// Marginals: RDM vs the statevector partial trace.
// ---------------------------------------------------------------------------

TEST(MarginalProgram, MatchesStatevectorPartialTrace) {
  Rng rng(303);
  const sim::StatevectorSimulator sv;
  const qtensor::SerialCpuBackend backend;
  const graph::Graph g = graph::erdos_renyi_connected(6, 0.5, rng);
  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::parse("rx,ry"));
  const std::size_t n = g.num_vertices();

  const std::vector<std::size_t> targets = {0, 3};
  const query::MarginalProgram program(ansatz, targets);
  const std::size_t k = targets.size();
  const std::size_t dim = std::size_t{1} << k;

  const auto theta = random_theta(ansatz.num_params(), rng);
  const std::vector<cplx> rdm = program.rdm(theta, backend);
  ASSERT_EQ(rdm.size(), dim * dim);

  // Reference partial trace from the full state.
  const sim::State psi = sv.run_from_plus(ansatz, theta);
  std::vector<cplx> ref(dim * dim, cplx{0.0, 0.0});
  auto embed = [&](std::size_t rest, std::size_t t) {
    // `rest` enumerates the non-target qubits (ascending), `t` the targets.
    std::size_t basis = 0, ri = 0;
    for (std::size_t q = 0; q < n; ++q) {
      bool is_target = false;
      for (std::size_t j = 0; j < k; ++j)
        if (targets[j] == q) {
          basis |= ((t >> j) & 1U) << q;
          is_target = true;
        }
      if (!is_target) {
        basis |= ((rest >> ri) & 1U) << q;
        ++ri;
      }
    }
    return basis;
  };
  for (std::size_t rest = 0; rest < (std::size_t{1} << (n - k)); ++rest)
    for (std::size_t r = 0; r < dim; ++r)
      for (std::size_t c = 0; c < dim; ++c)
        ref[r * dim + c] +=
            psi[embed(rest, r)] * std::conj(psi[embed(rest, c)]);

  double trace = 0.0;
  for (std::size_t r = 0; r < dim; ++r) {
    trace += rdm[r * dim + r].real();
    for (std::size_t c = 0; c < dim; ++c) {
      EXPECT_NEAR(rdm[r * dim + c].real(), ref[r * dim + c].real(), 1e-8);
      EXPECT_NEAR(rdm[r * dim + c].imag(), ref[r * dim + c].imag(), 1e-8);
      // Hermitian: rho[r][c] == conj(rho[c][r]).
      EXPECT_NEAR(rdm[r * dim + c].real(), rdm[c * dim + r].real(), 1e-8);
      EXPECT_NEAR(rdm[r * dim + c].imag(), -rdm[c * dim + r].imag(), 1e-8);
    }
  }
  EXPECT_NEAR(trace, 1.0, 1e-8);

  // probabilities() is the clamped diagonal.
  const std::vector<double> probs = program.probabilities(theta, backend);
  ASSERT_EQ(probs.size(), dim);
  double total = 0.0;
  for (std::size_t r = 0; r < dim; ++r) {
    EXPECT_NEAR(probs[r], ref[r * dim + r].real(), 1e-8);
    total += probs[r];
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

// ---------------------------------------------------------------------------
// Sampling: exact probabilities, per-seed determinism, distributions.
// ---------------------------------------------------------------------------

query::SamplerOptions tn_sampler_options(const std::string& backend_spec) {
  query::SamplerOptions so;
  so.engine = query::SamplerEngine::TensorNetwork;
  so.tn_backend = backend_spec;
  return so;
}

TEST(Sampler, ProbabilityMatchesStatevector) {
  Rng rng(404);
  const sim::StatevectorSimulator sv;
  const graph::Graph g = graph::cycle(6);
  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::parse("rx"));
  const std::size_t n = g.num_vertices();

  query::SamplerOptions sv_opts;  // statevector engine default
  const query::Sampler sv_sampler(ansatz, sv_opts);
  const query::Sampler tn_sampler(ansatz, tn_sampler_options("serial"));
  ASSERT_EQ(sv_sampler.engine(), query::SamplerEngine::Statevector);
  ASSERT_EQ(tn_sampler.engine(), query::SamplerEngine::TensorNetwork);

  const auto theta = random_theta(ansatz.num_params(), rng);
  const sim::State psi = sv.run_from_plus(ansatz, theta);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t basis = rng.uniform_int(std::size_t{1} << n);
    const double expect = std::norm(psi[basis]);
    EXPECT_NEAR(sv_sampler.probability(theta, basis), expect, 1e-8);
    EXPECT_NEAR(tn_sampler.probability(theta, basis), expect, 1e-8);
  }
}

TEST(Sampler, SeededDrawsAreDeterministicAcrossWorkerCounts) {
  Rng rng(505);
  const graph::Graph g = graph::random_regular(6, 3, rng);
  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::parse("rx,ry"));
  const auto theta = random_theta(ansatz.num_params(), rng);
  const std::size_t shots = 64;

  // Tensor-network engine: serial vs parallel backend, same seed.
  const query::Sampler tn_serial(ansatz, tn_sampler_options("serial"));
  const query::Sampler tn_parallel(ansatz, tn_sampler_options("parallel:3"));
  Rng r1(99), r2(99);
  const auto a = tn_serial.sample(theta, shots, r1);
  const auto b = tn_parallel.sample(theta, shots, r2);
  EXPECT_EQ(a, b);

  // Statevector engine: 1 vs 4 replay workers, same seed.
  query::SamplerOptions sv1, sv4;
  sv4.sv_workers = 4;
  const query::Sampler sampler1(ansatz, sv1);
  const query::Sampler sampler4(ansatz, sv4);
  Rng r3(99), r4(99);
  const auto c = sampler1.sample(theta, shots, r3);
  const auto d = sampler4.sample(theta, shots, r4);
  EXPECT_EQ(c, d);

  // Replaying the same seed on the same sampler reproduces the draws.
  Rng r5(99);
  EXPECT_EQ(a, tn_serial.sample(theta, shots, r5));
}

TEST(Sampler, EnginesAgreeInDistribution) {
  Rng rng(606);
  const sim::StatevectorSimulator sv;
  const graph::Graph g = graph::cycle(5);
  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::parse("rx"));
  const std::size_t n = g.num_vertices();
  const auto theta = random_theta(ansatz.num_params(), rng);

  const query::Sampler tn(ansatz, tn_sampler_options("serial"));
  const std::size_t shots = 4000;
  Rng draw(7);
  const auto samples = tn.sample(theta, shots, draw);

  std::vector<double> empirical(std::size_t{1} << n, 0.0);
  for (const std::size_t s : samples) empirical[s] += 1.0 / double(shots);
  const sim::State psi = sv.run_from_plus(ansatz, theta);
  double tv = 0.0;
  for (std::size_t basis = 0; basis < empirical.size(); ++basis)
    tv += std::abs(empirical[basis] - std::norm(psi[basis]));
  tv *= 0.5;
  // 4000 draws over 32 outcomes: TV distance ~ O(sqrt(32/4000)) ~ 0.045;
  // 0.1 gives a comfortable deterministic-seed margin.
  EXPECT_LT(tv, 0.1);
}

// ---------------------------------------------------------------------------
// Plan reuse: a warm plan cache compiles query programs with ZERO planner
// invocations (the acceptance probe of the compiled-query pipeline).
// ---------------------------------------------------------------------------

TEST(QueryPrograms, WarmPlanCacheCompilesWithoutPlanner) {
  Rng rng(707);
  const graph::Graph g = graph::random_regular(6, 3, rng);
  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::parse("rx"));

  query::QueryOptions options;
  options.plan_cache = std::make_shared<qtensor::PlanCache>();

  // Cold: compiling plans at least once.
  qtensor::reset_planner_invocation_count();
  const query::AmplitudeProgram cold(ansatz, options);
  const std::vector<std::size_t> targets = {0, 2};
  const query::MarginalProgram cold_marginal(ansatz, targets, options);
  EXPECT_GT(qtensor::planner_invocation_count(), 0U);
  EXPECT_FALSE(cold.stats().plan_cached);

  // Warm: the same shapes replay straight from the shared cache.
  qtensor::reset_planner_invocation_count();
  const query::AmplitudeProgram warm(ansatz, options);
  const query::MarginalProgram warm_marginal(ansatz, targets, options);
  EXPECT_EQ(qtensor::planner_invocation_count(), 0U);
  EXPECT_TRUE(warm.stats().plan_cached);
  EXPECT_TRUE(warm_marginal.stats().plan_cached);

  // Warm replays still produce the same numbers.
  const qtensor::SerialCpuBackend backend;
  const auto theta = random_theta(ansatz.num_params(), rng);
  const std::vector<int> bits(g.num_vertices(), 0);
  const cplx cold_amp = cold.amplitude(theta, bits, backend);
  const cplx warm_amp = warm.amplitude(theta, bits, backend);
  EXPECT_NEAR(cold_amp.real(), warm_amp.real(), 1e-12);
  EXPECT_NEAR(cold_amp.imag(), warm_amp.imag(), 1e-12);
}

}  // namespace
