// Neural predictor tests: matrix ops, backprop against finite differences,
// Adam convergence, and the REINFORCE controller learning a bandit.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/mat.hpp"
#include "nn/mlp.hpp"
#include "search/rl_predictor.hpp"

namespace {

using namespace qarch;
using nn::Activation;
using nn::Mat;
using nn::Mlp;

TEST(Mat, MatvecAndTransposed) {
  Mat m(2, 3);
  // [[1,2,3],[4,5,6]]
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = v++;
  const auto y = m.matvec({1.0, 1.0, 1.0});
  EXPECT_EQ(y, (std::vector<double>{6.0, 15.0}));
  const auto z = m.matvec_transposed({1.0, 1.0});
  EXPECT_EQ(z, (std::vector<double>{5.0, 7.0, 9.0}));
  EXPECT_THROW(m.matvec({1.0}), Error);
}

TEST(Mat, OuterAccumulate) {
  Mat m(2, 2);
  m.add_outer({1.0, 2.0}, {3.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Softmax, NormalizedAndStable) {
  const auto p = nn::softmax({1000.0, 1000.0, 1000.0});
  for (double v : p) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
  const auto q = nn::softmax({0.0, 100.0});
  EXPECT_NEAR(q[1], 1.0, 1e-12);
  double s = 0.0;
  for (double v : nn::softmax({0.3, -1.2, 2.0})) s += v;
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Mlp, ForwardShapeAndDeterminism) {
  Rng rng(3);
  const Mlp net({4, 8, 3}, {Activation::Tanh, Activation::Identity}, rng);
  EXPECT_EQ(net.input_size(), 4u);
  EXPECT_EQ(net.output_size(), 3u);
  EXPECT_EQ(net.num_parameters(), 4u * 8 + 8 + 8 * 3 + 3);
  const std::vector<double> x{0.1, -0.2, 0.3, 0.4};
  EXPECT_EQ(net.forward(x), net.forward(x));
}

TEST(Mlp, BackpropMatchesFiniteDifferences) {
  Rng rng(7);
  Mlp net({3, 5, 2}, {Activation::Tanh, Activation::Identity}, rng);
  const std::vector<double> x{0.4, -0.7, 0.2};
  // Loss = sum of outputs; dL/dout = ones.
  auto loss = [&](const Mlp& m) {
    const auto y = m.forward(x);
    return y[0] + y[1];
  };

  Mlp::Trace trace;
  net.forward(x, &trace);
  nn::MlpGradients grads = net.make_gradients();
  net.backward(trace, {1.0, 1.0}, grads);

  const double eps = 1e-6;
  // Spot-check several weight entries in both layers plus biases.
  for (std::size_t layer : {0u, 1u}) {
    for (std::size_t idx : {0u, 3u, 7u}) {
      if (idx >= net.weights()[layer].data().size()) continue;
      Mlp bumped = net;
      bumped.weights()[layer].data()[idx] += eps;
      const double fd = (loss(bumped) - loss(net)) / eps;
      EXPECT_NEAR(fd, grads.w[layer].data()[idx], 1e-4)
          << "layer " << layer << " idx " << idx;
    }
    Mlp bumped = net;
    bumped.biases()[layer][0] += eps;
    const double fd = (loss(bumped) - loss(net)) / eps;
    EXPECT_NEAR(fd, grads.b[layer][0], 1e-4);
  }
}

TEST(Adam, FitsTinyRegression) {
  // Teach a 1-16-1 net the map x -> 2x - 1 on [-1, 1].
  Rng rng(11);
  Mlp net({1, 16, 1}, {Activation::Tanh, Activation::Identity}, rng);
  nn::Adam adam(net, {0.02, 0.9, 0.999, 1e-8});
  Rng data_rng(13);
  for (int step = 0; step < 600; ++step) {
    nn::MlpGradients grads = net.make_gradients();
    for (int b = 0; b < 8; ++b) {
      const double x = data_rng.uniform(-1.0, 1.0);
      const double target = 2.0 * x - 1.0;
      Mlp::Trace trace;
      const auto y = net.forward({x}, &trace);
      net.backward(trace, {2.0 * (y[0] - target) / 8.0}, grads);
    }
    adam.step(net, grads);
  }
  double max_err = 0.0;
  for (double x : {-0.9, -0.3, 0.0, 0.4, 0.8})
    max_err = std::max(max_err,
                       std::abs(net.forward({x})[0] - (2.0 * x - 1.0)));
  EXPECT_LT(max_err, 0.1);
}

TEST(Reinforce, ProposesValidEncodings) {
  const search::GateAlphabet alphabet = search::GateAlphabet::standard();
  search::ReinforceConfig cfg;
  cfg.k_max = 3;
  cfg.budget = 40;
  search::ReinforcePredictor pred(alphabet, cfg);
  std::size_t total = 0;
  while (!pred.exhausted()) {
    for (const auto& enc : pred.propose(8)) {
      EXPECT_GE(enc.size(), 1u);
      EXPECT_LE(enc.size(), 3u);
      for (std::size_t idx : enc) EXPECT_LT(idx, alphabet.size());
      ++total;
    }
  }
  EXPECT_EQ(total, 40u);
  pred.reset();
  EXPECT_FALSE(pred.exhausted());
}

TEST(Reinforce, LearnsABanditPreference) {
  // Reward 1.0 iff the sequence is exactly [2]; the controller should learn
  // to emit gate 2 and stop, beating uniform random (p = 1/5 * stop-prob).
  const search::GateAlphabet alphabet = search::GateAlphabet::standard();
  search::ReinforceConfig cfg;
  cfg.k_max = 2;
  cfg.budget = 100000;  // effectively unbounded within this test
  cfg.learning_rate = 0.1;
  cfg.seed = 5;
  search::ReinforcePredictor pred(alphabet, cfg);

  for (int round = 0; round < 60; ++round) {
    const auto batch = pred.propose(16);
    std::vector<double> rewards;
    rewards.reserve(batch.size());
    for (const auto& enc : batch)
      rewards.push_back(enc.size() == 1 && enc[0] == 2 ? 1.0 : 0.0);
    pred.feedback(batch, rewards);
  }
  // Greedy decode should now produce the rewarded sequence.
  const auto greedy = pred.greedy_decode();
  ASSERT_EQ(greedy.size(), 1u);
  EXPECT_EQ(greedy[0], 2u);
  // And sampled behaviour should be strongly biased toward it.
  const auto sample = pred.propose(64);
  int hits = 0;
  for (const auto& enc : sample)
    if (enc.size() == 1 && enc[0] == 2) ++hits;
  EXPECT_GT(hits, 32);  // >> uniform chance
}

TEST(Reinforce, BaselineTracksRewards) {
  const search::GateAlphabet alphabet = search::GateAlphabet::standard();
  search::ReinforceConfig cfg;
  cfg.budget = 1000;
  search::ReinforcePredictor pred(alphabet, cfg);
  const auto batch = pred.propose(8);
  pred.feedback(batch, std::vector<double>(batch.size(), 0.7));
  EXPECT_NEAR(pred.baseline(), 0.7, 1e-12);
  const auto batch2 = pred.propose(8);
  pred.feedback(batch2, std::vector<double>(batch2.size(), 0.3));
  EXPECT_LT(pred.baseline(), 0.7);
  EXPECT_GT(pred.baseline(), 0.3);
}

TEST(Reinforce, FeedbackValidatesSizes) {
  search::ReinforcePredictor pred(search::GateAlphabet::standard(), {});
  const auto batch = pred.propose(4);
  EXPECT_THROW(pred.feedback(batch, {1.0}), Error);
}

}  // namespace
