// Tensor-network simulator tests: tensor algebra, orderings, backends, and
// the key property — QTensor contraction agrees with the statevector oracle
// on random circuits, with and without the diagonal/lightcone optimizations.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/network.hpp"
#include "qtensor/ordering.hpp"
#include "qtensor/tensor.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using qtensor::Tensor;
using qtensor::VarId;
using linalg::cplx;

TEST(Tensor, ScalarRoundTrip) {
  const Tensor t = Tensor::scalar(cplx{2.0, -1.0});
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.scalar_value(), (cplx{2.0, -1.0}));
}

TEST(Tensor, RejectsBadData) {
  EXPECT_THROW(Tensor({0, 1}, {1.0, 2.0}), qarch::Error);          // size != 2^rank
  EXPECT_THROW(Tensor({0, 0}, {1., 2., 3., 4.}), qarch::Error);    // repeated label
}

TEST(Tensor, SumOverCollapsesOneIndex) {
  // T[a][b] with a outermost.
  const Tensor t({5, 9}, {1.0, 2.0, 3.0, 4.0});
  const Tensor over_a = t.sum_over(5);
  ASSERT_EQ(over_a.labels(), (std::vector<VarId>{9}));
  EXPECT_EQ(over_a.data()[0], cplx(4.0, 0.0));  // 1+3
  EXPECT_EQ(over_a.data()[1], cplx(6.0, 0.0));  // 2+4
  const Tensor over_b = t.sum_over(9);
  EXPECT_EQ(over_b.data()[0], cplx(3.0, 0.0));  // 1+2
  EXPECT_EQ(over_b.data()[1], cplx(7.0, 0.0));  // 3+4
}

TEST(Tensor, TransposeSwapsLayout) {
  const Tensor t({1, 2}, {1.0, 2.0, 3.0, 4.0});  // t[a][b]
  const Tensor tt = t.transposed({2, 1});        // tt[b][a]
  EXPECT_EQ(tt.data()[0], cplx(1.0, 0.0));
  EXPECT_EQ(tt.data()[1], cplx(3.0, 0.0));
  EXPECT_EQ(tt.data()[2], cplx(2.0, 0.0));
  EXPECT_EQ(tt.data()[3], cplx(4.0, 0.0));
}

TEST(Backend, ProductBroadcastsOverUnion) {
  // A[a] * B[b] over labels (a, b) = outer product.
  const Tensor a({0}, {2.0, 3.0});
  const Tensor b({1}, {5.0, 7.0});
  qtensor::SerialCpuBackend backend;
  const Tensor p = backend.product({&a, &b}, {0, 1});
  EXPECT_EQ(p.data()[0], cplx(10.0, 0.0));
  EXPECT_EQ(p.data()[1], cplx(14.0, 0.0));
  EXPECT_EQ(p.data()[2], cplx(15.0, 0.0));
  EXPECT_EQ(p.data()[3], cplx(21.0, 0.0));
}

TEST(Backend, SharedLabelProductIsElementwise) {
  const Tensor a({3}, {2.0, 3.0});
  const Tensor b({3}, {10.0, 100.0});
  qtensor::SerialCpuBackend backend;
  const Tensor p = backend.product({&a, &b}, {3});
  EXPECT_EQ(p.data()[0], cplx(20.0, 0.0));
  EXPECT_EQ(p.data()[1], cplx(300.0, 0.0));
}

TEST(Backend, ParallelMatchesSerial) {
  Rng rng(11);
  // Build a random rank-6 product from three rank-3 factors.
  auto random_tensor = [&](std::vector<VarId> labels) {
    std::vector<cplx> data(std::size_t{1} << labels.size());
    for (auto& x : data) x = cplx{rng.uniform(-1, 1), rng.uniform(-1, 1)};
    return Tensor(std::move(labels), std::move(data));
  };
  const Tensor t1 = random_tensor({0, 1, 2});
  const Tensor t2 = random_tensor({2, 3, 4});
  const Tensor t3 = random_tensor({4, 5, 0});
  const std::vector<VarId> out = {0, 1, 2, 3, 4, 5};
  qtensor::SerialCpuBackend serial;
  qtensor::ParallelCpuBackend par(4, /*parallel_threshold_rank=*/0);
  const Tensor ps = serial.product({&t1, &t2, &t3}, out);
  const Tensor pp = par.product({&t1, &t2, &t3}, out);
  EXPECT_LT(ps.distance(pp), 1e-12);
}

// ---------------------------------------------------------------------------
// Circuit-network equivalence against the statevector oracle.
// ---------------------------------------------------------------------------

circuit::Circuit random_circuit(std::size_t n, std::size_t gates, Rng& rng) {
  using circuit::GateKind;
  circuit::Circuit c(n);
  const GateKind one_q[] = {GateKind::H,  GateKind::X,  GateKind::RX,
                            GateKind::RY, GateKind::RZ, GateKind::P,
                            GateKind::S,  GateKind::T};
  const GateKind two_q[] = {GateKind::CX, GateKind::CZ, GateKind::RZZ};
  for (std::size_t i = 0; i < gates; ++i) {
    if (n >= 2 && rng.bernoulli(0.35)) {
      const GateKind k = two_q[rng.uniform_int(3)];
      std::size_t a = rng.uniform_int(n), b = rng.uniform_int(n);
      while (b == a) b = rng.uniform_int(n);
      circuit::ParamExpr param = circuit::is_parameterized(k)
                                     ? circuit::ParamExpr::constant_angle(
                                           rng.uniform(-3.0, 3.0))
                                     : circuit::ParamExpr::none();
      c.append({k, a, b, param});
    } else {
      const GateKind k = one_q[rng.uniform_int(8)];
      circuit::ParamExpr param = circuit::is_parameterized(k)
                                     ? circuit::ParamExpr::constant_angle(
                                           rng.uniform(-3.0, 3.0))
                                     : circuit::ParamExpr::none();
      c.append({k, rng.uniform_int(n), 0, param});
    }
  }
  return c;
}

struct EquivCase {
  bool diagonal_opt;
  bool lightcone;
  qtensor::OrderingAlgo ordering;
};

class NetworkEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(NetworkEquivalence, ZZExpectationMatchesStatevector) {
  const EquivCase param = GetParam();
  Rng rng(42);
  const sim::StatevectorSimulator sv;
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(3);  // 3..5 qubits
    const circuit::Circuit c = random_circuit(n, 12, rng);
    const std::size_t u = rng.uniform_int(n);
    std::size_t v = rng.uniform_int(n);
    while (v == u) v = rng.uniform_int(n);

    const sim::State state = sv.run_from_plus(c, {});
    const double expected = sim::expectation_zz(state, u, v);

    qtensor::QTensorOptions opt;
    opt.network.diagonal_optimization = param.diagonal_opt;
    opt.network.lightcone = param.lightcone;
    opt.ordering = param.ordering;
    const qtensor::QTensorSimulator qt(opt);
    const double got = qt.expectation_zz(c, {}, u, v);
    EXPECT_NEAR(got, expected, 1e-9)
        << "trial " << trial << " n=" << n << " u=" << u << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimizationModes, NetworkEquivalence,
    ::testing::Values(
        EquivCase{true, true, qtensor::OrderingAlgo::GreedyDegree},
        EquivCase{true, false, qtensor::OrderingAlgo::GreedyDegree},
        EquivCase{false, true, qtensor::OrderingAlgo::GreedyDegree},
        EquivCase{false, false, qtensor::OrderingAlgo::GreedyDegree},
        EquivCase{true, true, qtensor::OrderingAlgo::GreedyFill},
        EquivCase{true, true, qtensor::OrderingAlgo::Random},
        EquivCase{true, true, qtensor::OrderingAlgo::RandomRestart}));

TEST(NetworkEquivalenceAmplitude, MatchesStatevector) {
  Rng rng(7);
  const sim::StatevectorSimulator sv;
  const qtensor::QTensorSimulator qt;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(3);
    const circuit::Circuit c = random_circuit(n, 10, rng);
    const sim::State state = sv.run_from_plus(c, {});
    std::vector<int> bits(n);
    std::size_t idx = 0;
    for (std::size_t q = 0; q < n; ++q) {
      bits[q] = rng.bernoulli(0.5) ? 1 : 0;
      idx |= static_cast<std::size_t>(bits[q]) << q;
    }
    const cplx amp = qt.amplitude(c, {}, bits);
    EXPECT_NEAR(amp.real(), state[idx].real(), 1e-9);
    EXPECT_NEAR(amp.imag(), state[idx].imag(), 1e-9);
  }
}

TEST(Lightcone, DropsGatesOutsideCone) {
  using circuit::GateKind;
  // q0-q1 entangled; q3 has an isolated H that must be dropped for ZZ(0,1).
  circuit::Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.h(3);
  std::set<std::size_t> active;
  const circuit::Circuit lc = qtensor::lightcone_circuit(c, {0, 1}, &active);
  EXPECT_EQ(lc.num_gates(), 2u);
  EXPECT_TRUE(active.count(0) && active.count(1));
  EXPECT_FALSE(active.count(3));
}

TEST(Lightcone, ActivationPropagatesThroughTwoQubitGates) {
  circuit::Circuit c(3);
  c.h(2);        // inside: feeds cx(2,1) which feeds cx(1,0)
  c.cx(2, 1);
  c.cx(1, 0);
  std::set<std::size_t> active;
  const circuit::Circuit lc = qtensor::lightcone_circuit(c, {0}, &active);
  EXPECT_EQ(lc.num_gates(), 3u);
  EXPECT_EQ(active.size(), 3u);
}

TEST(Ordering, WidthNeverBelowLargestTensor) {
  Rng rng(3);
  const circuit::Circuit c = random_circuit(4, 14, rng);
  const auto net = qtensor::expectation_zz_network(c, {}, 0, 1);
  for (auto order : {qtensor::order_greedy_degree(net),
                     qtensor::order_greedy_fill(net)}) {
    const std::size_t w = qtensor::contraction_width(net, order);
    std::size_t max_rank = 0;
    for (const auto& t : net.tensors) max_rank = std::max(max_rank, t.rank());
    EXPECT_GE(w, max_rank);
  }
}

TEST(Ordering, GreedyBeatsOrMatchesRandomOnAverage) {
  Rng rng(5);
  double greedy_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 6; ++trial) {
    const circuit::Circuit c = random_circuit(5, 20, rng);
    const auto net = qtensor::expectation_zz_network(c, {}, 0, 1);
    greedy_total += static_cast<double>(qtensor::contraction_width(
        net, qtensor::order_greedy_degree(net)));
    Rng order_rng(trial);
    random_total += static_cast<double>(
        qtensor::contraction_width(net, qtensor::order_random(net, order_rng)));
  }
  EXPECT_LE(greedy_total, random_total);
}

TEST(Contraction, RejectsIncompleteOrder) {
  circuit::Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const auto net = qtensor::expectation_zz_network(c, {}, 0, 1);
  qtensor::SerialCpuBackend backend;
  EXPECT_THROW(qtensor::contract(net, {}, backend), qarch::Error);
}

TEST(DiagonalOptimization, ReducesNetworkSize) {
  // A circuit heavy in diagonal gates should produce a strictly smaller
  // network with the optimization on.
  circuit::Circuit c(4);
  for (std::size_t q = 0; q < 4; ++q) c.h(q);
  for (std::size_t q = 0; q + 1 < 4; ++q)
    c.rzz(q, q + 1, circuit::ParamExpr::constant_angle(0.7));
  for (std::size_t q = 0; q < 4; ++q)
    c.rz(q, circuit::ParamExpr::constant_angle(0.3));

  qtensor::NetworkOptions with;
  qtensor::NetworkOptions without;
  without.diagonal_optimization = false;
  const auto net_with = qtensor::expectation_zz_network(c, {}, 0, 3, with);
  const auto net_without =
      qtensor::expectation_zz_network(c, {}, 0, 3, without);
  EXPECT_LT(net_with.total_entries(), net_without.total_entries());
  EXPECT_LT(net_with.num_vars, net_without.num_vars);
}

}  // namespace
