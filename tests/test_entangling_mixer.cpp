// Entangling-ring mixer extension tests ("more complex models", paper §4).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/train.hpp"
#include "search/engine.hpp"

namespace {

using namespace qarch;
using circuit::GateKind;

TEST(EntanglingMixer, CzRingLayout) {
  const auto spec = qaoa::MixerSpec::parse("rx,cz");
  const auto layer = qaoa::build_mixer_circuit(5, spec);
  // 5 rx + 5 cz ring edges.
  EXPECT_EQ(layer.num_gates(), 10u);
  EXPECT_EQ(layer.two_qubit_gate_count(), 5u);
  // Ring wraps: an edge (4, 0) must exist.
  bool wrap = false;
  for (const auto& g : layer.gates())
    if (g.kind == GateKind::CZ && ((g.q0 == 4 && g.q1 == 0)))
      wrap = true;
  EXPECT_TRUE(wrap);
}

TEST(EntanglingMixer, TwoQubitRingOnTwoQubitsHasOneEdge) {
  const auto spec = qaoa::MixerSpec::parse("cz");
  const auto layer = qaoa::build_mixer_circuit(2, spec);
  EXPECT_EQ(layer.num_gates(), 1u);  // no duplicate (1, 0) edge
}

TEST(EntanglingMixer, RzzRingSharesBeta) {
  const auto spec = qaoa::MixerSpec::parse("rzz");
  const auto layer = qaoa::build_mixer_circuit(4, spec);
  EXPECT_EQ(layer.num_params(), 1u);
  for (const auto& g : layer.gates()) {
    EXPECT_EQ(g.kind, GateKind::RZZ);
    EXPECT_EQ(g.param.kind, circuit::ParamExpr::Kind::Symbol);
    EXPECT_DOUBLE_EQ(g.param.scale, 2.0);
  }
}

TEST(EntanglingMixer, TrainsEndToEnd) {
  Rng rng(77);
  const auto g = graph::random_regular(6, 3, rng);
  const auto mixer = qaoa::MixerSpec::parse("rx,cz,ry");
  const auto ansatz = qaoa::build_qaoa_circuit(g, 1, mixer);
  const qaoa::EnergyEvaluator ev(g, {});
  optim::CobylaConfig cc;
  cc.max_evals = 80;
  const auto trained = qaoa::train_qaoa(ansatz, ev, optim::Cobyla(cc));
  EXPECT_GT(trained.energy, 0.5 * graph::maxcut_exact(g).value);
}

TEST(EntanglingMixer, EnginesAgreeOnEntanglingLayers) {
  Rng rng(79);
  const auto g = graph::random_regular(6, 3, rng);
  const auto ansatz =
      qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::parse("rx,rzz"));
  const std::vector<double> theta{0.4, 0.3};
  qaoa::EnergyOptions sv;
  sv.engine = qaoa::EngineKind::Statevector;
  qaoa::EnergyOptions tn;
  tn.engine = qaoa::EngineKind::TensorNetwork;
  EXPECT_NEAR(qaoa::EnergyEvaluator(g, sv).energy(ansatz, theta),
              qaoa::EnergyEvaluator(g, tn).energy(ansatz, theta), 1e-8);
}

TEST(EntanglingMixer, SearchOverExtendedAlphabet) {
  Rng rng(83);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.alphabet = search::GateAlphabet{{GateKind::RX, GateKind::RY,
                                       GateKind::CZ, GateKind::RZZ}};
  cfg.session.backend = BackendChoice::Statevector;
  cfg.session.training_evals = 40;
  cfg.constraints.add(std::make_shared<search::TrainableConstraint>());
  const auto report = search::SearchEngine(cfg).run_exhaustive(g, 2);
  // 4 + 16 = 20 sequences minus untrainable ones ({cz}, {cz,cz}).
  EXPECT_EQ(report.num_candidates, 18u);
  EXPECT_GT(report.best.energy, 0.0);
}

TEST(EntanglingMixer, AlphabetParseAcceptsTwoQubitGates) {
  // GateAlphabet::parse still guards against two-qubit gates by default
  // contract; the constructor path allows them for the extension.
  EXPECT_THROW(search::GateAlphabet::parse("cz"), Error);
  const search::GateAlphabet a{{GateKind::RX, GateKind::CZ}};
  EXPECT_EQ(a.size(), 2u);
}

}  // namespace
