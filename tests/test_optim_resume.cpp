// Preemption/resume tests: every optimizer must continue BIT-IDENTICALLY
// after being preempted at any safe point, with its OptimState pushed
// through the JSON round-trip the evaluation service uses for on-disk
// checkpoints. The reference is an uninterrupted run of the same optimizer.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "optim/cobyla.hpp"
#include "optim/grid_search.hpp"
#include "optim/multistart.hpp"
#include "optim/nelder_mead.hpp"
#include "optim/spsa.hpp"
#include "search/report_io.hpp"

namespace {

using namespace qarch;

// Mildly multimodal, smooth, fully deterministic — enough structure to make
// every optimizer take real steps (reflections, contractions, trust-region
// shrinks) before its budget runs out.
double bumpy(std::span<const double> x) {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - 0.3 * static_cast<double>(i + 1);
    s += d * d - 0.2 * std::cos(3.0 * x[i]);
  }
  return s;
}

/// Fires at every poll. The progress guard means each minimize() entry still
/// makes >= 1 objective call, so this chops the run into the smallest
/// segments possible — the worst case for state packing.
class AlwaysStop final : public optim::PreemptToken {
 public:
  bool should_stop(std::size_t) override { return true; }
};

/// Fires once `period` objective calls have accumulated since the segment
/// started (counter deltas, tolerant of the multi-start per-restart reset).
class StopEvery final : public optim::PreemptToken {
 public:
  explicit StopEvery(std::size_t period) : period_(period) {}
  bool should_stop(std::size_t evaluations) override {
    seen_ += evaluations >= last_ ? evaluations - last_ : evaluations;
    last_ = evaluations;
    if (seen_ < period_) return false;
    seen_ = 0;
    return true;
  }

 private:
  std::size_t period_;
  std::size_t seen_ = 0;
  std::size_t last_ = 0;
};

/// Runs `opt` to completion under `token`, round-tripping the packed state
/// through JSON between every pair of segments. Returns the final result and
/// reports how many segments it took.
optim::OptimResult run_chopped(const optim::Optimizer& opt,
                               const std::vector<double>& x0,
                               optim::PreemptToken& token,
                               std::size_t& segments) {
  optim::OptimState state;
  for (segments = 1; segments < 100000; ++segments) {
    optim::OptimResult r = opt.minimize(bumpy, x0, state, &token);
    if (!r.preempted) {
      EXPECT_TRUE(state.fresh()) << opt.name()
                                 << ": state not cleared on completion";
      return r;
    }
    EXPECT_FALSE(state.fresh()) << opt.name()
                                << ": preempted without packing state";
    // The same serialization the eval service applies to checkpoints.
    state = search::optim_state_from_json(search::optim_state_to_json(state));
  }
  ADD_FAILURE() << opt.name() << " never completed under preemption";
  return {};
}

void expect_identical(const optim::OptimResult& plain,
                      const optim::OptimResult& chopped,
                      const std::string& who) {
  EXPECT_EQ(plain.evaluations, chopped.evaluations) << who;
  EXPECT_EQ(plain.value, chopped.value) << who;
  ASSERT_EQ(plain.x.size(), chopped.x.size()) << who;
  for (std::size_t i = 0; i < plain.x.size(); ++i)
    EXPECT_EQ(plain.x[i], chopped.x[i]) << who << " x[" << i << "]";
  ASSERT_EQ(plain.history.size(), chopped.history.size()) << who;
  for (std::size_t i = 0; i < plain.history.size(); ++i)
    EXPECT_EQ(plain.history[i], chopped.history[i])
        << who << " history[" << i << "]";
}

/// plain-vs-maximally-chopped equivalence for one optimizer.
void check_resume(const optim::Optimizer& opt, const std::vector<double>& x0) {
  const optim::OptimResult plain = opt.minimize(bumpy, x0);
  EXPECT_FALSE(plain.preempted);
  AlwaysStop token;
  std::size_t segments = 0;
  const optim::OptimResult chopped = run_chopped(opt, x0, token, segments);
  EXPECT_GT(segments, 1u) << opt.name() << ": preemption never fired";
  expect_identical(plain, chopped, opt.name());
}

TEST(OptimResume, CobylaBitIdentical) {
  optim::CobylaConfig cfg;
  cfg.max_evals = 120;
  check_resume(optim::Cobyla(cfg), {1.1, -0.8});
}

TEST(OptimResume, NelderMeadBitIdentical) {
  optim::NelderMeadConfig cfg;
  cfg.max_evals = 120;
  check_resume(optim::NelderMead(cfg), {1.1, -0.8, 0.4});
}

TEST(OptimResume, SpsaBitIdentical) {
  optim::SpsaConfig cfg;
  cfg.max_evals = 80;
  cfg.seed = 97;
  check_resume(optim::Spsa(cfg), {0.9, -0.5});
}

TEST(OptimResume, GridSearchBitIdentical) {
  optim::GridSearchConfig cfg;
  cfg.points_per_axis = 7;
  check_resume(optim::GridSearch(cfg), {0.0, 0.0});
}

TEST(OptimResume, MultiStartBitIdentical) {
  optim::MultiStartConfig cfg;
  cfg.restarts = 3;
  cfg.total_evals = 90;
  const optim::MultiStart opt(
      [](std::size_t budget) {
        optim::CobylaConfig base;
        base.max_evals = budget;
        return std::make_unique<optim::Cobyla>(base);
      },
      cfg);
  check_resume(opt, {0.6, -0.4});
}

// A coarser cadence exercises a different set of safe points than the
// every-poll chop, including preemption landing mid-restart in multi-start.
TEST(OptimResume, PeriodicPreemptionAlsoBitIdentical) {
  optim::MultiStartConfig cfg;
  cfg.restarts = 4;
  cfg.total_evals = 120;
  cfg.seed = 5;
  const optim::MultiStart opt(
      [](std::size_t budget) {
        optim::NelderMeadConfig base;
        base.max_evals = budget;
        return std::make_unique<optim::NelderMead>(base);
      },
      cfg);
  const std::vector<double> x0 = {0.2, 0.7};
  const optim::OptimResult plain = opt.minimize(bumpy, x0);
  for (const std::size_t period : {3u, 7u, 17u}) {
    StopEvery token(period);
    std::size_t segments = 0;
    const optim::OptimResult chopped = run_chopped(opt, x0, token, segments);
    expect_identical(plain, chopped,
                     "multi-start/nm period=" + std::to_string(period));
  }
}

TEST(OptimResume, ManualPreemptReportsPartialProgress) {
  optim::CobylaConfig cfg;
  cfg.max_evals = 200;
  const optim::Cobyla opt(cfg);
  optim::ManualPreempt token;
  token.request_stop();
  optim::OptimState state;
  const auto r = opt.minimize(bumpy, {1.0, 1.0}, state, &token);
  EXPECT_TRUE(r.preempted);
  EXPECT_GE(r.evaluations, 1u);  // progress guard: never a zero-work segment
  EXPECT_LT(r.evaluations, cfg.max_evals);
  EXPECT_EQ(r.history.size(), r.evaluations);
  EXPECT_EQ(state.evaluations, r.evaluations);
  EXPECT_FALSE(state.fresh());
}

}  // namespace
