// Compiled simulation plans: randomized equivalence of the specialized
// kernels (diagonal streaming, single-qubit fusion, cached/rebindable
// matrices, batched ZZ sweep) against the naive per-gate reference path,
// across qubit counts 2..12 and worker counts 1 and 4.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "search/evaluator.hpp"
#include "sim/sim_program.hpp"
#include "sim/state_utils.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;

/// Random circuit over `n` qubits with `num_params` shared symbolic
/// parameters, drawing gates from `pool` with a mix of constant and
/// symbolic angles.
Circuit random_circuit(Rng& rng, std::size_t n, std::size_t gates,
                       std::size_t num_params,
                       std::span<const GateKind> pool) {
  Circuit c(n, num_params);
  for (std::size_t i = 0; i < gates; ++i) {
    const GateKind k = pool[rng.uniform_int(pool.size())];
    ParamExpr param = ParamExpr::none();
    if (circuit::is_parameterized(k)) {
      if (num_params > 0 && rng.bernoulli(0.5))
        param = ParamExpr::symbol(rng.uniform_int(num_params),
                                  rng.uniform(-2.0, 2.0));
      else
        param = ParamExpr::constant_angle(rng.uniform(-3.0, 3.0));
    }
    if (circuit::is_two_qubit(k)) {
      std::size_t a = rng.uniform_int(n), b = rng.uniform_int(n);
      while (b == a) b = rng.uniform_int(n);
      c.append({k, a, b, param});
    } else {
      c.append({k, rng.uniform_int(n), 0, param});
    }
  }
  return c;
}

constexpr GateKind kFullPool[] = {
    GateKind::I,  GateKind::X,   GateKind::Y,   GateKind::Z,   GateKind::H,
    GateKind::S,  GateKind::Sdg, GateKind::T,   GateKind::Tdg, GateKind::RX,
    GateKind::RY, GateKind::RZ,  GateKind::P,   GateKind::CX,  GateKind::CZ,
    GateKind::SWAP, GateKind::RZZ};

constexpr GateKind kDiagonalPool[] = {
    GateKind::Z,  GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg,
    GateKind::RZ, GateKind::P, GateKind::CZ,  GateKind::RZZ};

void expect_states_close(const sim::State& a, const sim::State& b,
                         double tol, const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_NEAR(std::abs(a[i] - b[i]), 0.0, tol)
        << context << " amplitude " << i;
}

TEST(SimProgram, CompiledPlanMatchesNaivePerGateApply) {
  Rng rng(101);
  const sim::StatevectorSimulator naive(1);
  for (int trial = 0; trial < 24; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(11);  // 2..12
    const std::size_t num_params = 3;
    const auto c = random_circuit(rng, n, 30, num_params, kFullPool);
    std::vector<double> theta(num_params);
    for (auto& t : theta) t = rng.uniform(-3.0, 3.0);

    const auto expected = naive.run_from_plus(c, theta);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      sim::PlanOptions opt;  // all specializations on
      opt.parallel_threshold_qubits = 2;  // force the parallel kernels
      const sim::SimProgram program(c, opt);
      const auto got = program.run_from_plus(theta, workers);
      expect_states_close(got, expected, 1e-10,
                          "trial " + std::to_string(trial) + " workers " +
                              std::to_string(workers));
    }
    // The fully de-specialized plan configuration replays the same circuit
    // through per-gate dense scalar kernels — identical unitary.
    const sim::SimProgram plain(c, sim::PlanOptions::generic());
    EXPECT_EQ(plain.stats().diag1_ops + plain.stats().diag2_ops +
                  plain.stats().diag_table_ops,
              0u);
    expect_states_close(plain.run_from_plus(theta), expected, 1e-10,
                        "generic trial " + std::to_string(trial));
  }
}

TEST(SimProgram, DiagonalKernelsMatchGenericKernels) {
  Rng rng(202);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(11);  // 2..12
    const auto c = random_circuit(rng, n, 25, 2, kDiagonalPool);
    const std::vector<double> theta = {rng.uniform(-3.0, 3.0),
                                       rng.uniform(-3.0, 3.0)};

    sim::PlanOptions diag;
    diag.diagonal_kernels = true;
    diag.fuse_single_qubit = false;
    diag.presimplify = false;
    diag.phase_tables = false;  // compare the per-gate streaming kernels
    diag.parallel_threshold_qubits = 2;
    sim::PlanOptions generic = diag;
    generic.diagonal_kernels = false;

    const sim::SimProgram with_diag(c, diag);
    const sim::SimProgram without_diag(c, generic);
    // The diagonal program streams phases; the generic one runs the full
    // pair/quad gather kernels. Identical unitaries either way.
    EXPECT_GT(with_diag.stats().diag1_ops + with_diag.stats().diag2_ops, 0u);
    EXPECT_EQ(without_diag.stats().diag1_ops, 0u);
    EXPECT_EQ(without_diag.stats().diag2_ops, 0u);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      expect_states_close(with_diag.run_from_plus(theta, workers),
                          without_diag.run_from_plus(theta, workers), 1e-10,
                          "trial " + std::to_string(trial));
    }
  }
}

TEST(SimProgram, FusionTogglesPreserveTheState) {
  Rng rng(303);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(11);
    const auto c = random_circuit(rng, n, 40, 2, kFullPool);
    const std::vector<double> theta = {0.3, -1.1};

    sim::PlanOptions fused;
    fused.parallel_threshold_qubits = 2;
    sim::PlanOptions unfused = fused;
    unfused.fuse_single_qubit = false;
    unfused.presimplify = false;

    const sim::SimProgram a(c, fused);
    const sim::SimProgram b(c, unfused);
    EXPECT_LE(a.stats().ops, b.stats().ops);
    expect_states_close(a.run_from_plus(theta, 1), b.run_from_plus(theta, 4),
                        1e-10, "trial " + std::to_string(trial));
  }
}

TEST(SimProgram, RebindsParameterizedOpsAcrossThetas) {
  Rng rng(404);
  const auto c = random_circuit(rng, 6, 30, 4, kFullPool);
  const sim::SimProgram program(c);
  const sim::StatevectorSimulator naive(1);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> theta(4);
    for (auto& t : theta) t = rng.uniform(-3.0, 3.0);
    expect_states_close(program.run_from_plus(theta),
                        naive.run_from_plus(c, theta), 1e-10,
                        "rebind rep " + std::to_string(rep));
  }
}

TEST(SimProgram, QaoaAnsatzCompilesToStreamingCostLayer) {
  Rng rng(7);
  const auto g = graph::random_regular(10, 4, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::qnas());
  const sim::SimProgram program(c);
  const auto& stats = program.stats();
  // Nothing in the QAOA ansatz needs the dense 4x4 kernel, and each cost
  // layer (one shared γ_l across its RZZ gates) folds into ONE phase-table
  // pass per layer.
  EXPECT_EQ(stats.two_ops, 0u);
  EXPECT_EQ(stats.diag_table_ops, 2u);
  // The rx·ry mixer runs fuse into one 2x2 per qubit per layer.
  EXPECT_GT(stats.fused_gates, 0u);
  EXPECT_LT(stats.ops, c.num_gates());

  // The folded program still matches the naive reference path.
  const sim::StatevectorSimulator naive(1);
  const std::vector<double> theta = {0.7, -0.4, 1.2, 0.3};
  expect_states_close(program.run_from_plus(theta),
                      naive.run_from_plus(c, theta), 1e-10, "qaoa ansatz");
}

TEST(SimProgram, PhaseTablesMatchPerGateDiagonalKernels) {
  Rng rng(909);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(11);
    // One shared symbol keeps every diagonal run table-eligible.
    const auto c = random_circuit(rng, n, 30, 1, kDiagonalPool);
    const std::vector<double> theta = {rng.uniform(-3.0, 3.0)};

    sim::PlanOptions tables;
    tables.parallel_threshold_qubits = 2;
    sim::PlanOptions no_tables = tables;
    no_tables.phase_tables = false;

    const sim::SimProgram folded(c, tables);
    const sim::SimProgram unfolded(c, no_tables);
    EXPECT_GT(folded.stats().diag_table_ops, 0u) << "trial " << trial;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}})
      expect_states_close(folded.run_from_plus(theta, workers),
                          unfolded.run_from_plus(theta, workers), 1e-10,
                          "trial " + std::to_string(trial));
  }
}

TEST(BatchedZZ, MatchesPerEdgeExpectationOnRandomStates) {
  Rng rng(505);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(11);  // 2..12
    const auto c = random_circuit(rng, n, 25, 0, kFullPool);
    const sim::StatevectorSimulator sv(1);
    const auto state = sv.run_from_plus(c, {});

    std::vector<sim::ZZPair> pairs;
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = u + 1; v < n; ++v) pairs.push_back({u, v});

    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      const auto batched =
          sim::batched_expectation_zz(state, pairs, workers,
                                      /*parallel_threshold_qubits=*/2);
      ASSERT_EQ(batched.size(), pairs.size());
      for (std::size_t k = 0; k < pairs.size(); ++k)
        EXPECT_NEAR(batched[k],
                    sim::expectation_zz(state, pairs[k].u, pairs[k].v), 1e-10)
            << "trial " << trial << " pair " << k << " workers " << workers;
    }
  }
}

TEST(BatchedZZ, OneSweepTotalVersusOnePerEdge) {
  const auto state = sim::plus_state(6);
  const std::vector<sim::ZZPair> pairs = {{0, 1}, {1, 2}, {2, 3}, {4, 5}};

  sim::reset_expectation_sweep_count();
  for (const auto& p : pairs) sim::expectation_zz(state, p.u, p.v);
  EXPECT_EQ(sim::expectation_sweep_count(), pairs.size());

  sim::reset_expectation_sweep_count();
  const auto zz = sim::batched_expectation_zz(state, pairs);
  EXPECT_EQ(sim::expectation_sweep_count(), 1u);
  EXPECT_EQ(zz.size(), pairs.size());
}

TEST(EnergyPlan, CompiledStatevectorPlanMatchesLegacyPath) {
  Rng rng(606);
  const auto g = graph::random_regular(8, 3, rng);

  qaoa::EnergyOptions compiled;
  compiled.engine = qaoa::EngineKind::Statevector;
  compiled.inner_workers = 4;
  compiled.sv_plan.parallel_threshold_qubits = 2;  // exercise threading

  qaoa::EnergyOptions legacy;
  legacy.engine = qaoa::EngineKind::Statevector;
  legacy.sv_compile_plan = false;
  legacy.sv_batch_expectations = false;

  const qaoa::EnergyEvaluator fast(g, compiled);
  const qaoa::EnergyEvaluator slow(g, legacy);
  for (const std::size_t p : {std::size_t{1}, std::size_t{2}}) {
    const auto ansatz = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
    const auto fast_plan = fast.make_plan(ansatz);
    const auto slow_plan = slow.make_plan(ansatz);
    for (int rep = 0; rep < 4; ++rep) {
      std::vector<double> theta(ansatz.num_params());
      for (auto& t : theta) t = rng.uniform(-2.0, 2.0);
      EXPECT_NEAR(fast_plan->energy(theta), slow_plan->energy(theta), 1e-10);
      const auto fz = fast_plan->zz_expectations(theta);
      const auto sz = slow_plan->zz_expectations(theta);
      ASSERT_EQ(fz.size(), sz.size());
      for (std::size_t k = 0; k < fz.size(); ++k)
        EXPECT_NEAR(fz[k], sz[k], 1e-10) << "term " << k;
    }
  }
}

TEST(SimProgram, CacheBlockedReplayMatchesUnblocked) {
  // Tiny block_qubits force real multi-block replay on small states; every
  // op class (diagonal tables, streaming diagonals, fused singles, dense
  // twos) must land in the right slice with the right global base.
  Rng rng(808);
  for (int trial = 0; trial < 16; ++trial) {
    const std::size_t n = 4 + rng.uniform_int(7);  // 4..10
    const auto c = random_circuit(rng, n, 35, 2, kFullPool);
    const std::vector<double> theta = {rng.uniform(-3.0, 3.0),
                                       rng.uniform(-3.0, 3.0)};

    sim::PlanOptions blocked;
    blocked.block_qubits = 2 + rng.uniform_int(3);  // 2..4
    blocked.parallel_threshold_qubits = 2;
    sim::PlanOptions unblocked = blocked;
    unblocked.cache_blocking = false;

    const sim::SimProgram a(c, blocked);
    const sim::SimProgram b(c, unblocked);
    EXPECT_GE(a.stats().memory_passes, 1u);
    EXPECT_LE(a.stats().memory_passes, b.stats().memory_passes);
    for (const std::size_t workers : {std::size_t{1}, std::size_t{4}})
      expect_states_close(a.run_from_plus(theta, workers),
                          b.run_from_plus(theta, 1), 1e-10,
                          "trial " + std::to_string(trial) + " workers " +
                              std::to_string(workers));
  }
}

TEST(SimProgram, SimdToggleLeavesReplayEquivalent) {
  // The scalar and AVX2 multiplicative bodies share operation order, so a
  // whole compiled replay agrees across the toggle to compiler-contraction
  // noise (bit-for-bit on builds where the scalar bodies are not
  // FMA-contracted, e.g. the default no -mfma build).
  Rng rng(909);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(9);
    const auto c = random_circuit(rng, n, 30, 2, kFullPool);
    const std::vector<double> theta = {0.9, -0.2};
    sim::PlanOptions simd_on;
    sim::PlanOptions simd_off = simd_on;
    simd_off.simd = false;
    const sim::SimProgram a(c, simd_on);
    const sim::SimProgram b(c, simd_off);
    expect_states_close(a.run_from_plus(theta), b.run_from_plus(theta), 1e-12,
                        "simd toggle trial " + std::to_string(trial));
  }
}

TEST(PlanReuse, EvaluatorCachesOneCompilationPerStructure) {
  Rng rng(111);
  const auto g = graph::random_regular(8, 3, rng);
  qaoa::EnergyOptions opt;
  opt.engine = qaoa::EngineKind::Statevector;
  const qaoa::EnergyEvaluator ev(g, opt);
  const auto ansatz = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::qnas());

  sim::reset_program_compile_count();
  const auto p1 = ev.plan_for(ansatz);
  const auto p2 = ev.plan_for(ansatz);
  EXPECT_EQ(p1.get(), p2.get());  // same shared plan, not a copy
  EXPECT_EQ(sim::program_compile_count(), 1u);

  // A structurally different ansatz compiles separately...
  const auto other = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::baseline());
  const auto p3 = ev.plan_for(other);
  EXPECT_NE(p3.get(), p1.get());
  EXPECT_EQ(sim::program_compile_count(), 2u);
  // ...and re-requesting the first structure still hits the cache.
  (void)ev.plan_for(ansatz);
  EXPECT_EQ(sim::program_compile_count(), 2u);

  // One-shot energies run through the cache too (landscape-scan pattern).
  const std::vector<double> theta(ansatz.num_params(), 0.4);
  (void)ev.energy(ansatz, theta);
  (void)ev.energy(ansatz, theta);
  EXPECT_EQ(sim::program_compile_count(), 2u);
}

TEST(PlanReuse, MultistartRestartsShareOnePlanAndStayDeterministic) {
  Rng rng(222);
  const auto g = graph::random_regular(8, 3, rng);
  search::EvaluatorOptions opt;
  opt.energy.engine = qaoa::EngineKind::Statevector;
  opt.cobyla.max_evals = 40;
  opt.restarts = 3;
  const search::Evaluator evaluator(g, opt);

  sim::reset_program_compile_count();
  const auto r1 = evaluator.evaluate(qaoa::MixerSpec::qnas(), 2);
  EXPECT_EQ(sim::program_compile_count(), 1u)
      << "all multistart restarts must share one compilation";

  // Bit-identical energies on re-evaluation: the cached plan plus the seeded
  // restart stream make the whole training run deterministic.
  const auto r2 = evaluator.evaluate(qaoa::MixerSpec::qnas(), 2);
  EXPECT_EQ(r1.energy, r2.energy);
  ASSERT_EQ(r1.theta.size(), r2.theta.size());
  for (std::size_t i = 0; i < r1.theta.size(); ++i)
    EXPECT_EQ(r1.theta[i], r2.theta[i]) << "theta " << i;
  // The shared budget was respected (restarts may converge a step early).
  EXPECT_GT(r1.evaluations, 0u);
  EXPECT_LE(r1.evaluations, 40u);
}

TEST(PlanReuse, EvaluatorOptionsRoundTripThroughEffectiveEnergy) {
  search::EvaluatorOptions opt;
  opt.energy.inner_workers = 3;
  opt.energy.sv_plan.block_qubits = 12;
  opt.energy.sv_plan.simd = false;
  opt.energy.plan_cache_capacity = 5;

  // The ONE reconciliation: evaluator-level presimplify wins...
  opt.simplify_circuit = true;
  const auto eff = opt.effective_energy();
  EXPECT_FALSE(eff.sv_plan.presimplify);
  // ...everything else passes through untouched.
  EXPECT_EQ(eff.inner_workers, 3u);
  EXPECT_EQ(eff.sv_plan.block_qubits, 12u);
  EXPECT_FALSE(eff.sv_plan.simd);
  EXPECT_EQ(eff.plan_cache_capacity, 5u);

  // Without evaluator pre-simplification the plan toggle survives as set.
  opt.simplify_circuit = false;
  opt.energy.sv_plan.presimplify = true;
  EXPECT_TRUE(opt.effective_energy().sv_plan.presimplify);

  // And the stored options are what the caller set, not a normalized copy.
  Rng rng(333);
  const auto g = graph::random_regular(6, 3, rng);
  opt.simplify_circuit = true;
  const search::Evaluator evaluator(g, opt);
  EXPECT_TRUE(evaluator.options().energy.sv_plan.presimplify);
  EXPECT_EQ(evaluator.options().energy.inner_workers, 3u);
}

TEST(EnergyPlan, EmptyEdgeCasesAreHandled) {
  // A gateless circuit compiles to an empty program that leaves |+> alone.
  const Circuit empty(3);
  const sim::SimProgram program(empty);
  EXPECT_EQ(program.stats().ops, 0u);
  const auto state = program.run_from_plus({});
  for (const auto& a : state)
    EXPECT_NEAR(std::abs(a), 1.0 / std::sqrt(8.0), 1e-12);
  // Batched sweep with no pairs returns an empty vector.
  EXPECT_TRUE(sim::batched_expectation_zz(state, {}).empty());
}

}  // namespace
