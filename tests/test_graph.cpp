// Tests for the graph library: structure, generators, max-cut solvers.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/maxcut.hpp"

namespace {

using namespace qarch;
using graph::Graph;

TEST(Graph, BasicConstruction) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2, 2.5);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 3.5);
}

TEST(Graph, RejectsInvalidEdges) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 0), Error);   // self-loop
  EXPECT_THROW(g.add_edge(0, 5), Error);   // out of range
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), Error);   // duplicate
}

TEST(Graph, CutValueCountsCrossingEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  // Alternating assignment cuts all 4 edges of the 4-cycle.
  EXPECT_DOUBLE_EQ(g.cut_value({1, -1, 1, -1}), 4.0);
  EXPECT_DOUBLE_EQ(g.cut_value({1, 1, 1, 1}), 0.0);
  EXPECT_THROW(g.cut_value({1, 1}), Error);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(Graph(0).is_connected());
}

TEST(Generators, ErdosRenyiEdgeCountMatchesProbability) {
  Rng rng(17);
  const std::size_t n = 40;
  const double p = 0.3;
  double total_edges = 0.0;
  const int reps = 20;
  for (int i = 0; i < reps; ++i)
    total_edges += static_cast<double>(graph::erdos_renyi(n, p, rng).num_edges());
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total_edges / reps, expected, expected * 0.15);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(1);
  EXPECT_EQ(graph::erdos_renyi(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(graph::erdos_renyi(10, 1.0, rng).num_edges(), 45u);
  EXPECT_THROW(graph::erdos_renyi(10, 1.5, rng), Error);
}

TEST(Generators, ConnectedVariantIsConnected) {
  Rng rng(23);
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(graph::erdos_renyi_connected(10, 0.4, rng).is_connected());
}

TEST(Generators, RandomRegularHasExactDegrees) {
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::random_regular(10, 4, rng);
    EXPECT_EQ(g.num_edges(), 20u);
    for (std::size_t v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 4u);
  }
}

TEST(Generators, RandomRegularRejectsInfeasible) {
  Rng rng(1);
  EXPECT_THROW(graph::random_regular(5, 3, rng), Error);   // odd n*d
  EXPECT_THROW(graph::random_regular(4, 4, rng), Error);   // d >= n
}

TEST(Generators, DatasetsHaveRequestedShape) {
  Rng rng(3);
  const auto er = graph::er_dataset(5, 10, 0.3, 0.7, rng);
  EXPECT_EQ(er.size(), 5u);
  for (const auto& g : er) {
    EXPECT_EQ(g.num_vertices(), 10u);
    EXPECT_TRUE(g.is_connected());
  }
  const auto reg = graph::regular_dataset(5, 10, 4, rng);
  EXPECT_EQ(reg.size(), 5u);
  for (const auto& g : reg) EXPECT_EQ(g.num_edges(), 20u);
}

TEST(MaxCut, ExactOnKnownGraphs) {
  // Triangle: best cut = 2.
  Graph tri(3);
  tri.add_edge(0, 1);
  tri.add_edge(1, 2);
  tri.add_edge(0, 2);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(tri).value, 2.0);

  // Even cycle: all edges cut.
  Graph c4(4);
  c4.add_edge(0, 1);
  c4.add_edge(1, 2);
  c4.add_edge(2, 3);
  c4.add_edge(3, 0);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(c4).value, 4.0);

  // Complete bipartite K23 is fully cuttable: 6 edges.
  Graph k23(5);
  for (std::size_t a = 0; a < 2; ++a)
    for (std::size_t b = 2; b < 5; ++b) k23.add_edge(a, b);
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(k23).value, 6.0);
}

TEST(MaxCut, ExactWitnessIsConsistent) {
  Rng rng(41);
  for (int t = 0; t < 5; ++t) {
    const Graph g = graph::erdos_renyi_connected(9, 0.4, rng);
    const auto r = graph::maxcut_exact(g);
    EXPECT_DOUBLE_EQ(g.cut_value(r.assignment), r.value);
  }
}

TEST(MaxCut, WeightedEdgesRespected) {
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  // Best: separate the heavy edge; cut = 10 + 1 = 11.
  EXPECT_DOUBLE_EQ(graph::maxcut_exact(g).value, 11.0);
}

TEST(MaxCut, HeuristicsNeverBeatExactAndAreConsistent) {
  Rng rng(51);
  for (int t = 0; t < 8; ++t) {
    const Graph g = graph::erdos_renyi_connected(10, 0.5, rng);
    const double exact = graph::maxcut_exact(g).value;
    const auto greedy = graph::maxcut_greedy(g);
    const auto local = graph::maxcut_local_search(g);
    Rng ms_rng(t);
    const auto multi = graph::maxcut_multistart(g, 20, ms_rng);
    EXPECT_LE(greedy.value, exact);
    EXPECT_LE(local.value, exact);
    EXPECT_LE(multi.value, exact);
    EXPECT_GE(local.value, greedy.value);   // local search starts from greedy
    EXPECT_DOUBLE_EQ(g.cut_value(multi.assignment), multi.value);
    // Multi-start local search is near-exact at this size.
    EXPECT_GE(multi.value, 0.9 * exact);
  }
}

TEST(MaxCut, LocalSearchIsOneFlipOptimal) {
  Rng rng(61);
  const Graph g = graph::erdos_renyi_connected(10, 0.5, rng);
  auto r = graph::maxcut_local_search(g);
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    auto z = r.assignment;
    z[v] = -z[v];
    EXPECT_LE(g.cut_value(z), r.value);
  }
}

}  // namespace
