// Tests for MLP serialization and statevector utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/serialize.hpp"
#include "search/rl_predictor.hpp"
#include "sim/state_utils.hpp"

namespace {

using namespace qarch;
using nn::Activation;
using nn::Mlp;

TEST(MlpSerialize, JsonRoundTripExactWeights) {
  Rng rng(3);
  Mlp original({3, 7, 2}, {Activation::Tanh, Activation::Identity}, rng);
  const json::Value checkpoint = nn::mlp_to_json(original);

  Rng rng2(99);  // different init — must be fully overwritten
  Mlp restored({3, 7, 2}, {Activation::Tanh, Activation::Identity}, rng2);
  nn::mlp_from_json(checkpoint, restored);

  const std::vector<double> x{0.3, -0.4, 0.9};
  const auto ya = original.forward(x);
  const auto yb = restored.forward(x);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya[i], yb[i]);
}

TEST(MlpSerialize, FileRoundTrip) {
  Rng rng(5);
  Mlp model({2, 4, 3}, {Activation::Relu, Activation::Identity}, rng);
  const std::string path = "/tmp/qarch_mlp_test.json";
  nn::save_mlp(model, path);
  Rng rng2(6);
  Mlp loaded({2, 4, 3}, {Activation::Relu, Activation::Identity}, rng2);
  nn::load_mlp(path, loaded);
  std::filesystem::remove(path);
  EXPECT_EQ(model.forward({0.1, 0.2}), loaded.forward({0.1, 0.2}));
}

TEST(MlpSerialize, RejectsShapeMismatch) {
  Rng rng(7);
  const Mlp small({2, 3, 1}, {Activation::Tanh, Activation::Identity}, rng);
  Mlp big({2, 5, 1}, {Activation::Tanh, Activation::Identity}, rng);
  EXPECT_THROW(nn::mlp_from_json(nn::mlp_to_json(small), big), Error);
  json::Value junk = json::Value::object();
  junk.set("format", "other");
  EXPECT_THROW(nn::mlp_from_json(junk, big), Error);
}

TEST(StateUtils, OverlapAndFidelity) {
  const auto zero = sim::zero_state(2);
  const auto plus = sim::plus_state(2);
  EXPECT_NEAR(sim::fidelity(zero, zero), 1.0, 1e-12);
  EXPECT_NEAR(sim::fidelity(zero, plus), 0.25, 1e-12);  // |<00|++>|^2
  EXPECT_NEAR(std::abs(sim::overlap(plus, zero)), 0.5, 1e-12);
}

TEST(StateUtils, MeasureCollapsesAndNormalizes) {
  // Bell state: measuring q0 forces q1 to the same value.
  circuit::Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const sim::StatevectorSimulator sv;
  Rng rng(11);
  int ones = 0;
  for (int t = 0; t < 200; ++t) {
    auto state = sv.run(c, {}, sim::zero_state(2));
    const int b0 = sim::measure_qubit(state, 0, rng);
    EXPECT_NEAR(linalg::norm(state), 1.0, 1e-12);
    const int b1 = sim::measure_qubit(state, 1, rng);
    EXPECT_EQ(b0, b1);  // perfectly correlated
    ones += b0;
  }
  EXPECT_GT(ones, 60);   // both outcomes occur
  EXPECT_LT(ones, 140);
}

TEST(StateUtils, EntropyExtremes) {
  EXPECT_NEAR(sim::measurement_entropy(sim::zero_state(3)), 0.0, 1e-12);
  EXPECT_NEAR(sim::measurement_entropy(sim::plus_state(3)), 3.0, 1e-12);
}

TEST(StateUtils, TotalVariationDistance) {
  const auto zero = sim::zero_state(1);
  sim::State one{{0.0, 0.0}, {1.0, 0.0}};
  EXPECT_NEAR(sim::total_variation_distance(zero, one), 1.0, 1e-12);
  EXPECT_NEAR(sim::total_variation_distance(zero, zero), 0.0, 1e-12);
  const auto plus = sim::plus_state(1);
  EXPECT_NEAR(sim::total_variation_distance(zero, plus), 0.5, 1e-12);
}

TEST(ControllerCheckpoint, WarmPolicySurvivesSaveLoadViaJson) {
  // Train a controller on a bandit, checkpoint its policy conceptually by
  // verifying the serialization layer handles a controller-size network.
  Rng rng(13);
  Mlp policy({10, 32, 6}, {Activation::Tanh, Activation::Identity}, rng);
  const auto checkpoint = nn::mlp_to_json(policy);
  EXPECT_EQ(checkpoint.at("layers").size(), 2u);
  Rng rng2(14);
  Mlp restored({10, 32, 6}, {Activation::Tanh, Activation::Identity}, rng2);
  nn::mlp_from_json(checkpoint, restored);
  const std::vector<double> probe(10, 0.1);
  EXPECT_EQ(policy.forward(probe), restored.forward(probe));
}

}  // namespace
