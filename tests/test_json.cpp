// JSON value model, serializer, and parser tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

using namespace qarch;
using json::Value;

TEST(Json, ScalarConstruction) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_THROW(Value(1.0).as_string(), Error);
  EXPECT_THROW(Value("x").as_number(), Error);
}

TEST(Json, ArrayAndObjectBuilding) {
  Value arr = Value::array();
  arr.push_back(1);
  arr.push_back("two");
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_DOUBLE_EQ(arr.at(0).as_number(), 1.0);
  EXPECT_THROW(arr.at(5), Error);

  Value obj = Value::object();
  obj.set("k", 3.0);
  EXPECT_TRUE(obj.contains("k"));
  EXPECT_FALSE(obj.contains("missing"));
  EXPECT_THROW(obj.at("missing"), Error);
  EXPECT_THROW(obj.push_back(1), Error);  // not an array
}

TEST(Json, CompactDump) {
  Value obj = Value::object();
  obj.set("a", 1);
  obj.set("b", Value::array());
  obj.set("s", "x\"y\n");
  obj.set("t", true);
  obj.set("n", nullptr);
  EXPECT_EQ(obj.dump(), R"({"a":1,"b":[],"n":null,"s":"x\"y\n","t":true})");
}

TEST(Json, PrettyDumpIsReparseable) {
  Value obj = Value::object();
  Value inner = Value::array();
  inner.push_back(1.5);
  inner.push_back(false);
  obj.set("list", std::move(inner));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const Value back = json::parse(pretty);
  EXPECT_DOUBLE_EQ(back.at("list").at(0).as_number(), 1.5);
  EXPECT_EQ(back.at("list").at(1).as_bool(), false);
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_EQ(json::parse("true").as_bool(), true);
  EXPECT_EQ(json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(json::parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(json::parse("\"hello\"").as_string(), "hello");
}

TEST(Json, ParseNested) {
  const Value v = json::parse(
      R"({"name":"run","values":[1,2,3],"meta":{"ok":true,"tag":null}})");
  EXPECT_EQ(v.at("name").as_string(), "run");
  EXPECT_EQ(v.at("values").size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("values").at(2).as_number(), 3.0);
  EXPECT_TRUE(v.at("meta").at("ok").as_bool());
  EXPECT_TRUE(v.at("meta").at("tag").is_null());
}

TEST(Json, ParseEscapes) {
  const Value v = json::parse(R"("a\"b\\c\nA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nA");
}

TEST(Json, RoundTripPreservesNumbers) {
  for (double x : {0.0, -1.0, 3.14159265358979, 1e-12, 123456789.0}) {
    const Value v = json::parse(Value(x).dump());
    EXPECT_DOUBLE_EQ(v.as_number(), x);
  }
}

TEST(Json, ParseErrorsAreDescriptive) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "{'a':1}",
        "[1 2]", "{\"a\":1,}"}) {
    EXPECT_THROW(json::parse(bad), Error) << "input: " << bad;
  }
  EXPECT_THROW(json::parse("[1] trailing"), Error);
}

TEST(Json, WhitespaceTolerant) {
  const Value v = json::parse("  {\n\t\"a\" :\t[ 1 ,\n 2 ]\n}  ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

}  // namespace
