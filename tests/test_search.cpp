// Search package tests: alphabet, combinations, QBuilder, evaluator,
// predictors, and the Algorithm-1 engine (serial == parallel, best found).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "search/combinations.hpp"
#include "search/engine.hpp"
#include "search/evaluator.hpp"
#include "search/predictor.hpp"
#include "search/qbuilder.hpp"

namespace {

using namespace qarch;
using circuit::GateKind;
using search::CombinationMode;
using search::Encoding;
using search::GateAlphabet;

search::EvaluatorOptions fast_options() {
  search::EvaluatorOptions opt;
  opt.energy.engine = qaoa::EngineKind::Statevector;
  opt.cobyla.max_evals = 40;
  opt.shots = 32;
  opt.sample_trials = 2;
  return opt;
}

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 40;
  s.shots = 32;
  s.sample_trials = 2;
  return s;
}

TEST(Alphabet, StandardHasFiveSingleQubitGates) {
  const GateAlphabet a = GateAlphabet::standard();
  EXPECT_EQ(a.size(), 5u);  // |A_R| = 5 in the paper
  for (GateKind k : a.gates) EXPECT_FALSE(circuit::is_two_qubit(k));
  EXPECT_EQ(a.to_string(), "rx,ry,rz,h,p");
}

TEST(Alphabet, ParseValidation) {
  EXPECT_EQ(GateAlphabet::parse("rx,h").size(), 2u);
  EXPECT_THROW(GateAlphabet::parse(""), Error);
  EXPECT_THROW(GateAlphabet::parse("cx"), Error);  // two-qubit rejected
}

TEST(Combinations, CountsMatchTheory) {
  // Product: 5^k; Permutation: 5!/(5-k)!.
  EXPECT_EQ(search::combination_count(5, 1, CombinationMode::Product), 5u);
  EXPECT_EQ(search::combination_count(5, 4, CombinationMode::Product), 625u);
  EXPECT_EQ(search::combination_count(5, 2, CombinationMode::Permutation), 20u);
  EXPECT_EQ(search::combination_count(5, 4, CombinationMode::Permutation), 120u);
}

TEST(Combinations, PaperScale2500Circuits) {
  // The paper's profiling space: 4 depths x 5^4 combinations = 2500.
  const std::size_t per_depth =
      search::combination_count(5, 4, CombinationMode::Product);
  EXPECT_EQ(4 * per_depth, 2500u);
}

TEST(Combinations, EnumerationIsExactAndDistinct) {
  const GateAlphabet a = GateAlphabet::standard();
  const auto combos = search::get_combinations(a, 2, CombinationMode::Product);
  EXPECT_EQ(combos.size(), 25u);
  std::set<std::string> rendered;
  for (const auto& c : combos) rendered.insert(c.to_string());
  EXPECT_EQ(rendered.size(), 25u);  // all distinct

  const auto perms =
      search::get_combinations(a, 2, CombinationMode::Permutation);
  EXPECT_EQ(perms.size(), 20u);
  for (const auto& s : perms)
    EXPECT_NE(s.gates[0], s.gates[1]);  // no repeats within a permutation
}

TEST(Combinations, AllCombinationsConcatenatesLengths) {
  const GateAlphabet a = GateAlphabet::standard();
  const auto all = search::all_combinations(a, 3, CombinationMode::Product);
  EXPECT_EQ(all.size(), 5u + 25u + 125u);
  EXPECT_EQ(all[0].gates.size(), 1u);
  EXPECT_EQ(all.back().gates.size(), 3u);
}

TEST(Combinations, RandomCombinationRespectsBounds) {
  const GateAlphabet a = GateAlphabet::standard();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto s =
        search::random_combination(a, 4, CombinationMode::Product, rng);
    EXPECT_GE(s.gates.size(), 1u);
    EXPECT_LE(s.gates.size(), 4u);
  }
  for (int i = 0; i < 50; ++i) {
    const auto s =
        search::random_combination(a, 4, CombinationMode::Permutation, rng);
    std::set<GateKind> uniq(s.gates.begin(), s.gates.end());
    EXPECT_EQ(uniq.size(), s.gates.size());
  }
}

TEST(QBuilder, EncodeDecodeRoundTrip) {
  const search::QBuilder b(GateAlphabet::standard());
  const Encoding enc{0, 1, 3};
  const auto spec = b.decode(enc);
  EXPECT_EQ(spec.gates,
            (std::vector<GateKind>{GateKind::RX, GateKind::RY, GateKind::H}));
  EXPECT_EQ(b.encode(spec), enc);
  EXPECT_THROW(b.decode({9}), Error);
  EXPECT_THROW(b.decode({}), Error);
}

TEST(QBuilder, BuildsMixerAndAnsatz) {
  const search::QBuilder b(GateAlphabet::standard());
  Rng rng(5);
  const auto g = graph::random_regular(6, 3, rng);
  const auto mixer = b.build_mixer({0, 1}, 6);
  EXPECT_EQ(mixer.num_qubits(), 6u);
  EXPECT_EQ(mixer.num_gates(), 12u);
  const auto ansatz = b.build_qaoa({0, 1}, g, 2);
  EXPECT_EQ(ansatz.num_params(), 4u);
  EXPECT_EQ(ansatz.two_qubit_gate_count(), 2 * g.num_edges());
}

TEST(Evaluator, ProducesConsistentScores) {
  Rng rng(7);
  const auto g = graph::random_regular(8, 3, rng);
  const search::Evaluator ev(g, fast_options());
  const auto r = ev.evaluate(qaoa::MixerSpec::qnas(), 1);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_GT(r.ratio, 0.0);
  EXPECT_LE(r.ratio, 1.0 + 1e-9);
  EXPECT_GT(r.sampled_ratio, r.ratio - 1e-9);  // best-of-shots >= mean
  EXPECT_LE(r.sampled_ratio, 1.0 + 1e-9);
  EXPECT_EQ(r.p, 1u);
  // Deterministic re-evaluation.
  const auto r2 = ev.evaluate(qaoa::MixerSpec::qnas(), 1);
  EXPECT_EQ(r.energy, r2.energy);
  EXPECT_EQ(r.sampled_ratio, r2.sampled_ratio);
}

TEST(Predictors, ExhaustiveCoversSpaceOncePerRound) {
  search::ExhaustivePredictor pred(GateAlphabet::standard(), 2);
  EXPECT_EQ(pred.space_size(), 30u);
  std::size_t total = 0;
  while (!pred.exhausted()) total += pred.propose(7).size();
  EXPECT_EQ(total, 30u);
  EXPECT_TRUE(pred.propose(7).empty());
  pred.reset();
  EXPECT_FALSE(pred.exhausted());
  EXPECT_EQ(pred.propose(100).size(), 30u);
}

TEST(Predictors, RandomHonoursBudget) {
  search::RandomPredictor pred(GateAlphabet::standard(), 4, 17, /*seed=*/1);
  std::size_t total = 0;
  while (!pred.exhausted()) total += pred.propose(5).size();
  EXPECT_EQ(total, 17u);
}

TEST(Engine, SerialAndParallelFindTheSameBest) {
  Rng rng(11);
  const auto g = graph::random_regular(6, 3, rng);

  search::SearchConfig serial_cfg;
  serial_cfg.p_max = 1;
  serial_cfg.session = fast_session();
  serial_cfg.session.workers = 1;
  const auto serial =
      search::SearchEngine(serial_cfg).run_exhaustive(g, 2);

  search::SearchConfig par_cfg = serial_cfg;
  par_cfg.session.workers = 6;
  const auto parallel =
      search::SearchEngine(par_cfg).run_exhaustive(g, 2);

  EXPECT_EQ(serial.num_candidates, 30u);
  EXPECT_EQ(parallel.num_candidates, 30u);
  EXPECT_EQ(serial.best.mixer, parallel.best.mixer);
  EXPECT_DOUBLE_EQ(serial.best.energy, parallel.best.energy);
  // The same candidate set was evaluated (order may differ within batches).
  auto names = [](const search::SearchReport& r) {
    std::vector<std::string> v;
    for (const auto& c : r.evaluated) v.push_back(c.mixer.to_string());
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(names(serial), names(parallel));
}

TEST(Engine, BestIsArgmaxOfEvaluated) {
  Rng rng(13);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session = fast_session();
  const auto report = search::SearchEngine(cfg).run_exhaustive(g, 2);
  double best = -1.0;
  for (const auto& c : report.evaluated) best = std::max(best, c.energy);
  EXPECT_DOUBLE_EQ(report.best.energy, best);
  EXPECT_GT(report.seconds, 0.0);
}

TEST(Engine, DeeperSearchNeverHurtsBestEnergy) {
  Rng rng(17);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg1;
  cfg1.p_max = 1;
  cfg1.session = fast_session();
  search::SearchConfig cfg2 = cfg1;
  cfg2.p_max = 2;
  const auto r1 = search::SearchEngine(cfg1).run_exhaustive(g, 1);
  const auto r2 = search::SearchEngine(cfg2).run_exhaustive(g, 1);
  // SELECT_BEST keeps the best across depths, so more depths can only help.
  EXPECT_GE(r2.best.energy, r1.best.energy - 1e-12);
}

TEST(Engine, BestAtDepthFiltersCorrectly) {
  Rng rng(19);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg;
  cfg.p_max = 2;
  cfg.session = fast_session();
  const auto report = search::SearchEngine(cfg).run_exhaustive(g, 1);
  const auto& b1 = report.best_at_depth(1);
  const auto& b2 = report.best_at_depth(2);
  EXPECT_EQ(b1.p, 1u);
  EXPECT_EQ(b2.p, 2u);
  EXPECT_THROW((void)report.best_at_depth(9), Error);
}

TEST(Engine, RandomPredictorIntegrates) {
  Rng rng(23);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session = fast_session();
  search::RandomPredictor pred(cfg.alphabet, 3, 12, /*seed=*/9);
  const auto report = search::SearchEngine(cfg).run(g, pred);
  EXPECT_EQ(report.num_candidates, 12u);
  EXPECT_GT(report.best.energy, 0.0);
}

}  // namespace
