// Tests for the runtime lock-order checker (common/lock_order.*) and the
// annotated qarch::Mutex family (common/annotations.hpp).
//
// Violation tests fork(): the checker aborts the process by design, and the
// child's copy of the global acquired-order graph dies with it, so a
// deliberately poisoned ordering can never leak into later tests. The
// child's stderr is captured through a pipe and must name BOTH locks.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/annotations.hpp"

namespace {

using qarch::CondVar;
using qarch::LockGuard;
using qarch::Mutex;
using qarch::UniqueLock;

#if QARCH_LOCK_ORDER_CHECK

struct ForkOutcome {
  bool aborted = false;     ///< child died from SIGABRT
  std::string stderr_text;  ///< everything the child wrote to stderr
};

/// Runs `body` in a forked child with stderr redirected into a pipe.
ForkOutcome run_forked(const std::function<void()>& body) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: stderr -> pipe, run the scenario, exit cleanly if it survives.
    dup2(fds[1], STDERR_FILENO);
    close(fds[0]);
    close(fds[1]);
    body();
    std::fflush(nullptr);
    _Exit(0);
  }
  close(fds[1]);
  ForkOutcome out;
  char buf[4096];
  ssize_t n = 0;
  while ((n = read(fds[0], buf, sizeof(buf))) > 0)
    out.stderr_text.append(buf, static_cast<std::size_t>(n));
  close(fds[0]);
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  out.aborted = WIFSIGNALED(status) && WTERMSIG(status) == SIGABRT;
  return out;
}

TEST(LockOrder, RankInversionAbortsWithBothNames) {
  const ForkOutcome out = run_forked([] {
    Mutex outer{30, "test.outer"};
    Mutex inner{40, "test.inner"};
    LockGuard hold_inner(inner);
    LockGuard hold_outer(outer);  // rank 30 while holding rank 40: abort
  });
  EXPECT_TRUE(out.aborted) << out.stderr_text;
  EXPECT_NE(out.stderr_text.find("rank inversion"), std::string::npos)
      << out.stderr_text;
  EXPECT_NE(out.stderr_text.find("test.outer"), std::string::npos);
  EXPECT_NE(out.stderr_text.find("test.inner"), std::string::npos);
}

TEST(LockOrder, EqualRankGraphInversionAbortsWithBothNames) {
  // Equal ranks pass the rank check; the A->B then B->A inversion must be
  // caught by the acquired-order graph instead.
  const ForkOutcome out = run_forked([] {
    Mutex a{55, "test.alpha"};
    Mutex b{55, "test.beta"};
    {
      LockGuard la(a);
      LockGuard lb(b);  // records alpha -> beta
    }
    LockGuard lb(b);
    LockGuard la(a);  // beta -> alpha closes the cycle: abort
  });
  EXPECT_TRUE(out.aborted) << out.stderr_text;
  EXPECT_NE(out.stderr_text.find("order-graph cycle"), std::string::npos)
      << out.stderr_text;
  EXPECT_NE(out.stderr_text.find("test.alpha"), std::string::npos);
  EXPECT_NE(out.stderr_text.find("test.beta"), std::string::npos);
}

TEST(LockOrder, RecursiveAcquisitionAborts) {
  const ForkOutcome out = run_forked([] {
    Mutex m{55, "test.recursive"};
    m.lock();
    m.lock();  // same mutex again: abort (std::mutex would deadlock/UB)
  });
  EXPECT_TRUE(out.aborted) << out.stderr_text;
  EXPECT_NE(out.stderr_text.find("recursive acquisition"), std::string::npos)
      << out.stderr_text;
  EXPECT_NE(out.stderr_text.find("test.recursive"), std::string::npos);
}

TEST(LockOrder, RankRespectingNestingPasses) {
  Mutex outer{31, "test.nest.outer"};
  Mutex mid{41, "test.nest.mid"};
  Mutex leaf{91, "test.nest.leaf"};
  for (int i = 0; i < 3; ++i) {
    LockGuard lo(outer);
    EXPECT_EQ(qarch::lock_order::held_count(), 1);
    LockGuard lm(mid);
    LockGuard ll(leaf);
    EXPECT_EQ(qarch::lock_order::held_count(), 3);
  }
  EXPECT_EQ(qarch::lock_order::held_count(), 0);
}

TEST(LockOrder, DistinctEqualRankMutexesNestInConsistentOrder) {
  // Re-entering DISTINCT mutexes of the same rank is legal as long as the
  // order stays consistent; only the reversed order is an inversion.
  Mutex a{56, "test.pair.first"};
  Mutex b{56, "test.pair.second"};
  for (int i = 0; i < 10; ++i) {
    LockGuard la(a);
    LockGuard lb(b);
  }
  SUCCEED();
}

TEST(LockOrder, CondVarWaitRestoresHeldStack) {
  Mutex m{57, "test.cv"};
  CondVar cv;
  UniqueLock lock(m);
  EXPECT_EQ(qarch::lock_order::held_count(), 1);
  // Times out immediately; the wait releases the lock (held stack drops to
  // zero inside) and must restore the entry on wakeup.
  cv.wait_until(lock, std::chrono::steady_clock::now());
  EXPECT_EQ(qarch::lock_order::held_count(), 1);
  m.assert_held();  // the assert-capability hook agrees
}

TEST(LockOrder, EarlyUnlockReleasesOutOfOrder) {
  Mutex outer{32, "test.early.outer"};
  Mutex inner{42, "test.early.inner"};
  UniqueLock lo(outer);
  UniqueLock li(inner);
  lo.unlock();  // out-of-order release is legal; erase mid-stack
  EXPECT_EQ(qarch::lock_order::held_count(), 1);
  li.unlock();
  EXPECT_EQ(qarch::lock_order::held_count(), 0);
}

TEST(LockOrder, UnrankedMutexesAreInvisibleToTheChecker) {
  Mutex scoped_local;  // default-constructed: no rank, no tracking
  LockGuard lock(scoped_local);
  EXPECT_EQ(qarch::lock_order::held_count(), 0);
}

#else  // !QARCH_LOCK_ORDER_CHECK

TEST(LockOrder, CheckerIsCompiledOutInRelease) {
  // Zero-overhead claim: without the checker, qarch::Mutex is
  // layout-identical to the raw primitive (also enforced by a static_assert
  // in annotations.hpp) and carries no rank bookkeeping.
  EXPECT_EQ(sizeof(Mutex), sizeof(std::mutex));
  Mutex m{30, "release.noop"};  // rank/name accepted and discarded
  LockGuard lock(m);
  SUCCEED();
}

#endif  // QARCH_LOCK_ORDER_CHECK

}  // namespace
