// Statevector simulator tests: kernels vs dense-matrix oracle, expectations,
// sampling, and multithreaded kernel agreement.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "qaoa/sampling.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;
using circuit::Circuit;
using circuit::GateKind;
using circuit::ParamExpr;
using linalg::cplx;
using linalg::Matrix;

TEST(States, ZeroAndPlus) {
  const auto zero = sim::zero_state(3);
  EXPECT_EQ(zero.size(), 8u);
  EXPECT_EQ(zero[0], cplx(1, 0));
  const auto plus = sim::plus_state(3);
  for (const auto& a : plus) EXPECT_NEAR(std::abs(a), 1.0 / std::sqrt(8.0), 1e-12);
  EXPECT_EQ(sim::state_qubits(plus), 3u);
}

TEST(States, RejectsBadSizes) {
  sim::State bad(3, cplx{0, 0});
  EXPECT_THROW(sim::state_qubits(bad), Error);
}

TEST(Statevector, BellStateFromHCx) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const sim::StatevectorSimulator sv;
  const auto state = sv.run(c, {}, sim::zero_state(2));
  const double r = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(state[0] - cplx{r, 0}), 0.0, 1e-12);  // |00>
  EXPECT_NEAR(std::abs(state[3] - cplx{r, 0}), 0.0, 1e-12);  // |11>
  EXPECT_NEAR(std::abs(state[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(state[2]), 0.0, 1e-12);
  EXPECT_NEAR(sim::expectation_zz(state, 0, 1), 1.0, 1e-12);
}

/// Dense-matrix oracle: builds the full 2^n unitary by kron products.
Matrix full_unitary(const Circuit& c, std::span<const double> theta) {
  const std::size_t n = c.num_qubits();
  Matrix u = Matrix::identity(std::size_t{1} << n);
  for (const auto& g : c.gates()) {
    const Matrix gm = g.matrix(theta);
    // Build the full-space matrix entry by entry (slow; n <= 4 in tests).
    const std::size_t dim = std::size_t{1} << n;
    Matrix full(dim, dim);
    for (std::size_t col = 0; col < dim; ++col) {
      for (std::size_t row = 0; row < dim; ++row) {
        // check untouched bits identical
        bool ok = true;
        for (std::size_t q = 0; q < n; ++q) {
          if (q == g.q0 || (g.arity() == 2 && q == g.q1)) continue;
          if (((row >> q) & 1) != ((col >> q) & 1)) { ok = false; break; }
        }
        if (!ok) continue;
        std::size_t gr, gc;
        if (g.arity() == 1) {
          gr = (row >> g.q0) & 1;
          gc = (col >> g.q0) & 1;
        } else {
          gr = (((row >> g.q0) & 1) << 1) | ((row >> g.q1) & 1);
          gc = (((col >> g.q0) & 1) << 1) | ((col >> g.q1) & 1);
        }
        full(row, col) = gm(gr, gc);
      }
    }
    u = full.matmul(u);
  }
  return u;
}

TEST(Statevector, AgreesWithDenseMatrixOracleOnRandomCircuits) {
  Rng rng(13);
  const sim::StatevectorSimulator sv;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 2 + rng.uniform_int(3);  // 2..4
    Circuit c(n);
    const GateKind pool[] = {GateKind::H,  GateKind::RX, GateKind::RY,
                             GateKind::RZ, GateKind::P,  GateKind::CX,
                             GateKind::CZ, GateKind::RZZ, GateKind::S};
    for (int i = 0; i < 10; ++i) {
      const GateKind k = pool[rng.uniform_int(9)];
      ParamExpr param = circuit::is_parameterized(k)
                            ? ParamExpr::constant_angle(rng.uniform(-3, 3))
                            : ParamExpr::none();
      if (circuit::is_two_qubit(k)) {
        std::size_t a = rng.uniform_int(n), b = rng.uniform_int(n);
        while (b == a) b = rng.uniform_int(n);
        c.append({k, a, b, param});
      } else {
        c.append({k, rng.uniform_int(n), 0, param});
      }
    }
    const auto got = sv.run_from_plus(c, {});
    const auto expected = full_unitary(c, {}).apply(sim::plus_state(n));
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_NEAR(std::abs(got[i] - expected[i]), 0.0, 1e-10)
          << "trial " << trial << " amp " << i;
  }
}

TEST(Statevector, NormPreservedByLongCircuits) {
  Rng rng(29);
  const sim::StatevectorSimulator sv;
  Circuit c(5);
  for (int i = 0; i < 60; ++i) {
    if (rng.bernoulli(0.3)) {
      std::size_t a = rng.uniform_int(5), b = rng.uniform_int(5);
      while (b == a) b = rng.uniform_int(5);
      c.rzz(a, b, ParamExpr::constant_angle(rng.uniform(-3, 3)));
    } else {
      c.rx(rng.uniform_int(5), ParamExpr::constant_angle(rng.uniform(-3, 3)));
    }
  }
  const auto state = sv.run_from_plus(c, {});
  EXPECT_NEAR(linalg::norm(state), 1.0, 1e-10);
}

TEST(Statevector, MultithreadedKernelsMatchSerial) {
  Rng rng(31);
  Circuit c(10);
  for (int i = 0; i < 30; ++i) {
    if (rng.bernoulli(0.4)) {
      std::size_t a = rng.uniform_int(10), b = rng.uniform_int(10);
      while (b == a) b = rng.uniform_int(10);
      c.cx(a, b);
    } else {
      c.ry(rng.uniform_int(10), ParamExpr::constant_angle(rng.uniform(-3, 3)));
    }
  }
  const sim::StatevectorSimulator serial(1);
  // Force the parallel path by lowering the threshold.
  const sim::StatevectorSimulator parallel(8, /*parallel_threshold_qubits=*/2);
  const auto a = serial.run_from_plus(c, {});
  const auto b = parallel.run_from_plus(c, {});
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
}

TEST(Expectations, ZAndZZOnProductStates) {
  // |0> has <Z> = +1; X|0> = |1> has <Z> = -1.
  Circuit flip1(2);
  flip1.x(1);
  const sim::StatevectorSimulator sv;
  const auto state = sv.run(flip1, {}, sim::zero_state(2));
  EXPECT_NEAR(sim::expectation_z(state, 0), 1.0, 1e-12);
  EXPECT_NEAR(sim::expectation_z(state, 1), -1.0, 1e-12);
  EXPECT_NEAR(sim::expectation_zz(state, 0, 1), -1.0, 1e-12);
  EXPECT_NEAR(sim::probability(state, 0b10), 1.0, 1e-12);
}

TEST(Expectations, PlusStateHasZeroZ) {
  const auto plus = sim::plus_state(4);
  for (std::size_t q = 0; q < 4; ++q)
    EXPECT_NEAR(sim::expectation_z(plus, q), 0.0, 1e-12);
  EXPECT_NEAR(sim::expectation_zz(plus, 0, 3), 0.0, 1e-12);
}

TEST(Sampling, MatchesDistributionOnBellState) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const sim::StatevectorSimulator sv;
  const auto state = sv.run(c, {}, sim::zero_state(2));
  Rng rng(55);
  int n00 = 0, n11 = 0, other = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t s = qaoa::sample_basis_state(state, rng);
    if (s == 0) ++n00;
    else if (s == 3) ++n11;
    else ++other;
  }
  EXPECT_EQ(other, 0);
  EXPECT_NEAR(static_cast<double>(n00) / 4000.0, 0.5, 0.05);
}

TEST(Sampling, BestSampledCutBoundedByExact) {
  Rng rng(77);
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  // |+>^4 gives the uniform distribution over assignments.
  const auto state = sim::plus_state(4);
  const double best = qaoa::best_sampled_cut(state, g, 256, rng);
  EXPECT_LE(best, 4.0);
  EXPECT_GE(best, 3.0);  // with 256 shots the 4-cut is found w.h.p.
}

TEST(Sampling, CutOfBasisStateMatchesGraphCut) {
  graph::Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  // basis 0b001: vertex 0 on side 1, vertices 1,2 on side 0 → cuts edge (0,1).
  EXPECT_DOUBLE_EQ(qaoa::cut_of_basis_state(g, 0b001), 2.0);
  // basis 0b010: vertex 1 alone → cuts both edges.
  EXPECT_DOUBLE_EQ(qaoa::cut_of_basis_state(g, 0b010), 5.0);
}

}  // namespace
