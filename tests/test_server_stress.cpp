// qarchd under load: many concurrent client threads across several tenants
// flooding one in-process daemon. Three promises are exercised:
//
//   * CONVERGENCE — every submitted ticket reaches a terminal state, and a
//     "done" wire response is bit-for-bit identical to what a direct
//     in-process evaluation of the same candidate produces (the daemon adds
//     transport, never semantics — and the service dedups the flood down to
//     one evaluation per distinct candidate);
//   * FAIR SHARE — a high-weight interactive tenant's request latency stays
//     bounded while a greedy batch tenant floods the queue (deficit-weighted
//     round robin, proven here over the wire end to end);
//   * ACCOUNTING — after the storm the service counters balance exactly:
//     every submission is a hit or a miss, every published job resolved
//     exactly once (completed/cancelled/expired), nothing lost, nothing run
//     twice.
//
// Where wall-clock matters, evaluation duration is pinned with the
// fault-injection delay hook (one real sleep per evaluation job) instead of
// relying on how fast COBYLA happens to converge on this machine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "search/eval_service.hpp"
#include "search/evaluator.hpp"
#include "search/fault.hpp"
#include "search/report_io.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "session.hpp"

namespace {

using namespace qarch;
using server::ClientOptions;
using server::QarchClient;
using server::QarchServer;
using server::ServerConfig;
using server::TenantSpec;

SessionConfig fast_session() {
  SessionConfig s;
  s.backend = BackendChoice::Statevector;
  s.training_evals = 20;
  s.shots = 32;
  s.sample_trials = 2;
  s.workers = 2;
  s.server_io_threads = 8;
  return s;
}

graph::Graph test_graph(std::uint64_t seed, std::size_t n = 6,
                        std::size_t degree = 3) {
  Rng rng(seed);
  return graph::random_regular(n, degree, rng);
}

QarchClient make_client(QarchServer& server, const std::string& key) {
  ClientOptions options;
  options.port = server.port();
  options.api_key = key;
  options.max_retries = 4;
  return QarchClient(options);
}

struct FaultGuard {
  ~FaultGuard() { search::FaultInjector::instance().reset(); }
};

TEST(QarchServerStress, ConcurrentTenantFloodConvergesBitForBit) {
  const std::vector<graph::Graph> graphs = {test_graph(81), test_graph(82)};
  const std::vector<std::string> mixers = {"rx", "ry", "rx,ry", "ry,rz"};

  ServerConfig config;
  config.session = fast_session();
  config.tenants = {TenantSpec{.name = "t0", .api_key = "k0"},
                    TenantSpec{.name = "t1", .api_key = "k1"},
                    TenantSpec{.name = "t2", .api_key = "k2"}};
  QarchServer server(config);
  server.start();

  // The serial reference for every distinct candidate, evaluated directly.
  std::map<std::pair<std::size_t, std::string>, search::CandidateResult>
      expected;
  for (std::size_t gi = 0; gi < graphs.size(); ++gi) {
    const search::Evaluator direct(
        graphs[gi],
        config.session.evaluator_options(qaoa::EngineKind::Statevector));
    for (const auto& m : mixers)
      expected[{gi, m}] = direct.evaluate(qaoa::MixerSpec::parse(m), 1);
  }

  // 3 tenants x 3 threads, every thread submits the full candidate set in a
  // rotated order, then polls everything to completion.
  constexpr std::size_t kThreadsPerTenant = 3;
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> resolved{0};
  std::vector<std::thread> threads;
  for (std::size_t tenant = 0; tenant < 3; ++tenant) {
    for (std::size_t worker = 0; worker < kThreadsPerTenant; ++worker) {
      threads.emplace_back([&, tenant, worker] {
        QarchClient client =
            make_client(server, "k" + std::to_string(tenant));
        std::vector<std::pair<std::string, std::pair<std::size_t, std::string>>>
            submitted;
        const std::size_t total = graphs.size() * mixers.size();
        for (std::size_t i = 0; i < total; ++i) {
          const std::size_t slot = (i + worker + tenant) % total;
          const std::size_t gi = slot / mixers.size();
          const std::string& m = mixers[slot % mixers.size()];
          const std::string ticket = client.submit(
              QarchClient::submit_body(graphs[gi], m, 1));
          submitted.emplace_back(ticket, std::make_pair(gi, m));
        }
        for (const auto& [ticket, key] : submitted) {
          json::Value response = client.result(ticket, 30000.0);
          while (response.at("status").as_string() == "pending")
            response = client.result(ticket, 30000.0);
          if (response.at("status").as_string() != "done") {
            ++mismatches;
            continue;
          }
          const auto r = search::candidate_from_json(response.at("result"));
          const auto& want = expected.at(key);
          if (r.energy != want.energy || r.theta != want.theta ||
              r.sampled_ratio != want.sampled_ratio ||
              r.evaluations != want.evaluations)
            ++mismatches;
          ++resolved;
        }
      });
    }
  }
  for (auto& t : threads) t.join();

  const std::size_t total_submits = 3 * kThreadsPerTenant * 8;
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(resolved, total_submits);
  EXPECT_EQ(server.counters().submits, total_submits);

  // Accounting balances exactly, and the flood deduplicated down to ONE
  // evaluation per distinct candidate service-wide.
  const auto stats = server.service().stats();
  EXPECT_EQ(stats.submitted, total_submits);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.submitted);
  EXPECT_EQ(stats.cache_misses, graphs.size() * mixers.size());
  EXPECT_EQ(stats.completed + stats.cancelled + stats.deadline_expired,
            stats.cache_misses);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(QarchServerStress, FairShareKeepsInteractiveResponsiveUnderFlood) {
  // 200 ms of injected delay per evaluation job pins the timeline: every
  // job runs >= 0.2 s of wall clock regardless of machine speed or
  // sanitizer slowdown, so the flood below is >= 2.4 s of single-worker
  // backlog.
  FaultGuard guard;
  search::FaultPlan slow;
  slow.delay_seconds = 0.2;
  slow.delay_rate = 1.0;
  search::FaultInjector::instance().configure(slow);

  ServerConfig config;
  config.session = fast_session();
  config.session.workers = 1;
  config.tenants = {
      TenantSpec{.name = "greedy", .api_key = "kg", .weight = 1.0},
      TenantSpec{.name = "interactive", .api_key = "ki", .weight = 8.0}};
  QarchServer server(config);
  server.start();
  QarchClient greedy = make_client(server, "kg");
  QarchClient interactive = make_client(server, "ki");

  // The flood: 12 distinct jobs, >= 0.2 s each.
  std::vector<std::string> flood;
  for (std::size_t i = 0; i < 12; ++i)
    flood.push_back(greedy.submit(QarchClient::submit_body(
        test_graph(90 + i, 8, 3), "rx", 1, /*budget=*/40)));

  // The interactive tenant arrives after the flood and runs a sequential
  // submit/wait session, timing each request end to end over the wire.
  const std::vector<std::string> session_mixers = {"rx", "ry", "rz", "rx,ry"};
  double worst_seconds = 0.0;
  for (const auto& m : session_mixers) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::string ticket =
        interactive.submit(QarchClient::submit_body(test_graph(89, 4, 3), m,
                                                    1, /*budget=*/20));
    json::Value response = interactive.result(ticket, 30000.0);
    while (response.at("status").as_string() == "pending")
      response = interactive.result(ticket, 30000.0);
    ASSERT_EQ(response.at("status").as_string(), "done") << m;
    worst_seconds = std::max(
        worst_seconds,
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }

  // Bounded tail latency: the worst interactive request waited for at most
  // a couple of greedy jobs (weight 8 vs 1) plus its own >= 0.2 s run. FIFO
  // would have served all 12 greedy jobs first (>= 2.4 s) and blown this
  // bound for every request.
  EXPECT_LT(worst_seconds, 1.5);

  // And the flood is demonstrably still in progress: fairness, not luck.
  std::size_t unresolved = 0;
  for (const auto& ticket : flood)
    if (greedy.result(ticket, 0.0).at("status").as_string() == "pending")
      ++unresolved;
  EXPECT_GT(unresolved, 0u);

  // Cancel what is still queued so teardown is quick; everything must end
  // terminal either way.
  for (const auto& ticket : flood) (void)greedy.cancel(ticket);
  for (const auto& ticket : flood) {
    json::Value response = greedy.result(ticket, 30000.0);
    while (response.at("status").as_string() == "pending")
      response = greedy.result(ticket, 30000.0);
    const std::string status = response.at("status").as_string();
    EXPECT_TRUE(status == "done" || status == "cancelled") << status;
  }
}

TEST(QarchServerStress, DeadlinedFloodLeavesNoTicketBehind) {
  // Two tenants race 24 submissions, half with a deadline far shorter than
  // the queue they are stuck in. Every ticket must reach a terminal state
  // and the books must balance: resolved-once accounting holds under
  // concurrent expiry, cancellation, and completion.
  FaultGuard guard;
  search::FaultPlan slow;
  slow.delay_seconds = 0.2;
  slow.delay_rate = 1.0;
  search::FaultInjector::instance().configure(slow);

  ServerConfig config;
  config.session = fast_session();
  config.session.workers = 1;
  config.tenants = {TenantSpec{.name = "a", .api_key = "ka"},
                    TenantSpec{.name = "b", .api_key = "kb"}};
  QarchServer server(config);
  server.start();

  std::atomic<std::size_t> done{0}, expired{0}, other{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      QarchClient client = make_client(server, t == 0 ? "ka" : "kb");
      std::vector<std::string> tickets;
      for (std::size_t i = 0; i < 12; ++i) {
        // Distinct candidates per (tenant, i): no cross-tenant dedup, so
        // the deadline half genuinely expires instead of attaching to an
        // undeadlined duplicate.
        json::Value body = QarchClient::submit_body(
            test_graph(120 + 20 * t + i, 6, 3), "rx", 1, /*budget=*/40);
        if (i % 2 == 0) body.set("deadline_ms", 150.0);
        tickets.push_back(client.submit(body));
      }
      for (const auto& ticket : tickets) {
        json::Value response = client.result(ticket, 30000.0);
        while (response.at("status").as_string() == "pending")
          response = client.result(ticket, 30000.0);
        const std::string status = response.at("status").as_string();
        if (status == "done")
          ++done;
        else if (status == "expired")
          ++expired;
        else
          ++other;
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(done + expired + other, 24u);
  EXPECT_EQ(other, 0u);
  EXPECT_GT(expired, 0u);  // the backlog dwarfed the 150 ms deadlines
  EXPECT_GT(done, 0u);

  const auto stats = server.service().stats();
  EXPECT_EQ(stats.submitted, 24u);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.submitted);
  EXPECT_EQ(stats.completed + stats.cancelled + stats.deadline_expired +
                stats.failed,
            stats.cache_misses);
  EXPECT_EQ(stats.failed, 0u);
}

}  // namespace
