// Tests for the extension modules: constraints, report IO, dataset search,
// Pauli strings, noise trajectories, INTERP initialization, and TN slicing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "optim/cobyla.hpp"
#include "qaoa/interp.hpp"
#include "qtensor/slicing.hpp"
#include "search/constraints.hpp"
#include "search/dataset.hpp"
#include "search/report_io.hpp"
#include "sim/noise.hpp"
#include "sim/pauli.hpp"

namespace {

using namespace qarch;
using circuit::GateKind;

// ---------------------------------------------------------------------------
// Constraints
// ---------------------------------------------------------------------------

TEST(Constraints, MaxDepthBoundsLayer) {
  const search::MaxDepthConstraint c(2);
  const auto short_mixer = qaoa::MixerSpec::parse("rx,ry");
  const auto long_mixer = qaoa::MixerSpec::parse("rx,ry,rz");
  EXPECT_TRUE(c.admits(short_mixer, qaoa::build_mixer_circuit(4, short_mixer)));
  EXPECT_FALSE(c.admits(long_mixer, qaoa::build_mixer_circuit(4, long_mixer)));
}

TEST(Constraints, TrainableRequiresParameterizedGate) {
  const search::TrainableConstraint c;
  const auto fixed = qaoa::MixerSpec::parse("h");
  const auto trainable = qaoa::MixerSpec::parse("h,p");
  EXPECT_FALSE(c.admits(fixed, qaoa::build_mixer_circuit(2, fixed)));
  EXPECT_TRUE(c.admits(trainable, qaoa::build_mixer_circuit(2, trainable)));
}

TEST(Constraints, NoImmediateRepeat) {
  const search::NoImmediateRepeatConstraint c;
  const auto repeat = qaoa::MixerSpec::parse("rx,rx");
  const auto ok = qaoa::MixerSpec::parse("rx,ry,rx");
  EXPECT_FALSE(c.admits(repeat, qaoa::build_mixer_circuit(2, repeat)));
  EXPECT_TRUE(c.admits(ok, qaoa::build_mixer_circuit(2, ok)));
}

TEST(Constraints, ForbiddenGatesAndPredicate) {
  const search::ForbiddenGatesConstraint ban({GateKind::P});
  const auto with_p = qaoa::MixerSpec::parse("rx,p");
  EXPECT_FALSE(ban.admits(with_p, qaoa::build_mixer_circuit(2, with_p)));

  const search::PredicateConstraint pred(
      "max-two-gates", [](const qaoa::MixerSpec& m, const circuit::Circuit&) {
        return m.gates.size() <= 2;
      });
  const auto three = qaoa::MixerSpec::parse("rx,ry,rz");
  EXPECT_FALSE(pred.admits(three, qaoa::build_mixer_circuit(2, three)));
  EXPECT_EQ(pred.name(), "max-two-gates");
}

TEST(Constraints, SetReportsRejectingConstraint) {
  search::ConstraintSet set;
  set.add(std::make_shared<search::TrainableConstraint>())
      .add(std::make_shared<search::NoImmediateRepeatConstraint>());
  EXPECT_EQ(set.size(), 2u);
  const auto repeat = qaoa::MixerSpec::parse("rx,rx");
  std::string rejected_by;
  EXPECT_FALSE(set.admits(repeat, qaoa::build_mixer_circuit(2, repeat),
                          &rejected_by));
  EXPECT_EQ(rejected_by, "no-repeat");
}

TEST(Constraints, EngineFiltersAndAccounts) {
  Rng rng(31);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session.backend = BackendChoice::Statevector;
  cfg.session.training_evals = 30;
  cfg.constraints.add(std::make_shared<search::TrainableConstraint>());
  const auto report = search::SearchEngine(cfg).run_exhaustive(g, 2);
  // Sequences over {rx,ry,rz,h,p} of length <=2 without any parameterized
  // gate: subsets of {h} repeated → "h" and "h,h" → 2 rejected, 28 evaluated.
  EXPECT_EQ(report.num_candidates, 28u);
  ASSERT_TRUE(report.rejections.count("trainable"));
  EXPECT_EQ(report.rejections.at("trainable"), 2u);
}

// ---------------------------------------------------------------------------
// Report IO
// ---------------------------------------------------------------------------

TEST(ReportIo, JsonRoundTrip) {
  Rng rng(37);
  const auto g = graph::random_regular(6, 3, rng);
  search::SearchConfig cfg;
  cfg.p_max = 1;
  cfg.session.backend = BackendChoice::Statevector;
  cfg.session.training_evals = 30;
  const auto report = search::SearchEngine(cfg).run_exhaustive(g, 1);

  const std::string path = "/tmp/qarch_report_test.json";
  search::save_report(report, path);
  const auto loaded = search::load_report(path);
  std::filesystem::remove(path);

  EXPECT_EQ(loaded.num_candidates, report.num_candidates);
  EXPECT_EQ(loaded.best.mixer, report.best.mixer);
  EXPECT_DOUBLE_EQ(loaded.best.energy, report.best.energy);
  ASSERT_EQ(loaded.evaluated.size(), report.evaluated.size());
  for (std::size_t i = 0; i < loaded.evaluated.size(); ++i) {
    EXPECT_EQ(loaded.evaluated[i].mixer, report.evaluated[i].mixer);
    EXPECT_DOUBLE_EQ(loaded.evaluated[i].energy, report.evaluated[i].energy);
    EXPECT_EQ(loaded.evaluated[i].theta, report.evaluated[i].theta);
  }
}

// ---------------------------------------------------------------------------
// Dataset search
// ---------------------------------------------------------------------------

TEST(DatasetSearch, AggregatesAcrossGraphs) {
  Rng rng(41);
  const auto graphs = graph::regular_dataset(3, 6, 3, rng);
  search::DatasetSearchConfig cfg;
  cfg.engine.p_max = 1;
  cfg.engine.session.backend = BackendChoice::Statevector;
  cfg.engine.session.training_evals = 30;
  cfg.k_max = 1;  // 5 candidates
  cfg.node_slots = 3;
  const auto report = search::search_dataset(graphs, cfg);

  EXPECT_EQ(report.per_graph.size(), 3u);
  EXPECT_EQ(report.ranking.size(), 5u);  // 5 mixers at p=1
  for (const auto& c : report.ranking) EXPECT_EQ(c.graphs, 3u);
  // Ranking is sorted descending and best matches the head.
  for (std::size_t i = 1; i < report.ranking.size(); ++i)
    EXPECT_GE(report.ranking[i - 1].mean_ratio, report.ranking[i].mean_ratio);
  EXPECT_EQ(report.best.mixer, report.ranking.front().mixer);
}

TEST(DatasetSearch, SerialAndParallelSlotsAgree) {
  Rng rng(43);
  const auto graphs = graph::regular_dataset(2, 6, 3, rng);
  search::DatasetSearchConfig cfg;
  cfg.engine.p_max = 1;
  cfg.engine.session.backend = BackendChoice::Statevector;
  cfg.engine.session.training_evals = 25;
  cfg.k_max = 1;
  cfg.node_slots = 1;
  const auto serial = search::search_dataset(graphs, cfg);
  cfg.node_slots = 2;
  const auto parallel = search::search_dataset(graphs, cfg);
  EXPECT_EQ(serial.best.mixer, parallel.best.mixer);
  EXPECT_DOUBLE_EQ(serial.best.mean_ratio, parallel.best.mean_ratio);
}

// ---------------------------------------------------------------------------
// Pauli strings
// ---------------------------------------------------------------------------

TEST(Pauli, ParseAndRender) {
  const auto p = sim::PauliString::parse("IZXY");
  EXPECT_EQ(p.to_string(), "IZXY");
  EXPECT_EQ(p.weight(), 3u);
  EXPECT_EQ(p.get(0), sim::Pauli::I);
  EXPECT_EQ(p.get(3), sim::Pauli::Y);
  EXPECT_THROW(sim::PauliString::parse("AB"), Error);
}

TEST(Pauli, ExpectationsOnKnownStates) {
  // |0>: <Z> = 1, <X> = 0. |+>: <X> = 1, <Z> = 0.
  const auto zero = sim::zero_state(1);
  const auto plus = sim::plus_state(1);
  EXPECT_NEAR(sim::PauliString::parse("Z").expectation(zero), 1.0, 1e-12);
  EXPECT_NEAR(sim::PauliString::parse("X").expectation(zero), 0.0, 1e-12);
  EXPECT_NEAR(sim::PauliString::parse("X").expectation(plus), 1.0, 1e-12);
  EXPECT_NEAR(sim::PauliString::parse("Z").expectation(plus), 0.0, 1e-12);
  EXPECT_NEAR(sim::PauliString::parse("Y").expectation(plus), 0.0, 1e-12);
}

TEST(Pauli, MatchesDedicatedZZImplementation) {
  Rng rng(47);
  circuit::Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.ry(2, circuit::ParamExpr::constant_angle(0.8));
  c.rzz(1, 2, circuit::ParamExpr::constant_angle(-0.6));
  const sim::StatevectorSimulator sv;
  const auto state = sv.run_from_plus(c, {});
  EXPECT_NEAR(sim::PauliString::parse("ZZI").expectation(state),
              sim::expectation_zz(state, 0, 1), 1e-12);
  EXPECT_NEAR(sim::PauliString::parse("IZZ").expectation(state),
              sim::expectation_zz(state, 1, 2), 1e-12);
}

TEST(Pauli, YPhaseConventions) {
  // Y|0> = i|1>, Y|1> = -i|0>.
  sim::State s = sim::zero_state(1);
  sim::PauliString::parse("Y").apply(s);
  EXPECT_NEAR(std::abs(s[1] - linalg::cplx{0, 1}), 0.0, 1e-12);
  sim::PauliString::parse("Y").apply(s);  // Y^2 = I
  EXPECT_NEAR(std::abs(s[0] - linalg::cplx{1, 0}), 0.0, 1e-12);
}

TEST(Pauli, SumAccumulatesTerms) {
  sim::PauliSum sum;
  sum.add(sim::PauliString::parse("ZI", 0.5));
  sum.add(sim::PauliString::parse("IZ", 0.5));
  const auto zero = sim::zero_state(2);
  EXPECT_NEAR(sum.expectation(zero), 1.0, 1e-12);
  EXPECT_THROW(sum.add(sim::PauliString::parse("Z")), Error);  // size mismatch
}

// ---------------------------------------------------------------------------
// Noise
// ---------------------------------------------------------------------------

TEST(Noise, NoiselessMatchesExactEnergy) {
  Rng rng(53);
  const auto g = graph::random_regular(6, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const std::vector<double> theta{0.4, 0.3};
  const qaoa::EnergyEvaluator ev(g, {});
  Rng noise_rng(1);
  const double noisy = sim::noisy_cut_expectation(c, theta, g, {}, 1, noise_rng);
  EXPECT_NEAR(noisy, ev.energy(c, theta), 1e-10);
}

TEST(Noise, StrongNoiseDegradesTrainedEnergy) {
  Rng rng(59);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const qaoa::EnergyEvaluator ev(g, {});
  optim::CobylaConfig cc;
  cc.max_evals = 120;
  const auto trained = qaoa::train_qaoa(c, ev, optim::Cobyla(cc));

  sim::NoiseModel heavy;
  heavy.p1 = 0.05;
  heavy.p2 = 0.10;
  Rng noise_rng(2);
  const double noisy =
      sim::noisy_cut_expectation(c, trained.theta, g, heavy, 64, noise_rng);
  // Depolarizing-style noise pushes <C> toward the random-cut value m/2.
  EXPECT_LT(noisy, trained.energy);
  EXPECT_GT(noisy, 0.0);
}

TEST(Noise, TrajectoryStatesStayNormalized) {
  Rng rng(61);
  const auto g = graph::random_regular(6, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::baseline());
  const std::vector<double> theta(4, 0.3);
  sim::NoiseModel model;
  model.p1 = 0.2;
  model.p2 = 0.2;
  for (int t = 0; t < 5; ++t) {
    const auto state = sim::noisy_trajectory(c, theta, model, rng);
    EXPECT_NEAR(linalg::norm(state), 1.0, 1e-10);
  }
}

TEST(Noise, RejectsBadProbabilities) {
  const auto c = circuit::Circuit(2);
  sim::NoiseModel bad;
  bad.p1 = 1.5;
  Rng rng(1);
  EXPECT_THROW(sim::noisy_trajectory(c, {}, bad, rng), Error);
}

// ---------------------------------------------------------------------------
// INTERP initialization
// ---------------------------------------------------------------------------

TEST(Interp, ScheduleShapeAndEndpoints) {
  // p=2 schedule (γ1 β1 γ2 β2) -> p=3 schedule.
  const std::vector<double> theta{0.1, 0.9, 0.3, 0.7};
  const auto next = qaoa::interp_schedule(theta);
  ASSERT_EQ(next.size(), 6u);
  // INTERP keeps endpoints: first γ = (2-0)/2*γ1 = γ1, last γ = γ2.
  EXPECT_NEAR(next[0], 0.1, 1e-12);
  EXPECT_NEAR(next[4], 0.3, 1e-12);
  // Interior point is the average for p=2.
  EXPECT_NEAR(next[2], 0.2, 1e-12);
  EXPECT_THROW(qaoa::interp_schedule({0.1}), Error);
}

TEST(Interp, IncrementalTrainingMonotoneAtDepth) {
  Rng rng(67);
  const auto g = graph::random_regular(8, 3, rng);
  const qaoa::EnergyEvaluator ev(g, {});
  optim::CobylaConfig cc;
  cc.max_evals = 80;
  const auto result = qaoa::train_qaoa_interp(g, qaoa::MixerSpec::baseline(),
                                              3, ev, optim::Cobyla(cc));
  ASSERT_EQ(result.per_depth.size(), 3u);
  // Warm-started deeper circuits should not lose energy.
  EXPECT_GE(result.per_depth[1].energy, result.per_depth[0].energy - 1e-6);
  EXPECT_GE(result.per_depth[2].energy, result.per_depth[1].energy - 1e-6);
  EXPECT_EQ(result.final().theta.size(), 6u);
}

// ---------------------------------------------------------------------------
// Tensor network slicing
// ---------------------------------------------------------------------------

TEST(Slicing, ProjectionExtractsHyperplanes)  {
  // T[a][b] = [[1,2],[3,4]]; project a=0 -> [1,2]; a=1 -> [3,4]; b=1 -> [2,4].
  const qtensor::Tensor t({5, 6}, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(qtensor::project(t, 5, 0).data(),
            (std::vector<linalg::cplx>{1.0, 2.0}));
  EXPECT_EQ(qtensor::project(t, 5, 1).data(),
            (std::vector<linalg::cplx>{3.0, 4.0}));
  EXPECT_EQ(qtensor::project(t, 6, 1).data(),
            (std::vector<linalg::cplx>{2.0, 4.0}));
  // Missing label: unchanged.
  EXPECT_EQ(qtensor::project(t, 99, 0).labels(), t.labels());
}

TEST(Slicing, SlicedContractionMatchesDirect) {
  Rng rng(71);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const std::vector<double> theta{0.5, 0.3};
  const auto net = qtensor::expectation_zz_network(c, theta, g.edges()[0].u,
                                                   g.edges()[0].v);
  const qtensor::SerialCpuBackend backend;
  const auto full_order = qtensor::order_greedy_degree(net);
  const auto direct = qtensor::contract(net, full_order, backend);

  for (std::size_t num_slices : {1u, 2u, 3u}) {
    const auto slice_vars = qtensor::choose_slice_vars(net, num_slices);
    ASSERT_EQ(slice_vars.size(), num_slices);
    std::vector<qtensor::VarId> order;
    for (qtensor::VarId v : full_order)
      if (std::find(slice_vars.begin(), slice_vars.end(), v) ==
          slice_vars.end())
        order.push_back(v);
    for (std::size_t workers : {1u, 4u}) {
      const auto sliced = qtensor::contract_sliced(net, order, slice_vars,
                                                   backend, workers);
      EXPECT_NEAR(std::abs(sliced.value - direct.value), 0.0, 1e-10)
          << num_slices << " slices, " << workers << " workers";
      // Slicing cannot increase the width.
      EXPECT_LE(sliced.width, direct.width + 1);
    }
  }
}

TEST(Slicing, ChoosesBusiestVariables) {
  Rng rng(73);
  const auto g = graph::random_regular(8, 3, rng);
  const auto c = qaoa::build_qaoa_circuit(g, 1, qaoa::MixerSpec::qnas());
  const std::vector<double> theta{0.5, 0.3};
  const auto net = qtensor::expectation_zz_network(c, theta, g.edges()[0].u,
                                                   g.edges()[0].v);
  const auto vars = qtensor::choose_slice_vars(net, 2);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_NE(vars[0], vars[1]);
}

}  // namespace
