// Generalized Hamiltonians and training objectives: randomized classical
// cross-checks for the MaxCut / MIS / Ising constructions, <C> from the
// compiled plans (both engines, including Z field terms) against the exact
// distribution average, CVaR / best-of-shots aggregation properties, spec
// tag round-trips, and end-to-end CVaR training through the Evaluator on
// either engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/extra_generators.hpp"
#include "graph/generators.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "qaoa/hamiltonian.hpp"
#include "qaoa/mixer.hpp"
#include "qaoa/objective.hpp"
#include "qaoa/sampling.hpp"
#include "search/evaluator.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qarch;

std::vector<double> random_theta(std::size_t params, Rng& rng) {
  std::vector<double> theta(params);
  for (double& t : theta) t = rng.uniform(-2.0, 2.0);
  return theta;
}

// ---------------------------------------------------------------------------
// Classical values: each named construction against its direct formula.
// ---------------------------------------------------------------------------

TEST(Hamiltonian, ClassicalValuesMatchDirectFormulas) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.uniform_int(4);
    graph::Graph g = graph::erdos_renyi_connected(n, 0.5, rng);
    if (rng.bernoulli(0.5)) g = graph::with_random_weights(g, 0.2, 2.0, rng);

    const double penalty = 1.5 + rng.uniform(0.0, 2.0);
    const double coupling = rng.uniform(-1.5, 1.5);
    const double field = rng.uniform(-1.0, 1.0);
    const qaoa::Hamiltonian maxcut = qaoa::Hamiltonian::maxcut(g);
    const qaoa::Hamiltonian mis = qaoa::Hamiltonian::mis(g, penalty);
    const qaoa::Hamiltonian ising =
        qaoa::Hamiltonian::ising(g, coupling, field);

    for (std::size_t basis = 0; basis < (std::size_t{1} << n); ++basis) {
      // Direct formulas over bits x (x=1 means in-set, z = 1-2x).
      double cut = 0.0, mis_val = 0.0, ising_val = 0.0;
      for (const graph::Edge& e : g.edges()) {
        const int xu = (basis >> e.u) & 1, xv = (basis >> e.v) & 1;
        if (xu != xv) cut += e.weight;
        if (xu == 1 && xv == 1) mis_val -= penalty * e.weight;
        const int zu = 1 - 2 * xu, zv = 1 - 2 * xv;
        ising_val -= coupling * e.weight * zu * zv;
      }
      for (std::size_t q = 0; q < n; ++q) {
        const int x = (basis >> q) & 1;
        mis_val += x;
        ising_val -= field * (1 - 2 * x);
      }
      EXPECT_NEAR(maxcut.classical_value_bits(basis), cut, 1e-10);
      EXPECT_NEAR(mis.classical_value_bits(basis), mis_val, 1e-10);
      EXPECT_NEAR(ising.classical_value_bits(basis), ising_val, 1e-10);
      EXPECT_NEAR(maxcut.classical_value_bits(basis),
                  qaoa::cut_of_basis_state(g, basis), 1e-10);
    }

    // classical_maximum agrees with the brute force over classical_value_bits
    // and, when penalty * min-edge-weight > 1 (so violating any edge never
    // pays), with the maximum independent set size.
    double min_weight = 1e300;
    for (const graph::Edge& e : g.edges())
      min_weight = std::min(min_weight, e.weight);
    const qaoa::Hamiltonian strict =
        qaoa::Hamiltonian::mis(g, 1.5 / min_weight);
    double best = -1e300, strict_best = -1e300;
    std::size_t best_independent = 0;
    for (std::size_t basis = 0; basis < (std::size_t{1} << n); ++basis) {
      best = std::max(best, mis.classical_value_bits(basis));
      strict_best = std::max(strict_best, strict.classical_value_bits(basis));
      bool independent = true;
      for (const graph::Edge& e : g.edges())
        if (((basis >> e.u) & 1) && ((basis >> e.v) & 1)) independent = false;
      if (independent) {
        std::size_t size = 0;
        for (std::size_t q = 0; q < n; ++q) size += (basis >> q) & 1;
        best_independent = std::max(best_independent, size);
      }
    }
    EXPECT_NEAR(qaoa::classical_maximum(mis), best, 1e-10);
    EXPECT_NEAR(strict_best, static_cast<double>(best_independent), 1e-10);
  }
}

// ---------------------------------------------------------------------------
// <C> from the compiled plans == the exact distribution average, on both
// engines, for a Hamiltonian WITH field terms (exercises z_expectations).
// ---------------------------------------------------------------------------

TEST(Hamiltonian, PlanEnergyMatchesDistributionAverage) {
  Rng rng(23);
  const graph::Graph g = graph::random_regular(6, 3, rng);
  const qaoa::Hamiltonian ham = qaoa::Hamiltonian::ising(g, 0.8, 0.4);
  ASSERT_FALSE(ham.z_terms().empty());

  const circuit::Circuit ansatz =
      qaoa::build_qaoa_circuit(g, 2, qaoa::MixerSpec::parse("rx"));
  const sim::StatevectorSimulator sv;

  for (const qaoa::EngineKind engine :
       {qaoa::EngineKind::Statevector, qaoa::EngineKind::TensorNetwork}) {
    qaoa::EnergyOptions options;
    options.engine = engine;
    const qaoa::EnergyEvaluator evaluator(ham, options);
    const auto plan = evaluator.plan_for(ansatz);
    for (int step = 0; step < 3; ++step) {
      const auto theta = random_theta(ansatz.num_params(), rng);
      const sim::State psi = sv.run_from_plus(ansatz, theta);
      double expect = 0.0;
      for (std::size_t basis = 0; basis < psi.size(); ++basis)
        expect += std::norm(psi[basis]) * ham.classical_value_bits(basis);
      EXPECT_NEAR(plan->energy(theta), expect, 1e-8);
    }
  }
}

// ---------------------------------------------------------------------------
// Aggregation: CVaR / best-of-shots properties.
// ---------------------------------------------------------------------------

TEST(Objective, CvarAndBestAggregation) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  const double mean =
      std::accumulate(values.begin(), values.end(), 0.0) / values.size();

  // alpha = 1 recovers the mean; alpha = 1/n keeps only the best value.
  EXPECT_NEAR(qaoa::cvar_value(values, 1.0), mean, 1e-12);
  EXPECT_NEAR(qaoa::cvar_value(values, 1.0 / values.size()), 9.0, 1e-12);
  // ceil(0.25 * 8) = 2 best values: (9 + 6) / 2.
  EXPECT_NEAR(qaoa::cvar_value(values, 0.25), 7.5, 1e-12);
  EXPECT_NEAR(qaoa::best_of_value(values), 9.0, 1e-12);

  // Under maximization CVaR is monotone non-increasing in alpha.
  double prev = 1e300;
  for (const double alpha : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    const double v = qaoa::cvar_value(values, alpha);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }

  qaoa::ObjectiveSpec spec;
  spec.kind = qaoa::ObjectiveKind::CVaR;
  spec.alpha = 0.25;
  EXPECT_NEAR(qaoa::objective_value(spec, values), 7.5, 1e-12);
  spec.kind = qaoa::ObjectiveKind::BestOfShots;
  EXPECT_NEAR(qaoa::objective_value(spec, values), 9.0, 1e-12);
  spec.kind = qaoa::ObjectiveKind::Expectation;
  EXPECT_NEAR(qaoa::objective_value(spec, values), mean, 1e-12);
}

// ---------------------------------------------------------------------------
// Spec tags: stable round-trips (the cache-key / wire format).
// ---------------------------------------------------------------------------

TEST(Objective, SpecTagsRoundTrip) {
  qaoa::ObjectiveSpec spec;
  EXPECT_TRUE(spec.is_default());
  EXPECT_EQ(qaoa::ObjectiveSpec::parse_tag(spec.tag()), spec);

  // Fresh specs per kind: tags only encode the fields the kind uses, so a
  // round-trip restores defaults for the irrelevant ones.
  qaoa::ObjectiveSpec cvar;
  cvar.kind = qaoa::ObjectiveKind::CVaR;
  cvar.alpha = 0.125;
  cvar.shots = 64;
  EXPECT_FALSE(cvar.is_default());
  EXPECT_EQ(qaoa::ObjectiveSpec::parse_tag(cvar.tag()), cvar);

  qaoa::ObjectiveSpec best;
  best.kind = qaoa::ObjectiveKind::BestOfShots;
  best.shots = 32;
  EXPECT_EQ(qaoa::ObjectiveSpec::parse_tag(best.tag()), best);

  EXPECT_EQ(qaoa::objective_kind_from_name("cvar"), qaoa::ObjectiveKind::CVaR);
  EXPECT_EQ(qaoa::objective_kind_from_name("best-of-shots"),
            qaoa::ObjectiveKind::BestOfShots);
  EXPECT_THROW(qaoa::objective_kind_from_name("nope"), InvalidArgument);

  qaoa::HamiltonianSpec ham;
  EXPECT_TRUE(ham.is_default());
  EXPECT_EQ(qaoa::HamiltonianSpec::parse_tag(ham.tag()), ham);
  qaoa::HamiltonianSpec mis;
  mis.kind = qaoa::HamiltonianKind::MIS;
  mis.penalty = 3.5;
  EXPECT_EQ(qaoa::HamiltonianSpec::parse_tag(mis.tag()), mis);
  qaoa::HamiltonianSpec ising;
  ising.kind = qaoa::HamiltonianKind::Ising;
  ising.coupling = -0.75;
  ising.field = 0.25;
  EXPECT_EQ(qaoa::HamiltonianSpec::parse_tag(ising.tag()), ising);
  EXPECT_THROW(qaoa::hamiltonian_kind_from_name("nope"), InvalidArgument);
}

// ---------------------------------------------------------------------------
// End to end: CVaR training through the Evaluator on both engines, and the
// generalized ratio denominator for a non-MaxCut Hamiltonian.
// ---------------------------------------------------------------------------

TEST(Objective, EvaluatorTrainsCvarOnBothEngines) {
  Rng rng(37);
  const graph::Graph g = graph::random_regular(6, 3, rng);
  const qaoa::MixerSpec mixer = qaoa::MixerSpec::parse("rx");

  for (const qaoa::EngineKind engine :
       {qaoa::EngineKind::Statevector, qaoa::EngineKind::TensorNetwork}) {
    search::EvaluatorOptions options;
    options.energy.engine = engine;
    options.cobyla.max_evals = 30;
    options.objective.kind = qaoa::ObjectiveKind::CVaR;
    options.objective.alpha = 0.5;
    options.objective.shots = 48;
    const search::Evaluator evaluator(g, options);
    const search::CandidateResult result = evaluator.evaluate(mixer, 1);
    // A trained CVaR candidate on a 3-regular graph must beat random
    // guessing (ratio 1/2 of the cut) and stay a valid ratio.
    EXPECT_GT(result.ratio, 0.4);
    EXPECT_LE(result.ratio, 1.0 + 1e-9);
    EXPECT_GT(result.sampled_ratio, 0.5);
    EXPECT_LE(result.sampled_ratio, 1.0 + 1e-9);
    EXPECT_EQ(result.theta.size(), 2U);

    // Same evaluation twice is deterministic (the sampled objective re-seeds
    // from the candidate seed every evaluation).
    const search::CandidateResult again = evaluator.evaluate(mixer, 1);
    EXPECT_DOUBLE_EQ(result.energy, again.energy);
    EXPECT_DOUBLE_EQ(result.sampled_ratio, again.sampled_ratio);
  }
}

TEST(Objective, EvaluatorScoresMisAgainstBruteForceOptimum) {
  Rng rng(41);
  const graph::Graph g = graph::erdos_renyi_connected(6, 0.45, rng);

  search::EvaluatorOptions options;
  options.energy.engine = qaoa::EngineKind::Statevector;
  options.cobyla.max_evals = 40;
  options.hamiltonian.kind = qaoa::HamiltonianKind::MIS;
  const search::Evaluator evaluator(g, options);
  EXPECT_NEAR(evaluator.classical_optimum(),
              qaoa::classical_maximum(evaluator.hamiltonian()), 1e-10);

  const search::CandidateResult result =
      evaluator.evaluate(qaoa::MixerSpec::parse("rx"), 1);
  EXPECT_GT(result.sampled_ratio, 0.5);
  EXPECT_LE(result.sampled_ratio, 1.0 + 1e-9);
}

}  // namespace
