#!/usr/bin/env python3
"""qarch-lint: repo-local concurrency and wire-hygiene checks.

Complements the Clang thread-safety analysis (which proves lock discipline
where it CAN see) with grep-level rules for what it cannot:

  R1  no raw std::mutex / std::lock_guard / std::unique_lock /
      std::condition_variable (etc.) outside src/common/annotations.hpp and
      src/common/lock_order.* — everything else uses the annotated
      qarch::Mutex family so the static analysis and the runtime lock-order
      checker see every lock. (std::once_flag / std::call_once stay legal:
      they are one-shot initialization, not a lock hierarchy participant.)
  R2  no std::thread construction outside src/parallel/ — every thread is
      spawned through qarch::parallel::Thread / ThreadPool so it is joined
      deterministically. std::thread::hardware_concurrency() is fine.
  R3  no .detach() anywhere — detached threads outlive their owners and
      truncate sanitizer stacks.
  R4  no naked sleep_for / sleep_until in src/search/ or src/server/ —
      delays route through search::backoff_sleep (src/search/fault.cpp is
      the one sanctioned sleep site) so they stay observable and faultable.
  R5  every JSON field the daemon reads from a request body
      (body.contains("x") / body.at("x") / helper(body, "x") in
      src/server/server.cpp) must appear in one of the kKnown
      unknown-field-reject arrays, so a field can never be silently read
      without also being accepted by the reject filter.

Usage: python3 tools/qarch_lint.py [--root DIR]
Exits nonzero if any rule fires; prints one line per violation.
"""

import argparse
import os
import re
import sys

CPP_EXT = (".hpp", ".cpp", ".h", ".cc")

# Files allowed to touch the raw primitives: the annotated wrappers
# themselves, and the lock-order checker (whose own graph mutex cannot be a
# qarch::Mutex without infinite recursion).
R1_ALLOWED = {
    "src/common/annotations.hpp",
    "src/common/lock_order.hpp",
    "src/common/lock_order.cpp",
}

R1_TOKEN = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
)
R2_TOKEN = re.compile(r"std::thread\b(?!::)")
R3_TOKEN = re.compile(r"\.detach\s*\(")
R4_TOKEN = re.compile(r"\bsleep_(?:for|until)\s*\(")
R4_SANCTIONED = "src/search/fault.cpp"

KNOWN_ARRAY = re.compile(
    r"kKnown\s*=\s*\{(.*?)\}\s*;", re.DOTALL)
BODY_FIELD = re.compile(
    r'(?:body\s*\.\s*(?:contains|at)\s*\(\s*|\(\s*body\s*,\s*)"([a-z_]+)"')
QUOTED = re.compile(r'"([a-z_]+)"')


def strip_comments(text):
    """Removes /*...*/ and //... so doc references to banned tokens pass.

    Line count is preserved (block comments are replaced newline-for-
    newline) so reported line numbers match the source.
    """
    def keep_newlines(m):
        return "\n" * m.group(0).count("\n")
    text = re.sub(r"/\*.*?\*/", keep_newlines, text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def iter_sources(root):
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in sorted(os.walk(src)):
        for name in sorted(filenames):
            if name.endswith(CPP_EXT):
                path = os.path.join(dirpath, name)
                yield path, os.path.relpath(path, root).replace(os.sep, "/")


def scan(root):
    violations = []

    def flag(rel, lineno, rule, message):
        violations.append("%s:%d: [%s] %s" % (rel, lineno, rule, message))

    scanned = 0
    for path, rel in iter_sources(root):
        scanned += 1
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        code = strip_comments(raw)
        for lineno, line in enumerate(code.splitlines(), start=1):
            m = R1_TOKEN.search(line)
            if m and rel not in R1_ALLOWED:
                flag(rel, lineno, "R1",
                     "raw %s; use qarch::Mutex / LockGuard / UniqueLock / "
                     "CondVar from common/annotations.hpp" % m.group(0))
            if R2_TOKEN.search(line) and not rel.startswith("src/parallel/"):
                flag(rel, lineno, "R2",
                     "std::thread outside src/parallel/; spawn through "
                     "qarch::parallel::Thread or ThreadPool")
            if R3_TOKEN.search(line):
                flag(rel, lineno, "R3",
                     ".detach() is banned; every thread needs a joining "
                     "owner")
            if (R4_TOKEN.search(line)
                    and (rel.startswith("src/search/")
                         or rel.startswith("src/server/"))
                    and rel != R4_SANCTIONED):
                flag(rel, lineno, "R4",
                     "naked sleep in the service path; route through "
                     "search::backoff_sleep (src/search/fault.cpp)")

    server_cpp = os.path.join(root, "src", "server", "server.cpp")
    if os.path.exists(server_cpp):
        with open(server_cpp, encoding="utf-8") as f:
            code = strip_comments(f.read())
        known = set()
        for block in KNOWN_ARRAY.finditer(code):
            known.update(QUOTED.findall(block.group(1)))
        if not known:
            flag("src/server/server.cpp", 1, "R5",
                 "no kKnown unknown-field-reject arrays found")
        for lineno, line in enumerate(code.splitlines(), start=1):
            for m in BODY_FIELD.finditer(line):
                field = m.group(1)
                if field not in known:
                    flag("src/server/server.cpp", lineno, "R5",
                         'request field "%s" is read but missing from every '
                         "kKnown reject array" % field)

    return scanned, violations


def self_test():
    """Proves the rules fire: lints a synthetic bad tree, expects hits."""
    import tempfile
    bad = {
        "src/search/bad.cpp": (
            "std::mutex m;\n"
            "std::lock_guard<std::mutex> lock(m);\n"
            "std::thread t([]{});\n"
            "t.detach();\n"
            "std::this_thread::sleep_for(std::chrono::seconds(1));\n"
            "// std::mutex in a comment is fine\n"
        ),
    }
    with tempfile.TemporaryDirectory() as tmp:
        for rel, text in bad.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
        _, violations = scan(tmp)
    rules = {v.split("[")[1][:2] for v in violations}
    expected = {"R1", "R2", "R3", "R4"}
    if not expected <= rules:
        print("self-test FAILED: expected rules %s, got %s"
              % (sorted(expected), sorted(rules)), file=sys.stderr)
        return 1
    if len([v for v in violations if "[R1]" in v]) != 2:
        print("self-test FAILED: comment line was not exempted",
              file=sys.stderr)
        return 1
    print("self-test passed (%d violations flagged in fixture)"
          % len(violations))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="lint a synthetic violating tree and require every rule to fire")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    scanned, violations = scan(args.root)
    for v in violations:
        print(v)
    if violations:
        print("qarch-lint: %d violation(s) in %d files"
              % (len(violations), scanned), file=sys.stderr)
        return 1
    print("qarch-lint: %d files clean" % scanned)
    return 0


if __name__ == "__main__":
    sys.exit(main())
