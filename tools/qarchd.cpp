// qarchd — the networked multi-tenant evaluation daemon.
//
// Serves the qarch wire protocol (src/server/README.md) over loopback HTTP,
// backed by one search::EvalService: fair-share scheduling across tenants,
// shared result/plan caches, preemption, checkpoints. SIGTERM/SIGINT drain
// gracefully — running evaluations park at their next safe point and every
// cache/checkpoint persists, so a restart on the same paths resumes.
//
//   qarchd --port 8787 --workers 4 \
//          --tenants 'alice:key-a:4,bob:key-b:1:2:5:8' \
//          --cache /var/qarch/results.json --checkpoint /var/qarch/ckpt.json
//
// --tenants is a comma-separated list of name:key[:weight[:rate[:burst
// [:inflight]]]] specs. With no --tenants a single unlimited tenant
// "default" with key "dev" is served (local development only).
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "server/server.hpp"

namespace {

std::atomic<bool> g_shutdown{false};

void on_signal(int) { g_shutdown.store(true); }

std::vector<qarch::server::TenantSpec> parse_tenants(const std::string& text) {
  std::vector<qarch::server::TenantSpec> tenants;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    if (!item.empty())
      tenants.push_back(qarch::server::TenantSpec::parse(item));
    pos = comma + 1;
  }
  return tenants;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qarch;
  try {
    const Cli cli(argc, argv);
    if (cli.has("help")) {
      std::printf(
          "usage: qarchd [--port N] [--workers N] [--tenants SPECS]\n"
          "              [--engine sv|tn|auto] [--evals N] [--cache PATH]\n"
          "              [--plan-cache PATH] [--checkpoint PATH]\n"
          "              [--ckpt-evals N] [--quantum SECONDS] [--retries N]\n"
          "              [--io-threads N] [--max-wait-ms N] [--max-vertices N]\n"
          "tenant spec: name:key[:weight[:rate[:burst[:inflight]]]] (comma-"
          "separated)\n");
      return 0;
    }

    server::ServerConfig config;
    config.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
    config.max_vertices =
        static_cast<std::size_t>(cli.get_int("max-vertices", 32));
    SessionConfig& session = config.session;
    session.backend = backend_from_name(cli.get("engine", "auto"));
    session.workers = static_cast<std::size_t>(cli.get_int("workers", 2));
    session.training_evals =
        static_cast<std::size_t>(cli.get_int("evals", session.training_evals));
    session.cache_path = cli.get("cache", "");
    session.plan_cache_path = cli.get("plan-cache", "");
    session.checkpoint_path = cli.get("checkpoint", "");
    session.checkpoint_evals =
        static_cast<std::size_t>(cli.get_int("ckpt-evals", 0));
    session.preempt_quantum_seconds = cli.get_double("quantum", 0.0);
    session.eval_retries = static_cast<int>(cli.get_int("retries", 0));
    session.server_io_threads =
        static_cast<std::size_t>(cli.get_int("io-threads", 8));
    session.server_max_wait_seconds =
        cli.get_double("max-wait-ms", 30000.0) / 1000.0;

    config.tenants = parse_tenants(cli.get("tenants", "default:dev"));

    server::QarchServer daemon(std::move(config));
    daemon.start();
    std::printf("qarchd: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(daemon.port()));
    std::fflush(stdout);

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    while (!g_shutdown.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::printf("qarchd: draining\n");
    std::fflush(stdout);
    daemon.stop(cli.get_double("drain-timeout", 10.0));
    std::printf("qarchd: clean shutdown\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qarchd: fatal: %s\n", e.what());
    return 1;
  }
}
