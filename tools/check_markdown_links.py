#!/usr/bin/env python3
"""Validate relative links in the repo's markdown files.

Walks every *.md outside build directories, extracts [text](target) links,
and checks that each relative target resolves to an existing file or
directory. Fragments are validated too: `file.md#section` (and pure
in-page `#section` anchors) must match a real heading in the target file,
GitHub-slugified — so cross-references into sections like the
"Lock hierarchy" tables in src/search/README.md and src/server/README.md
break loudly when a heading is renamed. External links (http/https/mailto)
are ignored on purpose: this job must never flake on network state. Exits
non-zero listing every broken link so README/doc cross-references stay
valid as files move.
"""
import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", "build-asan", "build-tsan", "build-debug", ".git"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """Approximates GitHub's heading-to-anchor slug: strip markdown
    emphasis/code markers, lowercase, drop punctuation, spaces to hyphens."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # [text](url) -> text
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r" +", "-", text).strip("-")


def heading_anchors(md: Path, cache: dict) -> set:
    if md not in cache:
        anchors = set()
        counts = {}
        for heading in HEADING_RE.findall(md.read_text(encoding="utf-8")):
            slug = github_slug(heading)
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[md] = anchors
    return cache[md]


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    anchor_cache = {}
    for md in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(root).parts):
            continue
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            path_part, _, fragment = target.partition("#")
            checked += 1
            resolved = (md.parent / path_part).resolve() if path_part else md
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}: {target}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in heading_anchors(resolved, anchor_cache):
                    broken.append(
                        f"{md.relative_to(root)}: {target} "
                        f"(no such heading in {resolved.name})")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"ok: {checked} relative links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
