#!/usr/bin/env python3
"""Validate relative links in the repo's markdown files.

Walks every *.md outside build directories, extracts [text](target) links,
and checks that each relative target resolves to an existing file or
directory. External links (http/https/mailto) are ignored on purpose: this
job must never flake on network state. Exits non-zero listing every broken
link so README/doc cross-references stay valid as files move.
"""
import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", "build-asan", ".git"}
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    checked = 0
    for md in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in md.relative_to(root).parts):
            continue
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):
                continue  # http:, https:, mailto:, ...
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue  # pure in-page anchor
            checked += 1
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append(f"{md.relative_to(root)}: {target}")
    if broken:
        print("broken markdown links:")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"ok: {checked} relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
