// qarch_client — command-line client of a running qarchd.
//
//   qarch_client health --port 8787
//   qarch_client submit --port 8787 --key dev --generator ring --n 6 \
//                       --mixer "rx,ry" --p 2
//   qarch_client result --port 8787 --key dev --ticket t-1 --wait-ms 5000
//   qarch_client cancel --port 8787 --key dev --ticket t-1
//   qarch_client stats  --port 8787 --key dev
//   qarch_client eval   --port 8787 --key dev --edges "0-1,1-2,2-0" \
//                       --n 3 --mixer rx --p 1
//
// `eval` is submit + poll-to-completion with restart convergence (it
// resubmits if the daemon was restarted and forgot the ticket). Exit code 0
// on success, 1 on any error — the CI smoke job scripts against this.
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "server/client.hpp"

namespace {

using qarch::json::Value;

/// Parses "--edges 0-1,1-2,2-0[@w]" into the submit edge list.
Value edges_from_flag(const std::string& text) {
  Value edges = Value::array();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t dash = item.find('-');
    QARCH_REQUIRE(dash != std::string::npos,
                  "--edges wants u-v[@weight] items, got: " + item);
    const std::size_t at = item.find('@', dash);
    Value edge = Value::array();
    edge.push_back(std::stod(item.substr(0, dash)));
    edge.push_back(std::stod(
        item.substr(dash + 1, at == std::string::npos ? std::string::npos
                                                      : at - dash - 1)));
    if (at != std::string::npos) edge.push_back(std::stod(item.substr(at + 1)));
    edges.push_back(std::move(edge));
  }
  return edges;
}

Value submit_body_from_cli(const qarch::Cli& cli) {
  Value body = Value::object();
  if (cli.has("edges")) {
    Value graph = Value::object();
    graph.set("n", static_cast<std::size_t>(cli.get_int("n", 0)));
    graph.set("edges", edges_from_flag(cli.get("edges", "")));
    body.set("graph", std::move(graph));
  } else {
    Value gen = Value::object();
    gen.set("name", cli.get("generator", "ring"));
    gen.set("n", static_cast<std::size_t>(cli.get_int("n", 6)));
    if (cli.has("degree"))
      gen.set("degree", static_cast<std::size_t>(cli.get_int("degree", 3)));
    if (cli.has("prob")) gen.set("prob", cli.get_double("prob", 0.5));
    if (cli.has("rows"))
      gen.set("rows", static_cast<std::size_t>(cli.get_int("rows", 2)));
    if (cli.has("cols"))
      gen.set("cols", static_cast<std::size_t>(cli.get_int("cols", 3)));
    if (cli.has("seed"))
      gen.set("seed", static_cast<std::size_t>(cli.get_int("seed", 7)));
    body.set("generator", std::move(gen));
  }
  body.set("mixer", cli.get("mixer", "rx"));
  body.set("p", static_cast<std::size_t>(cli.get_int("p", 1)));
  if (cli.has("budget"))
    body.set("budget", static_cast<std::size_t>(cli.get_int("budget", 0)));
  if (cli.has("engine")) body.set("engine", cli.get("engine", ""));
  if (cli.has("priority"))
    body.set("priority", static_cast<int>(cli.get_int("priority", 0)));
  if (cli.has("deadline-ms"))
    body.set("deadline_ms", cli.get_double("deadline-ms", 0.0));
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qarch;
  try {
    const Cli cli(argc, argv);
    QARCH_REQUIRE(!cli.positional().empty(),
                  "usage: qarch_client <health|stats|submit|result|cancel|"
                  "eval> --port N [--key KEY] [flags]");
    const std::string& command = cli.positional().front();

    server::ClientOptions options;
    options.host = cli.get("host", "127.0.0.1");
    options.port = static_cast<std::uint16_t>(cli.get_int("port", 0));
    options.api_key = cli.get("key", "dev");
    options.max_retries = static_cast<int>(cli.get_int("retries", 8));
    options.request_timeout_seconds = cli.get_double("timeout", 60.0);
    server::QarchClient client(options);

    if (command == "health") {
      std::printf("%s\n", client.healthz().dump(2).c_str());
    } else if (command == "stats") {
      std::printf("%s\n", client.stats().dump(2).c_str());
    } else if (command == "submit") {
      std::printf("%s\n", client.submit(submit_body_from_cli(cli)).c_str());
    } else if (command == "result") {
      const json::Value out = client.result(
          cli.get("ticket", ""), cli.get_double("wait-ms", 0.0));
      std::printf("%s\n", out.dump(2).c_str());
    } else if (command == "cancel") {
      const bool ok = client.cancel(cli.get("ticket", ""));
      std::printf("%s\n", ok ? "cancelled" : "not cancelled");
    } else if (command == "eval") {
      const search::CandidateResult r =
          client.evaluate(submit_body_from_cli(cli),
                          cli.get_double("poll-ms", 500.0));
      std::printf(
          "mixer=%s p=%zu ratio=%.6f sampled_ratio=%.6f evaluations=%zu\n",
          r.mixer.to_string().c_str(), r.p, r.ratio, r.sampled_ratio,
          r.evaluations);
    } else {
      QARCH_REQUIRE(false, "unknown command: " + command);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qarch_client: error: %s\n", e.what());
    return 1;
  }
}
