// DNN-guided search: drive the search with the REINFORCE controller
// (Fig. 1's predictor/reward loop, the paper's stated next version) and
// compare against uniform random proposals with the same evaluation budget.
//
//   ./controller_search [--n 10] [--degree 4] [--p 1] [--budget 60]
#include <cstdio>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "search/engine.hpp"
#include "search/rl_predictor.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 1));
  const auto budget = static_cast<std::size_t>(cli.get_int("budget", 60));

  Rng rng(11);
  const graph::Graph g = graph::random_regular(n, degree, rng);
  std::printf("instance %s, candidate budget %zu at p=%zu\n\n",
              g.to_string().c_str(), budget, p);

  search::SearchConfig cfg;
  cfg.p_max = p;
  cfg.session.workers = 1;  // sequential so the controller learns online
  cfg.batch = 10;
  cfg.session.training_evals = 120;
  cfg.session.backend = BackendChoice::Statevector;
  const search::SearchEngine engine(cfg);

  search::ReinforceConfig rl;
  rl.k_max = 3;
  rl.budget = budget;
  search::ReinforcePredictor controller(cfg.alphabet, rl);
  const auto rl_report = engine.run(g, controller);

  search::RandomPredictor random(cfg.alphabet, 3, budget, /*seed=*/21);
  const auto rnd_report = engine.run(g, random);

  std::printf("%-12s best mixer %-22s  <C>=%.4f  r=%.4f\n", "reinforce",
              rl_report.best.mixer.to_string().c_str(), rl_report.best.energy,
              rl_report.best.ratio);
  std::printf("%-12s best mixer %-22s  <C>=%.4f  r=%.4f\n", "random",
              rnd_report.best.mixer.to_string().c_str(),
              rnd_report.best.energy, rnd_report.best.ratio);
  std::printf("\ncontroller reward baseline after training: %.4f\n",
              controller.baseline());
  std::printf("controller greedy decode: ");
  for (std::size_t idx : controller.greedy_decode())
    std::printf("%s ", circuit::gate_name(cfg.alphabet.gates[idx]).c_str());
  std::printf("\n");
  return 0;
}
