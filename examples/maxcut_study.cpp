// Mixer generalization study: compare the baseline RX mixer against the
// searched (rx, ry) mixer across graph families and depths — the experiment
// behind the paper's Figs. 8 and 9, on user-selected parameters.
//
// All (graph, mixer, p) evaluations are submitted UP FRONT to one shared
// evaluation service (no private task pool, no per-task Evaluator
// construction); tickets resolve as the table prints.
//
//   ./maxcut_study [--graphs 8] [--n 10] [--pmax 3] [--family er|regular]
//                  [--workers 0(=all cores)] [--engine sv|tn|auto]
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "search/eval_service.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 8));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto p_max = static_cast<std::size_t>(cli.get_int("pmax", 3));
  const std::string family = cli.get("family", "regular");

  Rng rng(2023);
  const std::vector<graph::Graph> graphs =
      family == "er" ? graph::er_dataset(num_graphs, n, 0.3, 0.7, rng)
                     : graph::regular_dataset(num_graphs, n, 4, rng);
  std::printf("family=%s graphs=%zu n=%zu\n\n", family.c_str(), graphs.size(),
              n);

  SessionConfig session;
  session.backend = backend_from_name(cli.get("engine", "sv"));
  session.workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  // Up to two evaluators per graph: backend=auto may resolve different
  // (mixer, p) candidates of one graph to different engines.
  session.evaluator_cache = 2 * graphs.size();
  search::EvalService service(session);

  const std::vector<qaoa::MixerSpec> mixers = {qaoa::MixerSpec::baseline(),
                                               qaoa::MixerSpec::qnas()};

  // Submit everything first: the service pipelines across mixers, depths,
  // and graphs at once instead of barriering per table row.
  struct Row {
    const qaoa::MixerSpec* mixer;
    std::size_t p;
    std::vector<search::EvalTicket> tickets;
  };
  std::vector<Row> rows;
  for (const auto& mixer : mixers)
    for (std::size_t p = 1; p <= p_max; ++p) {
      Row row{&mixer, p, {}};
      for (const auto& g : graphs)
        row.tickets.push_back(service.submit(g, mixer, p));
      rows.push_back(std::move(row));
    }

  std::printf("%-10s %-3s %-12s %-12s %-14s\n", "mixer", "p", "mean r",
              "std r", "mean r_smpl");
  for (const Row& row : rows) {
    const auto results = service.collect(row.tickets);
    std::vector<double> ratios, sampled;
    for (const auto& r : results) {
      ratios.push_back(r.ratio);
      sampled.push_back(r.sampled_ratio);
    }
    std::printf("%-10s %-3zu %-12.4f %-12.4f %-14.4f\n",
                row.mixer->to_string().c_str(), row.p, mean(ratios),
                stddev(ratios), mean(sampled));
  }
  return 0;
}
