// Mixer generalization study: compare the baseline RX mixer against the
// searched (rx, ry) mixer across graph families and depths — the experiment
// behind the paper's Figs. 8 and 9, on user-selected parameters.
//
//   ./maxcut_study [--graphs 8] [--n 10] [--pmax 3] [--family er|regular]
#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "parallel/task_pool.hpp"
#include "search/evaluator.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 8));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto p_max = static_cast<std::size_t>(cli.get_int("pmax", 3));
  const std::string family = cli.get("family", "regular");

  Rng rng(2023);
  const std::vector<graph::Graph> graphs =
      family == "er" ? graph::er_dataset(num_graphs, n, 0.3, 0.7, rng)
                     : graph::regular_dataset(num_graphs, n, 4, rng);
  std::printf("family=%s graphs=%zu n=%zu\n\n", family.c_str(), graphs.size(),
              n);

  const std::vector<qaoa::MixerSpec> mixers = {qaoa::MixerSpec::baseline(),
                                               qaoa::MixerSpec::qnas()};
  search::EvaluatorOptions opts;
  opts.energy.engine = qaoa::EngineKind::Statevector;

  parallel::TaskPool pool;
  std::printf("%-10s %-3s %-12s %-12s %-14s\n", "mixer", "p", "mean r",
              "std r", "mean r_smpl");
  for (const auto& mixer : mixers) {
    for (std::size_t p = 1; p <= p_max; ++p) {
      std::vector<std::tuple<std::size_t>> indices;
      for (std::size_t i = 0; i < graphs.size(); ++i) indices.emplace_back(i);
      auto handle = pool.starmap_async(
          [&](std::size_t i) {
            const search::Evaluator ev(graphs[i], opts);
            return ev.evaluate(mixer, p);
          },
          indices);
      const auto results = handle.get();
      std::vector<double> ratios, sampled;
      for (const auto& r : results) {
        ratios.push_back(r.ratio);
        sampled.push_back(r.sampled_ratio);
      }
      std::printf("%-10s %-3zu %-12.4f %-12.4f %-14.4f\n",
                  mixer.to_string().c_str(), p, mean(ratios), stddev(ratios),
                  mean(sampled));
    }
  }
  return 0;
}
