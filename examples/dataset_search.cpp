// Dataset-level search with constraints and JSON persistence — the paper's
// multi-node protocol (Fig. 2) on one machine: each "node slot" searches one
// graph; results aggregate to the architecture that generalizes across the
// whole dataset, and the per-graph reports are checkpointed to JSON.
//
//   ./dataset_search [--graphs 6] [--n 8] [--slots 3] [--kmax 2]
//                    [--out /tmp/qarch_dataset]
//                    [--cache PATH] [--checkpoint PATH] [--ckpt-evals 0]
//                    [--quantum 0] [--retries 0]
//
// --checkpoint + --cache turn on crash-safe durability: in-flight training
// checkpoints persist to --checkpoint (cadence --ckpt-evals objective calls)
// and completed results flush to --cache as they finish, so a killed run
// restarted on the same paths resumes mid-training instead of from step 0
// (the restart reports its "checkpoint resumes"). SIGINT/SIGTERM drain the
// service gracefully: running evaluations park at their next safe point,
// checkpoints and caches hit disk, then the process exits 130.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "search/constraints.hpp"
#include "search/dataset.hpp"
#include "search/eval_service.hpp"
#include "search/report_io.hpp"

using namespace qarch;

namespace {

std::atomic<bool> g_interrupted{false};
void on_signal(int) { g_interrupted.store(true); }

/// Installs SIGINT/SIGTERM handlers and starts a watchdog that drains the
/// service and exits once a signal lands. Joined via `done` at normal exit.
std::thread start_drain_watchdog(search::EvalService& service,
                                 std::atomic<bool>& done) {
  struct sigaction action = {};
  action.sa_handler = on_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  return std::thread([&service, &done] {
    while (!done.load()) {
      if (g_interrupted.load()) {
        std::fprintf(stderr,
                     "\ninterrupted: draining service (parking running "
                     "evaluations, persisting checkpoints)...\n");
        const std::size_t parked = service.drain(5.0);
        std::fprintf(stderr, "drained: %zu evaluations parked\n", parked);
        std::_Exit(130);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 6));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 8));
  const auto slots = static_cast<std::size_t>(cli.get_int("slots", 3));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));
  const std::string out_prefix = cli.get("out", "/tmp/qarch_dataset");

  Rng rng(42);
  const auto graphs = graph::regular_dataset(num_graphs, n, 4, rng);
  std::printf("dataset: %zu random 4-regular graphs on %zu nodes, "
              "%zu node slots\n\n", num_graphs, n, slots);

  search::DatasetSearchConfig cfg;
  cfg.engine.p_max = 1;
  cfg.engine.session.backend = BackendChoice::Statevector;
  cfg.engine.session.training_evals =
      static_cast<std::size_t>(cli.get_int("evals", 120));
  // node_slots client searches share one service; dataset_session widens the
  // pool to node_slots × session.workers, so one worker per slot suffices.
  // Constraints: trainable candidates only, no redundant repeats.
  cfg.engine.constraints
      .add(std::make_shared<search::TrainableConstraint>())
      .add(std::make_shared<search::NoImmediateRepeatConstraint>());
  cfg.k_max = k_max;
  cfg.node_slots = slots;
  // Robustness knobs: checkpoint cadence + paths for crash-safe restarts.
  cfg.engine.session.cache_path = cli.get("cache", "");
  cfg.engine.session.checkpoint_path = cli.get("checkpoint", "");
  cfg.engine.session.checkpoint_evals =
      static_cast<std::size_t>(cli.get_int("ckpt-evals", 0));
  cfg.engine.session.preempt_quantum_seconds = cli.get_double("quantum", 0.0);
  cfg.engine.session.eval_retries = static_cast<int>(cli.get_int("retries", 0));

  // Own the service (instead of letting search_dataset build one) so the
  // signal watchdog can drain it: evaluations park at a safe point and their
  // checkpoints land on disk before the process exits.
  search::EvalService service(search::dataset_session(graphs, cfg));
  if (!cfg.engine.session.cache_path.empty())
    std::printf("warm start: loaded %zu cached results\n",
                service.stats().cache_loaded);
  if (!cfg.engine.session.checkpoint_path.empty())
    std::printf("checkpoint warm start: loaded %zu in-flight checkpoints\n",
                service.stats().checkpoints_loaded);
  std::atomic<bool> done{false};
  std::thread watchdog = start_drain_watchdog(service, done);

  const auto report = search::search_dataset(graphs, cfg, service);

  std::printf("searched in %.2fs; top architectures across the dataset:\n\n",
              report.seconds);
  std::printf("%-22s %-4s %-12s %-14s\n", "mixer", "p", "mean r",
              "mean r_sampled");
  const std::size_t top = std::min<std::size_t>(8, report.ranking.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& c = report.ranking[i];
    std::printf("%-22s %-4zu %-12.4f %-14.4f\n", c.mixer.to_string().c_str(),
                c.p, c.mean_ratio, c.mean_sampled_ratio);
  }

  // Checkpoint every per-graph report.
  for (std::size_t i = 0; i < report.per_graph.size(); ++i) {
    const std::string path = out_prefix + "_g" + std::to_string(i) + ".json";
    search::save_report(report.per_graph[i], path);
  }
  std::printf("\nper-graph reports saved to %s_g*.json\n", out_prefix.c_str());
  std::printf("winner: %s (mean r %.4f over %zu graphs)\n",
              report.best.mixer.to_string().c_str(), report.best.mean_ratio,
              report.best.graphs);

  const auto stats = service.stats();
  std::printf("robustness: %zu parked / %zu retried / %zu expired\n",
              stats.parked, stats.retried, stats.deadline_expired);
  std::printf("checkpoint resumes: %zu\n", stats.resumed);
  std::printf("checkpoint discards: %zu\n", stats.checkpoints_discarded);

  done.store(true);
  watchdog.join();
  return 0;
}
