// Dataset-level search with constraints and JSON persistence — the paper's
// multi-node protocol (Fig. 2) on one machine: each "node slot" searches one
// graph; results aggregate to the architecture that generalizes across the
// whole dataset, and the per-graph reports are checkpointed to JSON.
//
//   ./dataset_search [--graphs 6] [--n 8] [--slots 3] [--kmax 2]
//                    [--out /tmp/qarch_dataset]
#include <cstdio>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "search/constraints.hpp"
#include "search/dataset.hpp"
#include "search/report_io.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto num_graphs = static_cast<std::size_t>(cli.get_int("graphs", 6));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 8));
  const auto slots = static_cast<std::size_t>(cli.get_int("slots", 3));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));
  const std::string out_prefix = cli.get("out", "/tmp/qarch_dataset");

  Rng rng(42);
  const auto graphs = graph::regular_dataset(num_graphs, n, 4, rng);
  std::printf("dataset: %zu random 4-regular graphs on %zu nodes, "
              "%zu node slots\n\n", num_graphs, n, slots);

  search::DatasetSearchConfig cfg;
  cfg.engine.p_max = 1;
  cfg.engine.session.backend = BackendChoice::Statevector;
  cfg.engine.session.training_evals = 120;
  // node_slots client searches share one service; search_dataset widens the
  // pool to node_slots × session.workers, so one worker per slot suffices.
  // Constraints: trainable candidates only, no redundant repeats.
  cfg.engine.constraints
      .add(std::make_shared<search::TrainableConstraint>())
      .add(std::make_shared<search::NoImmediateRepeatConstraint>());
  cfg.k_max = k_max;
  cfg.node_slots = slots;

  const auto report = search::search_dataset(graphs, cfg);

  std::printf("searched in %.2fs; top architectures across the dataset:\n\n",
              report.seconds);
  std::printf("%-22s %-4s %-12s %-14s\n", "mixer", "p", "mean r",
              "mean r_sampled");
  const std::size_t top = std::min<std::size_t>(8, report.ranking.size());
  for (std::size_t i = 0; i < top; ++i) {
    const auto& c = report.ranking[i];
    std::printf("%-22s %-4zu %-12.4f %-14.4f\n", c.mixer.to_string().c_str(),
                c.p, c.mean_ratio, c.mean_sampled_ratio);
  }

  // Checkpoint every per-graph report.
  for (std::size_t i = 0; i < report.per_graph.size(); ++i) {
    const std::string path = out_prefix + "_g" + std::to_string(i) + ".json";
    search::save_report(report.per_graph[i], path);
  }
  std::printf("\nper-graph reports saved to %s_g*.json\n", out_prefix.c_str());
  std::printf("winner: %s (mean r %.4f over %zu graphs)\n",
              report.best.mixer.to_string().c_str(), report.best.mean_ratio,
              report.best.graphs);
  return 0;
}
