// Full QArchSearch run (Algorithm 1): exhaustive mixer search over the
// rotation-gate alphabet through the shared evaluation service, printing the
// best mixer per depth and the discovered circuit.
//
//   ./mixer_search [--n 10] [--degree 4] [--pmax 2] [--kmax 2]
//                  [--workers 0(=all cores)] [--evals 200] [--seed 3]
//                  [--engine sv|tn|auto] [--small] [--cache PATH]
//                  [--plan-cache PATH] [--checkpoint PATH] [--retries 0]
//                  [--objective expectation|cvar|best] [--cvar-alpha 0.25]
//                  [--objective-shots 0(=evaluator default)]
//
// --small shrinks everything (CI smoke-test profile: 6 qubits, p=1, k<=1,
// 30 evaluations). --cache persists the service's candidate-result cache to
// PATH: re-running the same search warm-starts from disk instead of
// retraining (the second run reports its cache hits). --plan-cache persists
// the tensor-network contraction-plan cache: with --engine tn a second run
// compiles every candidate's networks from stored elimination orders and
// never invokes the planner. --checkpoint persists in-flight training
// checkpoints (crash-safe resume); --retries bounds reruns of failed
// evaluations (exercised by the QARCH_FAULT injection harness in CI).
// --objective switches training from the exact <C> to a sample-based
// objective (CVaR-α or best-of-shots) drawn from the compiled query::Sampler;
// --cvar-alpha sets the CVaR tail fraction, --objective-shots the draws per
// objective evaluation.
// SIGINT/SIGTERM drain the service — running evaluations park at a safe
// point, caches and checkpoints hit disk — then exit 130.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "qaoa/mixer.hpp"
#include "qaoa/objective.hpp"
#include "qtensor/planner.hpp"
#include "search/engine.hpp"

using namespace qarch;

namespace {

std::atomic<bool> g_interrupted{false};
void on_signal(int) { g_interrupted.store(true); }

/// Installs SIGINT/SIGTERM handlers and starts a watchdog that drains the
/// service and exits once a signal lands. Joined via `done` at normal exit.
std::thread start_drain_watchdog(search::EvalService& service,
                                 std::atomic<bool>& done) {
  struct sigaction action = {};
  action.sa_handler = on_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  return std::thread([&service, &done] {
    while (!done.load()) {
      if (g_interrupted.load()) {
        std::fprintf(stderr,
                     "\ninterrupted: draining service (parking running "
                     "evaluations, persisting checkpoints)...\n");
        const std::size_t parked = service.drain(5.0);
        std::fprintf(stderr, "drained: %zu evaluations parked\n", parked);
        std::_Exit(130);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool small = cli.has("small");
  const auto n = static_cast<std::size_t>(cli.get_int("n", small ? 6 : 10));
  const auto degree =
      static_cast<std::size_t>(cli.get_int("degree", small ? 3 : 4));
  const auto p_max =
      static_cast<std::size_t>(cli.get_int("pmax", small ? 1 : 2));
  const auto k_max =
      static_cast<std::size_t>(cli.get_int("kmax", small ? 1 : 2));

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
  const graph::Graph g = graph::random_regular(n, degree, rng);
  std::printf("searching mixers for %s, p=1..%zu, sequences up to length %zu\n",
              g.to_string().c_str(), p_max, k_max);

  search::SearchConfig cfg;
  cfg.p_max = p_max;
  cfg.session.backend = backend_from_name(cli.get("engine", "sv"));
  cfg.session.workers =
      static_cast<std::size_t>(cli.get_int("workers", 0));  // 0 = all cores
  cfg.session.training_evals =
      static_cast<std::size_t>(cli.get_int("evals", small ? 30 : 200));
  cfg.session.cache_path = cli.get("cache", "");
  cfg.session.plan_cache_path = cli.get("plan-cache", "");
  cfg.session.checkpoint_path = cli.get("checkpoint", "");
  cfg.session.checkpoint_evals =
      static_cast<std::size_t>(cli.get_int("ckpt-evals", 0));
  cfg.session.eval_retries = static_cast<int>(cli.get_int("retries", 0));
  cfg.session.objective.kind =
      qaoa::objective_kind_from_name(cli.get("objective", "expectation"));
  cfg.session.objective.alpha = cli.get_double("cvar-alpha", 0.25);
  cfg.session.objective.shots =
      static_cast<std::size_t>(cli.get_int("objective-shots", 0));
  if (!cfg.session.objective.is_default())
    std::printf("training objective: %s\n",
                cfg.session.objective.tag().c_str());

  // One service; the engine is a pure client. A second engine (or thread)
  // could share `service` and its caches — fairly, since every run registers
  // its own scheduler queue.
  search::EvalService service(cfg.session);
  if (!cfg.session.cache_path.empty())
    std::printf("warm start: loaded %zu cached results from %s\n",
                service.stats().cache_loaded, cfg.session.cache_path.c_str());
  if (!cfg.session.plan_cache_path.empty())
    std::printf("plan warm start: loaded %zu contraction plans from %s\n",
                service.stats().plans_loaded,
                cfg.session.plan_cache_path.c_str());
  if (!cfg.session.checkpoint_path.empty())
    std::printf("checkpoint warm start: loaded %zu in-flight checkpoints\n",
                service.stats().checkpoints_loaded);
  std::atomic<bool> done{false};
  std::thread watchdog = start_drain_watchdog(service, done);
  const search::SearchEngine engine(cfg);
  const search::SearchReport report = engine.run_exhaustive(service, g, k_max);
  if (!cfg.session.plan_cache_path.empty())
    std::printf("planner invocations: %zu\n",
                qtensor::planner_invocation_count());

  std::printf("evaluated %zu candidates in %.2fs on %zu workers "
              "(%zu cache hits / %zu misses)\n\n",
              report.num_candidates, report.seconds, service.workers(),
              report.cache_hits, report.cache_misses);
  for (std::size_t p = 1; p <= p_max; ++p) {
    const auto& best = report.best_at_depth(p);
    std::printf("p=%zu best mixer %-22s  <C>=%.4f  r=%.4f  r_sampled=%.4f\n",
                p, best.mixer.to_string().c_str(), best.energy, best.ratio,
                best.sampled_ratio);
  }

  std::printf("\noverall best: %s at p=%zu (<C>=%.4f)\n",
              report.best.mixer.to_string().c_str(), report.best.p,
              report.best.energy);
  std::printf("%s\n",
              circuit::draw(qaoa::build_mixer_circuit(n, report.best.mixer))
                  .c_str());
  const auto stats = service.stats();
  if (stats.retried > 0 || stats.parked > 0 || stats.resumed > 0)
    std::printf("robustness: %zu retried / %zu parked / %zu resumed\n",
                stats.retried, stats.parked, stats.resumed);
  done.store(true);
  watchdog.join();
  return 0;
}
