// Full QArchSearch run (Algorithm 1): exhaustive mixer search over the
// rotation-gate alphabet with the parallel evaluator, printing the best
// mixer per depth and the discovered circuit.
//
//   ./mixer_search [--n 10] [--degree 4] [--pmax 2] [--kmax 2]
//                  [--workers 0(=all cores)] [--evals 200] [--seed 3]
#include <cstdio>
#include <thread>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "qaoa/mixer.hpp"
#include "search/engine.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p_max = static_cast<std::size_t>(cli.get_int("pmax", 2));
  const auto k_max = static_cast<std::size_t>(cli.get_int("kmax", 2));
  auto workers = static_cast<std::size_t>(cli.get_int("workers", 0));
  if (workers == 0) workers = std::thread::hardware_concurrency();

  Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 3)));
  const graph::Graph g = graph::random_regular(n, degree, rng);
  std::printf("searching mixers for %s, p=1..%zu, sequences up to length %zu\n",
              g.to_string().c_str(), p_max, k_max);

  search::SearchConfig cfg;
  cfg.p_max = p_max;
  cfg.outer_workers = workers;
  cfg.evaluator.cobyla.max_evals =
      static_cast<std::size_t>(cli.get_int("evals", 200));
  cfg.evaluator.energy.engine = qaoa::EngineKind::Statevector;

  const search::SearchEngine engine(cfg);
  const search::SearchReport report = engine.run_exhaustive(g, k_max);

  std::printf("evaluated %zu candidates in %.2fs on %zu workers\n\n",
              report.num_candidates, report.seconds, workers);
  for (std::size_t p = 1; p <= p_max; ++p) {
    const auto& best = report.best_at_depth(p);
    std::printf("p=%zu best mixer %-22s  <C>=%.4f  r=%.4f  r_sampled=%.4f\n",
                p, best.mixer.to_string().c_str(), best.energy, best.ratio,
                best.sampled_ratio);
  }

  std::printf("\noverall best: %s at p=%zu (<C>=%.4f)\n",
              report.best.mixer.to_string().c_str(), report.best.p,
              report.best.energy);
  std::printf("%s\n",
              circuit::draw(qaoa::build_mixer_circuit(n, report.best.mixer))
                  .c_str());
  return 0;
}
