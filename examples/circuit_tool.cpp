// Circuit inspection/optimization utility built on the umbrella header:
// reads an OpenQASM 2.0 file (or generates a QAOA ansatz), prints stats,
// runs the peephole optimizer, and optionally re-emits QASM and a diagram.
//
//   ./circuit_tool --qasm circuit.qasm [--emit out.qasm] [--draw]
//   ./circuit_tool --demo [--n 6] [--p 2]     # built-in QAOA demo circuit
#include <cstdio>
#include <fstream>
#include <sstream>

#include "qarch.hpp"

using namespace qarch;

namespace {

void print_stats(const char* label, const circuit::Circuit& c) {
  std::printf("%s: qubits=%zu gates=%zu two-qubit=%zu depth=%zu params=%zu\n",
              label, c.num_qubits(), c.num_gates(), c.two_qubit_gate_count(),
              c.depth(), c.num_params());
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  circuit::Circuit c;
  std::vector<double> theta;
  if (cli.has("qasm")) {
    const std::string path = cli.get("qasm", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    c = circuit::parse_qasm(buf.str());
    std::printf("loaded %s\n", path.c_str());
  } else {
    const auto n = static_cast<std::size_t>(cli.get_int("n", 6));
    const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
    Rng rng(3);
    const auto g = graph::random_regular(n, 3, rng);
    c = qaoa::build_qaoa_circuit(g, p, qaoa::MixerSpec::qnas());
    theta.assign(c.num_params(), 0.37);
    std::printf("demo: QAOA ansatz for %s at p=%zu\n", g.to_string().c_str(),
                p);
  }

  print_stats("input ", c);
  circuit::OptimizeStats stats;
  const circuit::Circuit optimized = circuit::optimize(c, {}, &stats);
  print_stats("output", optimized);
  std::printf("optimizer: %s\n", stats.to_string().c_str());

  if (cli.has("draw")) std::printf("\n%s", circuit::draw(optimized).c_str());

  if (cli.has("emit")) {
    const std::string out_path = cli.get("emit", "");
    std::ofstream out(out_path);
    if (theta.empty()) theta.assign(optimized.num_params(), 0.0);
    out << circuit::to_qasm(optimized, theta);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
