// Energy-landscape comparison: scans the p=1 <C>(γ, β) surface for the
// baseline and searched mixers and renders both as ASCII heat maps — a
// visual explanation of WHY the searched mixer trains better on ER graphs.
//
//   ./landscape_scan [--n 10] [--family er|regular] [--grid 33] [--csv out]
#include <cstdio>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "graph/generators.hpp"
#include "qaoa/landscape.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto grid = static_cast<std::size_t>(cli.get_int("grid", 33));
  const std::string family = cli.get("family", "er");
  const std::string csv_path = cli.get("csv", "");

  Rng rng(55);
  const graph::Graph g = family == "regular"
                             ? graph::random_regular(n, 4, rng)
                             : graph::erdos_renyi_connected(n, 0.5, rng);
  std::printf("p=1 landscapes over %s (%s family)\n\n", g.to_string().c_str(),
              family.c_str());

  const qaoa::EnergyEvaluator evaluator(g, {});
  qaoa::LandscapeOptions opts;
  opts.gamma_points = grid;
  opts.beta_points = grid;
  opts.workers = 8;

  for (const auto& [name, mixer] :
       {std::pair{std::string("baseline (rx)"), qaoa::MixerSpec::baseline()},
        std::pair{std::string("qnas (rx, ry)"), qaoa::MixerSpec::qnas()}}) {
    const auto land = qaoa::scan_landscape(g, mixer, evaluator, opts);
    const auto peak = land.peak();
    std::printf("--- %s ---\n%s", name.c_str(), land.ascii().c_str());
    std::printf("grid peak <C> = %.4f at γ=%.3f β=%.3f\n\n", peak.value,
                peak.gamma, peak.beta);
    if (!csv_path.empty()) {
      CsvWriter w(csv_path + "_" + (name[0] == 'b' ? "baseline" : "qnas") +
                      ".csv",
                  {"gamma", "beta", "energy"});
      for (std::size_t i = 0; i < land.gammas.size(); ++i)
        for (std::size_t j = 0; j < land.betas.size(); ++j)
          w.row(std::vector<double>{land.gammas[i], land.betas[j],
                                    land.at(i, j)});
    }
  }
  return 0;
}
