// Quickstart: evaluate a QAOA mixer candidate on a random max-cut instance
// through the evaluation-service API — one SessionConfig, one EvalService,
// one submit/wait round trip — and print the energy, approximation ratios,
// and the circuit.
//
//   ./quickstart [--n 10] [--degree 4] [--p 2] [--seed 7]
//                [--engine sv|tn|auto] [--evals 200]
#include <cstdio>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/mixer.hpp"
#include "search/eval_service.hpp"
#include "session.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // 1. Problem instance: a random d-regular graph, as in the paper's eval.
  Rng rng(seed);
  const graph::Graph g = graph::random_regular(n, degree, rng);
  const double cmax = graph::maxcut_exact(g).value;
  std::printf("instance: %s, exact max-cut = %.1f\n", g.to_string().c_str(),
              cmax);

  // 2. Session: the ONE config struct. backend=auto picks statevector vs
  //    tensor-network per candidate; the training budget, sampling, and
  //    parallelism knobs all live here.
  SessionConfig session;
  session.backend = backend_from_name(cli.get("engine", "auto"));
  session.training_evals =
      static_cast<std::size_t>(cli.get_int("evals", 200));

  // 3. Evaluation service: submit the candidate, wait for the ticket. The
  //    service trains the ansatz (200 COBYLA steps), scores both ratio
  //    flavours, and stamps queue/evaluation timings.
  const qaoa::MixerSpec mixer = qaoa::MixerSpec::qnas();
  search::EvalService service(session);
  search::EvalTicket ticket = service.submit(g, mixer, p);
  const search::CandidateResult& r = ticket.wait();

  std::printf("candidate: p=%zu mixer=%s\n", p, mixer.to_string().c_str());
  std::printf("trained <C> = %.4f  (energy ratio %.4f)\n", r.energy, r.ratio);
  std::printf("expected best-of-%zu sampled cut ratio (Eq. 3) = %.4f\n",
              session.shots, r.sampled_ratio);
  std::printf("objective evaluations: %zu  (%.1f ms evaluation, "
              "%.1f ms queued)\n",
              r.evaluations, r.eval_seconds * 1e3, r.queue_seconds * 1e3);
  const auto stats = service.stats();
  std::printf("engine picked: %s\n\n",
              stats.picked_tensornetwork > 0 ? "tensor-network"
                                             : "statevector");

  // 4. Show the mixer layer the way the paper draws Fig. 6.
  std::printf("mixer layer (one shared beta):\n%s\n",
              circuit::draw(qaoa::build_mixer_circuit(n, mixer)).c_str());
  return 0;
}
