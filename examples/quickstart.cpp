// Quickstart: build a QAOA circuit for a random max-cut instance, train it
// with COBYLA, and print the energy, approximation ratios, and the circuit.
//
//   ./quickstart [--n 10] [--degree 4] [--p 2] [--seed 7] [--engine sv|tn]
#include <cstdio>

#include "common/cli.hpp"
#include "graph/generators.hpp"
#include "graph/maxcut.hpp"
#include "optim/cobyla.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"
#include "qaoa/sampling.hpp"
#include "qaoa/train.hpp"

using namespace qarch;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto degree = static_cast<std::size_t>(cli.get_int("degree", 4));
  const auto p = static_cast<std::size_t>(cli.get_int("p", 2));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string engine = cli.get("engine", "sv");

  // 1. Problem instance: a random d-regular graph, as in the paper's eval.
  Rng rng(seed);
  const graph::Graph g = graph::random_regular(n, degree, rng);
  const double cmax = graph::maxcut_exact(g).value;
  std::printf("instance: %s, exact max-cut = %.1f\n", g.to_string().c_str(),
              cmax);

  // 2. Ansatz: p alternating layers with the searched (rx, ry) mixer.
  const qaoa::MixerSpec mixer = qaoa::MixerSpec::qnas();
  const circuit::Circuit ansatz = qaoa::build_qaoa_circuit(g, p, mixer);
  std::printf("ansatz: p=%zu mixer=%s params=%zu gates=%zu depth=%zu\n", p,
              mixer.to_string().c_str(), ansatz.num_params(),
              ansatz.num_gates(), ansatz.depth());

  // 3. Train 200 COBYLA steps against the chosen simulator engine.
  qaoa::EnergyOptions eopt;
  eopt.engine = engine == "tn" ? qaoa::EngineKind::TensorNetwork
                               : qaoa::EngineKind::Statevector;
  const qaoa::EnergyEvaluator evaluator(g, eopt);
  optim::CobylaConfig copt;  // 200 evaluations, the paper's budget
  const qaoa::TrainResult trained =
      qaoa::train_qaoa(ansatz, evaluator, optim::Cobyla(copt));

  // 4. Report both ratio flavours.
  Rng sample_rng(seed + 1);
  const double best_cut =
      qaoa::expected_best_cut(ansatz, trained.theta, g, 128, 8, sample_rng);
  std::printf("trained <C> = %.4f  (energy ratio %.4f)\n", trained.energy,
              trained.energy / cmax);
  std::printf("expected best-of-128 sampled cut = %.4f  (Eq. 3 ratio %.4f)\n",
              best_cut, best_cut / cmax);
  std::printf("objective evaluations: %zu\n\n", trained.evaluations);

  // 5. Show the mixer layer the way the paper draws Fig. 6.
  std::printf("mixer layer (one shared beta):\n%s\n",
              circuit::draw(qaoa::build_mixer_circuit(n, mixer)).c_str());
  return 0;
}
