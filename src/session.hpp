// SessionConfig: the single front-end configuration facade of the library.
//
// Callers used to thread four overlapping option structs — qaoa::EnergyOptions,
// sim::PlanOptions, qtensor::QTensorOptions, and search::EvaluatorOptions — to
// reach the compiled-plan fast paths, each wired slightly differently by every
// driver. SessionConfig owns the backend / optimizer / budget knobs in ONE
// place and derives the fully reconciled per-engine option structs from them:
//
//   SessionConfig cfg;                 // top-level knobs only
//   cfg.backend = BackendChoice::Auto; // per-candidate engine selection
//   cfg.workers = 8;                   // service worker pool width
//   cfg.training_evals = 200;          // COBYLA budget per candidate
//   search::EvalService service(cfg);  // every search driver is a client
//
// `evaluator_options()` / `energy_options()` are the only reconciliation
// points: they absorb the old EvaluatorOptions::effective_energy() contract
// (evaluator-level pre-simplification wins over the plan-level toggle) so the
// four structs can never silently diverge again. Deep engine toggles
// (sv_plan.*, qtensor.*, restart jitter) remain reachable through `base`.
#pragma once

#include <cstddef>
#include <string>

#include "search/evaluator.hpp"

namespace qarch {

/// Which simulation engine evaluates candidates. Unlike qaoa::EngineKind this
/// includes Auto: the evaluation service picks statevector vs tensor-network
/// PER CANDIDATE from the qubit count and an edge-lightcone size estimate
/// (see search::auto_engine_choice).
enum class BackendChoice { Statevector, TensorNetwork, Auto };

/// Parses "sv"/"statevector", "tn"/"qtensor"/"tensor-network", "auto".
BackendChoice backend_from_name(const std::string& name);

/// Canonical short name: "sv", "tn", or "auto".
std::string backend_name(BackendChoice backend);

/// The one configuration struct every search driver and example wires.
struct SessionConfig {
  // -- backend selection -----------------------------------------------------
  BackendChoice backend = BackendChoice::Auto;
  /// Auto: instances with at most this many qubits always run on the
  /// statevector engine (2^n is small; README documents the crossover n≈14).
  std::size_t auto_statevector_qubits = 14;
  /// Auto: above the qubit cutoff, the tensor-network engine is chosen when
  /// the widest edge-lightcone touches at most this many qubits (contraction
  /// cost scales with lightcone width, not with n); otherwise statevector.
  std::size_t auto_lightcone_qubits = 12;

  // -- parallelism (the paper's two-level scheme) ----------------------------
  /// Outer level: evaluation-service worker threads running whole candidates
  /// concurrently (0 = hardware concurrency).
  std::size_t workers = 1;
  /// Inner level: threads inside one energy(theta) call — statevector
  /// kernels / batched sweeps, or concurrent per-edge contractions.
  std::size_t inner_workers = 1;

  // -- training budget -------------------------------------------------------
  std::size_t training_evals = 200;  ///< COBYLA objective calls per candidate
  std::size_t restarts = 1;          ///< multistart splits of that budget
  bool simplify_circuit = true;      ///< peephole-optimize each candidate

  // -- Eq. 3 sampled scoring -------------------------------------------------
  std::size_t shots = 128;           ///< samples per <C_max> batch
  std::size_t sample_trials = 8;     ///< batches averaged for <C_max>

  // -- objective / Hamiltonian (src/query generalized objectives) ------------
  /// Training objective: exact <C> (default), CVaR-α over sampled values, or
  /// best-of-shots. Non-default objectives train on draws from a compiled
  /// query::Sampler on the candidate's engine. Per-job overridable through
  /// search::JobOptions::objective.
  qaoa::ObjectiveSpec objective;
  /// Cost Hamiltonian: MaxCut (default), MIS with quadratic penalty, or an
  /// Ising objective. Per-job overridable through
  /// search::JobOptions::hamiltonian.
  qaoa::HamiltonianSpec hamiltonian;

  // -- evaluation-service caches ---------------------------------------------
  /// Capacity of the service's (graph, engine, budget) → Evaluator LRU.
  std::size_t evaluator_cache = 16;
  /// Capacity of the candidate-result cache keyed by (graph fingerprint,
  /// mixer encoding, p, budget); duplicate proposals return the cached
  /// CandidateResult instead of retraining. 0 disables result caching.
  std::size_t result_cache = 4096;
  /// On-disk home of the candidate-result cache (JSON). When non-empty the
  /// service loads it at construction — repeated fig8/fig9 or dataset runs
  /// warm-start instead of retraining identical candidates — and rewrites it
  /// atomically at shutdown. Corrupt, missing, or stale files (older cache
  /// code version) are ignored, never fatal. Empty disables persistence.
  std::string cache_path;
  /// Write the (possibly grown) result cache back to cache_path when the
  /// service shuts down. false = read-only warm start: load but never touch
  /// the file (useful for concurrent processes sharing one cache).
  bool cache_write = true;
  /// On-disk home of the qtensor contraction-plan cache (JSON): planned
  /// elimination orders keyed by (lightcone shape, network structure hash).
  /// When non-empty the service loads it at construction — a warm run
  /// compiles its programs with ZERO planner invocations — and rewrites it
  /// atomically at shutdown (gated by `cache_write`, like the result
  /// cache). Corrupt/missing/stale files are ignored. Orthogonal to
  /// cache_path: the result cache skips retraining identical CANDIDATES,
  /// the plan cache skips re-planning identical lightcone SHAPES, which
  /// pays off even when every candidate is new. Empty disables persistence
  /// (in-process plan sharing stays on).
  std::string plan_cache_path;
  /// When > 0 and `cache_path` is set, the service RE-READS the result
  /// cache file at most every this-many seconds (checked at submit time)
  /// and merges entries it does not already hold — cross-pollination
  /// between concurrent processes sharing one cache file, without waiting
  /// for either to restart. Entries this process already computed always
  /// win over disk state. 0 keeps the constructor-only load.
  double cache_refresh_seconds = 0.0;

  // -- robustness: preemption, checkpoints, retries --------------------------
  /// Preemption quantum for running evaluations, in service-clock seconds.
  /// When > 0 a training run that has held its worker this long is parked at
  /// the optimizer's next safe point — checkpoint captured, worker freed,
  /// job requeued with its fair-share deficit preserved — whenever another
  /// client has queued work. 0 disables parking (jobs run to completion).
  double preempt_quantum_seconds = 0.0;
  /// Checkpoint cadence in objective evaluations: when > 0, a running job
  /// snapshots its optimizer state every this-many training evals (and
  /// persists it when `checkpoint_path` is set). Eval-count based, so the
  /// cadence is deterministic across machines. 0 disables mid-run
  /// checkpointing (park/drain still checkpoint at the parking point).
  std::size_t checkpoint_evals = 0;
  /// On-disk home of in-flight training checkpoints (JSON, atomic rewrite,
  /// version-gated and corruption-tolerant like the result cache). With a
  /// path set, a killed process restarted on the same paths resumes every
  /// checkpointed candidate mid-training instead of from step 0, and
  /// completed results are flushed to `cache_path` as they finish rather
  /// than only at shutdown. Empty disables checkpoint persistence.
  std::string checkpoint_path;
  /// Default bounded retry budget for failed evaluations (overridable per
  /// job via JobOptions::max_retries). 0 = fail fast.
  int eval_retries = 0;
  /// Base delay of the exponential retry backoff: attempt k reruns after
  /// retry_backoff_seconds * 2^(k-1).
  double retry_backoff_seconds = 0.05;

  // -- qarchd network front-end ----------------------------------------------
  // Defaults applied by server::QarchServer to every tenant that does not
  // override them in its TenantSpec, plus the daemon's wire limits. They live
  // here so one SessionConfig fully describes a deployment (evaluation
  // semantics AND serving posture) and persists/compares as one unit.
  /// Connection-handling threads of the daemon (each serves one request at a
  /// time; long-polls occupy a thread for their wait).
  std::size_t server_io_threads = 8;
  /// Largest accepted request body; bigger submits are rejected 413 before
  /// the JSON parser ever sees them.
  std::size_t server_max_body_bytes = 1 << 20;
  /// Cap on the ?wait_ms= long-poll: a client asking for more waits this
  /// long and polls again (bounds how long a connection can pin an IO
  /// thread).
  double server_max_wait_seconds = 30.0;
  /// Default tenant token-bucket refill rate in requests/second
  /// (0 = no refill: tenants spend their burst and are then rejected 429).
  double server_rate = 0.0;
  /// Default tenant bucket capacity; 0 disables rate limiting entirely for
  /// tenants that do not set their own burst.
  double server_burst = 0.0;
  /// Default per-tenant quota of outstanding (unresolved) tickets; a tenant
  /// at its quota gets 429 on submit until results resolve. 0 = unlimited.
  std::size_t server_max_inflight = 0;

  // -- escape hatch ----------------------------------------------------------
  /// Deep engine toggles (sv_plan.*, qtensor.*, optimizer details, restart
  /// jitter) start from this base; the named knobs above override the
  /// corresponding fields in evaluator_options().
  search::EvaluatorOptions base;

  /// The fully wired EvaluatorOptions for one resolved engine. `training`
  /// overrides `training_evals` when non-zero (successive halving varies the
  /// budget per round through the same reconciliation).
  [[nodiscard]] search::EvaluatorOptions evaluator_options(
      qaoa::EngineKind engine, std::size_t training = 0) const;

  /// The reconciled EnergyOptions the engine actually simulates with — the
  /// session-level home of the old EvaluatorOptions::effective_energy()
  /// contract (pre-simplified candidates must not re-run circuit::optimize
  /// inside the compiled statevector plan).
  [[nodiscard]] qaoa::EnergyOptions energy_options(
      qaoa::EngineKind engine) const;
};

}  // namespace qarch
