// EvalService: the asynchronous candidate-evaluation service every search
// driver is a client of.
//
// The paper's scalability story (Fig. 3's starmap_async parallel search) used
// to be approximated by each driver — SearchEngine, successive halving, the
// dataset search, the fig8/fig9 studies — privately wiring a task pool around
// Evaluator::evaluate(). EvalService replaces those per-driver loops with ONE
// shared, thread-safe submit/future surface:
//
//   EvalService service(session);                 // one pool, shared caches
//   EvalTicket t = service.submit(g, mixer, p);   // enqueue, don't block
//   ...                                           // submit more, any thread
//   const CandidateResult& r = t.wait();          // collect when needed
//
// Behind the front-end sit
//   * one parallel::TaskPool (`session.workers` wide) running candidates,
//   * a fair-share scheduler: every client (a SearchEngine run, a halving
//     round, a dataset node) registers a weighted queue (register_client),
//     and workers pick the next job by deficit-weighted round robin over
//     those queues — budget units (training_evals) are the cost currency, so
//     one greedy client submitting a wide cohort cannot starve an
//     interactive search. JobOptions::priority orders jobs INSIDE one
//     client's queue (and bumps the pool-level drain). Unregistered
//     submissions share the default weight-1 queue, which reproduces the
//     old FIFO behaviour exactly,
//   * a cross-graph LRU of search::Evaluator instances keyed by
//     (graph fingerprint, engine, budget) — concurrent searches over the same
//     graph share one evaluator and therefore its compiled-plan cache,
//   * a candidate-result cache keyed by (graph fingerprint, mixer encoding,
//     p, budget): duplicate proposals return the cached CandidateResult
//     instead of retraining, and concurrent duplicates attach to the one
//     in-flight evaluation (each (candidate, graph, budget) plan compiles
//     exactly once service-wide — probe with sim::program_compile_count() /
//     qtensor::network_build_count(), see bench/abl_eval_service). With
//     SessionConfig::cache_path set the cache is loaded from disk at
//     construction and atomically rewritten at shutdown, so repeated studies
//     warm-start across processes. Entries record the resolved engine and
//     the cache code version: stale-version files invalidate wholesale, and
//     a forced-engine service only loads entries its own engine produced
//     (backend=Auto accepts both). Corrupt files are ignored, never fatal,
//   * a shared qtensor::PlanCache injected into every evaluator: planned
//     contraction orders are reused across candidates and clients by
//     (lightcone shape, structure hash), and with
//     SessionConfig::plan_cache_path set they persist across processes —
//     a warm run compiles its programs with ZERO planner invocations
//     (probe: qtensor::planner_invocation_count()),
//   * the BackendChoice::Auto per-candidate engine decision
//     (auto_engine_choice below),
//   * cooperative preemption and fault tolerance: with
//     SessionConfig::preempt_quantum_seconds set, a training run that has
//     held its worker for a quantum is PARKED at the optimizer's next safe
//     point whenever another client is waiting — its optimizer state is
//     checkpointed, the worker freed, the job requeued with its fair-share
//     deficit preserved — and later RESUMED exactly where it left off (the
//     resumed trajectory is bit-identical to an uninterrupted one).
//     SessionConfig::checkpoint_evals adds an eval-count checkpoint cadence,
//     and with SessionConfig::checkpoint_path those in-flight checkpoints
//     persist to disk, so a killed process restarted on the same paths
//     resumes mid-training. JobOptions adds per-job deadlines
//     (deadline_seconds / max_eval_seconds → tickets resolve Expired) and
//     bounded retries with exponential backoff; drain() parks everything
//     for a graceful shutdown. See src/search/README.md for the full job
//     lifecycle.
//
// Tickets carry service-side timestamps (submit / start / finish on the
// service clock), so drivers report queue-wait and evaluation latency without
// re-implementing timing.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/task_pool.hpp"
#include "qaoa/mixer.hpp"
#include "search/evaluator.hpp"
#include "session.hpp"

namespace qarch::search {

namespace detail {
struct EvalJob;
struct ServiceState;
struct TicketHandle;
}  // namespace detail

/// Structural identity of a graph (vertex count + exact edge list with
/// weights, byte-exact). Two graphs with equal fingerprints share Evaluator
/// instances and cached candidate results inside the service.
std::string graph_fingerprint(const graph::Graph& g);

/// The BackendChoice::Auto decision rule, exposed for tests and benches:
/// statevector when the instance is small (2^n cheap), otherwise
/// tensor-network iff the widest edge-lightcone of the candidate's ansatz
/// touches few enough qubits for the contraction to stay narrow.
qaoa::EngineKind auto_engine_choice(const SessionConfig& config,
                                    const graph::Graph& g,
                                    const qaoa::MixerSpec& mixer,
                                    std::size_t p);

/// Per-job overrides applied on top of the service's SessionConfig.
struct JobOptions {
  /// COBYLA budget for this job (0 = the session's training_evals).
  /// Successive halving submits the same candidates at growing budgets.
  std::size_t training_evals = 0;
  /// Fair-share queue this job belongs to (EvalClient::id()). 0 — or a
  /// client that has since unregistered — lands in the default weight-1
  /// queue shared by every anonymous submission.
  std::size_t client = 0;
  /// Ordering INSIDE the client's queue: higher runs first, FIFO among
  /// equals (cross-client fairness is the scheduler's job, not this
  /// knob's). Also forwarded as the pool-level drain priority, which
  /// matters when the raw pool is shared with non-service work.
  int priority = 0;
  /// Wall-clock budget from SUBMISSION, in service-clock seconds. Past it
  /// the job resolves Expired — whether still queued (wait_for expires it)
  /// or mid-run (the preemption token aborts the slice). 0 = no deadline.
  double deadline_seconds = 0.0;
  /// Wall-clock budget for the EVALUATION itself (summed across preemption
  /// slices, excluding queue wait). 0 = unbounded.
  double max_eval_seconds = 0.0;
  /// Bounded retry budget for failed evaluations; attempt k reruns after
  /// retry_backoff × 2^(k−1). −1 = the session's eval_retries default.
  int max_retries = -1;
  /// Base backoff delay in seconds; −1 = the session's
  /// retry_backoff_seconds default.
  double retry_backoff_seconds = -1.0;
  /// Training objective for this job (nullopt = the session's objective).
  /// Part of candidate identity: jobs with different objectives never share
  /// cache entries, in-flight runs, or checkpoints — the default spec keeps
  /// the pre-objective key format byte-identical.
  std::optional<qaoa::ObjectiveSpec> objective;
  /// Cost Hamiltonian for this job (nullopt = the session's hamiltonian).
  /// Part of candidate identity like `objective`.
  std::optional<qaoa::HamiltonianSpec> hamiltonian;
};

/// RAII registration of one fair-share scheduler queue. Move-only; the queue
/// unregisters when the handle is destroyed (jobs already queued under it
/// still run, then the queue is reclaimed). Obtained from
/// EvalService::register_client.
class EvalClient {
 public:
  EvalClient() = default;
  ~EvalClient();
  EvalClient(EvalClient&& other) noexcept;
  EvalClient& operator=(EvalClient&& other) noexcept;
  EvalClient(const EvalClient&) = delete;
  EvalClient& operator=(const EvalClient&) = delete;

  /// The id to put in JobOptions::client. 0 for a default-constructed
  /// (unregistered) handle — submissions then use the default queue.
  [[nodiscard]] std::size_t id() const { return id_; }

 private:
  friend class EvalService;
  EvalClient(std::shared_ptr<detail::ServiceState> state, std::size_t id)
      : state_(std::move(state)), id_(id) {}

  std::shared_ptr<detail::ServiceState> state_;
  std::size_t id_ = 0;
};

/// Future-like handle for one submitted candidate evaluation.
///
/// Copyable and cheap; all copies refer to the same submission. A ticket
/// whose candidate was already in flight (submitted concurrently by another
/// client) or already cached resolves from the shared evaluation — see
/// cache_hit().
class EvalTicket {
 public:
  EvalTicket() = default;

  /// False for a default-constructed ticket.
  [[nodiscard]] bool valid() const { return handle_ != nullptr; }

  /// Blocks until the evaluation finished and returns its result. Throws
  /// Error if this ticket was cancelled, the evaluation failed, or the
  /// job's deadline expired.
  const CandidateResult& wait() const;

  /// Bounded wait: blocks at most `timeout_seconds` (negative = forever).
  /// Returns the result once resolved, or nullptr when the timeout passed
  /// with the job still queued/running. Throws like wait() on cancellation,
  /// failure, or deadline expiry. Deadlines are enforced from the waiter
  /// side too: a job whose deadline passes while it is still QUEUED is
  /// expired here rather than left hanging behind a flooded queue.
  const CandidateResult* wait_for(double timeout_seconds) const;

  /// Non-blocking: true once wait() would not block (done, failed,
  /// expired, or cancelled).
  [[nodiscard]] bool ready() const;

  /// Cancels a still-queued evaluation. Returns true when this ticket is now
  /// cancelled (wait() will throw); false when the evaluation already
  /// started or finished. The underlying job is only withdrawn from the
  /// queue once every ticket attached to it cancelled.
  bool cancel();

  /// True when cancel() succeeded on this ticket.
  [[nodiscard]] bool cancelled() const;

  /// True when the job resolved by blowing its JobOptions::deadline_seconds
  /// budget (wait() on such a ticket throws).
  [[nodiscard]] bool expired() const;

  /// True when the result came from the service's candidate cache or an
  /// in-flight duplicate rather than a fresh evaluation of this submission.
  [[nodiscard]] bool cache_hit() const;

  /// Service-clock timestamps in seconds (monotonic, 0 = service creation).
  [[nodiscard]] double submitted_at() const;
  [[nodiscard]] double finished_at() const;

 private:
  friend class EvalService;
  explicit EvalTicket(std::shared_ptr<detail::TicketHandle> handle)
      : handle_(std::move(handle)) {}

  std::shared_ptr<detail::TicketHandle> handle_;
};

/// The shared evaluation service. Thread-safe: any number of client threads
/// may submit and wait concurrently; one instance is meant to be shared by
/// every concurrent search of a process.
class EvalService {
 public:
  explicit EvalService(SessionConfig config = {});
  ~EvalService();

  EvalService(const EvalService&) = delete;
  EvalService& operator=(const EvalService&) = delete;

  /// Enqueues one (graph, mixer, p) candidate evaluation.
  EvalTicket submit(const graph::Graph& g, const qaoa::MixerSpec& mixer,
                    std::size_t p, const JobOptions& options = {});

  /// Enqueues one evaluation per mixer; tickets align with `mixers`.
  std::vector<EvalTicket> submit_batch(
      const graph::Graph& g, const std::vector<qaoa::MixerSpec>& mixers,
      std::size_t p, const JobOptions& options = {});

  /// Blocks until every ticket resolved; results in ticket order. Tickets
  /// that were CANCELLED or DEADLINE-EXPIRED are skipped (the surviving
  /// results still come back in ticket order), so one withdrawn or expired
  /// submission does not discard a whole batch. Evaluation FAILURES still
  /// throw.
  std::vector<CandidateResult> collect(
      const std::vector<EvalTicket>& tickets) const;

  /// Bounded collect: one overall deadline shared by the whole batch
  /// (negative = forever). Tickets still unresolved when it passes are
  /// skipped, like cancelled ones.
  std::vector<CandidateResult> collect(const std::vector<EvalTicket>& tickets,
                                       double timeout_seconds) const;

  /// Registers a weighted fair-share queue. Workers serve queues by
  /// deficit-weighted round robin with training_evals as the cost unit: over
  /// time each busy client receives compute proportional to its weight.
  /// `name` is for diagnostics only; `weight` must be in [0.001, 1000] (the
  /// lower bound caps the scheduler's per-dispatch rotation count).
  EvalClient register_client(const std::string& name, double weight = 1.0);

  /// Service-lifetime accounting (monotonic counters).
  struct Stats {
    std::size_t submitted = 0;          ///< submit() calls accepted
    std::size_t completed = 0;          ///< evaluations run to completion
    std::size_t cancelled = 0;          ///< jobs withdrawn before running
    std::size_t failed = 0;             ///< evaluations that threw
    std::size_t cache_hits = 0;         ///< submissions served without a run
    std::size_t cache_misses = 0;       ///< submissions that scheduled a run
    std::size_t picked_statevector = 0;    ///< per-run resolved engine counts
    std::size_t picked_tensornetwork = 0;  ///< (Auto decision accounting)
    std::size_t evaluators_built = 0;   ///< Evaluator LRU misses
    std::size_t cache_loaded = 0;       ///< results warm-started from disk
    std::size_t plans_loaded = 0;       ///< contraction plans loaded from disk
    std::size_t clients_registered = 0; ///< register_client() calls
    std::size_t parked = 0;             ///< preemptions: job checkpointed,
                                        ///< worker freed, job requeued
    std::size_t resumed = 0;            ///< dispatches that continued from a
                                        ///< checkpoint instead of step 0
    std::size_t retried = 0;            ///< failed evaluations rescheduled
                                        ///< with backoff
    std::size_t deadline_expired = 0;   ///< jobs resolved past their deadline
    std::size_t checkpoints_loaded = 0; ///< in-flight checkpoints warm-started
                                        ///< from checkpoint_path
    std::size_t checkpoints_discarded = 0;  ///< checkpoints dropped (engine
                                            ///< mismatch on resume)
    std::size_t cache_refreshes = 0;    ///< timed result-cache file re-reads
                                        ///< (cache_refresh_seconds)
  };
  [[nodiscard]] Stats stats() const;

  /// Live view of one fair-share queue, for monitoring front-ends
  /// (qarchd's /v1/stats reports these per tenant).
  struct ClientInfo {
    std::size_t id = 0;        ///< EvalClient::id(), 0 = the default queue
    std::string name;          ///< register_client() diagnostic name
    double weight = 1.0;
    std::size_t queued = 0;    ///< jobs waiting in this queue right now
  };

  /// Snapshot of every registered (and the default) queue. Order: default
  /// queue first, then registration order is not guaranteed — sort by id.
  [[nodiscard]] std::vector<ClientInfo> clients() const;

  /// Jobs submitted but not yet terminally resolved: queued, running, or
  /// sleeping in a retry backoff. Cache hits never count. A monitoring
  /// probe, not a synchronization primitive.
  [[nodiscard]] std::size_t pending() const;

  /// Graceful preemption of the whole service: stops dispatching, parks every
  /// running evaluation at its next safe point (checkpoint captured, worker
  /// freed), cancels what is still queued, then persists checkpoints and
  /// caches via save_cache(). Waits at most `timeout_seconds` for running
  /// slices to reach a safe point. Returns the number of jobs parked. Meant
  /// for signal handlers / shutdown paths: after drain() the service only
  /// serves cache hits — destroy it and build a new one to resume.
  std::size_t drain(double timeout_seconds);

  /// Writes the candidate-result cache to SessionConfig::cache_path (atomic
  /// tmp-file + rename; no-op when the path is empty). Called automatically
  /// at destruction when cache_write is set; exposed for mid-run
  /// checkpointing. Returns the number of entries written.
  std::size_t save_cache() const;

  /// Worker threads in the service pool.
  [[nodiscard]] std::size_t workers() const { return pool_.size(); }

  [[nodiscard]] const SessionConfig& config() const;

  /// Seconds since service creation on the service clock (the time base of
  /// EvalTicket::submitted_at / finished_at).
  [[nodiscard]] double now() const;

 private:
  // state_ is shared with worker tasks and outstanding tickets, so the pool
  // (declared last, destroyed first) can drain safely during destruction and
  // tickets stay valid after the service is gone.
  std::shared_ptr<detail::ServiceState> state_;
  parallel::TaskPool pool_;
};

}  // namespace qarch::search
