// Search-space constraints.
//
// The paper: "Our software can also incorporate arbitrary constraints in the
// search procedure and thus deliver custom architectures." A Constraint is a
// predicate over (mixer, built mixer circuit); the engine filters predictor
// proposals through a ConstraintSet before spending evaluator budget, and
// reports how many candidates each constraint rejected.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "qaoa/mixer.hpp"

namespace qarch::search {

/// Predicate over a candidate mixer. Stateless and thread-safe.
class Constraint {
 public:
  virtual ~Constraint() = default;

  /// True when the candidate may be evaluated.
  [[nodiscard]] virtual bool admits(const qaoa::MixerSpec& mixer,
                                    const circuit::Circuit& layer) const = 0;

  /// Display name for rejection accounting.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Upper-bounds the mixer circuit's depth (per-qubit gate count here, since
/// mixer layers are single-qubit towers).
class MaxDepthConstraint final : public Constraint {
 public:
  explicit MaxDepthConstraint(std::size_t max_depth);
  [[nodiscard]] bool admits(const qaoa::MixerSpec&,
                            const circuit::Circuit& layer) const override;
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t max_depth_;
};

/// Requires at least one parameterized gate (an unparameterized mixer layer
/// cannot be trained and wastes evaluator budget).
class TrainableConstraint final : public Constraint {
 public:
  [[nodiscard]] bool admits(const qaoa::MixerSpec& mixer,
                            const circuit::Circuit&) const override;
  [[nodiscard]] std::string name() const override { return "trainable"; }
};

/// Forbids immediate repetition of the same gate (RX·RX is RX at a merged
/// angle — a redundant point in the space).
class NoImmediateRepeatConstraint final : public Constraint {
 public:
  [[nodiscard]] bool admits(const qaoa::MixerSpec& mixer,
                            const circuit::Circuit&) const override;
  [[nodiscard]] std::string name() const override { return "no-repeat"; }
};

/// Bans specific gate kinds from candidates (hardware basis restrictions).
class ForbiddenGatesConstraint final : public Constraint {
 public:
  explicit ForbiddenGatesConstraint(std::vector<circuit::GateKind> banned);
  [[nodiscard]] bool admits(const qaoa::MixerSpec& mixer,
                            const circuit::Circuit&) const override;
  [[nodiscard]] std::string name() const override { return "forbidden-gates"; }

 private:
  std::vector<circuit::GateKind> banned_;
};

/// Wraps an arbitrary predicate (the "arbitrary constraints" hook).
class PredicateConstraint final : public Constraint {
 public:
  using Fn = std::function<bool(const qaoa::MixerSpec&,
                                const circuit::Circuit&)>;
  PredicateConstraint(std::string name, Fn fn);
  [[nodiscard]] bool admits(const qaoa::MixerSpec& mixer,
                            const circuit::Circuit& layer) const override;
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  Fn fn_;
};

/// An AND-composition of constraints with rejection accounting.
class ConstraintSet {
 public:
  ConstraintSet() = default;

  /// Adds a constraint; returns *this for chaining.
  ConstraintSet& add(std::shared_ptr<const Constraint> constraint);

  /// True when every constraint admits the candidate. When `rejected_by` is
  /// non-null and the candidate is rejected, receives the constraint name.
  [[nodiscard]] bool admits(const qaoa::MixerSpec& mixer,
                            const circuit::Circuit& layer,
                            std::string* rejected_by = nullptr) const;

  [[nodiscard]] bool empty() const { return constraints_.empty(); }
  [[nodiscard]] std::size_t size() const { return constraints_.size(); }

 private:
  std::vector<std::shared_ptr<const Constraint>> constraints_;
};

}  // namespace qarch::search
