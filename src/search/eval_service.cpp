#include "search/eval_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <iterator>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "optim/optimizer.hpp"
#include "search/fault.hpp"
#include "search/report_io.hpp"

namespace qarch::search {

namespace detail {

/// Bumped whenever evaluation semantics change (optimizer, scoring, plan
/// numerics): a persisted result cache written under a different version is
/// ignored wholesale, because its results are no longer reproducible by a
/// fresh run.
constexpr const char* kCacheCodeVersion = "qarch-eval-v5";

/// Version gate of the persisted contraction-plan cache. Independent of the
/// result-cache version: planning decisions stay valid across evaluation-
/// semantics changes (an order is sound for any tensor data), but must be
/// invalidated when the planner's cost model or the network builder's
/// structure changes.
constexpr const char* kPlanCacheCodeVersion = "qarch-plan-v1";

/// Version gate of persisted in-flight checkpoints. Tied to optimizer-state
/// layout (OptimState packing of each optimizer), which can change
/// independently of result semantics.
constexpr const char* kCheckpointCodeVersion = "qarch-ckpt-v1";

class JobToken;

/// One submitted (graph, mixer, p, budget) evaluation. Several tickets may
/// attach to one job (concurrent duplicate submissions); the job runs once.
struct EvalJob {
  enum class Status { Queued, Running, Done, Cancelled, Failed, Expired };

  // Immutable after construction.
  std::string key;            ///< result-cache key
  std::string graph_key;      ///< graph-fingerprint prefix of `key`
  graph::Graph graph;
  qaoa::MixerSpec mixer;
  std::size_t p = 1;
  std::size_t training_evals = 0;  ///< resolved budget (never 0)
  qaoa::ObjectiveSpec objective;       ///< resolved from JobOptions/session
  qaoa::HamiltonianSpec hamiltonian;   ///< resolved from JobOptions/session
  std::shared_ptr<ServiceState> service;

  // Robustness knobs, resolved from JobOptions/SessionConfig at publication
  // and immutable afterwards.
  double deadline_at = 0.0;       ///< service-clock expiry (0 = none)
  double max_eval_seconds = 0.0;  ///< run-time budget across slices (0 = none)
  int max_retries = 0;            ///< failed-evaluation rerun budget
  double retry_backoff = 0.05;    ///< base of the exponential backoff

  // Scheduler coordinates, fixed when the job is published (guarded by the
  // SERVICE mutex like the queues they index into — a cross-object guard the
  // static analysis cannot express, so these carry no QARCH_GUARDED_BY; the
  // runtime lock-order checker and the TSan CI leg cover them).
  std::size_t client_id = 0;  ///< fair-share queue this job sits in
  int priority = 0;           ///< intra-client ordering (higher first)
  std::uint64_t seq = 0;      ///< FIFO tiebreak among equal priorities

  // Preemption / retry bookkeeping, guarded by the SERVICE mutex (the
  // dispatching worker copies the checkpoint in and out under it; between
  // slices nothing else touches these).
  int attempts = 0;               ///< failed attempts so far
  std::size_t evals_done = 0;     ///< training evals banked in `checkpoint`
  double run_seconds = 0.0;       ///< wall time consumed across slices
  optim::OptimState checkpoint;   ///< resume point (fresh() = none)
  std::string checkpoint_engine;  ///< engine that produced it ("sv" / "tn")
  std::shared_ptr<JobToken> token;  ///< live while a slice is running

  // Guarded by `mutex` (tier service.job, rank 40 — see
  // common/lock_order.hpp; the only nesting with the service mutex is
  // service.state -> service.job, e.g. submit()'s done-cache path).
  Mutex mutex{40, "service.job"};
  CondVar cv;
  Status status QARCH_GUARDED_BY(mutex) = Status::Queued;
  std::size_t waiters QARCH_GUARDED_BY(mutex) = 1;  ///< live tickets attached
  CandidateResult result QARCH_GUARDED_BY(mutex);
  std::string error QARCH_GUARDED_BY(mutex);
  // Timing marks: submitted_at is set before publication and immutable
  // afterwards; started_at is written once by the dispatching worker and read
  // only by that worker while the job runs.
  double submitted_at = 0.0;  ///< service-clock seconds
  double started_at = 0.0;
  double finished_at QARCH_GUARDED_BY(mutex) = 0.0;
};

/// Per-submission view of a job: cancellation is a property of the TICKET
/// (this submission no longer wants the result), not of the shared job, and
/// a ticket attached to another client's in-flight job keeps its OWN
/// submission timestamp (the shared job records the original submitter's).
struct TicketHandle {
  std::shared_ptr<EvalJob> job;
  std::atomic<bool> abandoned{false};
  bool hit = false;  ///< served from cache / attached to an in-flight run
  double submitted_at = 0.0;  ///< service-clock time of THIS submission
};

/// Everything the workers and tickets share. Owned jointly by the service,
/// the in-flight worker tasks, and every outstanding job, so destruction
/// order never dangles.
struct ServiceState {
  SessionConfig config;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<bool> stopping{false};
  /// drain() in progress or finished: dispatch stops (pop_next refuses),
  /// running slices park at their next safe point, retries turn terminal.
  std::atomic<bool> draining{false};
  /// Serializes checkpoint/cache file writes so a slower older snapshot can
  /// never overwrite a newer one. Taken BEFORE `mutex` (writers snapshot
  /// under `mutex` while holding this); never taken while holding `mutex`.
  Mutex io_mutex{20, "service.io"};

  // Shared store of planned contraction orders, injected into every
  // evaluator this service builds (all tensor-network programs of all
  // clients deduplicate planning through it). Internally synchronized —
  // accessed OUTSIDE `mutex`. Loaded from / persisted to
  // config.plan_cache_path when set.
  std::shared_ptr<qtensor::PlanCache> plan_cache =
      std::make_shared<qtensor::PlanCache>();

  Mutex mutex{30, "service.state"};  // guards everything below
  EvalService::Stats stats QARCH_GUARDED_BY(mutex);
  // Result cache: key → result + provenance, LRU-bounded by
  // config.result_cache. graph_fp / training_evals / engine ride along so
  // entries can be persisted without re-parsing the composite key.
  struct CachedResult {
    CandidateResult result;
    std::string graph_fp;
    std::size_t training_evals = 0;
    std::string engine;  ///< resolved engine the run used ("sv" / "tn")
    std::string objective;    ///< ObjectiveSpec::tag(), "" = default
    std::string hamiltonian;  ///< HamiltonianSpec::tag(), "" = default
  };
  std::list<std::pair<std::string, CachedResult>> done_order
      QARCH_GUARDED_BY(mutex);
  std::unordered_map<std::string, decltype(done_order)::iterator> done_by_key
      QARCH_GUARDED_BY(mutex);
  // Persisted entries this service cannot hold in done_order — another
  // engine's results (backend gate), over-capacity leftovers, LRU
  // evictions. Carried so a cache_write shutdown rewrites the WHOLE file
  // instead of destroying warm starts other runs rely on. Deduplicated on
  // insert by (candidate key, engine), so memory tracks the number of
  // DISTINCT persisted candidates, not the eviction churn.
  std::vector<CacheEntry> foreign_entries QARCH_GUARDED_BY(mutex);
  std::unordered_map<std::string, std::size_t> foreign_by_identity
      QARCH_GUARDED_BY(mutex);
  // Stash bound for NEW entries added by LRU eviction: what the file held
  // at load (foreign_floor) plus one result_cache's worth of extras. Keeps
  // rewrite durability for everything that was on disk while capping a long
  // run's memory at O(file + 2 × result_cache) instead of O(evictions).
  std::size_t foreign_floor QARCH_GUARDED_BY(mutex) = 0;
  /// Service-clock time of the last cache_refresh_seconds file re-read
  /// (submit-time cross-pollination between processes sharing cache_path).
  double last_cache_refresh QARCH_GUARDED_BY(mutex) = 0.0;
  // In-flight dedup: key → queued/running job.
  std::unordered_map<std::string, std::weak_ptr<EvalJob>> inflight
      QARCH_GUARDED_BY(mutex);
  // -- fair-share scheduler --------------------------------------------------
  // Every published job waits in its client's queue; pool workers run
  // generic drainer tasks that pick the next job by deficit-weighted round
  // robin over the active (non-empty) queues, with training_evals as the
  // cost unit. Client 0 is the always-present default queue.
  struct ClientQueue {
    std::string name;
    double weight = 1.0;
    double deficit = 0.0;    ///< budget units this queue may spend
    bool closed = false;     ///< handle destroyed; reclaim once drained
    // (−priority, seq) → job: pop order is priority desc, FIFO among equals.
    std::map<std::pair<int, std::uint64_t>, std::shared_ptr<EvalJob>> jobs;
  };
  std::unordered_map<std::size_t, ClientQueue> clients
      QARCH_GUARDED_BY(mutex);
  std::vector<std::size_t> rr_order
      QARCH_GUARDED_BY(mutex);  ///< ids with non-empty queues
  std::size_t rr_cursor QARCH_GUARDED_BY(mutex) = 0;  ///< rr_order position
  bool rr_granted QARCH_GUARDED_BY(mutex) =
      false;  ///< cursor's queue already drew this visit's quantum
  std::uint64_t next_seq QARCH_GUARDED_BY(mutex) = 0;
  // -- preemption / retry / checkpoint state ---------------------------------
  /// Jobs rescheduled with a retry backoff: runnable once now() passes
  /// not_before. pop_next promotes due entries into the fair-share queues
  /// and sleeps on sched_cv for the earliest one when nothing else is
  /// runnable.
  struct DelayedJob {
    double not_before = 0.0;
    std::shared_ptr<EvalJob> job;
  };
  std::vector<DelayedJob> delayed QARCH_GUARDED_BY(mutex);
  CondVar sched_cv;  ///< wakes backoff sleepers (new work, drain, shutdown)
  /// Jobs with a slice currently on a worker; drain() waits on drain_cv for
  /// this to empty.
  std::unordered_set<EvalJob*> running QARCH_GUARDED_BY(mutex);
  CondVar drain_cv;
  /// In-flight training checkpoints by result key: captured at every park /
  /// cadence checkpoint, erased on completion or terminal failure, persisted
  /// to config.checkpoint_path, and consulted by submit() so a resubmitted
  /// candidate (same process or a restarted one) resumes mid-training.
  std::unordered_map<std::string, TrainingCheckpoint> checkpoints
      QARCH_GUARDED_BY(mutex);
  // Evaluator LRU: (graph fp, engine, budget) → construction slot. The slot
  // indirection lets workers build evaluators OUTSIDE this mutex (an
  // Evaluator constructor runs the exponential maxcut_exact solver) while
  // still guaranteeing one construction per key: racing requesters block on
  // the slot's once-flag, not on the whole service.
  struct EvaluatorSlot {
    std::once_flag once;
    std::shared_ptr<const Evaluator> evaluator;
  };
  std::list<std::pair<std::string, std::shared_ptr<EvaluatorSlot>>>
      eval_order QARCH_GUARDED_BY(mutex);
  std::unordered_map<std::string, decltype(eval_order)::iterator> eval_by_key
      QARCH_GUARDED_BY(mutex);

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }
};

/// The service-side PreemptToken handed to a running training slice. Polled
/// by the optimizer at its safe points (loop tops, ≥ 1 objective call
/// apart); decides whether the slice should stop and why:
///   Checkpoint — cadence reached; the worker snapshots and keeps going.
///   Park       — another client is waiting (quantum expired) or the service
///                is draining; snapshot, free the worker, requeue.
///   Expire     — the job blew its deadline or run-time budget.
class JobToken final : public optim::PreemptToken {
 public:
  enum class Reason { None, Checkpoint, Park, Expire };

  JobToken(ServiceState* state, EvalJob* job, double slice_start,
           double run_before)
      : state_(state),
        job_(job),
        slice_start_(slice_start),
        run_before_(run_before) {}

  /// Asks the slice to park at its next safe point (used by tests; drain()
  /// reaches running slices through ServiceState::draining instead).
  void force_park() { forced_.store(true); }

  [[nodiscard]] Reason reason() const { return reason_; }

  bool should_stop(std::size_t evaluations) override {
    // The optimizer's counter can restart (multistart resets it per inner
    // run), so accumulate deltas instead of trusting the absolute value.
    const std::size_t delta =
        evaluations >= last_evals_ ? evaluations - last_evals_ : evaluations;
    last_evals_ = evaluations;
    acc_evals_ += delta;
    if (forced_.load() || state_->draining.load()) {
      reason_ = Reason::Park;
      return true;
    }
    const double now = state_->now();
    if (job_->deadline_at > 0.0 && now >= job_->deadline_at) {
      reason_ = Reason::Expire;
      return true;
    }
    if (job_->max_eval_seconds > 0.0 &&
        run_before_ + (now - slice_start_) >= job_->max_eval_seconds) {
      reason_ = Reason::Expire;
      return true;
    }
    if (const std::size_t cadence = state_->config.checkpoint_evals;
        cadence > 0 && acc_evals_ >= cadence) {
      acc_evals_ = 0;
      reason_ = Reason::Checkpoint;
      return true;
    }
    const double quantum = state_->config.preempt_quantum_seconds;
    if (quantum > 0.0 && now - slice_start_ >= quantum &&
        now >= next_probe_) {
      bool contended = false;
      {
        // Park only when some OTHER client has queued work: preempting for
        // the job's own queue would just thrash (DWRR already ordered it),
        // and an uncontended service runs every job straight through.
        LockGuard lock(state_->mutex);
        for (const std::size_t id : state_->rr_order)
          if (id != job_->client_id) {
            contended = true;
            break;
          }
      }
      if (contended) {
        reason_ = Reason::Park;
        return true;
      }
      // Nobody waiting: probe again half a quantum later instead of taking
      // the service mutex on every objective call.
      next_probe_ = now + quantum * 0.5;
    }
    return false;
  }

 private:
  ServiceState* state_;
  EvalJob* job_;
  std::atomic<bool> forced_{false};
  Reason reason_ = Reason::None;
  double slice_start_ = 0.0;
  double run_before_ = 0.0;   ///< run_seconds banked before this slice
  double next_probe_ = 0.0;
  std::size_t last_evals_ = 0;
  std::size_t acc_evals_ = 0;
};

namespace {

/// The composite result-cache key. Every byte of candidate identity that
/// affects the result is in here; the code version gating the PERSISTED form
/// lives at the file level (kCacheCodeVersion).
std::string result_key(const std::string& graph_key,
                       const qaoa::MixerSpec& mixer, std::size_t p,
                       std::size_t evals) {
  return graph_key + '\x1e' + mixer.to_string() + "@p" + std::to_string(p) +
         "@e" + std::to_string(evals);
}

/// Objective/Hamiltonian identity suffix from persisted tag strings (empty =
/// default spec). Appended only when non-default, so the default path's keys
/// — and therefore every cache file written before generalized objectives
/// existed — stay byte-identical.
std::string tag_suffix(const std::string& objective_tag,
                       const std::string& hamiltonian_tag) {
  std::string s;
  if (!objective_tag.empty()) s += "@o" + objective_tag;
  if (!hamiltonian_tag.empty()) s += "@h" + hamiltonian_tag;
  return s;
}

/// The same suffix from resolved specs.
std::string spec_suffix(const qaoa::ObjectiveSpec& objective,
                        const qaoa::HamiltonianSpec& hamiltonian) {
  return tag_suffix(objective.is_default() ? std::string() : objective.tag(),
                    hamiltonian.is_default() ? std::string()
                                             : hamiltonian.tag());
}

/// Identity of a persisted entry: the result key (with spec suffix) plus the
/// engine that produced it (one candidate may have an sv and a tn twin on
/// disk).
std::string cache_identity(const CacheEntry& e) {
  return result_key(e.graph_fp, e.result.mixer, e.result.p,
                    e.training_evals) +
         tag_suffix(e.objective, e.hamiltonian) + '\x1f' + e.engine;
}

/// Adds (or refreshes) one entry in the to-be-persisted overflow set:
/// entries the in-memory cache cannot hold but the next rewrite must keep.
/// Deduplicated by identity so eviction churn cannot grow it. Requires
/// state.mutex held.
void stash_foreign(ServiceState& state, CacheEntry entry)
    QARCH_REQUIRES(state.mutex) {
  const std::string id = cache_identity(entry);
  if (const auto it = state.foreign_by_identity.find(id);
      it != state.foreign_by_identity.end()) {
    state.foreign_entries[it->second] = std::move(entry);
  } else {
    state.foreign_by_identity.emplace(id, state.foreign_entries.size());
    state.foreign_entries.push_back(std::move(entry));
  }
}

/// Shared-evaluator lookup. Two workers racing to build the same evaluator
/// must not each get a private plan cache (candidate plans would compile
/// twice, breaking the one-compile-per-(candidate, graph) contract), so a
/// key's first requester constructs inside the slot's call_once while later
/// requesters block on that SLOT only — the service mutex is never held
/// across construction (which runs the exponential maxcut_exact solver).
std::shared_ptr<const Evaluator> evaluator_for(
    ServiceState& state, const std::string& graph_key, const graph::Graph& g,
    qaoa::EngineKind engine, std::size_t training_evals,
    const qaoa::ObjectiveSpec& objective,
    const qaoa::HamiltonianSpec& hamiltonian) {
  const std::string key =
      graph_key + '\x1f' +
      (engine == qaoa::EngineKind::Statevector ? "sv" : "tn") + '\x1f' +
      std::to_string(training_evals) + spec_suffix(objective, hamiltonian);
  std::shared_ptr<ServiceState::EvaluatorSlot> slot;
  {
    LockGuard lock(state.mutex);
    if (const auto it = state.eval_by_key.find(key);
        it != state.eval_by_key.end()) {
      state.eval_order.splice(state.eval_order.begin(), state.eval_order,
                              it->second);
      slot = it->second->second;
    } else {
      slot = std::make_shared<ServiceState::EvaluatorSlot>();
      state.eval_order.emplace_front(key, slot);
      state.eval_by_key[key] = state.eval_order.begin();
      const std::size_t capacity =
          std::max<std::size_t>(1, state.config.evaluator_cache);
      while (state.eval_order.size() > capacity) {
        state.eval_by_key.erase(state.eval_order.back().first);
        state.eval_order.pop_back();  // builders hold their own slot ref
      }
    }
  }
  bool built = false;
  std::call_once(slot->once, [&] {
    auto options = state.config.evaluator_options(engine, training_evals);
    // Per-job specs override the session defaults the facade copied in.
    options.objective = objective;
    options.hamiltonian = hamiltonian;
    // Every evaluator shares the service's plan store: tensor-network
    // programs reuse orders across candidates, clients, and (when
    // plan_cache_path is set) across processes.
    options.energy.qtensor.plan_cache = state.plan_cache;
    slot->evaluator = std::make_shared<const Evaluator>(g, options);
    built = true;
  });
  if (built) {
    LockGuard lock(state.mutex);
    ++state.stats.evaluators_built;
  }
  return slot->evaluator;
}

/// Removes `id` from the round-robin rotation (its queue just drained) and
/// reclaims the queue entirely when its handle was already destroyed.
/// Requires state.mutex held.
void deactivate_client(ServiceState& state, std::size_t id)
    QARCH_REQUIRES(state.mutex) {
  const auto pos =
      std::find(state.rr_order.begin(), state.rr_order.end(), id);
  if (pos != state.rr_order.end()) {
    const auto index =
        static_cast<std::size_t>(pos - state.rr_order.begin());
    state.rr_order.erase(pos);
    // The cursor keeps pointing at the next not-yet-visited queue; a fresh
    // visit starts there, so the stale grant flag must not carry over.
    if (index < state.rr_cursor)
      --state.rr_cursor;
    else if (index == state.rr_cursor)
      state.rr_granted = false;
  }
  const auto cit = state.clients.find(id);
  if (cit != state.clients.end()) {
    cit->second.deficit = 0.0;  // no banking credit across idle periods
    if (cit->second.closed && id != 0) state.clients.erase(cit);
  }
}

/// Inserts a published job into its client's fair-share queue. Requires
/// state.mutex held; the caller resolved client_id/priority/seq already.
void enqueue_job(ServiceState& state, const std::shared_ptr<EvalJob>& job)
    QARCH_REQUIRES(state.mutex) {
  ServiceState::ClientQueue& queue = state.clients[job->client_id];
  const bool was_empty = queue.jobs.empty();
  queue.jobs.emplace(std::make_pair(-job->priority, job->seq), job);
  if (was_empty) state.rr_order.push_back(job->client_id);
}

/// A service-clock timestamp as a steady_clock time point (for cv waits).
std::chrono::steady_clock::time_point service_time(const ServiceState& state,
                                                   double seconds) {
  return state.epoch +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Remaining training budget of a job — the fair-share cost unit. A parked
/// job already banked evals_done of its budget, so requeueing it charges
/// only the remainder (net, a client pays for the evals its slices actually
/// consumed). Requires state.mutex held (evals_done).
double job_cost(const EvalJob& job) {
  return static_cast<double>(job.training_evals > job.evals_done
                                 ? job.training_evals - job.evals_done
                                 : 1);
}

/// The persistable form of a job's current checkpoint. Requires state.mutex
/// held (reads nothing mutable, but callers are there anyway).
TrainingCheckpoint checkpoint_record(const EvalJob& job,
                                     const std::string& engine_name,
                                     const optim::OptimState& training) {
  TrainingCheckpoint ck;
  ck.graph_fp = job.graph_key;
  ck.mixer = job.mixer;
  ck.p = job.p;
  ck.training_evals = job.training_evals;
  ck.engine = engine_name;
  if (!job.objective.is_default()) ck.objective = job.objective.tag();
  if (!job.hamiltonian.is_default()) ck.hamiltonian = job.hamiltonian.tag();
  ck.state = training;
  return ck;
}

/// Atomically rewrites config.checkpoint_path with the current in-flight
/// checkpoint set (no-op without a path). Best-effort: a write failure is
/// logged, not thrown — the in-memory checkpoint still resumes within this
/// process. io_mutex serializes writers so an older snapshot can never land
/// on top of a newer one.
void persist_checkpoints(ServiceState& state)
    QARCH_EXCLUDES(state.io_mutex, state.mutex) {
  if (state.config.checkpoint_path.empty()) return;
  LockGuard io(state.io_mutex);
  std::vector<TrainingCheckpoint> entries;
  {
    LockGuard lock(state.mutex);
    entries.reserve(state.checkpoints.size());
    for (const auto& [key, ck] : state.checkpoints) entries.push_back(ck);
  }
  try {
    save_checkpoints(entries, state.config.checkpoint_path,
                     kCheckpointCodeVersion);
  } catch (const std::exception& e) {
    log::warn("checkpoints not persisted: ", e.what());
  }
}

/// Deficit-weighted round robin over the client queues: each visit grants
/// the queue weight × quantum budget units (quantum = the widest head job
/// currently queued, so every rotation lets someone dispatch); a queue keeps
/// dispatching while its deficit covers its head job's REMAINING budget,
/// then the cursor moves on. Also the retry pump: due delayed (backoff)
/// jobs are promoted into their queues first, and when only not-yet-due
/// entries remain the caller sleeps here until the earliest comes due.
/// Returns nullptr when nothing is left to serve — surplus drainers (their
/// job was cancelled, or served by the result cache on resubmission) just
/// retire — or when drain() stopped dispatch.
std::shared_ptr<EvalJob> pop_next(ServiceState& state)
    QARCH_EXCLUDES(state.mutex) {
  UniqueLock lock(state.mutex);
  for (;;) {
    if (state.draining.load() && !state.stopping.load()) return nullptr;
    const double now = state.now();
    if (!state.delayed.empty()) {
      auto it = state.delayed.begin();
      while (it != state.delayed.end()) {
        // Shutdown promotes everything immediately: run_job resolves the
        // promoted jobs as Cancelled instead of leaving tickets hanging.
        if (state.stopping.load() || now >= it->not_before) {
          enqueue_job(state, it->job);
          it = state.delayed.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!state.rr_order.empty()) break;
    if (state.delayed.empty()) return nullptr;
    double next_due = state.delayed.front().not_before;
    for (const ServiceState::DelayedJob& d : state.delayed)
      next_due = std::min(next_due, d.not_before);
    state.sched_cv.wait_until(lock, service_time(state, next_due));
  }
  double quantum = 1.0;
  for (const std::size_t id : state.rr_order) {
    const ServiceState::ClientQueue& q = state.clients[id];
    quantum = std::max(quantum, job_cost(*q.jobs.begin()->second));
  }
  for (;;) {
    if (state.rr_cursor >= state.rr_order.size()) state.rr_cursor = 0;
    const std::size_t id = state.rr_order[state.rr_cursor];
    ServiceState::ClientQueue& queue = state.clients[id];
    const auto head = queue.jobs.begin();
    const double cost = job_cost(*head->second);
    if (queue.deficit < cost && !state.rr_granted) {
      queue.deficit += queue.weight * quantum;
      state.rr_granted = true;
    }
    if (queue.deficit < cost) {  // grant spent: next queue's turn
      ++state.rr_cursor;
      state.rr_granted = false;
      continue;
    }
    queue.deficit -= cost;
    std::shared_ptr<EvalJob> job = head->second;
    queue.jobs.erase(head);
    if (queue.jobs.empty()) deactivate_client(state, id);
    return job;
  }
}

void finish_cancelled(ServiceState& state,
                      const std::shared_ptr<EvalJob>& job)
    QARCH_EXCLUDES(state.mutex) {
  {
    LockGuard lock(state.mutex);
    // Erase by identity, not by key: a duplicate resubmission may already
    // have replaced this key's in-flight entry with a fresh job.
    const auto it = state.inflight.find(job->key);
    if (it != state.inflight.end() && it->second.lock() == job)
      state.inflight.erase(it);
    ++state.stats.cancelled;
    // Withdraw from the scheduler so no drainer picks the job up (a no-op
    // when a drainer already popped it — run_job rechecks the status).
    const auto cit = state.clients.find(job->client_id);
    if (cit != state.clients.end()) {
      cit->second.jobs.erase(std::make_pair(-job->priority, job->seq));
      if (cit->second.jobs.empty()) deactivate_client(state, job->client_id);
    }
  }
  job->cv.notify_all();
}

/// Terminal bookkeeping of a deadline-expired job. The caller already set
/// Status::Expired (and finished_at) under the JOB mutex; this mirrors
/// finish_cancelled — inflight/queue withdrawal — plus the checkpoint record
/// is dropped: past its deadline the partial training is dead weight.
void finish_expired(ServiceState& state,
                    const std::shared_ptr<EvalJob>& job)
    QARCH_EXCLUDES(state.mutex) {
  {
    LockGuard lock(state.mutex);
    const auto it = state.inflight.find(job->key);
    if (it != state.inflight.end() && it->second.lock() == job)
      state.inflight.erase(it);
    ++state.stats.deadline_expired;
    state.checkpoints.erase(job->key);
    const auto cit = state.clients.find(job->client_id);
    if (cit != state.clients.end()) {
      cit->second.jobs.erase(std::make_pair(-job->priority, job->seq));
      if (cit->second.jobs.empty()) deactivate_client(state, job->client_id);
    }
  }
  job->cv.notify_all();
}

/// Snapshot-and-write of the plan and result caches: the body of
/// EvalService::save_cache, shared with the completion-time durability flush
/// in run_job. io_mutex serializes writers (see persist_checkpoints).
std::size_t persist_caches(ServiceState& state)
    QARCH_EXCLUDES(state.io_mutex, state.mutex) {
  LockGuard io(state.io_mutex);
  // Plan cache first: cheap, and useful even when result persistence is off.
  if (!state.config.plan_cache_path.empty())
    save_plan_cache(state.plan_cache->snapshot(), state.config.plan_cache_path,
                    kPlanCacheCodeVersion);
  if (state.config.cache_path.empty() || state.config.result_cache == 0)
    return 0;
  std::vector<CacheEntry> entries;
  {
    LockGuard lock(state.mutex);
    entries.reserve(state.done_order.size() + state.foreign_entries.size());
    std::set<std::string> seen;
    // done_order is most-recently-used first; persist in that order so a
    // smaller result_cache on reload keeps the hottest entries.
    for (const auto& [key, cached] : state.done_order) {
      CacheEntry e;
      e.graph_fp = cached.graph_fp;
      e.training_evals = cached.training_evals;
      e.engine = cached.engine;
      e.objective = cached.objective;
      e.hamiltonian = cached.hamiltonian;
      e.result = cached.result;
      e.result.from_cache = false;  // provenance is per-submission, not disk
      seen.insert(cache_identity(e));
      entries.push_back(std::move(e));
    }
    // Re-persist what this service could not hold itself — other-backend
    // entries, over-capacity leftovers, LRU evictions (deduplicated on
    // insert). An identity done_order also holds means the candidate was
    // freshly re-evaluated after its eviction: the new result shadows the
    // stale stash.
    for (const CacheEntry& e : state.foreign_entries)
      if (seen.insert(cache_identity(e)).second) entries.push_back(e);
  }
  save_result_cache(entries, state.config.cache_path, kCacheCodeVersion);
  return entries.size();
}

/// Cheap submit-time probe for the cache_refresh_seconds satellite: true
/// when the interval elapsed, in which case THIS caller claims the refresh
/// (the timestamp advances under the mutex, so concurrent submitters do the
/// file IO at most once per interval).
bool cache_refresh_due(ServiceState& state) QARCH_EXCLUDES(state.mutex) {
  if (state.config.cache_refresh_seconds <= 0.0 ||
      state.config.cache_path.empty() || state.config.result_cache == 0)
    return false;
  const double now = state.now();
  LockGuard lock(state.mutex);
  if (now - state.last_cache_refresh < state.config.cache_refresh_seconds)
    return false;
  state.last_cache_refresh = now;
  return true;
}

/// Re-reads the result-cache file and merges entries this service does not
/// already hold — cross-pollination between concurrent processes sharing one
/// cache_path, without waiting for either to restart. Merge rules mirror the
/// constructor load: the engine gate and capacity bound apply, rejected
/// entries are stashed for the next rewrite (when this service writes at
/// all), and entries this process already holds in memory always win over
/// disk state. File IO runs under io_mutex only; the service mutex is taken
/// afterwards for the merge (io_mutex-before-mutex, never nested the other
/// way).
void refresh_result_cache(ServiceState& state)
    QARCH_EXCLUDES(state.io_mutex, state.mutex) {
  std::vector<CacheEntry> entries;
  {
    LockGuard io(state.io_mutex);
    entries = load_result_cache(state.config.cache_path, kCacheCodeVersion);
  }
  LockGuard lock(state.mutex);
  ++state.stats.cache_refreshes;
  const bool keep_for_rewrite = state.config.cache_write;
  const std::size_t stash_bound =
      state.foreign_floor + state.config.result_cache;
  for (CacheEntry& e : entries) {
    const bool engine_gated =
        (state.config.backend == BackendChoice::Statevector &&
         e.engine != "sv") ||
        (state.config.backend == BackendChoice::TensorNetwork &&
         e.engine != "tn");
    const std::string key =
        result_key(e.graph_fp, e.result.mixer, e.result.p, e.training_evals) +
        tag_suffix(e.objective, e.hamiltonian);
    if (engine_gated || state.done_by_key.count(key) > 0 ||
        state.done_order.size() >= state.config.result_cache) {
      // Not loadable here (wrong engine, already held, or over capacity) —
      // but still on disk, so a rewriting service must carry it. Bounded
      // like the eviction stash: refreshes cannot grow memory without limit.
      if (keep_for_rewrite &&
          (state.foreign_entries.size() < stash_bound ||
           state.foreign_by_identity.count(cache_identity(e)) > 0))
        stash_foreign(state, std::move(e));
      continue;
    }
    ServiceState::CachedResult cached;
    cached.result = e.result;
    cached.graph_fp = std::move(e.graph_fp);
    cached.training_evals = e.training_evals;
    cached.engine = std::move(e.engine);
    cached.objective = std::move(e.objective);
    cached.hamiltonian = std::move(e.hamiltonian);
    // Appended at the LRU's cold end: a merged entry is a warm start, not a
    // recent use, so it is first out if capacity tightens.
    state.done_order.emplace_back(key, std::move(cached));
    state.done_by_key[key] = std::prev(state.done_order.end());
    ++state.stats.cache_loaded;
  }
}

/// Worker body: runs one job until it completes, parks, expires, retries, or
/// fails. `state` is captured by shared_ptr so a draining pool can outlive
/// the EvalService front-end.
///
/// The slice loop is the preemption core: evaluate_resumable runs the
/// candidate's training against the job's checkpoint and the JobToken, and
/// comes back either completed or preempted with the checkpoint advanced.
/// A Checkpoint preemption banks the state and CONTINUES on this worker; a
/// Park frees the worker and requeues the job (same checkpoint, fair-share
/// deficit refunded to the remaining cost); an Expire resolves the ticket.
/// Because a resumed run replays the exact optimizer trajectory, a
/// parked-and-resumed evaluation is bit-identical to an uninterrupted one.
void run_job(const std::shared_ptr<ServiceState>& state,
             const std::shared_ptr<EvalJob>& job) {
  {
    UniqueLock lock(job->mutex);
    if (job->status != EvalJob::Status::Queued) return;
    if (state->stopping.load()) {
      job->status = EvalJob::Status::Cancelled;
      job->finished_at = state->now();
      lock.unlock();
      finish_cancelled(*state, job);
      return;
    }
    if (job->deadline_at > 0.0 && state->now() >= job->deadline_at) {
      job->status = EvalJob::Status::Expired;
      job->finished_at = state->now();
      lock.unlock();
      finish_expired(*state, job);
      return;
    }
    job->status = EvalJob::Status::Running;
    if (job->started_at == 0.0) job->started_at = state->now();
  }

  const double slice_start = state->now();
  CandidateResult result;
  qaoa::EngineKind engine = qaoa::EngineKind::Statevector;
  bool failed = false;
  std::string error;
  optim::OptimState training;
  std::string engine_name;
  std::shared_ptr<JobToken> token;
  try {
    switch (state->config.backend) {
      case BackendChoice::Statevector:
        engine = qaoa::EngineKind::Statevector;
        break;
      case BackendChoice::TensorNetwork:
        engine = qaoa::EngineKind::TensorNetwork;
        break;
      case BackendChoice::Auto:
        engine = auto_engine_choice(state->config, job->graph, job->mixer,
                                    job->p);
        break;
    }
    engine_name = engine == qaoa::EngineKind::Statevector ? "sv" : "tn";
    int attempt = 0;
    {
      LockGuard lock(state->mutex);
      attempt = job->attempts;
      if (!job->checkpoint.fresh() &&
          job->checkpoint_engine != engine_name) {
        // A checkpoint from the other engine cannot seed this run (its
        // objective numerics differ); restart rather than mix trajectories.
        job->checkpoint.clear();
        job->checkpoint_engine.clear();
        job->evals_done = 0;
        ++state->stats.checkpoints_discarded;
      }
      training = job->checkpoint;
      if (!training.fresh()) ++state->stats.resumed;
      token = std::make_shared<JobToken>(state.get(), job.get(), slice_start,
                                         job->run_seconds);
      job->token = token;
      state->running.insert(job.get());
    }
    // Fault-injection hook: may sleep, or throw FaultInjected into the
    // ordinary failure/retry path below. Deterministically keyed by
    // (candidate, attempt), so a given attempt either always or never fails
    // regardless of thread interleaving.
    FaultInjector::instance().on_evaluation(
        job->key, static_cast<std::uint64_t>(attempt));
    const auto evaluator =
        evaluator_for(*state, job->graph_key, job->graph, engine,
                      job->training_evals, job->objective, job->hamiltonian);
    for (;;) {
      ResumableEvaluation slice = evaluator->evaluate_resumable(
          job->mixer, job->p, training, token.get());
      if (slice.completed) {
        result = std::move(slice.result);
        break;
      }
      if (token->reason() == JobToken::Reason::Checkpoint) {
        // Cadence snapshot: bank the state and keep running on this worker.
        {
          LockGuard lock(state->mutex);
          job->checkpoint = training;
          job->checkpoint_engine = engine_name;
          job->evals_done = slice.evaluations_done;
          if (!state->config.checkpoint_path.empty())
            state->checkpoints[job->key] =
                checkpoint_record(*job, engine_name, training);
        }
        persist_checkpoints(*state);
        FaultInjector::instance().at_point("checkpoint");
        continue;
      }
      if (token->reason() == JobToken::Reason::Expire) {
        {
          LockGuard jlock(job->mutex);
          job->status = EvalJob::Status::Expired;
          job->finished_at = state->now();
        }
        {
          LockGuard lock(state->mutex);
          state->running.erase(job.get());
          job->token.reset();
          job->run_seconds += state->now() - slice_start;
        }
        finish_expired(*state, job);
        state->drain_cv.notify_all();
        return;
      }
      // Park: snapshot, requeue (or resolve Cancelled under shutdown), free
      // this worker for whoever the scheduler prefers.
      bool cancelled = false;
      {
        LockGuard jlock(job->mutex);
        if (state->stopping.load()) {
          job->status = EvalJob::Status::Cancelled;
          job->finished_at = state->now();
          cancelled = true;
        } else {
          job->status = EvalJob::Status::Queued;
        }
      }
      {
        LockGuard lock(state->mutex);
        state->running.erase(job.get());
        job->token.reset();
        job->checkpoint = training;
        job->checkpoint_engine = engine_name;
        job->evals_done = slice.evaluations_done;
        job->run_seconds += state->now() - slice_start;
        if (!state->config.checkpoint_path.empty())
          state->checkpoints[job->key] =
              checkpoint_record(*job, engine_name, training);
        if (!cancelled) {
          ++state->stats.parked;
          job->seq = state->next_seq++;
          enqueue_job(*state, job);
          // Refund the unconsumed part of the dispatch charge: the next pop
          // re-charges the REMAINING cost, so net the client paid only for
          // the evals this slice actually consumed.
          const auto cit = state->clients.find(job->client_id);
          if (cit != state->clients.end())
            cit->second.deficit += job_cost(*job);
          // Yield the next dispatch to the backlog that triggered the park:
          // the refund means the unchanged cursor would cover this queue's
          // head again and re-dispatch the very job that just parked.
          ++state->rr_cursor;
          state->rr_granted = false;
        }
      }
      if (cancelled) {
        finish_cancelled(*state, job);
      } else {
        state->sched_cv.notify_all();
        state->drain_cv.notify_all();
        persist_checkpoints(*state);
        FaultInjector::instance().at_point("park");
      }
      return;
    }
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  const double slice_seconds = state->now() - slice_start;
  bool retry = false;
  double backoff = 0.0;
  {
    LockGuard lock(state->mutex);
    state->running.erase(job.get());
    job->token.reset();
    job->run_seconds += slice_seconds;
    if (failed) {
      if (!state->stopping.load() && !state->draining.load() &&
          job->attempts < job->max_retries) {
        // Bounded retry with exponential backoff. The checkpoint (if any)
        // survives, so the retry resumes instead of restarting; the job
        // stays in `inflight` so duplicates keep attaching to it.
        backoff = job->retry_backoff * std::ldexp(1.0, job->attempts);
        ++job->attempts;
        ++state->stats.retried;
        retry = true;
      } else {
        ++state->stats.failed;
        state->inflight.erase(job->key);
        state->checkpoints.erase(job->key);
      }
    } else {
      ++state->stats.completed;
      if (engine == qaoa::EngineKind::Statevector)
        ++state->stats.picked_statevector;
      else
        ++state->stats.picked_tensornetwork;
      result.queue_seconds = job->started_at - job->submitted_at;
      result.eval_seconds = job->run_seconds;
      state->inflight.erase(job->key);
      state->checkpoints.erase(job->key);
      job->checkpoint.clear();
      if (state->config.result_cache > 0) {
        ServiceState::CachedResult cached;
        cached.result = result;
        cached.graph_fp = job->graph_key;
        cached.training_evals = job->training_evals;
        cached.engine =
            engine == qaoa::EngineKind::Statevector ? "sv" : "tn";
        if (!job->objective.is_default())
          cached.objective = job->objective.tag();
        if (!job->hamiltonian.is_default())
          cached.hamiltonian = job->hamiltonian.tag();
        state->done_order.emplace_front(job->key, std::move(cached));
        state->done_by_key[job->key] = state->done_order.begin();
        while (state->done_order.size() > state->config.result_cache) {
          // When a rewrite is coming, LRU-evicted results stay eligible for
          // persistence (dropping them would erase warm starts from the
          // shared cache file); without one, hoarding them would just grow
          // memory past the LRU bound for nothing. The stash itself is
          // bounded (foreign_floor + result_cache): a run that churns far
          // past its capacity sheds the excess instead of growing without
          // limit, though refreshing an already-stashed identity is always
          // allowed (it replaces in place).
          ServiceState::CachedResult& old = state->done_order.back().second;
          if (!state->config.cache_path.empty() &&
              state->config.cache_write) {
            CacheEntry evicted;  // moving is fine: `old` is dropped below
            evicted.graph_fp = std::move(old.graph_fp);
            evicted.training_evals = old.training_evals;
            evicted.engine = std::move(old.engine);
            evicted.objective = std::move(old.objective);
            evicted.hamiltonian = std::move(old.hamiltonian);
            evicted.result = std::move(old.result);
            if (state->foreign_entries.size() <
                    state->foreign_floor + state->config.result_cache ||
                state->foreign_by_identity.count(cache_identity(evicted)) > 0)
              stash_foreign(*state, std::move(evicted));
          }
          state->done_by_key.erase(state->done_order.back().first);
          state->done_order.pop_back();
        }
      }
    }
  }
  if (retry) {
    {
      LockGuard jlock(job->mutex);
      job->status = EvalJob::Status::Queued;
    }
    {
      LockGuard lock(state->mutex);
      job->seq = state->next_seq++;
      state->delayed.push_back({state->now() + backoff, job});
    }
    state->sched_cv.notify_all();
    return;
  }
  {
    LockGuard lock(job->mutex);
    job->finished_at = state->now();
    if (failed) {
      job->status = EvalJob::Status::Failed;
      job->error = std::move(error);
    } else {
      job->status = EvalJob::Status::Done;
      job->result = std::move(result);
    }
  }
  job->cv.notify_all();
  state->drain_cv.notify_all();
  if (!state->config.checkpoint_path.empty()) {
    // Durability mode: drop the resolved job's checkpoint record from disk
    // and flush completed results as they finish, so a crash loses at most
    // the slice since the last checkpoint — never a finished evaluation.
    persist_checkpoints(*state);
    if (!failed && state->config.cache_write &&
        !state->config.cache_path.empty() &&
        state->config.result_cache > 0) {
      try {
        persist_caches(*state);
      } catch (const std::exception& e) {
        log::warn("result-cache flush failed: ", e.what());
      }
    }
  }
}

/// Drainer body executed by the pool. One drainer is enqueued per published
/// job, but a drainer runs whatever job the fair-share scheduler serves
/// next, not "its own" — and keeps serving: a parked or retried job
/// re-enters the queues without a new drainer being spawned, so the drainer
/// that parked it must loop rather than retire. Surplus drainers (their job
/// was cancelled) find an empty scheduler and retire.
void run_next(const std::shared_ptr<ServiceState>& state) {
  while (const std::shared_ptr<EvalJob> job = pop_next(*state))
    run_job(state, job);
}

}  // namespace
}  // namespace detail

std::string graph_fingerprint(const graph::Graph& g) {
  std::string key;
  key.reserve(16 + g.num_edges() * 24);
  const auto put = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t head[2] = {g.num_vertices(), g.num_edges()};
  put(head, sizeof(head));
  for (const graph::Edge& e : g.edges()) {
    const std::uint64_t uv[2] = {e.u, e.v};
    put(uv, sizeof(uv));
    put(&e.weight, sizeof(e.weight));
  }
  return key;
}

qaoa::EngineKind auto_engine_choice(const SessionConfig& config,
                                    const graph::Graph& g,
                                    const qaoa::MixerSpec& mixer,
                                    std::size_t p) {
  // Small instances: 2^n is cheap and the statevector engine amortizes every
  // edge into one batched sweep.
  if (g.num_vertices() <= config.auto_statevector_qubits)
    return qaoa::EngineKind::Statevector;
  // An entangling mixer (ring two-qubit gates on every qubit) spreads each
  // edge's causal cone across the whole register per layer — no narrow
  // lightcone to exploit.
  for (circuit::GateKind k : mixer.gates)
    if (circuit::is_two_qubit(k)) return qaoa::EngineKind::Statevector;
  // Single-qubit mixers: each of the p cost layers widens an edge's causal
  // cone by exactly one graph hop (diagonal ZZ terms commute), so the
  // lightcone of Z_u Z_v is the p-hop neighbourhood of its WORST edge (max
  // endpoint-degree sum). Contraction cost scales with that, not with n.
  const graph::Edge* worst = nullptr;
  std::size_t worst_degree = 0;
  for (const graph::Edge& e : g.edges()) {
    const std::size_t d = g.degree(e.u) + g.degree(e.v);
    if (worst == nullptr || d > worst_degree) {
      worst = &e;
      worst_degree = d;
    }
  }
  QARCH_CHECK(worst != nullptr, "auto_engine_choice on an edgeless graph");
  std::set<std::size_t> cone{worst->u, worst->v};
  std::vector<std::size_t> frontier{worst->u, worst->v};
  for (std::size_t hop = 0; hop < p && !frontier.empty(); ++hop) {
    std::vector<std::size_t> next;
    for (std::size_t q : frontier)
      for (std::size_t nb : g.neighbors(q))
        if (cone.insert(nb).second) next.push_back(nb);
    frontier = std::move(next);
  }
  return cone.size() <= config.auto_lightcone_qubits
             ? qaoa::EngineKind::TensorNetwork
             : qaoa::EngineKind::Statevector;
}

// ---------------------------------------------------------------------------
// EvalTicket
// ---------------------------------------------------------------------------

const CandidateResult& EvalTicket::wait() const {
  QARCH_REQUIRE(handle_ != nullptr, "wait() on an empty EvalTicket");
  // An unbounded wait always resolves (or throws) — never nullptr.
  return *wait_for(-1.0);
}

const CandidateResult* EvalTicket::wait_for(double timeout_seconds) const {
  QARCH_REQUIRE(handle_ != nullptr, "wait_for() on an empty EvalTicket");
  const std::shared_ptr<detail::EvalJob>& job_ptr = handle_->job;
  detail::EvalJob& job = *job_ptr;
  const std::shared_ptr<detail::ServiceState>& state = job.service;
  const double wait_deadline =
      timeout_seconds >= 0.0 ? state->now() + timeout_seconds : -1.0;
  UniqueLock lock(job.mutex);
  for (;;) {
    // The abandoned flag is part of the predicate: a concurrent cancel() of
    // a ticket copy must wake and fail a waiter already parked here even
    // when other clients keep the shared job itself alive.
    if (handle_->abandoned.load() ||
        (job.status != detail::EvalJob::Status::Queued &&
         job.status != detail::EvalJob::Status::Running))
      break;
    const double now = state->now();
    // Deadlines are enforced from the waiter side too: a job stuck QUEUED
    // behind a flood expires right here, no worker required — so a
    // deadline'd ticket can never hang its caller.
    if (job.status == detail::EvalJob::Status::Queued &&
        job.deadline_at > 0.0 && now >= job.deadline_at) {
      job.status = detail::EvalJob::Status::Expired;
      job.finished_at = now;
      lock.unlock();
      detail::finish_expired(*state, job_ptr);
      lock.lock();
      break;
    }
    if (wait_deadline >= 0.0 && now >= wait_deadline) return nullptr;
    double wake = wait_deadline;
    if (job.status == detail::EvalJob::Status::Queued &&
        job.deadline_at > 0.0)
      wake = wake < 0.0 ? job.deadline_at : std::min(wake, job.deadline_at);
    if (wake < 0.0)
      job.cv.wait(lock);
    else
      job.cv.wait_until(lock, detail::service_time(*state, wake));
  }
  if (handle_->abandoned.load()) throw Error("EvalTicket was cancelled");
  switch (job.status) {
    case detail::EvalJob::Status::Done:
      return &job.result;
    case detail::EvalJob::Status::Failed:
      throw Error("candidate evaluation failed: " + job.error);
    case detail::EvalJob::Status::Expired:
      throw Error("candidate evaluation deadline expired");
    default:
      throw Error("candidate evaluation was cancelled");
  }
}

bool EvalTicket::ready() const {
  QARCH_REQUIRE(handle_ != nullptr, "ready() on an empty EvalTicket");
  if (handle_->abandoned.load()) return true;
  detail::EvalJob& job = *handle_->job;
  LockGuard lock(job.mutex);
  return job.status != detail::EvalJob::Status::Queued &&
         job.status != detail::EvalJob::Status::Running;
}

bool EvalTicket::cancel() {
  QARCH_REQUIRE(handle_ != nullptr, "cancel() on an empty EvalTicket");
  if (handle_->abandoned.load()) return true;
  const std::shared_ptr<detail::EvalJob>& job = handle_->job;
  bool withdrew_job = false;
  {
    LockGuard lock(job->mutex);
    if (job->status == detail::EvalJob::Status::Running ||
        job->status == detail::EvalJob::Status::Done ||
        job->status == detail::EvalJob::Status::Failed ||
        job->status == detail::EvalJob::Status::Expired)
      return false;
    // exchange, not store: two threads cancelling copies of the SAME handle
    // both pass the lock-free abandoned check above, and a double decrement
    // here would withdraw a job other live tickets still wait on.
    if (handle_->abandoned.exchange(true)) return true;
    if (job->waiters > 0) --job->waiters;
    if (job->status == detail::EvalJob::Status::Queued &&
        job->waiters == 0) {
      job->status = detail::EvalJob::Status::Cancelled;
      job->finished_at = job->service->now();
      withdrew_job = true;
    }
  }
  if (withdrew_job)
    detail::finish_cancelled(*job->service, job);
  else
    job->cv.notify_all();  // wake waiters parked on this now-abandoned handle
  return true;
}

bool EvalTicket::cancelled() const {
  return handle_ != nullptr && handle_->abandoned.load();
}

bool EvalTicket::expired() const {
  if (handle_ == nullptr) return false;
  LockGuard lock(handle_->job->mutex);
  return handle_->job->status == detail::EvalJob::Status::Expired;
}

bool EvalTicket::cache_hit() const {
  return handle_ != nullptr && handle_->hit;
}

double EvalTicket::submitted_at() const {
  QARCH_REQUIRE(handle_ != nullptr, "submitted_at() on an empty EvalTicket");
  return handle_->submitted_at;
}

double EvalTicket::finished_at() const {
  QARCH_REQUIRE(handle_ != nullptr, "finished_at() on an empty EvalTicket");
  LockGuard lock(handle_->job->mutex);
  return handle_->job->finished_at;
}

// ---------------------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------------------

EvalService::EvalService(SessionConfig config)
    : state_(std::make_shared<detail::ServiceState>()),
      pool_(config.workers) {
  state_->config = std::move(config);
  {
    LockGuard lock(state_->mutex);
    auto& fallback = state_->clients[0];  // the anonymous-submission queue
    fallback.name = "default";
    fallback.weight = 1.0;
  }
  if (!state_->config.cache_path.empty() && state_->config.result_cache > 0) {
    const auto entries =
        load_result_cache(state_->config.cache_path,
                          detail::kCacheCodeVersion);
    LockGuard lock(state_->mutex);
    // A read-only service (cache_write = false) never rewrites the file, so
    // stashing unloadable entries for re-persistence would be dead memory.
    const bool keep_for_rewrite = state_->config.cache_write;
    for (const CacheEntry& e : entries) {
      // Engine gate: a forced-engine service must not warm-start from
      // results another engine trained (processes sharing one cache file
      // may run different backends). Auto accepts both — whichever engine
      // produced an entry, it is a valid evaluation of that candidate.
      // Filtered entries are kept aside so save_cache() re-persists them
      // instead of erasing the other engine's warm starts.
      if ((state_->config.backend == BackendChoice::Statevector &&
           e.engine != "sv") ||
          (state_->config.backend == BackendChoice::TensorNetwork &&
           e.engine != "tn")) {
        if (keep_for_rewrite) detail::stash_foreign(*state_, e);
        continue;
      }
      if (state_->done_order.size() >= state_->config.result_cache) {
        // Beyond this service's in-memory bound, but still someone else's
        // warm start: preserved across the rewrite like engine-filtered
        // entries.
        if (keep_for_rewrite) detail::stash_foreign(*state_, e);
        continue;
      }
      const std::string key =
          detail::result_key(e.graph_fp, e.result.mixer, e.result.p,
                             e.training_evals) +
          detail::tag_suffix(e.objective, e.hamiltonian);
      if (state_->done_by_key.count(key) > 0) {
        // Same candidate from the other engine (Auto accepted the first
        // twin): not loaded, but preserved across this service's rewrite.
        if (keep_for_rewrite) detail::stash_foreign(*state_, e);
        continue;
      }
      detail::ServiceState::CachedResult cached;
      cached.result = e.result;
      cached.graph_fp = e.graph_fp;
      cached.training_evals = e.training_evals;
      cached.engine = e.engine;
      cached.objective = e.objective;
      cached.hamiltonian = e.hamiltonian;
      state_->done_order.emplace_back(key, std::move(cached));
      state_->done_by_key[key] = std::prev(state_->done_order.end());
      ++state_->stats.cache_loaded;
    }
    state_->foreign_floor = state_->foreign_entries.size();
  }
  if (!state_->config.plan_cache_path.empty()) {
    auto plans = load_plan_cache(state_->config.plan_cache_path,
                                 detail::kPlanCacheCodeVersion);
    {
      LockGuard lock(state_->mutex);
      state_->stats.plans_loaded = plans.size();
    }
    state_->plan_cache->merge(std::move(plans));
  }
  if (!state_->config.checkpoint_path.empty()) {
    // In-flight checkpoints of a previous (killed or drained) process:
    // submit() seeds matching jobs from these, so they resume mid-training.
    auto entries = load_checkpoints(state_->config.checkpoint_path,
                                    detail::kCheckpointCodeVersion);
    LockGuard lock(state_->mutex);
    for (TrainingCheckpoint& ck : entries) {
      const std::string key =
          detail::result_key(ck.graph_fp, ck.mixer, ck.p,
                             ck.training_evals) +
          detail::tag_suffix(ck.objective, ck.hamiltonian);
      state_->checkpoints[key] = std::move(ck);
      ++state_->stats.checkpoints_loaded;
    }
  }
}

EvalService::~EvalService() {
  // Pending queued jobs resolve as Cancelled instead of running to
  // completion; in-flight evaluations finish and land in the result cache.
  // Backoff sleepers wake via sched_cv, promote their delayed jobs, and
  // cancel them the same way.
  state_->stopping.store(true);
  state_->sched_cv.notify_all();
  pool_.raw().wait_idle();
  // Checkpoints persist even when cache_write is off: they are this
  // process's own in-flight state, not a shared warm-start file.
  detail::persist_checkpoints(*state_);
  // result_cache == 0 never loaded the file (nothing to merge back), so
  // writing would truncate a shared cache to nothing — leave it alone.
  const bool write_results = !state_->config.cache_path.empty() &&
                             state_->config.result_cache > 0;
  const bool write_plans = !state_->config.plan_cache_path.empty();
  if (state_->config.cache_write && (write_results || write_plans)) {
    try {
      detail::persist_caches(*state_);
    } catch (const std::exception& e) {
      log::warn("cache not persisted: ", e.what());
    }
  }
}

std::size_t EvalService::save_cache() const {
  detail::persist_checkpoints(*state_);
  return detail::persist_caches(*state_);
}

std::size_t EvalService::drain(double timeout_seconds) {
  std::size_t parked_before = 0;
  {
    LockGuard lock(state_->mutex);
    parked_before = state_->stats.parked;
  }
  // Stop dispatch (pop_next refuses while draining) and let every running
  // slice's token park it at the next safe point; wake backoff sleepers so
  // they notice too.
  state_->draining.store(true);
  state_->sched_cv.notify_all();
  {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(0.0, timeout_seconds)));
    UniqueLock lock(state_->mutex);
    while (!state_->running.empty()) {
      if (state_->drain_cv.wait_until(lock, deadline) ==
          std::cv_status::timeout)
        break;
    }
  }
  // Withdraw everything still queued or delayed — the process is going away;
  // their checkpoints (if any) survive for the next one.
  std::vector<std::shared_ptr<detail::EvalJob>> doomed;
  {
    LockGuard lock(state_->mutex);
    for (auto& client : state_->clients)
      for (auto& entry : client.second.jobs) doomed.push_back(entry.second);
    for (auto& delayed : state_->delayed) doomed.push_back(delayed.job);
    state_->delayed.clear();
  }
  for (const std::shared_ptr<detail::EvalJob>& job : doomed) {
    bool withdrew = false;
    {
      LockGuard lock(job->mutex);
      if (job->status == detail::EvalJob::Status::Queued) {
        job->status = detail::EvalJob::Status::Cancelled;
        job->finished_at = state_->now();
        withdrew = true;
      }
    }
    if (withdrew) detail::finish_cancelled(*state_, job);
  }
  try {
    save_cache();  // persists checkpoints too
  } catch (const std::exception& e) {
    log::warn("drain: cache not persisted: ", e.what());
  }
  std::size_t parked_after = 0;
  {
    LockGuard lock(state_->mutex);
    parked_after = state_->stats.parked;
  }
  return parked_after - parked_before;
}

EvalClient EvalService::register_client(const std::string& name,
                                        double weight) {
  // The lower bound also bounds the scheduler: pop_next grants
  // weight × quantum per rotation, so dispatching one job takes at most
  // ~1/weight rotations of the (mutex-held) round-robin loop.
  QARCH_REQUIRE(weight >= 1e-3 && weight <= 1e3 && std::isfinite(weight),
                "client weight must be in [0.001, 1000]");
  // Ids are unique process-wide, not per service: a stale id — or one from
  // ANOTHER service — can then never collide with a registered client here,
  // so the documented fallback to the default queue actually holds.
  static std::atomic<std::size_t> next_client_id{1};
  LockGuard lock(state_->mutex);
  const std::size_t id = next_client_id.fetch_add(1);
  auto& client = state_->clients[id];
  client.name = name;
  client.weight = weight;
  ++state_->stats.clients_registered;
  return EvalClient(state_, id);
}

// ---------------------------------------------------------------------------
// EvalClient
// ---------------------------------------------------------------------------

EvalClient::~EvalClient() {
  if (!state_) return;
  LockGuard lock(state_->mutex);
  const auto it = state_->clients.find(id_);
  if (it == state_->clients.end()) return;
  if (it->second.jobs.empty())
    state_->clients.erase(it);
  else
    it->second.closed = true;  // reclaimed by the scheduler once drained
}

EvalClient::EvalClient(EvalClient&& other) noexcept
    : state_(std::move(other.state_)), id_(other.id_) {
  other.state_ = nullptr;
  other.id_ = 0;
}

EvalClient& EvalClient::operator=(EvalClient&& other) noexcept {
  if (this != &other) {
    EvalClient released(std::move(*this));  // unregister current, if any
    state_ = std::move(other.state_);
    id_ = other.id_;
    other.state_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

const SessionConfig& EvalService::config() const { return state_->config; }

double EvalService::now() const { return state_->now(); }

EvalTicket EvalService::submit(const graph::Graph& g,
                               const qaoa::MixerSpec& mixer, std::size_t p,
                               const JobOptions& options) {
  QARCH_REQUIRE(p >= 1, "candidate depth p must be >= 1");
  QARCH_REQUIRE(g.num_edges() >= 1, "evaluation graph needs edges");
  const std::size_t evals = options.training_evals > 0
                                ? options.training_evals
                                : state_->config.training_evals;
  const qaoa::ObjectiveSpec objective =
      options.objective ? *options.objective : state_->config.objective;
  const qaoa::HamiltonianSpec hamiltonian =
      options.hamiltonian ? *options.hamiltonian : state_->config.hamiltonian;
  const std::string graph_key = graph_fingerprint(g);
  const std::string key = detail::result_key(graph_key, mixer, p, evals) +
                          detail::spec_suffix(objective, hamiltonian);

  // Timed cross-process cache pollination: at most one submitter per
  // interval re-reads the shared cache file before the lookups below.
  if (detail::cache_refresh_due(*state_))
    detail::refresh_result_cache(*state_);

  {
    LockGuard lock(state_->mutex);
    ++state_->stats.submitted;
  }
  // Built lazily OUTSIDE the service lock (it deep-copies the graph) and
  // reused across retries; dropped if a racing duplicate wins the caches.
  std::shared_ptr<detail::EvalJob> fresh;
  for (;;) {
    std::shared_ptr<detail::EvalJob> attach;
    bool published = false;
    {
      LockGuard lock(state_->mutex);
      // 1. Completed-result cache.
      if (const auto it = state_->done_by_key.find(key);
          it != state_->done_by_key.end()) {
        state_->done_order.splice(state_->done_order.begin(),
                                  state_->done_order, it->second);
        ++state_->stats.cache_hits;
        auto job = std::make_shared<detail::EvalJob>();
        job->key = key;
        job->service = state_;
        {
          // Unpublished job: the lock is uncontended and exists to make the
          // guarded writes provable to the thread-safety analysis.
          LockGuard jlock(job->mutex);
          job->status = detail::EvalJob::Status::Done;
          job->result = it->second->second.result;
          job->result.from_cache = true;
          job->submitted_at = job->finished_at = state_->now();
        }
        auto handle = std::make_shared<detail::TicketHandle>();
        handle->submitted_at = job->submitted_at;
        handle->job = std::move(job);
        handle->hit = true;
        return EvalTicket(std::move(handle));
      }
      // 2. In-flight duplicate.
      if (const auto it = state_->inflight.find(key);
          it != state_->inflight.end()) {
        attach = it->second.lock();
        if (!attach) state_->inflight.erase(it);
      }
      // 3. Fresh job — publish only if one was prepared on a prior pass:
      //    into the in-flight index for dedup AND into its client's
      //    fair-share queue for dispatch.
      if (!attach && fresh) {
        fresh->submitted_at = state_->now();
        fresh->deadline_at =
            options.deadline_seconds > 0.0
                ? fresh->submitted_at + options.deadline_seconds
                : 0.0;
        fresh->max_eval_seconds = options.max_eval_seconds;
        fresh->max_retries = options.max_retries >= 0
                                 ? options.max_retries
                                 : state_->config.eval_retries;
        fresh->retry_backoff = options.retry_backoff_seconds >= 0.0
                                   ? options.retry_backoff_seconds
                                   : state_->config.retry_backoff_seconds;
        // Warm-start from an in-flight checkpoint (parked here earlier, or
        // persisted by a previous process): the dispatching worker resumes
        // mid-training instead of from step 0.
        if (const auto ck = state_->checkpoints.find(key);
            ck != state_->checkpoints.end()) {
          fresh->checkpoint = ck->second.state;
          fresh->checkpoint_engine = ck->second.engine;
          fresh->evals_done = ck->second.state.evaluations;
        }
        state_->inflight[key] = fresh;
        ++state_->stats.cache_misses;
        const auto cit = state_->clients.find(options.client);
        fresh->client_id =
            (cit != state_->clients.end() && !cit->second.closed)
                ? options.client
                : 0;  // unknown / unregistered ids share the default queue
        fresh->priority = options.priority;
        fresh->seq = state_->next_seq++;
        detail::enqueue_job(*state_, fresh);
        published = true;
      }
    }
    if (attach) {
      bool attached = false;
      {
        LockGuard lock(attach->mutex);
        if (attach->status != detail::EvalJob::Status::Cancelled) {
          ++attach->waiters;
          attached = true;
        }
      }
      if (!attached) {
        // Lost a cancellation race: drop the stale in-flight entry (the
        // canceller may not have reached it yet) and resubmit fresh.
        LockGuard lock(state_->mutex);
        const auto it = state_->inflight.find(key);
        if (it != state_->inflight.end() &&
            it->second.lock() == attach)
          state_->inflight.erase(it);
        continue;
      }
      {
        LockGuard lock(state_->mutex);
        ++state_->stats.cache_hits;
      }
      auto handle = std::make_shared<detail::TicketHandle>();
      handle->submitted_at = state_->now();
      handle->job = std::move(attach);
      handle->hit = true;
      return EvalTicket(std::move(handle));
    }
    if (!published) {
      fresh = std::make_shared<detail::EvalJob>();
      fresh->key = key;
      fresh->graph_key = graph_key;
      fresh->graph = g;
      fresh->mixer = mixer;
      fresh->p = p;
      fresh->training_evals = evals;
      fresh->objective = objective;
      fresh->hamiltonian = hamiltonian;
      fresh->service = state_;
      continue;  // retry the cache checks with the job ready to publish
    }
    // A generic drainer, not this job's closure: the fair-share scheduler
    // decides which queued job the freed worker actually picks up. The
    // pool-level priority only influences how soon A drainer runs when the
    // raw pool is shared with other work.
    auto state = state_;
    (void)pool_.apply_async([state] { detail::run_next(state); },
                            options.priority);
    auto handle = std::make_shared<detail::TicketHandle>();
    handle->submitted_at = fresh->submitted_at;
    handle->job = std::move(fresh);
    return EvalTicket(std::move(handle));
  }
}

std::vector<EvalTicket> EvalService::submit_batch(
    const graph::Graph& g, const std::vector<qaoa::MixerSpec>& mixers,
    std::size_t p, const JobOptions& options) {
  std::vector<EvalTicket> tickets;
  tickets.reserve(mixers.size());
  for (const qaoa::MixerSpec& mixer : mixers)
    tickets.push_back(submit(g, mixer, p, options));
  return tickets;
}

std::vector<CandidateResult> EvalService::collect(
    const std::vector<EvalTicket>& tickets) const {
  return collect(tickets, -1.0);
}

std::vector<CandidateResult> EvalService::collect(
    const std::vector<EvalTicket>& tickets, double timeout_seconds) const {
  std::vector<CandidateResult> results;
  results.reserve(tickets.size());
  const double deadline =
      timeout_seconds >= 0.0 ? state_->now() + timeout_seconds : -1.0;
  for (const EvalTicket& t : tickets) {
    // A cancelled ticket is a withdrawn REQUEST, not a batch failure: skip
    // it instead of throwing away every completed result in the batch.
    if (t.cancelled()) continue;
    try {
      const double remaining =
          deadline < 0.0 ? -1.0 : std::max(0.0, deadline - state_->now());
      const CandidateResult* r = t.wait_for(remaining);
      if (r == nullptr) continue;  // batch deadline passed: skip unresolved
      results.push_back(*r);
    } catch (const Error&) {
      // Cancelled concurrently between the check above and the wait: still
      // a skip, not a batch failure — and so is a job that blew ITS OWN
      // deadline (deadlines are opted into per job; the rest of the batch
      // stays collectable, and the caller can probe ticket.expired()).
      // Real evaluation failures (and jobs cancelled by service shutdown)
      // propagate.
      if (t.cancelled() || t.expired()) continue;
      throw;
    }
    // Per-submission accounting on the caller's copy: a ticket that attached
    // to an in-flight duplicate shares the job's result (whose own flag only
    // covers the done-cache path) but did not trigger this evaluation.
    results.back().from_cache = t.cache_hit();
  }
  return results;
}

EvalService::Stats EvalService::stats() const {
  LockGuard lock(state_->mutex);
  return state_->stats;
}

std::vector<EvalService::ClientInfo> EvalService::clients() const {
  std::vector<ClientInfo> infos;
  LockGuard lock(state_->mutex);
  infos.reserve(state_->clients.size());
  for (const auto& [id, queue] : state_->clients) {
    if (queue.closed) continue;  // handle destroyed; queue draining out
    ClientInfo info;
    info.id = id;
    info.name = queue.name;
    info.weight = queue.weight;
    info.queued = queue.jobs.size();
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const ClientInfo& a, const ClientInfo& b) { return a.id < b.id; });
  return infos;
}

std::size_t EvalService::pending() const {
  LockGuard lock(state_->mutex);
  std::size_t queued = 0;
  for (const auto& [id, queue] : state_->clients) queued += queue.jobs.size();
  return queued + state_->delayed.size() + state_->running.size();
}

}  // namespace qarch::search
