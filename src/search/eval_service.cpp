#include "search/eval_service.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <iterator>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "search/report_io.hpp"

namespace qarch::search {

namespace detail {

/// Bumped whenever evaluation semantics change (optimizer, scoring, plan
/// numerics): a persisted result cache written under a different version is
/// ignored wholesale, because its results are no longer reproducible by a
/// fresh run.
constexpr const char* kCacheCodeVersion = "qarch-eval-v5";

/// Version gate of the persisted contraction-plan cache. Independent of the
/// result-cache version: planning decisions stay valid across evaluation-
/// semantics changes (an order is sound for any tensor data), but must be
/// invalidated when the planner's cost model or the network builder's
/// structure changes.
constexpr const char* kPlanCacheCodeVersion = "qarch-plan-v1";

/// One submitted (graph, mixer, p, budget) evaluation. Several tickets may
/// attach to one job (concurrent duplicate submissions); the job runs once.
struct EvalJob {
  enum class Status { Queued, Running, Done, Cancelled, Failed };

  // Immutable after construction.
  std::string key;            ///< result-cache key
  std::string graph_key;      ///< graph-fingerprint prefix of `key`
  graph::Graph graph;
  qaoa::MixerSpec mixer;
  std::size_t p = 1;
  std::size_t training_evals = 0;  ///< resolved budget (never 0)
  std::shared_ptr<ServiceState> service;

  // Scheduler coordinates, fixed when the job is published (guarded by the
  // SERVICE mutex like the queues they index into).
  std::size_t client_id = 0;  ///< fair-share queue this job sits in
  int priority = 0;           ///< intra-client ordering (higher first)
  std::uint64_t seq = 0;      ///< FIFO tiebreak among equal priorities

  // Guarded by `mutex`.
  std::mutex mutex;
  std::condition_variable cv;
  Status status = Status::Queued;
  std::size_t waiters = 1;    ///< live (un-cancelled) tickets attached
  CandidateResult result;
  std::string error;
  double submitted_at = 0.0;  ///< service-clock seconds
  double started_at = 0.0;
  double finished_at = 0.0;
};

/// Per-submission view of a job: cancellation is a property of the TICKET
/// (this submission no longer wants the result), not of the shared job, and
/// a ticket attached to another client's in-flight job keeps its OWN
/// submission timestamp (the shared job records the original submitter's).
struct TicketHandle {
  std::shared_ptr<EvalJob> job;
  std::atomic<bool> abandoned{false};
  bool hit = false;  ///< served from cache / attached to an in-flight run
  double submitted_at = 0.0;  ///< service-clock time of THIS submission
};

/// Everything the workers and tickets share. Owned jointly by the service,
/// the in-flight worker tasks, and every outstanding job, so destruction
/// order never dangles.
struct ServiceState {
  SessionConfig config;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<bool> stopping{false};

  // Shared store of planned contraction orders, injected into every
  // evaluator this service builds (all tensor-network programs of all
  // clients deduplicate planning through it). Internally synchronized —
  // accessed OUTSIDE `mutex`. Loaded from / persisted to
  // config.plan_cache_path when set.
  std::shared_ptr<qtensor::PlanCache> plan_cache =
      std::make_shared<qtensor::PlanCache>();

  std::mutex mutex;  // guards everything below
  EvalService::Stats stats;
  // Result cache: key → result + provenance, LRU-bounded by
  // config.result_cache. graph_fp / training_evals / engine ride along so
  // entries can be persisted without re-parsing the composite key.
  struct CachedResult {
    CandidateResult result;
    std::string graph_fp;
    std::size_t training_evals = 0;
    std::string engine;  ///< resolved engine the run used ("sv" / "tn")
  };
  std::list<std::pair<std::string, CachedResult>> done_order;
  std::unordered_map<std::string,
                     decltype(done_order)::iterator> done_by_key;
  // Persisted entries this service cannot hold in done_order — another
  // engine's results (backend gate), over-capacity leftovers, LRU
  // evictions. Carried so a cache_write shutdown rewrites the WHOLE file
  // instead of destroying warm starts other runs rely on. Deduplicated on
  // insert by (candidate key, engine), so memory tracks the number of
  // DISTINCT persisted candidates, not the eviction churn.
  std::vector<CacheEntry> foreign_entries;
  std::unordered_map<std::string, std::size_t> foreign_by_identity;
  // Stash bound for NEW entries added by LRU eviction: what the file held
  // at load (foreign_floor) plus one result_cache's worth of extras. Keeps
  // rewrite durability for everything that was on disk while capping a long
  // run's memory at O(file + 2 × result_cache) instead of O(evictions).
  std::size_t foreign_floor = 0;
  // In-flight dedup: key → queued/running job.
  std::unordered_map<std::string, std::weak_ptr<EvalJob>> inflight;
  // -- fair-share scheduler --------------------------------------------------
  // Every published job waits in its client's queue; pool workers run
  // generic drainer tasks that pick the next job by deficit-weighted round
  // robin over the active (non-empty) queues, with training_evals as the
  // cost unit. Client 0 is the always-present default queue.
  struct ClientQueue {
    std::string name;
    double weight = 1.0;
    double deficit = 0.0;    ///< budget units this queue may spend
    bool closed = false;     ///< handle destroyed; reclaim once drained
    // (−priority, seq) → job: pop order is priority desc, FIFO among equals.
    std::map<std::pair<int, std::uint64_t>, std::shared_ptr<EvalJob>> jobs;
  };
  std::unordered_map<std::size_t, ClientQueue> clients;
  std::vector<std::size_t> rr_order;  ///< ids with non-empty queues
  std::size_t rr_cursor = 0;          ///< round-robin position in rr_order
  bool rr_granted = false;  ///< cursor's queue already drew this visit's quantum
  std::uint64_t next_seq = 0;
  // Evaluator LRU: (graph fp, engine, budget) → construction slot. The slot
  // indirection lets workers build evaluators OUTSIDE this mutex (an
  // Evaluator constructor runs the exponential maxcut_exact solver) while
  // still guaranteeing one construction per key: racing requesters block on
  // the slot's once-flag, not on the whole service.
  struct EvaluatorSlot {
    std::once_flag once;
    std::shared_ptr<const Evaluator> evaluator;
  };
  std::list<std::pair<std::string, std::shared_ptr<EvaluatorSlot>>>
      eval_order;
  std::unordered_map<std::string,
                     decltype(eval_order)::iterator> eval_by_key;

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }
};

namespace {

/// The composite result-cache key. Every byte of candidate identity that
/// affects the result is in here; the code version gating the PERSISTED form
/// lives at the file level (kCacheCodeVersion).
std::string result_key(const std::string& graph_key,
                       const qaoa::MixerSpec& mixer, std::size_t p,
                       std::size_t evals) {
  return graph_key + '\x1e' + mixer.to_string() + "@p" + std::to_string(p) +
         "@e" + std::to_string(evals);
}

/// Identity of a persisted entry: the result key plus the engine that
/// produced it (one candidate may have an sv and a tn twin on disk).
std::string cache_identity(const CacheEntry& e) {
  return result_key(e.graph_fp, e.result.mixer, e.result.p,
                    e.training_evals) +
         '\x1f' + e.engine;
}

/// Adds (or refreshes) one entry in the to-be-persisted overflow set:
/// entries the in-memory cache cannot hold but the next rewrite must keep.
/// Deduplicated by identity so eviction churn cannot grow it. Requires
/// state.mutex held.
void stash_foreign(ServiceState& state, CacheEntry entry) {
  const std::string id = cache_identity(entry);
  if (const auto it = state.foreign_by_identity.find(id);
      it != state.foreign_by_identity.end()) {
    state.foreign_entries[it->second] = std::move(entry);
  } else {
    state.foreign_by_identity.emplace(id, state.foreign_entries.size());
    state.foreign_entries.push_back(std::move(entry));
  }
}

/// Shared-evaluator lookup. Two workers racing to build the same evaluator
/// must not each get a private plan cache (candidate plans would compile
/// twice, breaking the one-compile-per-(candidate, graph) contract), so a
/// key's first requester constructs inside the slot's call_once while later
/// requesters block on that SLOT only — the service mutex is never held
/// across construction (which runs the exponential maxcut_exact solver).
std::shared_ptr<const Evaluator> evaluator_for(ServiceState& state,
                                               const std::string& graph_key,
                                               const graph::Graph& g,
                                               qaoa::EngineKind engine,
                                               std::size_t training_evals) {
  const std::string key =
      graph_key + '\x1f' +
      (engine == qaoa::EngineKind::Statevector ? "sv" : "tn") + '\x1f' +
      std::to_string(training_evals);
  std::shared_ptr<ServiceState::EvaluatorSlot> slot;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (const auto it = state.eval_by_key.find(key);
        it != state.eval_by_key.end()) {
      state.eval_order.splice(state.eval_order.begin(), state.eval_order,
                              it->second);
      slot = it->second->second;
    } else {
      slot = std::make_shared<ServiceState::EvaluatorSlot>();
      state.eval_order.emplace_front(key, slot);
      state.eval_by_key[key] = state.eval_order.begin();
      const std::size_t capacity =
          std::max<std::size_t>(1, state.config.evaluator_cache);
      while (state.eval_order.size() > capacity) {
        state.eval_by_key.erase(state.eval_order.back().first);
        state.eval_order.pop_back();  // builders hold their own slot ref
      }
    }
  }
  bool built = false;
  std::call_once(slot->once, [&] {
    auto options = state.config.evaluator_options(engine, training_evals);
    // Every evaluator shares the service's plan store: tensor-network
    // programs reuse orders across candidates, clients, and (when
    // plan_cache_path is set) across processes.
    options.energy.qtensor.plan_cache = state.plan_cache;
    slot->evaluator = std::make_shared<const Evaluator>(g, options);
    built = true;
  });
  if (built) {
    std::lock_guard<std::mutex> lock(state.mutex);
    ++state.stats.evaluators_built;
  }
  return slot->evaluator;
}

/// Removes `id` from the round-robin rotation (its queue just drained) and
/// reclaims the queue entirely when its handle was already destroyed.
/// Requires state.mutex held.
void deactivate_client(ServiceState& state, std::size_t id) {
  const auto pos =
      std::find(state.rr_order.begin(), state.rr_order.end(), id);
  if (pos != state.rr_order.end()) {
    const auto index =
        static_cast<std::size_t>(pos - state.rr_order.begin());
    state.rr_order.erase(pos);
    // The cursor keeps pointing at the next not-yet-visited queue; a fresh
    // visit starts there, so the stale grant flag must not carry over.
    if (index < state.rr_cursor)
      --state.rr_cursor;
    else if (index == state.rr_cursor)
      state.rr_granted = false;
  }
  const auto cit = state.clients.find(id);
  if (cit != state.clients.end()) {
    cit->second.deficit = 0.0;  // no banking credit across idle periods
    if (cit->second.closed && id != 0) state.clients.erase(cit);
  }
}

/// Inserts a published job into its client's fair-share queue. Requires
/// state.mutex held; the caller resolved client_id/priority/seq already.
void enqueue_job(ServiceState& state, const std::shared_ptr<EvalJob>& job) {
  ServiceState::ClientQueue& queue = state.clients[job->client_id];
  const bool was_empty = queue.jobs.empty();
  queue.jobs.emplace(std::make_pair(-job->priority, job->seq), job);
  if (was_empty) state.rr_order.push_back(job->client_id);
}

/// Deficit-weighted round robin over the client queues: each visit grants
/// the queue weight × quantum budget units (quantum = the widest head job
/// currently queued, so every rotation lets someone dispatch); a queue keeps
/// dispatching while its deficit covers its head job's training budget, then
/// the cursor moves on. Returns nullptr when nothing is queued — drainers
/// whose job was cancelled (or served by the result cache on resubmission)
/// outnumber the remaining jobs and just retire.
std::shared_ptr<EvalJob> pop_next(ServiceState& state) {
  std::lock_guard<std::mutex> lock(state.mutex);
  if (state.rr_order.empty()) return nullptr;
  double quantum = 1.0;
  for (const std::size_t id : state.rr_order) {
    const ServiceState::ClientQueue& q = state.clients[id];
    quantum = std::max(
        quantum,
        static_cast<double>(q.jobs.begin()->second->training_evals));
  }
  for (;;) {
    if (state.rr_cursor >= state.rr_order.size()) state.rr_cursor = 0;
    const std::size_t id = state.rr_order[state.rr_cursor];
    ServiceState::ClientQueue& queue = state.clients[id];
    const auto head = queue.jobs.begin();
    const double cost = static_cast<double>(head->second->training_evals);
    if (queue.deficit < cost && !state.rr_granted) {
      queue.deficit += queue.weight * quantum;
      state.rr_granted = true;
    }
    if (queue.deficit < cost) {  // grant spent: next queue's turn
      ++state.rr_cursor;
      state.rr_granted = false;
      continue;
    }
    queue.deficit -= cost;
    std::shared_ptr<EvalJob> job = head->second;
    queue.jobs.erase(head);
    if (queue.jobs.empty()) deactivate_client(state, id);
    return job;
  }
}

void finish_cancelled(ServiceState& state, const std::shared_ptr<EvalJob>& job) {
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    // Erase by identity, not by key: a duplicate resubmission may already
    // have replaced this key's in-flight entry with a fresh job.
    const auto it = state.inflight.find(job->key);
    if (it != state.inflight.end() && it->second.lock() == job)
      state.inflight.erase(it);
    ++state.stats.cancelled;
    // Withdraw from the scheduler so no drainer picks the job up (a no-op
    // when a drainer already popped it — run_job rechecks the status).
    const auto cit = state.clients.find(job->client_id);
    if (cit != state.clients.end()) {
      cit->second.jobs.erase(std::make_pair(-job->priority, job->seq));
      if (cit->second.jobs.empty()) deactivate_client(state, job->client_id);
    }
  }
  job->cv.notify_all();
}

/// Worker body: runs one job end to end. `state` is captured by shared_ptr
/// so a draining pool can outlive the EvalService front-end.
void run_job(const std::shared_ptr<ServiceState>& state,
             const std::shared_ptr<EvalJob>& job) {
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    if (job->status != EvalJob::Status::Queued) return;
    if (state->stopping.load()) {
      job->status = EvalJob::Status::Cancelled;
      job->finished_at = state->now();
      lock.unlock();
      finish_cancelled(*state, job);
      return;
    }
    job->status = EvalJob::Status::Running;
    job->started_at = state->now();
  }

  CandidateResult result;
  qaoa::EngineKind engine = qaoa::EngineKind::Statevector;
  bool failed = false;
  std::string error;
  try {
    switch (state->config.backend) {
      case BackendChoice::Statevector:
        engine = qaoa::EngineKind::Statevector;
        break;
      case BackendChoice::TensorNetwork:
        engine = qaoa::EngineKind::TensorNetwork;
        break;
      case BackendChoice::Auto:
        engine = auto_engine_choice(state->config, job->graph, job->mixer,
                                    job->p);
        break;
    }
    const auto evaluator = evaluator_for(*state, job->graph_key, job->graph,
                                         engine, job->training_evals);
    result = evaluator->evaluate(job->mixer, job->p);
    result.queue_seconds = job->started_at - job->submitted_at;
    result.eval_seconds = state->now() - job->started_at;
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->inflight.erase(job->key);
    if (failed) {
      ++state->stats.failed;
    } else {
      ++state->stats.completed;
      if (engine == qaoa::EngineKind::Statevector)
        ++state->stats.picked_statevector;
      else
        ++state->stats.picked_tensornetwork;
      if (state->config.result_cache > 0) {
        ServiceState::CachedResult cached;
        cached.result = result;
        cached.graph_fp = job->graph_key;
        cached.training_evals = job->training_evals;
        cached.engine =
            engine == qaoa::EngineKind::Statevector ? "sv" : "tn";
        state->done_order.emplace_front(job->key, std::move(cached));
        state->done_by_key[job->key] = state->done_order.begin();
        while (state->done_order.size() > state->config.result_cache) {
          // When a rewrite is coming, LRU-evicted results stay eligible for
          // persistence (dropping them would erase warm starts from the
          // shared cache file); without one, hoarding them would just grow
          // memory past the LRU bound for nothing. The stash itself is
          // bounded (foreign_floor + result_cache): a run that churns far
          // past its capacity sheds the excess instead of growing without
          // limit, though refreshing an already-stashed identity is always
          // allowed (it replaces in place).
          ServiceState::CachedResult& old = state->done_order.back().second;
          if (!state->config.cache_path.empty() &&
              state->config.cache_write) {
            CacheEntry evicted;  // moving is fine: `old` is dropped below
            evicted.graph_fp = std::move(old.graph_fp);
            evicted.training_evals = old.training_evals;
            evicted.engine = std::move(old.engine);
            evicted.result = std::move(old.result);
            if (state->foreign_entries.size() <
                    state->foreign_floor + state->config.result_cache ||
                state->foreign_by_identity.count(cache_identity(evicted)) > 0)
              stash_foreign(*state, std::move(evicted));
          }
          state->done_by_key.erase(state->done_order.back().first);
          state->done_order.pop_back();
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->finished_at = state->now();
    if (failed) {
      job->status = EvalJob::Status::Failed;
      job->error = std::move(error);
    } else {
      job->status = EvalJob::Status::Done;
      job->result = std::move(result);
    }
  }
  job->cv.notify_all();
}

/// Drainer body executed by the pool. One drainer is enqueued per published
/// job, but a drainer runs whatever job the fair-share scheduler serves
/// next, not "its own" — surplus drainers (their job was cancelled) find an
/// empty scheduler and retire.
void run_next(const std::shared_ptr<ServiceState>& state) {
  if (const std::shared_ptr<EvalJob> job = pop_next(*state))
    run_job(state, job);
}

}  // namespace
}  // namespace detail

std::string graph_fingerprint(const graph::Graph& g) {
  std::string key;
  key.reserve(16 + g.num_edges() * 24);
  const auto put = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t head[2] = {g.num_vertices(), g.num_edges()};
  put(head, sizeof(head));
  for (const graph::Edge& e : g.edges()) {
    const std::uint64_t uv[2] = {e.u, e.v};
    put(uv, sizeof(uv));
    put(&e.weight, sizeof(e.weight));
  }
  return key;
}

qaoa::EngineKind auto_engine_choice(const SessionConfig& config,
                                    const graph::Graph& g,
                                    const qaoa::MixerSpec& mixer,
                                    std::size_t p) {
  // Small instances: 2^n is cheap and the statevector engine amortizes every
  // edge into one batched sweep.
  if (g.num_vertices() <= config.auto_statevector_qubits)
    return qaoa::EngineKind::Statevector;
  // An entangling mixer (ring two-qubit gates on every qubit) spreads each
  // edge's causal cone across the whole register per layer — no narrow
  // lightcone to exploit.
  for (circuit::GateKind k : mixer.gates)
    if (circuit::is_two_qubit(k)) return qaoa::EngineKind::Statevector;
  // Single-qubit mixers: each of the p cost layers widens an edge's causal
  // cone by exactly one graph hop (diagonal ZZ terms commute), so the
  // lightcone of Z_u Z_v is the p-hop neighbourhood of its WORST edge (max
  // endpoint-degree sum). Contraction cost scales with that, not with n.
  const graph::Edge* worst = nullptr;
  std::size_t worst_degree = 0;
  for (const graph::Edge& e : g.edges()) {
    const std::size_t d = g.degree(e.u) + g.degree(e.v);
    if (worst == nullptr || d > worst_degree) {
      worst = &e;
      worst_degree = d;
    }
  }
  QARCH_CHECK(worst != nullptr, "auto_engine_choice on an edgeless graph");
  std::set<std::size_t> cone{worst->u, worst->v};
  std::vector<std::size_t> frontier{worst->u, worst->v};
  for (std::size_t hop = 0; hop < p && !frontier.empty(); ++hop) {
    std::vector<std::size_t> next;
    for (std::size_t q : frontier)
      for (std::size_t nb : g.neighbors(q))
        if (cone.insert(nb).second) next.push_back(nb);
    frontier = std::move(next);
  }
  return cone.size() <= config.auto_lightcone_qubits
             ? qaoa::EngineKind::TensorNetwork
             : qaoa::EngineKind::Statevector;
}

// ---------------------------------------------------------------------------
// EvalTicket
// ---------------------------------------------------------------------------

const CandidateResult& EvalTicket::wait() const {
  QARCH_REQUIRE(handle_ != nullptr, "wait() on an empty EvalTicket");
  detail::EvalJob& job = *handle_->job;
  std::unique_lock<std::mutex> lock(job.mutex);
  // The abandoned flag is part of the predicate: a concurrent cancel() of a
  // ticket copy must wake and fail a waiter already parked here even when
  // other clients keep the shared job itself alive.
  job.cv.wait(lock, [this, &job] {
    return handle_->abandoned.load() ||
           (job.status != detail::EvalJob::Status::Queued &&
            job.status != detail::EvalJob::Status::Running);
  });
  if (handle_->abandoned.load()) throw Error("EvalTicket was cancelled");
  switch (job.status) {
    case detail::EvalJob::Status::Done:
      return job.result;
    case detail::EvalJob::Status::Failed:
      throw Error("candidate evaluation failed: " + job.error);
    default:
      throw Error("candidate evaluation was cancelled");
  }
}

bool EvalTicket::ready() const {
  QARCH_REQUIRE(handle_ != nullptr, "ready() on an empty EvalTicket");
  if (handle_->abandoned.load()) return true;
  detail::EvalJob& job = *handle_->job;
  std::lock_guard<std::mutex> lock(job.mutex);
  return job.status != detail::EvalJob::Status::Queued &&
         job.status != detail::EvalJob::Status::Running;
}

bool EvalTicket::cancel() {
  QARCH_REQUIRE(handle_ != nullptr, "cancel() on an empty EvalTicket");
  if (handle_->abandoned.load()) return true;
  const std::shared_ptr<detail::EvalJob>& job = handle_->job;
  bool withdrew_job = false;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->status == detail::EvalJob::Status::Running ||
        job->status == detail::EvalJob::Status::Done ||
        job->status == detail::EvalJob::Status::Failed)
      return false;
    // exchange, not store: two threads cancelling copies of the SAME handle
    // both pass the lock-free abandoned check above, and a double decrement
    // here would withdraw a job other live tickets still wait on.
    if (handle_->abandoned.exchange(true)) return true;
    if (job->waiters > 0) --job->waiters;
    if (job->status == detail::EvalJob::Status::Queued &&
        job->waiters == 0) {
      job->status = detail::EvalJob::Status::Cancelled;
      job->finished_at = job->service->now();
      withdrew_job = true;
    }
  }
  if (withdrew_job)
    detail::finish_cancelled(*job->service, job);
  else
    job->cv.notify_all();  // wake waiters parked on this now-abandoned handle
  return true;
}

bool EvalTicket::cancelled() const {
  return handle_ != nullptr && handle_->abandoned.load();
}

bool EvalTicket::cache_hit() const {
  return handle_ != nullptr && handle_->hit;
}

double EvalTicket::submitted_at() const {
  QARCH_REQUIRE(handle_ != nullptr, "submitted_at() on an empty EvalTicket");
  return handle_->submitted_at;
}

double EvalTicket::finished_at() const {
  QARCH_REQUIRE(handle_ != nullptr, "finished_at() on an empty EvalTicket");
  std::lock_guard<std::mutex> lock(handle_->job->mutex);
  return handle_->job->finished_at;
}

// ---------------------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------------------

EvalService::EvalService(SessionConfig config)
    : state_(std::make_shared<detail::ServiceState>()),
      pool_(config.workers) {
  state_->config = std::move(config);
  auto& fallback = state_->clients[0];  // the anonymous-submission queue
  fallback.name = "default";
  fallback.weight = 1.0;
  if (!state_->config.cache_path.empty() && state_->config.result_cache > 0) {
    const auto entries =
        load_result_cache(state_->config.cache_path,
                          detail::kCacheCodeVersion);
    std::lock_guard<std::mutex> lock(state_->mutex);
    // A read-only service (cache_write = false) never rewrites the file, so
    // stashing unloadable entries for re-persistence would be dead memory.
    const bool keep_for_rewrite = state_->config.cache_write;
    for (const CacheEntry& e : entries) {
      // Engine gate: a forced-engine service must not warm-start from
      // results another engine trained (processes sharing one cache file
      // may run different backends). Auto accepts both — whichever engine
      // produced an entry, it is a valid evaluation of that candidate.
      // Filtered entries are kept aside so save_cache() re-persists them
      // instead of erasing the other engine's warm starts.
      if ((state_->config.backend == BackendChoice::Statevector &&
           e.engine != "sv") ||
          (state_->config.backend == BackendChoice::TensorNetwork &&
           e.engine != "tn")) {
        if (keep_for_rewrite) detail::stash_foreign(*state_, e);
        continue;
      }
      if (state_->done_order.size() >= state_->config.result_cache) {
        // Beyond this service's in-memory bound, but still someone else's
        // warm start: preserved across the rewrite like engine-filtered
        // entries.
        if (keep_for_rewrite) detail::stash_foreign(*state_, e);
        continue;
      }
      const std::string key = detail::result_key(
          e.graph_fp, e.result.mixer, e.result.p, e.training_evals);
      if (state_->done_by_key.count(key) > 0) {
        // Same candidate from the other engine (Auto accepted the first
        // twin): not loaded, but preserved across this service's rewrite.
        if (keep_for_rewrite) detail::stash_foreign(*state_, e);
        continue;
      }
      detail::ServiceState::CachedResult cached;
      cached.result = e.result;
      cached.graph_fp = e.graph_fp;
      cached.training_evals = e.training_evals;
      cached.engine = e.engine;
      state_->done_order.emplace_back(key, std::move(cached));
      state_->done_by_key[key] = std::prev(state_->done_order.end());
      ++state_->stats.cache_loaded;
    }
    state_->foreign_floor = state_->foreign_entries.size();
  }
  if (!state_->config.plan_cache_path.empty()) {
    auto plans = load_plan_cache(state_->config.plan_cache_path,
                                 detail::kPlanCacheCodeVersion);
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      state_->stats.plans_loaded = plans.size();
    }
    state_->plan_cache->merge(std::move(plans));
  }
}

EvalService::~EvalService() {
  // Pending queued jobs resolve as Cancelled instead of running to
  // completion; in-flight evaluations finish and land in the result cache.
  state_->stopping.store(true);
  pool_.raw().wait_idle();
  // result_cache == 0 never loaded the file (nothing to merge back), so
  // writing would truncate a shared cache to nothing — leave it alone.
  const bool write_results = !state_->config.cache_path.empty() &&
                             state_->config.result_cache > 0;
  const bool write_plans = !state_->config.plan_cache_path.empty();
  if (state_->config.cache_write && (write_results || write_plans)) {
    try {
      save_cache();
    } catch (const std::exception& e) {
      log::warn("cache not persisted: ", e.what());
    }
  }
}

std::size_t EvalService::save_cache() const {
  // Plan cache first: cheap, and useful even when result persistence is off.
  if (!state_->config.plan_cache_path.empty())
    save_plan_cache(state_->plan_cache->snapshot(),
                    state_->config.plan_cache_path,
                    detail::kPlanCacheCodeVersion);
  if (state_->config.cache_path.empty() ||
      state_->config.result_cache == 0)
    return 0;
  std::vector<CacheEntry> entries;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    entries.reserve(state_->done_order.size() +
                    state_->foreign_entries.size());
    std::set<std::string> seen;
    // done_order is most-recently-used first; persist in that order so a
    // smaller result_cache on reload keeps the hottest entries.
    for (const auto& [key, cached] : state_->done_order) {
      CacheEntry e;
      e.graph_fp = cached.graph_fp;
      e.training_evals = cached.training_evals;
      e.engine = cached.engine;
      e.result = cached.result;
      e.result.from_cache = false;  // provenance is per-submission, not disk
      seen.insert(detail::cache_identity(e));
      entries.push_back(std::move(e));
    }
    // Re-persist what this service could not hold itself — other-backend
    // entries, over-capacity leftovers, LRU evictions (deduplicated on
    // insert). An identity done_order also holds means the candidate was
    // freshly re-evaluated after its eviction: the new result shadows the
    // stale stash.
    for (const CacheEntry& e : state_->foreign_entries)
      if (seen.insert(detail::cache_identity(e)).second) entries.push_back(e);
  }
  save_result_cache(entries, state_->config.cache_path,
                    detail::kCacheCodeVersion);
  return entries.size();
}

EvalClient EvalService::register_client(const std::string& name,
                                        double weight) {
  // The lower bound also bounds the scheduler: pop_next grants
  // weight × quantum per rotation, so dispatching one job takes at most
  // ~1/weight rotations of the (mutex-held) round-robin loop.
  QARCH_REQUIRE(weight >= 1e-3 && weight <= 1e3 && std::isfinite(weight),
                "client weight must be in [0.001, 1000]");
  // Ids are unique process-wide, not per service: a stale id — or one from
  // ANOTHER service — can then never collide with a registered client here,
  // so the documented fallback to the default queue actually holds.
  static std::atomic<std::size_t> next_client_id{1};
  std::lock_guard<std::mutex> lock(state_->mutex);
  const std::size_t id = next_client_id.fetch_add(1);
  auto& client = state_->clients[id];
  client.name = name;
  client.weight = weight;
  ++state_->stats.clients_registered;
  return EvalClient(state_, id);
}

// ---------------------------------------------------------------------------
// EvalClient
// ---------------------------------------------------------------------------

EvalClient::~EvalClient() {
  if (!state_) return;
  std::lock_guard<std::mutex> lock(state_->mutex);
  const auto it = state_->clients.find(id_);
  if (it == state_->clients.end()) return;
  if (it->second.jobs.empty())
    state_->clients.erase(it);
  else
    it->second.closed = true;  // reclaimed by the scheduler once drained
}

EvalClient::EvalClient(EvalClient&& other) noexcept
    : state_(std::move(other.state_)), id_(other.id_) {
  other.state_ = nullptr;
  other.id_ = 0;
}

EvalClient& EvalClient::operator=(EvalClient&& other) noexcept {
  if (this != &other) {
    EvalClient released(std::move(*this));  // unregister current, if any
    state_ = std::move(other.state_);
    id_ = other.id_;
    other.state_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

const SessionConfig& EvalService::config() const { return state_->config; }

double EvalService::now() const { return state_->now(); }

EvalTicket EvalService::submit(const graph::Graph& g,
                               const qaoa::MixerSpec& mixer, std::size_t p,
                               const JobOptions& options) {
  QARCH_REQUIRE(p >= 1, "candidate depth p must be >= 1");
  QARCH_REQUIRE(g.num_edges() >= 1, "evaluation graph needs edges");
  const std::size_t evals = options.training_evals > 0
                                ? options.training_evals
                                : state_->config.training_evals;
  const std::string graph_key = graph_fingerprint(g);
  const std::string key = detail::result_key(graph_key, mixer, p, evals);

  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->stats.submitted;
  }
  // Built lazily OUTSIDE the service lock (it deep-copies the graph) and
  // reused across retries; dropped if a racing duplicate wins the caches.
  std::shared_ptr<detail::EvalJob> fresh;
  for (;;) {
    std::shared_ptr<detail::EvalJob> attach;
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      // 1. Completed-result cache.
      if (const auto it = state_->done_by_key.find(key);
          it != state_->done_by_key.end()) {
        state_->done_order.splice(state_->done_order.begin(),
                                  state_->done_order, it->second);
        ++state_->stats.cache_hits;
        auto job = std::make_shared<detail::EvalJob>();
        job->key = key;
        job->service = state_;
        job->status = detail::EvalJob::Status::Done;
        job->result = it->second->second.result;
        job->result.from_cache = true;
        job->submitted_at = job->finished_at = state_->now();
        auto handle = std::make_shared<detail::TicketHandle>();
        handle->submitted_at = job->submitted_at;
        handle->job = std::move(job);
        handle->hit = true;
        return EvalTicket(std::move(handle));
      }
      // 2. In-flight duplicate.
      if (const auto it = state_->inflight.find(key);
          it != state_->inflight.end()) {
        attach = it->second.lock();
        if (!attach) state_->inflight.erase(it);
      }
      // 3. Fresh job — publish only if one was prepared on a prior pass:
      //    into the in-flight index for dedup AND into its client's
      //    fair-share queue for dispatch.
      if (!attach && fresh) {
        fresh->submitted_at = state_->now();
        state_->inflight[key] = fresh;
        ++state_->stats.cache_misses;
        const auto cit = state_->clients.find(options.client);
        fresh->client_id =
            (cit != state_->clients.end() && !cit->second.closed)
                ? options.client
                : 0;  // unknown / unregistered ids share the default queue
        fresh->priority = options.priority;
        fresh->seq = state_->next_seq++;
        detail::enqueue_job(*state_, fresh);
        published = true;
      }
    }
    if (attach) {
      bool attached = false;
      {
        std::lock_guard<std::mutex> lock(attach->mutex);
        if (attach->status != detail::EvalJob::Status::Cancelled) {
          ++attach->waiters;
          attached = true;
        }
      }
      if (!attached) {
        // Lost a cancellation race: drop the stale in-flight entry (the
        // canceller may not have reached it yet) and resubmit fresh.
        std::lock_guard<std::mutex> lock(state_->mutex);
        const auto it = state_->inflight.find(key);
        if (it != state_->inflight.end() &&
            it->second.lock() == attach)
          state_->inflight.erase(it);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(state_->mutex);
        ++state_->stats.cache_hits;
      }
      auto handle = std::make_shared<detail::TicketHandle>();
      handle->submitted_at = state_->now();
      handle->job = std::move(attach);
      handle->hit = true;
      return EvalTicket(std::move(handle));
    }
    if (!published) {
      fresh = std::make_shared<detail::EvalJob>();
      fresh->key = key;
      fresh->graph_key = graph_key;
      fresh->graph = g;
      fresh->mixer = mixer;
      fresh->p = p;
      fresh->training_evals = evals;
      fresh->service = state_;
      continue;  // retry the cache checks with the job ready to publish
    }
    // A generic drainer, not this job's closure: the fair-share scheduler
    // decides which queued job the freed worker actually picks up. The
    // pool-level priority only influences how soon A drainer runs when the
    // raw pool is shared with other work.
    auto state = state_;
    (void)pool_.apply_async([state] { detail::run_next(state); },
                            options.priority);
    auto handle = std::make_shared<detail::TicketHandle>();
    handle->submitted_at = fresh->submitted_at;
    handle->job = std::move(fresh);
    return EvalTicket(std::move(handle));
  }
}

std::vector<EvalTicket> EvalService::submit_batch(
    const graph::Graph& g, const std::vector<qaoa::MixerSpec>& mixers,
    std::size_t p, const JobOptions& options) {
  std::vector<EvalTicket> tickets;
  tickets.reserve(mixers.size());
  for (const qaoa::MixerSpec& mixer : mixers)
    tickets.push_back(submit(g, mixer, p, options));
  return tickets;
}

std::vector<CandidateResult> EvalService::collect(
    const std::vector<EvalTicket>& tickets) const {
  std::vector<CandidateResult> results;
  results.reserve(tickets.size());
  for (const EvalTicket& t : tickets) {
    // A cancelled ticket is a withdrawn REQUEST, not a batch failure: skip
    // it instead of throwing away every completed result in the batch.
    if (t.cancelled()) continue;
    try {
      results.push_back(t.wait());
    } catch (const Error&) {
      // Cancelled concurrently between the check above and wait(): still a
      // skip, not a batch failure. Real evaluation failures (and jobs
      // cancelled by service shutdown) propagate.
      if (t.cancelled()) continue;
      throw;
    }
    // Per-submission accounting on the caller's copy: a ticket that attached
    // to an in-flight duplicate shares the job's result (whose own flag only
    // covers the done-cache path) but did not trigger this evaluation.
    results.back().from_cache = t.cache_hit();
  }
  return results;
}

EvalService::Stats EvalService::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

}  // namespace qarch::search
