#include "search/eval_service.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <mutex>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"

namespace qarch::search {

namespace detail {

/// One submitted (graph, mixer, p, budget) evaluation. Several tickets may
/// attach to one job (concurrent duplicate submissions); the job runs once.
struct EvalJob {
  enum class Status { Queued, Running, Done, Cancelled, Failed };

  // Immutable after construction.
  std::string key;            ///< result-cache key
  std::string graph_key;      ///< graph-fingerprint prefix of `key`
  graph::Graph graph;
  qaoa::MixerSpec mixer;
  std::size_t p = 1;
  std::size_t training_evals = 0;  ///< resolved budget (never 0)
  std::shared_ptr<ServiceState> service;

  // Guarded by `mutex`.
  std::mutex mutex;
  std::condition_variable cv;
  Status status = Status::Queued;
  std::size_t waiters = 1;    ///< live (un-cancelled) tickets attached
  CandidateResult result;
  std::string error;
  double submitted_at = 0.0;  ///< service-clock seconds
  double started_at = 0.0;
  double finished_at = 0.0;
};

/// Per-submission view of a job: cancellation is a property of the TICKET
/// (this submission no longer wants the result), not of the shared job, and
/// a ticket attached to another client's in-flight job keeps its OWN
/// submission timestamp (the shared job records the original submitter's).
struct TicketHandle {
  std::shared_ptr<EvalJob> job;
  std::atomic<bool> abandoned{false};
  bool hit = false;  ///< served from cache / attached to an in-flight run
  double submitted_at = 0.0;  ///< service-clock time of THIS submission
};

/// Everything the workers and tickets share. Owned jointly by the service,
/// the in-flight worker tasks, and every outstanding job, so destruction
/// order never dangles.
struct ServiceState {
  SessionConfig config;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  std::atomic<bool> stopping{false};

  std::mutex mutex;  // guards everything below
  EvalService::Stats stats;
  // Result cache: key → CandidateResult, LRU-bounded by config.result_cache.
  std::list<std::pair<std::string, CandidateResult>> done_order;
  std::unordered_map<std::string,
                     decltype(done_order)::iterator> done_by_key;
  // In-flight dedup: key → queued/running job.
  std::unordered_map<std::string, std::weak_ptr<EvalJob>> inflight;
  // Evaluator LRU: (graph fp, engine, budget) → construction slot. The slot
  // indirection lets workers build evaluators OUTSIDE this mutex (an
  // Evaluator constructor runs the exponential maxcut_exact solver) while
  // still guaranteeing one construction per key: racing requesters block on
  // the slot's once-flag, not on the whole service.
  struct EvaluatorSlot {
    std::once_flag once;
    std::shared_ptr<const Evaluator> evaluator;
  };
  std::list<std::pair<std::string, std::shared_ptr<EvaluatorSlot>>>
      eval_order;
  std::unordered_map<std::string,
                     decltype(eval_order)::iterator> eval_by_key;

  [[nodiscard]] double now() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  }
};

namespace {

/// Shared-evaluator lookup. Two workers racing to build the same evaluator
/// must not each get a private plan cache (candidate plans would compile
/// twice, breaking the one-compile-per-(candidate, graph) contract), so a
/// key's first requester constructs inside the slot's call_once while later
/// requesters block on that SLOT only — the service mutex is never held
/// across construction (which runs the exponential maxcut_exact solver).
std::shared_ptr<const Evaluator> evaluator_for(ServiceState& state,
                                               const std::string& graph_key,
                                               const graph::Graph& g,
                                               qaoa::EngineKind engine,
                                               std::size_t training_evals) {
  const std::string key =
      graph_key + '\x1f' +
      (engine == qaoa::EngineKind::Statevector ? "sv" : "tn") + '\x1f' +
      std::to_string(training_evals);
  std::shared_ptr<ServiceState::EvaluatorSlot> slot;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    if (const auto it = state.eval_by_key.find(key);
        it != state.eval_by_key.end()) {
      state.eval_order.splice(state.eval_order.begin(), state.eval_order,
                              it->second);
      slot = it->second->second;
    } else {
      slot = std::make_shared<ServiceState::EvaluatorSlot>();
      state.eval_order.emplace_front(key, slot);
      state.eval_by_key[key] = state.eval_order.begin();
      const std::size_t capacity =
          std::max<std::size_t>(1, state.config.evaluator_cache);
      while (state.eval_order.size() > capacity) {
        state.eval_by_key.erase(state.eval_order.back().first);
        state.eval_order.pop_back();  // builders hold their own slot ref
      }
    }
  }
  bool built = false;
  std::call_once(slot->once, [&] {
    slot->evaluator = std::make_shared<const Evaluator>(
        g, state.config.evaluator_options(engine, training_evals));
    built = true;
  });
  if (built) {
    std::lock_guard<std::mutex> lock(state.mutex);
    ++state.stats.evaluators_built;
  }
  return slot->evaluator;
}

void finish_cancelled(ServiceState& state, const std::shared_ptr<EvalJob>& job) {
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    // Erase by identity, not by key: a duplicate resubmission may already
    // have replaced this key's in-flight entry with a fresh job.
    const auto it = state.inflight.find(job->key);
    if (it != state.inflight.end() && it->second.lock() == job)
      state.inflight.erase(it);
    ++state.stats.cancelled;
  }
  job->cv.notify_all();
}

/// Worker body: runs one job end to end. `state` is captured by shared_ptr
/// so a draining pool can outlive the EvalService front-end.
void run_job(const std::shared_ptr<ServiceState>& state,
             const std::shared_ptr<EvalJob>& job) {
  {
    std::unique_lock<std::mutex> lock(job->mutex);
    if (job->status != EvalJob::Status::Queued) return;
    if (state->stopping.load()) {
      job->status = EvalJob::Status::Cancelled;
      job->finished_at = state->now();
      lock.unlock();
      finish_cancelled(*state, job);
      return;
    }
    job->status = EvalJob::Status::Running;
    job->started_at = state->now();
  }

  CandidateResult result;
  qaoa::EngineKind engine = qaoa::EngineKind::Statevector;
  bool failed = false;
  std::string error;
  try {
    switch (state->config.backend) {
      case BackendChoice::Statevector:
        engine = qaoa::EngineKind::Statevector;
        break;
      case BackendChoice::TensorNetwork:
        engine = qaoa::EngineKind::TensorNetwork;
        break;
      case BackendChoice::Auto:
        engine = auto_engine_choice(state->config, job->graph, job->mixer,
                                    job->p);
        break;
    }
    const auto evaluator = evaluator_for(*state, job->graph_key, job->graph,
                                         engine, job->training_evals);
    result = evaluator->evaluate(job->mixer, job->p);
    result.queue_seconds = job->started_at - job->submitted_at;
    result.eval_seconds = state->now() - job->started_at;
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(state->mutex);
    state->inflight.erase(job->key);
    if (failed) {
      ++state->stats.failed;
    } else {
      ++state->stats.completed;
      if (engine == qaoa::EngineKind::Statevector)
        ++state->stats.picked_statevector;
      else
        ++state->stats.picked_tensornetwork;
      if (state->config.result_cache > 0) {
        state->done_order.emplace_front(job->key, result);
        state->done_by_key[job->key] = state->done_order.begin();
        while (state->done_order.size() > state->config.result_cache) {
          state->done_by_key.erase(state->done_order.back().first);
          state->done_order.pop_back();
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    job->finished_at = state->now();
    if (failed) {
      job->status = EvalJob::Status::Failed;
      job->error = std::move(error);
    } else {
      job->status = EvalJob::Status::Done;
      job->result = std::move(result);
    }
  }
  job->cv.notify_all();
}

}  // namespace
}  // namespace detail

std::string graph_fingerprint(const graph::Graph& g) {
  std::string key;
  key.reserve(16 + g.num_edges() * 24);
  const auto put = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t head[2] = {g.num_vertices(), g.num_edges()};
  put(head, sizeof(head));
  for (const graph::Edge& e : g.edges()) {
    const std::uint64_t uv[2] = {e.u, e.v};
    put(uv, sizeof(uv));
    put(&e.weight, sizeof(e.weight));
  }
  return key;
}

qaoa::EngineKind auto_engine_choice(const SessionConfig& config,
                                    const graph::Graph& g,
                                    const qaoa::MixerSpec& mixer,
                                    std::size_t p) {
  // Small instances: 2^n is cheap and the statevector engine amortizes every
  // edge into one batched sweep.
  if (g.num_vertices() <= config.auto_statevector_qubits)
    return qaoa::EngineKind::Statevector;
  // An entangling mixer (ring two-qubit gates on every qubit) spreads each
  // edge's causal cone across the whole register per layer — no narrow
  // lightcone to exploit.
  for (circuit::GateKind k : mixer.gates)
    if (circuit::is_two_qubit(k)) return qaoa::EngineKind::Statevector;
  // Single-qubit mixers: each of the p cost layers widens an edge's causal
  // cone by exactly one graph hop (diagonal ZZ terms commute), so the
  // lightcone of Z_u Z_v is the p-hop neighbourhood of its WORST edge (max
  // endpoint-degree sum). Contraction cost scales with that, not with n.
  const graph::Edge* worst = nullptr;
  std::size_t worst_degree = 0;
  for (const graph::Edge& e : g.edges()) {
    const std::size_t d = g.degree(e.u) + g.degree(e.v);
    if (worst == nullptr || d > worst_degree) {
      worst = &e;
      worst_degree = d;
    }
  }
  QARCH_CHECK(worst != nullptr, "auto_engine_choice on an edgeless graph");
  std::set<std::size_t> cone{worst->u, worst->v};
  std::vector<std::size_t> frontier{worst->u, worst->v};
  for (std::size_t hop = 0; hop < p && !frontier.empty(); ++hop) {
    std::vector<std::size_t> next;
    for (std::size_t q : frontier)
      for (std::size_t nb : g.neighbors(q))
        if (cone.insert(nb).second) next.push_back(nb);
    frontier = std::move(next);
  }
  return cone.size() <= config.auto_lightcone_qubits
             ? qaoa::EngineKind::TensorNetwork
             : qaoa::EngineKind::Statevector;
}

// ---------------------------------------------------------------------------
// EvalTicket
// ---------------------------------------------------------------------------

const CandidateResult& EvalTicket::wait() const {
  QARCH_REQUIRE(handle_ != nullptr, "wait() on an empty EvalTicket");
  detail::EvalJob& job = *handle_->job;
  std::unique_lock<std::mutex> lock(job.mutex);
  // The abandoned flag is part of the predicate: a concurrent cancel() of a
  // ticket copy must wake and fail a waiter already parked here even when
  // other clients keep the shared job itself alive.
  job.cv.wait(lock, [this, &job] {
    return handle_->abandoned.load() ||
           (job.status != detail::EvalJob::Status::Queued &&
            job.status != detail::EvalJob::Status::Running);
  });
  if (handle_->abandoned.load()) throw Error("EvalTicket was cancelled");
  switch (job.status) {
    case detail::EvalJob::Status::Done:
      return job.result;
    case detail::EvalJob::Status::Failed:
      throw Error("candidate evaluation failed: " + job.error);
    default:
      throw Error("candidate evaluation was cancelled");
  }
}

bool EvalTicket::ready() const {
  QARCH_REQUIRE(handle_ != nullptr, "ready() on an empty EvalTicket");
  if (handle_->abandoned.load()) return true;
  detail::EvalJob& job = *handle_->job;
  std::lock_guard<std::mutex> lock(job.mutex);
  return job.status != detail::EvalJob::Status::Queued &&
         job.status != detail::EvalJob::Status::Running;
}

bool EvalTicket::cancel() {
  QARCH_REQUIRE(handle_ != nullptr, "cancel() on an empty EvalTicket");
  if (handle_->abandoned.load()) return true;
  const std::shared_ptr<detail::EvalJob>& job = handle_->job;
  bool withdrew_job = false;
  {
    std::lock_guard<std::mutex> lock(job->mutex);
    if (job->status == detail::EvalJob::Status::Running ||
        job->status == detail::EvalJob::Status::Done ||
        job->status == detail::EvalJob::Status::Failed)
      return false;
    handle_->abandoned.store(true);
    if (job->waiters > 0) --job->waiters;
    if (job->status == detail::EvalJob::Status::Queued &&
        job->waiters == 0) {
      job->status = detail::EvalJob::Status::Cancelled;
      job->finished_at = job->service->now();
      withdrew_job = true;
    }
  }
  if (withdrew_job)
    detail::finish_cancelled(*job->service, job);
  else
    job->cv.notify_all();  // wake waiters parked on this now-abandoned handle
  return true;
}

bool EvalTicket::cancelled() const {
  return handle_ != nullptr && handle_->abandoned.load();
}

bool EvalTicket::cache_hit() const {
  return handle_ != nullptr && handle_->hit;
}

double EvalTicket::submitted_at() const {
  QARCH_REQUIRE(handle_ != nullptr, "submitted_at() on an empty EvalTicket");
  return handle_->submitted_at;
}

double EvalTicket::finished_at() const {
  QARCH_REQUIRE(handle_ != nullptr, "finished_at() on an empty EvalTicket");
  std::lock_guard<std::mutex> lock(handle_->job->mutex);
  return handle_->job->finished_at;
}

// ---------------------------------------------------------------------------
// EvalService
// ---------------------------------------------------------------------------

EvalService::EvalService(SessionConfig config)
    : state_(std::make_shared<detail::ServiceState>()),
      pool_(config.workers) {
  state_->config = std::move(config);
}

EvalService::~EvalService() {
  // Pending queued jobs resolve as Cancelled instead of running to
  // completion; the pool (destroyed after this body) drains them fast.
  state_->stopping.store(true);
}

const SessionConfig& EvalService::config() const { return state_->config; }

double EvalService::now() const { return state_->now(); }

EvalTicket EvalService::submit(const graph::Graph& g,
                               const qaoa::MixerSpec& mixer, std::size_t p,
                               const JobOptions& options) {
  QARCH_REQUIRE(p >= 1, "candidate depth p must be >= 1");
  QARCH_REQUIRE(g.num_edges() >= 1, "evaluation graph needs edges");
  const std::size_t evals = options.training_evals > 0
                                ? options.training_evals
                                : state_->config.training_evals;
  const std::string graph_key = graph_fingerprint(g);
  const std::string key = graph_key + '\x1e' + mixer.to_string() + "@p" +
                          std::to_string(p) + "@e" + std::to_string(evals);

  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ++state_->stats.submitted;
  }
  // Built lazily OUTSIDE the service lock (it deep-copies the graph) and
  // reused across retries; dropped if a racing duplicate wins the caches.
  std::shared_ptr<detail::EvalJob> fresh;
  for (;;) {
    std::shared_ptr<detail::EvalJob> attach;
    bool published = false;
    {
      std::lock_guard<std::mutex> lock(state_->mutex);
      // 1. Completed-result cache.
      if (const auto it = state_->done_by_key.find(key);
          it != state_->done_by_key.end()) {
        state_->done_order.splice(state_->done_order.begin(),
                                  state_->done_order, it->second);
        ++state_->stats.cache_hits;
        auto job = std::make_shared<detail::EvalJob>();
        job->key = key;
        job->service = state_;
        job->status = detail::EvalJob::Status::Done;
        job->result = it->second->second;
        job->result.from_cache = true;
        job->submitted_at = job->finished_at = state_->now();
        auto handle = std::make_shared<detail::TicketHandle>();
        handle->submitted_at = job->submitted_at;
        handle->job = std::move(job);
        handle->hit = true;
        return EvalTicket(std::move(handle));
      }
      // 2. In-flight duplicate.
      if (const auto it = state_->inflight.find(key);
          it != state_->inflight.end()) {
        attach = it->second.lock();
        if (!attach) state_->inflight.erase(it);
      }
      // 3. Fresh job — publish only if one was prepared on a prior pass.
      if (!attach && fresh) {
        fresh->submitted_at = state_->now();
        state_->inflight[key] = fresh;
        ++state_->stats.cache_misses;
        published = true;
      }
    }
    if (attach) {
      bool attached = false;
      {
        std::lock_guard<std::mutex> lock(attach->mutex);
        if (attach->status != detail::EvalJob::Status::Cancelled) {
          ++attach->waiters;
          attached = true;
        }
      }
      if (!attached) {
        // Lost a cancellation race: drop the stale in-flight entry (the
        // canceller may not have reached it yet) and resubmit fresh.
        std::lock_guard<std::mutex> lock(state_->mutex);
        const auto it = state_->inflight.find(key);
        if (it != state_->inflight.end() &&
            it->second.lock() == attach)
          state_->inflight.erase(it);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(state_->mutex);
        ++state_->stats.cache_hits;
      }
      auto handle = std::make_shared<detail::TicketHandle>();
      handle->submitted_at = state_->now();
      handle->job = std::move(attach);
      handle->hit = true;
      return EvalTicket(std::move(handle));
    }
    if (!published) {
      fresh = std::make_shared<detail::EvalJob>();
      fresh->key = key;
      fresh->graph_key = graph_key;
      fresh->graph = g;
      fresh->mixer = mixer;
      fresh->p = p;
      fresh->training_evals = evals;
      fresh->service = state_;
      continue;  // retry the cache checks with the job ready to publish
    }
    auto state = state_;
    auto job = fresh;
    (void)pool_.apply_async([state, job] { detail::run_job(state, job); });
    auto handle = std::make_shared<detail::TicketHandle>();
    handle->submitted_at = fresh->submitted_at;
    handle->job = std::move(fresh);
    return EvalTicket(std::move(handle));
  }
}

std::vector<EvalTicket> EvalService::submit_batch(
    const graph::Graph& g, const std::vector<qaoa::MixerSpec>& mixers,
    std::size_t p, const JobOptions& options) {
  std::vector<EvalTicket> tickets;
  tickets.reserve(mixers.size());
  for (const qaoa::MixerSpec& mixer : mixers)
    tickets.push_back(submit(g, mixer, p, options));
  return tickets;
}

std::vector<CandidateResult> EvalService::collect(
    const std::vector<EvalTicket>& tickets) const {
  std::vector<CandidateResult> results;
  results.reserve(tickets.size());
  for (const EvalTicket& t : tickets) {
    results.push_back(t.wait());
    // Per-submission accounting on the caller's copy: a ticket that attached
    // to an in-flight duplicate shares the job's result (whose own flag only
    // covers the done-cache path) but did not trigger this evaluation.
    results.back().from_cache = t.cache_hit();
  }
  return results;
}

EvalService::Stats EvalService::stats() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->stats;
}

}  // namespace qarch::search
