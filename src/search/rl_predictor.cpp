#include "search/rl_predictor.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qarch::search {

namespace {
constexpr double kMaskValue = -1e9;
}

ReinforcePredictor::ReinforcePredictor(const GateAlphabet& alphabet,
                                       ReinforceConfig config)
    : alphabet_(alphabet),
      config_(config),
      rng_(config.seed),
      policy_(
          // prev-token one-hot (gates + START) ++ position one-hot.
          {alphabet.size() + 1 + config.k_max, config.hidden,
           alphabet.size() + 1},
          {nn::Activation::Tanh, nn::Activation::Identity}, rng_),
      adam_(policy_, nn::AdamConfig{config.learning_rate, 0.9, 0.999, 1e-8}) {
  QARCH_REQUIRE(config_.k_max >= 1, "k_max must be >= 1");
  QARCH_REQUIRE(config_.budget >= 1, "budget must be >= 1");
}

std::vector<double> ReinforcePredictor::features(std::size_t prev_action,
                                                 std::size_t position) const {
  // prev_action in [0, alphabet); value alphabet.size() encodes START.
  std::vector<double> x(alphabet_.size() + 1 + config_.k_max, 0.0);
  QARCH_CHECK(prev_action <= alphabet_.size(), "bad prev token");
  QARCH_CHECK(position < config_.k_max, "bad position");
  x[prev_action] = 1.0;
  x[alphabet_.size() + 1 + position] = 1.0;
  return x;
}

std::vector<double> ReinforcePredictor::action_logits(
    std::size_t prev_action, std::size_t position,
    nn::Mlp::Trace* trace) const {
  std::vector<double> logits =
      policy_.forward(features(prev_action, position), trace);
  if (position == 0) logits[stop_action()] = kMaskValue;  // length >= 1
  return logits;
}

std::vector<Encoding> ReinforcePredictor::propose(std::size_t max_batch) {
  const std::size_t take = std::min(max_batch, config_.budget - proposed_);
  std::vector<Encoding> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    Encoding enc;
    std::size_t prev = alphabet_.size();  // START
    for (std::size_t pos = 0; pos < config_.k_max; ++pos) {
      const std::vector<double> probs =
          nn::softmax(action_logits(prev, pos, nullptr));
      // Inverse-CDF sampling.
      double r = rng_.uniform();
      std::size_t action = probs.size() - 1;
      for (std::size_t a = 0; a < probs.size(); ++a) {
        if (r < probs[a]) {
          action = a;
          break;
        }
        r -= probs[a];
      }
      if (action == stop_action()) break;
      enc.push_back(action);
      prev = action;
    }
    QARCH_CHECK(!enc.empty(), "controller emitted an empty sequence");
    out.push_back(std::move(enc));
  }
  proposed_ += take;
  return out;
}

void ReinforcePredictor::feedback(const std::vector<Encoding>& encodings,
                                  const std::vector<double>& rewards) {
  QARCH_REQUIRE(encodings.size() == rewards.size(),
                "encoding/reward count mismatch");
  if (encodings.empty()) return;

  // Update the EMA baseline first (batch mean keeps it sampling-agnostic).
  double batch_mean = 0.0;
  for (double r : rewards) batch_mean += r;
  batch_mean /= static_cast<double>(rewards.size());
  if (!baseline_init_) {
    baseline_ = batch_mean;
    baseline_init_ = true;
  } else {
    baseline_ = config_.baseline_decay * baseline_ +
                (1.0 - config_.baseline_decay) * batch_mean;
  }

  nn::MlpGradients grads = policy_.make_gradients();
  for (std::size_t s = 0; s < encodings.size(); ++s) {
    const Encoding& enc = encodings[s];
    const double advantage = rewards[s] - baseline_;
    if (advantage == 0.0) continue;

    // Replay the sequence; REINFORCE gradient of -advantage * log π(a|s)
    // w.r.t. logits is advantage * (softmax - onehot(a)).
    std::size_t prev = alphabet_.size();  // START
    for (std::size_t pos = 0; pos <= enc.size() && pos < config_.k_max;
         ++pos) {
      const bool is_stop_step = pos == enc.size();
      const std::size_t action = is_stop_step ? stop_action() : enc[pos];
      nn::Mlp::Trace trace;
      const std::vector<double> probs =
          nn::softmax(action_logits(prev, pos, &trace));
      std::vector<double> dlogits(probs.size());
      for (std::size_t a = 0; a < probs.size(); ++a)
        dlogits[a] = advantage * (probs[a] - (a == action ? 1.0 : 0.0));
      policy_.backward(trace, dlogits, grads);
      if (is_stop_step) break;
      prev = action;
    }
  }
  const double inv = 1.0 / static_cast<double>(encodings.size());
  nn::MlpGradients scaled = policy_.make_gradients();
  scaled.add_scaled(grads, inv);
  adam_.step(policy_, scaled);
}

Encoding ReinforcePredictor::greedy_decode() const {
  Encoding enc;
  std::size_t prev = alphabet_.size();
  for (std::size_t pos = 0; pos < config_.k_max; ++pos) {
    const std::vector<double> logits = action_logits(prev, pos, nullptr);
    std::size_t best = 0;
    for (std::size_t a = 1; a < logits.size(); ++a)
      if (logits[a] > logits[best]) best = a;
    if (best == stop_action()) break;
    enc.push_back(best);
    prev = best;
  }
  QARCH_CHECK(!enc.empty(), "greedy decode emitted an empty sequence");
  return enc;
}

}  // namespace qarch::search
