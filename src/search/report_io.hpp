// Search report persistence: JSON round-trip for SearchReport.
//
// Long HPC searches checkpoint their results; this module serializes every
// evaluated candidate (mixer, depth, energies, trained parameters) so a
// report can be reloaded for later analysis without re-running the search.
#pragma once

#include <string>

#include "common/json.hpp"
#include "optim/optimizer.hpp"
#include "qtensor/plan_cache.hpp"
#include "search/engine.hpp"

namespace qarch::search {

/// Serializes a candidate to a JSON object.
json::Value candidate_to_json(const CandidateResult& candidate);

/// Parses a candidate from JSON (inverse of candidate_to_json).
CandidateResult candidate_from_json(const json::Value& value);

/// Serializes a whole report (best, all candidates, timings, rejections).
json::Value report_to_json(const SearchReport& report);

/// Parses a report from JSON (inverse of report_to_json).
SearchReport report_from_json(const json::Value& value);

/// Writes a report to `path` as pretty-printed JSON.
void save_report(const SearchReport& report, const std::string& path);

/// Loads a report previously written by save_report.
SearchReport load_report(const std::string& path);

// -- EvalService persistent result cache -------------------------------------

/// One persisted candidate-result cache entry. Together with the mixer and
/// depth riding inside `result`, the on-disk key is (graph fingerprint,
/// mixer encoding, p, training budget, engine, cache code version) — the
/// fingerprint is raw bytes here and hex-encoded on disk.
struct CacheEntry {
  std::string graph_fp;             ///< raw graph_fingerprint() bytes
  std::size_t training_evals = 0;   ///< COBYLA budget the result was run at
  std::string engine;               ///< resolved engine ("sv" / "tn")
  std::string objective;            ///< ObjectiveSpec::tag(), "" = default
  std::string hamiltonian;          ///< HamiltonianSpec::tag(), "" = default
  CandidateResult result;
};

/// Serializes cache entries under the given cache code version.
json::Value result_cache_to_json(const std::vector<CacheEntry>& entries,
                                 const std::string& code_version);

/// Parses cache entries. A file written under a DIFFERENT code version
/// yields no entries (results are not comparable across evaluation-semantics
/// changes); individually malformed entries are skipped, not fatal.
std::vector<CacheEntry> result_cache_from_json(const json::Value& value,
                                               const std::string& code_version);

/// Atomically rewrites `path` (tmp file + rename) with the given entries.
/// Throws Error when the file cannot be written.
void save_result_cache(const std::vector<CacheEntry>& entries,
                       const std::string& path,
                       const std::string& code_version);

/// Loads a cache file. Corruption-tolerant: a missing, unparsable, or
/// version-mismatched file yields an empty vector (warm starts are an
/// optimization, never a correctness requirement).
std::vector<CacheEntry> load_result_cache(const std::string& path,
                                          const std::string& code_version);

// -- persistent contraction-plan cache ----------------------------------------
//
// Same file discipline as the result cache — atomic tmp+rename writes,
// corruption-tolerant version-gated loads — but for qtensor planning
// decisions: (lightcone shape key, network structure hash) -> elimination
// order. Reloading an order is sound regardless of tensor data; the guard
// hash only protects against applying an order to a structurally different
// network.

/// Serializes plan-cache entries under the given cache code version.
json::Value plan_cache_to_json(const std::vector<qtensor::CachedPlan>& plans,
                               const std::string& code_version);

/// Parses plan-cache entries; version mismatch yields no entries and
/// individually malformed entries are skipped.
std::vector<qtensor::CachedPlan> plan_cache_from_json(
    const json::Value& value, const std::string& code_version);

/// Atomically rewrites `path` (tmp file + rename) with the given plans.
void save_plan_cache(const std::vector<qtensor::CachedPlan>& plans,
                     const std::string& path, const std::string& code_version);

/// Loads a plan-cache file; missing/corrupt/mismatched files yield {}.
std::vector<qtensor::CachedPlan> load_plan_cache(
    const std::string& path, const std::string& code_version);

// -- in-flight training checkpoints -------------------------------------------
//
// Same file discipline again (atomic fsync'd tmp+rename, version-gated,
// corruption-tolerant load) for the evaluation service's in-flight training
// checkpoints: a killed process restarted on the same checkpoint_path
// resumes every parked/running candidate mid-training instead of from
// step 0. A checkpoint is tiny — theta-sized vectors plus optimizer
// counters — so persisting on every capture is cheap.

/// Serializes an opaque optimizer state. Doubles round-trip bit-exactly
/// (%.17g); non-finite values (e.g. an untouched +inf incumbent) and 64-bit
/// words cross as strings.
json::Value optim_state_to_json(const optim::OptimState& state);

/// Parses an optimizer state (inverse of optim_state_to_json).
optim::OptimState optim_state_from_json(const json::Value& value);

/// One persisted in-flight training run, keyed like the result cache —
/// (graph fingerprint, mixer, p, budget, engine) — plus the optimizer state
/// that resumes it.
struct TrainingCheckpoint {
  std::string graph_fp;            ///< raw graph_fingerprint() bytes
  qaoa::MixerSpec mixer;
  std::size_t p = 0;
  std::size_t training_evals = 0;  ///< full budget of the checkpointed run
  std::string engine;              ///< resolved engine ("sv" / "tn")
  std::string objective;           ///< ObjectiveSpec::tag(), "" = default
  std::string hamiltonian;         ///< HamiltonianSpec::tag(), "" = default
  optim::OptimState state;
};

/// Serializes checkpoints under the given checkpoint code version.
json::Value checkpoints_to_json(const std::vector<TrainingCheckpoint>& entries,
                                const std::string& code_version);

/// Parses checkpoints; version mismatch yields no entries and individually
/// malformed entries are skipped.
std::vector<TrainingCheckpoint> checkpoints_from_json(
    const json::Value& value, const std::string& code_version);

/// Atomically rewrites `path` with the given checkpoints.
void save_checkpoints(const std::vector<TrainingCheckpoint>& entries,
                      const std::string& path,
                      const std::string& code_version);

/// Loads a checkpoint file; missing/corrupt/mismatched files yield {}.
std::vector<TrainingCheckpoint> load_checkpoints(
    const std::string& path, const std::string& code_version);

}  // namespace qarch::search
