// Search report persistence: JSON round-trip for SearchReport.
//
// Long HPC searches checkpoint their results; this module serializes every
// evaluated candidate (mixer, depth, energies, trained parameters) so a
// report can be reloaded for later analysis without re-running the search.
#pragma once

#include <string>

#include "common/json.hpp"
#include "search/engine.hpp"

namespace qarch::search {

/// Serializes a candidate to a JSON object.
json::Value candidate_to_json(const CandidateResult& candidate);

/// Parses a candidate from JSON (inverse of candidate_to_json).
CandidateResult candidate_from_json(const json::Value& value);

/// Serializes a whole report (best, all candidates, timings, rejections).
json::Value report_to_json(const SearchReport& report);

/// Parses a report from JSON (inverse of report_to_json).
SearchReport report_from_json(const json::Value& value);

/// Writes a report to `path` as pretty-printed JSON.
void save_report(const SearchReport& report, const std::string& path);

/// Loads a report previously written by save_report.
SearchReport load_report(const std::string& path);

}  // namespace qarch::search
