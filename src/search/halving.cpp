#include "search/halving.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace qarch::search {

HalvingReport successive_halving(EvalService& service, const graph::Graph& g,
                                 std::vector<qaoa::MixerSpec> candidates,
                                 const HalvingConfig& config) {
  QARCH_REQUIRE(!candidates.empty(), "no candidates to halve");
  QARCH_REQUIRE(config.keep_fraction > 0.0 && config.keep_fraction < 1.0,
                "keep_fraction must be in (0, 1)");
  QARCH_REQUIRE(config.budget_growth >= 1.0, "budget must not shrink");
  QARCH_REQUIRE(config.initial_budget >= 5, "initial budget too small");

  HalvingReport report;
  std::size_t budget = config.initial_budget;
  double first_submit = std::numeric_limits<double>::infinity();
  double last_finish = 0.0;

  // One fair-share queue for the whole halving sweep: the scheduler's
  // deficit round robin is what keeps other clients' floods from starving
  // it (and vice versa). Rounds also ride at a rising JobOptions::priority —
  // inert while this client's rounds stay strictly sequential, but it keeps
  // late (small, deep) rounds ahead of earlier leftovers if the queue ever
  // holds more than one round (e.g. a pipelined submit_batch variant), and
  // it orders the service's drainers against other work sharing the raw
  // pool.
  EvalClient client = service.register_client("halving", config.client_weight);
  int round_index = 0;

  while (true) {
    // Evaluate the current cohort at the current budget: one service
    // submission per candidate, with the round's budget riding along.
    JobOptions job;
    job.training_evals = budget;
    job.client = client.id();
    job.priority = round_index++;
    const std::vector<EvalTicket> tickets =
        service.submit_batch(g, candidates, config.p, job);
    const std::vector<CandidateResult> results = service.collect(tickets);
    // The ranking below pairs results[i] with candidates[i] positionally;
    // collect() skips cancelled tickets, so a shorter result vector would
    // silently mis-attribute every survivor after the gap. Nobody can
    // cancel these driver-owned tickets today — keep it that way loudly.
    QARCH_CHECK(results.size() == candidates.size(),
                "halving round lost results (cancelled mid-round?)");
    for (const EvalTicket& t : tickets) {
      first_submit = std::min(first_submit, t.submitted_at());
      last_finish = std::max(last_finish, t.finished_at());
    }
    // Only FRESH runs spend compute: a cache-served survivor (warm-started
    // process, or a budget_growth == 1.0 round re-scoring at an unchanged
    // budget) must not re-add its original objective calls to the bill.
    for (const auto& r : results)
      if (!r.from_cache) report.total_evaluations += r.evaluations;

    // Rank by trained energy, descending.
    std::vector<std::size_t> order(results.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return results[a].energy > results[b].energy;
    });

    HalvingRound round;
    round.budget = budget;
    round.candidates_in = candidates.size();

    if (candidates.size() == 1) {
      round.candidates_out = 1;
      report.rounds.push_back(round);
      report.best = results[order[0]];
      break;
    }

    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               config.keep_fraction * static_cast<double>(candidates.size()))));
    round.candidates_out = keep;
    report.rounds.push_back(round);

    std::vector<qaoa::MixerSpec> survivors;
    survivors.reserve(keep);
    for (std::size_t k = 0; k < keep; ++k)
      survivors.push_back(candidates[order[k]]);
    candidates = std::move(survivors);
    budget = static_cast<std::size_t>(
        std::ceil(static_cast<double>(budget) * config.budget_growth));
  }

  report.seconds = last_finish - first_submit;
  return report;
}

HalvingReport successive_halving(const graph::Graph& g,
                                 std::vector<qaoa::MixerSpec> candidates,
                                 const HalvingConfig& config) {
  EvalService service(config.session);
  return successive_halving(service, g, std::move(candidates), config);
}

}  // namespace qarch::search
