#include "search/halving.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "parallel/task_pool.hpp"

namespace qarch::search {

HalvingReport successive_halving(const graph::Graph& g,
                                 std::vector<qaoa::MixerSpec> candidates,
                                 const HalvingConfig& config) {
  QARCH_REQUIRE(!candidates.empty(), "no candidates to halve");
  QARCH_REQUIRE(config.keep_fraction > 0.0 && config.keep_fraction < 1.0,
                "keep_fraction must be in (0, 1)");
  QARCH_REQUIRE(config.budget_growth >= 1.0, "budget must not shrink");
  QARCH_REQUIRE(config.initial_budget >= 5, "initial budget too small");

  Timer timer;
  HalvingReport report;
  std::size_t budget = config.initial_budget;

  while (true) {
    // Evaluate the current cohort at the current budget.
    EvaluatorOptions opts = config.evaluator;
    opts.cobyla.max_evals = budget;
    const Evaluator evaluator(g, opts);

    std::vector<CandidateResult> results(candidates.size());
    if (config.outer_workers > 1) {
      parallel::TaskPool pool(config.outer_workers);
      std::vector<std::tuple<std::size_t>> idx;
      for (std::size_t i = 0; i < candidates.size(); ++i) idx.emplace_back(i);
      results = pool.starmap_async(
          [&](std::size_t i) {
            return evaluator.evaluate(candidates[i], config.p);
          },
          idx).get();
    } else {
      for (std::size_t i = 0; i < candidates.size(); ++i)
        results[i] = evaluator.evaluate(candidates[i], config.p);
    }
    for (const auto& r : results) report.total_evaluations += r.evaluations;

    // Rank by trained energy, descending.
    std::vector<std::size_t> order(results.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return results[a].energy > results[b].energy;
    });

    HalvingRound round;
    round.budget = budget;
    round.candidates_in = candidates.size();

    if (candidates.size() == 1) {
      round.candidates_out = 1;
      report.rounds.push_back(round);
      report.best = results[order[0]];
      break;
    }

    const std::size_t keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               config.keep_fraction * static_cast<double>(candidates.size()))));
    round.candidates_out = keep;
    report.rounds.push_back(round);

    std::vector<qaoa::MixerSpec> survivors;
    survivors.reserve(keep);
    for (std::size_t k = 0; k < keep; ++k)
      survivors.push_back(candidates[order[k]]);
    candidates = std::move(survivors);
    budget = static_cast<std::size_t>(
        std::ceil(static_cast<double>(budget) * config.budget_growth));
  }

  report.seconds = timer.seconds();
  return report;
}

}  // namespace qarch::search
