#include "search/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/error.hpp"

namespace qarch::search {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic uniform in [0, 1) from (key, seed, attempt, salt). Pure —
/// the verdict for a given evaluation never depends on thread interleaving.
double verdict(const std::string& key, std::uint64_t seed,
               std::uint64_t attempt, std::uint64_t salt) {
  std::uint64_t h = splitmix64(seed ^ salt);
  for (unsigned char c : key) h = splitmix64(h ^ c);
  h = splitmix64(h ^ attempt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_double(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    QARCH_REQUIRE(used == s.size(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    QARCH_REQUIRE(false, "QARCH_FAULT: bad number for " + what + ": " + s);
  }
  return 0.0;
}

std::uint64_t parse_u64(const std::string& s, const std::string& what) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(s, &used);
    QARCH_REQUIRE(used == s.size(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    QARCH_REQUIRE(false, "QARCH_FAULT: bad integer for " + what + ": " + s);
  }
  return 0;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    QARCH_REQUIRE(eq != std::string::npos,
                  "QARCH_FAULT: expected key=value, got: " + item);
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "fail") {
      plan.fail_rate = parse_double(value, "fail");
      QARCH_REQUIRE(plan.fail_rate >= 0.0 && plan.fail_rate <= 1.0,
                    "QARCH_FAULT: fail rate must be in [0, 1]");
    } else if (key == "seed") {
      plan.seed = parse_u64(value, "seed");
    } else if (key == "failfirst") {
      plan.fail_first = parse_u64(value, "failfirst");
    } else if (key == "delay") {
      // delay=<seconds>[@<rate>], rate defaults to 1.
      const std::size_t at = value.find('@');
      if (at == std::string::npos) {
        plan.delay_seconds = parse_double(value, "delay");
        plan.delay_rate = 1.0;
      } else {
        plan.delay_seconds = parse_double(value.substr(0, at), "delay");
        plan.delay_rate = parse_double(value.substr(at + 1), "delay rate");
      }
      QARCH_REQUIRE(plan.delay_seconds >= 0.0, "QARCH_FAULT: negative delay");
      QARCH_REQUIRE(plan.delay_rate >= 0.0 && plan.delay_rate <= 1.0,
                    "QARCH_FAULT: delay rate must be in [0, 1]");
    } else if (key == "drop") {
      plan.drop_rate = parse_double(value, "drop");
      QARCH_REQUIRE(plan.drop_rate >= 0.0 && plan.drop_rate <= 1.0,
                    "QARCH_FAULT: drop rate must be in [0, 1]");
    } else if (key == "crash") {
      // crash=<point>[:<nth visit>], visit defaults to 1.
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        plan.crash_point = value;
        plan.crash_after = 1;
      } else {
        plan.crash_point = value.substr(0, colon);
        plan.crash_after = parse_u64(value.substr(colon + 1), "crash visit");
      }
      QARCH_REQUIRE(!plan.crash_point.empty() && plan.crash_after >= 1,
                    "QARCH_FAULT: crash needs point[:visit >= 1]");
    } else {
      QARCH_REQUIRE(false, "QARCH_FAULT: unknown key: " + key);
    }
  }
  return plan;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  FaultPlan plan;
  if (const char* env = std::getenv("QARCH_FAULT"); env != nullptr && *env)
    plan = parse_fault_plan(env);
  configure(plan);
}

void FaultInjector::configure(const FaultPlan& plan) {
  LockGuard lock(mutex_);
  plan_ = plan;
  armed_.store(plan.enabled(), std::memory_order_release);
  failures_ = 0;
  delays_ = 0;
  drops_ = 0;
  point_visits_.clear();
}

void FaultInjector::reset() {
  FaultPlan plan;
  if (const char* env = std::getenv("QARCH_FAULT"); env != nullptr && *env)
    plan = parse_fault_plan(env);
  configure(plan);
}

FaultPlan FaultInjector::plan() const {
  LockGuard lock(mutex_);
  return plan_;
}

void FaultInjector::on_evaluation(const std::string& key,
                                  std::uint64_t attempt) {
  // Fast path: plan_ is only readable under mutex_ (configure() can swap it
  // from another thread), but the unset-QARCH_FAULT case must stay one
  // branch per evaluation — the armed_ atomic carries exactly that bit.
  if (!armed_.load(std::memory_order_acquire)) return;
  FaultPlan plan;
  {
    LockGuard lock(mutex_);
    plan = plan_;
  }
  if (plan.delay_rate > 0.0 && plan.delay_seconds > 0.0 &&
      verdict(key, plan.seed, attempt, 0x5eedDE1AULL) < plan.delay_rate) {
    {
      LockGuard lock(mutex_);
      ++delays_;
    }
    backoff_sleep(plan.delay_seconds);
  }
  const bool fail_deterministic = attempt < plan.fail_first;
  const bool fail_seeded =
      plan.fail_rate > 0.0 &&
      verdict(key, plan.seed, attempt, 0x5eedFA11ULL) < plan.fail_rate;
  if (fail_deterministic || fail_seeded) {
    {
      LockGuard lock(mutex_);
      ++failures_;
    }
    throw FaultInjected("injected evaluation failure (attempt " +
                        std::to_string(attempt) + ")");
  }
}

void FaultInjector::at_point(const char* point) {
  if (!armed_.load(std::memory_order_acquire)) return;
  std::uint64_t visit = 0;
  std::uint64_t crash_after = 0;
  {
    LockGuard lock(mutex_);
    if (plan_.crash_point.empty() || plan_.crash_point != point) return;
    visit = ++point_visits_[plan_.crash_point];
    crash_after = plan_.crash_after;
  }
  // Simulated SIGKILL: no destructors, no atexit, no flushing — exactly the
  // hole the checkpoint/cache durability work has to survive.
  if (visit == crash_after) std::_Exit(137);
}

bool FaultInjector::drop_connection(std::uint64_t conn_id) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  FaultPlan plan;
  {
    LockGuard lock(mutex_);
    plan = plan_;
  }
  if (plan.drop_rate <= 0.0) return false;
  // Same pure (plan, ordinal) discipline as the evaluation verdicts: the
  // Nth accepted connection either always or never drops for a given plan.
  if (verdict("conn", plan.seed, conn_id, 0x5eedD509ULL) >= plan.drop_rate)
    return false;
  LockGuard lock(mutex_);
  ++drops_;
  return true;
}

std::uint64_t FaultInjector::injected_failures() const {
  LockGuard lock(mutex_);
  return failures_;
}

std::uint64_t FaultInjector::injected_delays() const {
  LockGuard lock(mutex_);
  return delays_;
}

std::uint64_t FaultInjector::dropped_connections() const {
  LockGuard lock(mutex_);
  return drops_;
}

void backoff_sleep(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace qarch::search
