// GET_COMBINATIONS of Algorithm 1: gate sequences of length k over A_R.
//
// The paper enumerates "possible gate combinations" per (p, k); with
// |A_R| = 5 and k = 1..4 it reports 2500 circuit combinations over the four
// depths — i.e. ordered sequences with repetition (5^k per k, 625 at k = 4).
// We support both enumeration semantics:
//   * Product      — ordered sequences with repetition, 5^k   (paper count)
//   * Permutation  — ordered sequences without repetition, P(5, k)
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "qaoa/mixer.hpp"
#include "search/alphabet.hpp"

namespace qarch::search {

/// Enumeration semantics for GET_COMBINATIONS.
enum class CombinationMode { Product, Permutation };

/// Number of sequences of length k under the given mode.
std::size_t combination_count(std::size_t alphabet_size, std::size_t k,
                              CombinationMode mode);

/// All gate sequences of length exactly k (GET_COMBINATIONS(A_R, k)).
std::vector<qaoa::MixerSpec> get_combinations(const GateAlphabet& alphabet,
                                              std::size_t k,
                                              CombinationMode mode);

/// All sequences of length 1..k_max, concatenated in (k, lexicographic)
/// order — the full candidate space of one depth iteration of Algorithm 1.
std::vector<qaoa::MixerSpec> all_combinations(const GateAlphabet& alphabet,
                                              std::size_t k_max,
                                              CombinationMode mode);

/// A uniformly random sequence with length drawn uniformly from 1..k_max
/// (random-search predictor's proposal distribution).
qaoa::MixerSpec random_combination(const GateAlphabet& alphabet,
                                   std::size_t k_max, CombinationMode mode,
                                   Rng& rng);

}  // namespace qarch::search
