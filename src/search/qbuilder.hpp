// QBuilder: the Quantum Builder module of QArchSearch.
//
// Accepts the predictor's encoded representation (a sequence of alphabet
// indices) and materializes the concrete quantum circuits: the mixer layer
// and the full QAOA ansatz for a graph (the paper generates Qiskit circuits;
// our circuit IR plays that role).
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"
#include "qaoa/ansatz.hpp"
#include "search/alphabet.hpp"

namespace qarch::search {

/// Predictor-side circuit encoding: indices into the gate alphabet.
using Encoding = std::vector<std::size_t>;

/// Builds circuits from predictor encodings against a fixed alphabet.
class QBuilder {
 public:
  explicit QBuilder(GateAlphabet alphabet);

  [[nodiscard]] const GateAlphabet& alphabet() const { return alphabet_; }

  /// Decodes an index sequence into a MixerSpec (validates indices).
  [[nodiscard]] qaoa::MixerSpec decode(const Encoding& encoding) const;

  /// Encodes a MixerSpec back into alphabet indices (inverse of decode;
  /// throws if a gate is not in the alphabet).
  [[nodiscard]] Encoding encode(const qaoa::MixerSpec& spec) const;

  /// BUILD_MIXER_CKT: the standalone mixer circuit on `num_qubits` qubits.
  [[nodiscard]] circuit::Circuit build_mixer(const Encoding& encoding,
                                             std::size_t num_qubits) const;

  /// BUILD_QAOA_CKT: the p-layer ansatz for `g` with the decoded mixer.
  [[nodiscard]] circuit::Circuit build_qaoa(const Encoding& encoding,
                                            const graph::Graph& g,
                                            std::size_t p) const;

 private:
  GateAlphabet alphabet_;
};

}  // namespace qarch::search
