// Deterministic fault injection for the evaluation service.
//
// Robustness paths (retry with backoff, park/resume, crash-safe restart)
// only stay healthy if something exercises them continuously. This harness
// injects three kinds of trouble, all seeded and reproducible:
//
//   * evaluation FAILURES — a seeded hash of (job key, attempt) fails a
//     fraction of evaluations, or `fail_first=N` fails every job's first N
//     attempts (deterministic retry tests);
//   * DELAYS — a seeded fraction of evaluations sleeps before running,
//     shaking out timeout/deadline handling;
//   * CRASH POINTS — the Nth visit to a named program point (e.g. the
//     "checkpoint" persist) hard-kills the process with _Exit(137),
//     simulating a SIGKILL for the crash-resume tests and CI smoke.
//
// Activated by the QARCH_FAULT environment variable (read once, at first
// use) or programmatically via FaultInjector::configure(). Grammar —
// comma-separated key=value:
//
//   QARCH_FAULT="fail=0.1,seed=7"            10% seeded failures
//   QARCH_FAULT="failfirst=2"                first 2 attempts of every job fail
//   QARCH_FAULT="delay=0.01@0.5"             50% of evals sleep 10ms
//   QARCH_FAULT="crash=checkpoint:3"         _Exit(137) on 3rd checkpoint write
//   QARCH_FAULT="drop=0.3,seed=7"            qarchd drops 30% of connections
//
// The wire-level faults extend the same harness over the qarchd daemon:
// `drop=p` makes the server abandon a seeded fraction of accepted
// connections after reading the request and before answering (the client
// sees a clean TCP close mid-exchange and must retry), and
// `crash=server_response:N` kills the daemon between a response's header
// and body sends — a half-written response on the wire, exactly what a
// retrying client and a restarted daemon have to converge through.
//
// When QARCH_FAULT is unset the injector is inert: one branch per
// evaluation, nothing else.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/annotations.hpp"

namespace qarch::search {

/// Thrown for an injected evaluation failure (caught by the service's retry
/// machinery like any real evaluation error).
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what) : std::runtime_error(what) {}
};

/// Parsed injection plan. Default-constructed = no faults.
struct FaultPlan {
  double fail_rate = 0.0;       ///< seeded per-(key, attempt) failure prob
  std::uint64_t seed = 0;       ///< stream seed for fail/delay verdicts
  std::uint64_t fail_first = 0; ///< fail every job's first N attempts
  double delay_seconds = 0.0;   ///< injected sleep length
  double delay_rate = 0.0;      ///< fraction of evaluations delayed
  std::string crash_point;      ///< named point that kills the process
  std::uint64_t crash_after = 0;///< which visit to the point crashes (1-based)
  double drop_rate = 0.0;       ///< fraction of server connections dropped

  [[nodiscard]] bool enabled() const {
    return fail_rate > 0.0 || fail_first > 0 ||
           (delay_rate > 0.0 && delay_seconds > 0.0) ||
           !crash_point.empty() || drop_rate > 0.0;
  }
};

/// Parses the QARCH_FAULT grammar. Throws qarch::Error on malformed specs.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// Process-wide injector. All verdicts are pure functions of
/// (plan, key, attempt) except crash-point counting, which is a mutex-held
/// visit counter — so concurrent workers see one deterministic Nth visit.
class FaultInjector {
 public:
  /// The process singleton; reads QARCH_FAULT once on first access.
  static FaultInjector& instance();

  /// Replaces the active plan (tests). Resets all counters.
  void configure(const FaultPlan& plan);

  /// Back to "whatever QARCH_FAULT says" with fresh counters.
  void reset();

  /// Snapshot of the active plan (by value: configure() may swap the plan
  /// concurrently, so handing out a reference would race).
  [[nodiscard]] FaultPlan plan() const;

  /// Call before evaluating `key` for the given 0-based attempt. May sleep
  /// (injected delay) and may throw FaultInjected.
  void on_evaluation(const std::string& key, std::uint64_t attempt);

  /// Announces reaching a named program point; the configured Nth visit to
  /// the crash point terminates the process with _Exit(137).
  void at_point(const char* point);

  /// Wire-fault verdict for the `conn_id`-th accepted server connection
  /// (a process-lifetime ordinal): true = the server should close the
  /// socket without responding. Pure in (plan, conn_id), so a given
  /// connection ordinal drops identically across reruns.
  [[nodiscard]] bool drop_connection(std::uint64_t conn_id);

  /// Counters for tests/reports.
  [[nodiscard]] std::uint64_t injected_failures() const;
  [[nodiscard]] std::uint64_t injected_delays() const;
  [[nodiscard]] std::uint64_t dropped_connections() const;

 private:
  FaultInjector();

  mutable Mutex mutex_{80, "fault.injector"};
  /// The active plan. configure()/reset() replace it while workers read it,
  /// so every read goes through a mutex-held copy; the `armed_` atomic keeps
  /// the QARCH_FAULT-unset fast path lock-free (one relaxed load).
  FaultPlan plan_ QARCH_GUARDED_BY(mutex_);
  std::atomic<bool> armed_{false};
  std::uint64_t failures_ QARCH_GUARDED_BY(mutex_) = 0;
  std::uint64_t delays_ QARCH_GUARDED_BY(mutex_) = 0;
  std::uint64_t drops_ QARCH_GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::string, std::uint64_t> point_visits_
      QARCH_GUARDED_BY(mutex_);
};

/// The sanctioned sleep for retry backoff in src/search / src/server
/// (tools/qarch_lint.py bans naked sleep_for there so every delay in the
/// service path stays observable from one place and can be faulted or
/// virtualized later). Injected fault delays also route through here.
void backoff_sleep(double seconds);

}  // namespace qarch::search
