#include "search/combinations.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qarch::search {

using qaoa::MixerSpec;

std::size_t combination_count(std::size_t alphabet_size, std::size_t k,
                              CombinationMode mode) {
  QARCH_REQUIRE(k >= 1, "sequence length must be >= 1");
  std::size_t count = 1;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t factor =
        mode == CombinationMode::Product ? alphabet_size : alphabet_size - i;
    QARCH_REQUIRE(mode == CombinationMode::Product || i < alphabet_size,
                  "permutation length exceeds alphabet size");
    count *= factor;
  }
  return count;
}

std::vector<MixerSpec> get_combinations(const GateAlphabet& alphabet,
                                        std::size_t k, CombinationMode mode) {
  QARCH_REQUIRE(k >= 1, "sequence length must be >= 1");
  const std::size_t n = alphabet.size();
  std::vector<MixerSpec> out;
  out.reserve(combination_count(n, k, mode));

  std::vector<std::size_t> idx(k, 0);
  for (;;) {
    // Emit idx if valid under the mode.
    bool valid = true;
    if (mode == CombinationMode::Permutation) {
      std::vector<std::size_t> sorted = idx;
      std::sort(sorted.begin(), sorted.end());
      valid = std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
    }
    if (valid) {
      MixerSpec spec;
      spec.gates.reserve(k);
      for (std::size_t i : idx) spec.gates.push_back(alphabet.gates[i]);
      out.push_back(std::move(spec));
    }
    // Odometer increment.
    std::size_t pos = k;
    while (pos-- > 0) {
      if (++idx[pos] < n) break;
      idx[pos] = 0;
      if (pos == 0) return out;
    }
    if (pos == static_cast<std::size_t>(-1)) return out;
  }
}

std::vector<MixerSpec> all_combinations(const GateAlphabet& alphabet,
                                        std::size_t k_max,
                                        CombinationMode mode) {
  QARCH_REQUIRE(k_max >= 1, "k_max must be >= 1");
  std::vector<MixerSpec> out;
  for (std::size_t k = 1; k <= k_max; ++k) {
    if (mode == CombinationMode::Permutation && k > alphabet.size()) break;
    auto combos = get_combinations(alphabet, k, mode);
    out.insert(out.end(), std::make_move_iterator(combos.begin()),
               std::make_move_iterator(combos.end()));
  }
  return out;
}

MixerSpec random_combination(const GateAlphabet& alphabet, std::size_t k_max,
                             CombinationMode mode, Rng& rng) {
  QARCH_REQUIRE(k_max >= 1, "k_max must be >= 1");
  std::size_t k = 1 + rng.uniform_int(k_max);
  if (mode == CombinationMode::Permutation)
    k = std::min(k, alphabet.size());
  MixerSpec spec;
  spec.gates.reserve(k);
  std::vector<std::size_t> available;
  for (std::size_t i = 0; i < alphabet.size(); ++i) available.push_back(i);
  for (std::size_t j = 0; j < k; ++j) {
    if (mode == CombinationMode::Product) {
      spec.gates.push_back(alphabet.gates[rng.uniform_int(alphabet.size())]);
    } else {
      const std::size_t pick = rng.uniform_int(available.size());
      spec.gates.push_back(alphabet.gates[available[pick]]);
      available.erase(available.begin() + static_cast<long>(pick));
    }
  }
  return spec;
}

}  // namespace qarch::search
