#include "search/alphabet.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qarch::search {

using circuit::GateKind;

GateAlphabet GateAlphabet::standard() {
  return GateAlphabet{
      {GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::H, GateKind::P}};
}

GateAlphabet GateAlphabet::parse(const std::string& text) {
  GateAlphabet a;
  std::string token;
  std::istringstream is(text);
  while (std::getline(is, token, ','))
    if (!token.empty()) a.gates.push_back(circuit::gate_from_name(token));
  QARCH_REQUIRE(!a.gates.empty(), "empty gate alphabet");
  for (GateKind k : a.gates)
    QARCH_REQUIRE(!circuit::is_two_qubit(k), "alphabet gates are single-qubit");
  return a;
}

std::string GateAlphabet::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (i) os << ',';
    os << circuit::gate_name(gates[i]);
  }
  return os.str();
}

}  // namespace qarch::search
