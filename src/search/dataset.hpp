// Dataset-level search: the node-level (outer-outer) tier of Fig. 2.
//
// The paper's protocol searches over a DATASET of graphs (20 ER graphs for
// profiling; 20 4-regular graphs for evaluation) and selects the circuit
// that generalizes — on Polaris one graph's search runs per node. Here the
// dataset driver spins up ONE shared search::EvalService and runs each
// graph's search as a CLIENT: `node_slots` client threads drain the graph
// list concurrently, all submitting into the same worker pool, evaluator
// LRU, and candidate-result cache. Aggregation is unchanged: a mixer's
// dataset score is its mean reward over all graphs at its best depth.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "search/engine.hpp"

namespace qarch::search {

/// Aggregated cross-graph score of one mixer architecture.
struct DatasetCandidate {
  qaoa::MixerSpec mixer;
  std::size_t p = 0;              ///< depth at which the score was achieved
  double mean_ratio = 0.0;        ///< mean energy ratio across graphs
  double mean_sampled_ratio = 0.0;
  std::size_t graphs = 0;         ///< how many graphs scored this entry
};

/// Result of a dataset-level search.
struct DatasetReport {
  DatasetCandidate best;                      ///< highest mean_ratio
  std::vector<DatasetCandidate> ranking;      ///< all candidates, descending
  std::vector<SearchReport> per_graph;        ///< raw per-graph reports
  double seconds = 0.0;
};

/// Configuration: per-graph engine settings plus the client-thread width.
struct DatasetSearchConfig {
  SearchConfig engine;        ///< per-graph search configuration; its
                              ///< `session` configures the shared service
  std::size_t node_slots = 1; ///< concurrent per-graph search CLIENTS
  std::size_t k_max = 2;      ///< candidate sequence length bound
  CombinationMode mode = CombinationMode::Product;
};

/// Runs the exhaustive per-graph search on every graph through one shared
/// evaluation service and aggregates mixers by mean reward across the
/// dataset.
DatasetReport search_dataset(const std::vector<graph::Graph>& graphs,
                             const DatasetSearchConfig& config);

/// The SessionConfig the dataset driver would wire its own service with:
/// evaluator LRU widened for the whole dataset, worker pool widened for the
/// concurrent clients. Exposed so callers that need to OWN the service —
/// e.g. to drain() it from a signal handler, or to share it across runs —
/// can build one equivalently.
SessionConfig dataset_session(const std::vector<graph::Graph>& graphs,
                              const DatasetSearchConfig& config);

/// Same search against a caller-owned service (built from dataset_session or
/// otherwise). The caller keeps control of the service's lifetime, caches,
/// checkpoints, and drain.
DatasetReport search_dataset(const std::vector<graph::Graph>& graphs,
                             const DatasetSearchConfig& config,
                             class EvalService& service);

}  // namespace qarch::search
