#include "search/qbuilder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "qaoa/mixer.hpp"

namespace qarch::search {

QBuilder::QBuilder(GateAlphabet alphabet) : alphabet_(std::move(alphabet)) {
  QARCH_REQUIRE(alphabet_.size() >= 1, "alphabet must be non-empty");
}

qaoa::MixerSpec QBuilder::decode(const Encoding& encoding) const {
  QARCH_REQUIRE(!encoding.empty(), "empty encoding");
  qaoa::MixerSpec spec;
  spec.gates.reserve(encoding.size());
  for (std::size_t idx : encoding) {
    QARCH_REQUIRE(idx < alphabet_.size(), "encoding index out of alphabet");
    spec.gates.push_back(alphabet_.gates[idx]);
  }
  return spec;
}

Encoding QBuilder::encode(const qaoa::MixerSpec& spec) const {
  Encoding enc;
  enc.reserve(spec.gates.size());
  for (circuit::GateKind k : spec.gates) {
    const auto it =
        std::find(alphabet_.gates.begin(), alphabet_.gates.end(), k);
    QARCH_REQUIRE(it != alphabet_.gates.end(), "gate not in alphabet");
    enc.push_back(static_cast<std::size_t>(it - alphabet_.gates.begin()));
  }
  return enc;
}

circuit::Circuit QBuilder::build_mixer(const Encoding& encoding,
                                       std::size_t num_qubits) const {
  return qaoa::build_mixer_circuit(num_qubits, decode(encoding));
}

circuit::Circuit QBuilder::build_qaoa(const Encoding& encoding,
                                      const graph::Graph& g,
                                      std::size_t p) const {
  return qaoa::build_qaoa_circuit(g, p, decode(encoding));
}

}  // namespace qarch::search
