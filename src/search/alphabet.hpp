// The rotation-gate alphabet A_R the search draws mixer gates from.
//
// The paper uses |A_R| = 5. The concrete alphabet is the set of single-qubit
// gates appearing in its discovered circuits (Figs. 6-7): rx, ry, h, p plus
// rz (the natural fifth rotation gate; any 5-element single-qubit alphabet
// reproduces the combinatorics).
#pragma once

#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qarch::search {

/// Ordered gate alphabet. Order matters: predictor encodings are indices
/// into this list.
struct GateAlphabet {
  std::vector<circuit::GateKind> gates;

  /// The paper's 5-gate rotation alphabet.
  static GateAlphabet standard();

  /// Parses "rx,ry,rz,h,p"-style lists.
  static GateAlphabet parse(const std::string& text);

  [[nodiscard]] std::size_t size() const { return gates.size(); }

  /// Mnemonic list like "rx,ry,rz,h,p".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace qarch::search
