// Successive halving over candidate mixers.
//
// Random search with a fixed 200-eval budget per candidate (Algorithm 1)
// spends most of its compute on hopeless candidates. Successive halving
// (Jamieson & Talwalkar 2016 — the standard companion to the random-search
// NAS baseline the paper cites) evaluates every candidate with a small
// budget, keeps the top `keep_fraction`, multiplies the budget by
// `budget_growth`, and repeats until one survivor remains. Total compute is
// comparable to a single full-budget sweep while the final winner gets a
// much deeper training run.
//
// Like every search driver, halving is a CLIENT of search::EvalService: each
// round submits the surviving cohort with a per-job training budget
// (JobOptions::training_evals) and collects the tickets; the driver owns no
// worker pool of its own.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "search/engine.hpp"
#include "search/eval_service.hpp"
#include "session.hpp"

namespace qarch::search {

/// Halving schedule configuration.
struct HalvingConfig {
  std::size_t initial_budget = 25;   ///< COBYLA evals in round 0
  double budget_growth = 2.0;        ///< budget multiplier per round
  double keep_fraction = 0.5;        ///< surviving fraction per round
  std::size_t p = 1;                 ///< ansatz depth
  /// Backend / parallelism knobs for the private-service overload. The
  /// session's training_evals is irrelevant here: every submission carries
  /// its round's budget explicitly.
  SessionConfig session;
  /// Fair-share weight of this sweep's scheduler queue on the service.
  double client_weight = 1.0;
};

/// One halving round's log.
struct HalvingRound {
  std::size_t budget = 0;
  std::size_t candidates_in = 0;
  std::size_t candidates_out = 0;
};

/// Final result plus per-round accounting.
struct HalvingReport {
  CandidateResult best;
  std::vector<HalvingRound> rounds;
  std::size_t total_evaluations = 0;  ///< objective calls FRESHLY spent
                                      ///< across all rounds (cache-served
                                      ///< results cost nothing)
  /// Service-clock wall time: first submission to last completion.
  double seconds = 0.0;
};

/// Runs successive halving over an explicit candidate list on one graph,
/// submitting every round into a SHARED evaluation service.
HalvingReport successive_halving(EvalService& service, const graph::Graph& g,
                                 std::vector<qaoa::MixerSpec> candidates,
                                 const HalvingConfig& config);

/// Convenience single-client form: private service from config.session.
HalvingReport successive_halving(const graph::Graph& g,
                                 std::vector<qaoa::MixerSpec> candidates,
                                 const HalvingConfig& config);

}  // namespace qarch::search
