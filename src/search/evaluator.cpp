#include "search/evaluator.hpp"

#include <optional>

#include "circuit/optimizer.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "graph/maxcut.hpp"
#include "optim/multistart.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/sampling.hpp"

namespace qarch::search {

Evaluator::Evaluator(const graph::Graph& g, EvaluatorOptions options)
    : graph_(g),
      options_(std::move(options)),
      ham_(options_.hamiltonian.build(graph_)),
      energy_(ham_, options_.effective_energy()),
      cobyla_(options_.cobyla) {
  QARCH_REQUIRE(g.num_edges() >= 1, "evaluation graph needs edges");
  QARCH_REQUIRE(options_.restarts >= 1, "need at least one training start");
  classical_optimum_ = options_.hamiltonian.is_default()
                           ? graph::maxcut_exact(graph_).value
                           : qaoa::classical_maximum(ham_);
}

double Evaluator::ratio_of(double value) const {
  return classical_optimum_ > 0.0 ? value / classical_optimum_ : 0.0;
}

query::SamplerOptions Evaluator::sampler_options() const {
  const qaoa::EnergyOptions energy = options_.effective_energy();
  query::SamplerOptions so;
  so.engine = energy.engine == qaoa::EngineKind::Statevector
                  ? query::SamplerEngine::Statevector
                  : query::SamplerEngine::TensorNetwork;
  so.query = query::query_options(energy.qtensor);
  so.tn_backend = energy.qtensor.backend;
  so.sv_plan = energy.sv_plan;
  so.sv_workers = energy.inner_workers;
  return so;
}

CandidateResult Evaluator::evaluate(const qaoa::MixerSpec& mixer,
                                    std::size_t p) const {
  optim::OptimState scratch;
  ResumableEvaluation run = evaluate_resumable(mixer, p, scratch, nullptr);
  QARCH_REQUIRE(run.completed, "unpreempted evaluation must complete");
  return run.result;
}

ResumableEvaluation Evaluator::evaluate_resumable(
    const qaoa::MixerSpec& mixer, std::size_t p, optim::OptimState& state,
    optim::PreemptToken* preempt) const {
  Timer timer;
  circuit::Circuit ansatz = qaoa::build_qaoa_circuit(graph_, p, mixer);
  // Searched sequences routinely contain mergeable structure (rx·rx, h·h
  // pairs); shrinking the candidate benefits every engine — the compiled
  // statevector plan, the per-edge TN lightcones, and the sampling pass.
  if (options_.simplify_circuit) ansatz = circuit::optimize(ansatz);
  // Restarts split the COBYLA budget; the one shared objective means the
  // candidate compiles exactly once on EITHER engine: one SimProgram
  // (statevector) or one per-edge set of ContractionPrograms (qtensor) —
  // probes: sim::program_compile_count() and qtensor::network_build_count().
  std::optional<optim::MultiStart> multistart;
  const optim::Optimizer* optimizer = &cobyla_;
  if (options_.restarts > 1) {
    optim::MultiStartConfig ms;
    ms.restarts = options_.restarts;
    ms.total_evals = options_.cobyla.max_evals;
    ms.perturbation = options_.restart_perturbation;
    ms.seed = options_.restart_seed;
    multistart.emplace(
        [this](std::size_t budget) -> std::unique_ptr<optim::Optimizer> {
          optim::CobylaConfig per_run = options_.cobyla;
          per_run.max_evals = budget;
          return std::make_unique<optim::Cobyla>(per_run);
        },
        ms);
    optimizer = &*multistart;
  }
  // One compiled sampler per candidate when anything needs draws: the
  // sampled training objectives and/or the generalized scoring pass.
  std::optional<query::Sampler> sampler;
  qaoa::TrainResult trained;
  if (options_.objective.kind == qaoa::ObjectiveKind::Expectation) {
    trained = qaoa::train_qaoa(ansatz, energy_, *optimizer, options_.train,
                               state, preempt);
  } else {
    sampler.emplace(ansatz, sampler_options());
    const std::size_t shots =
        options_.objective.shots > 0 ? options_.objective.shots
                                     : options_.shots;
    const optim::Objective value = [&](std::span<const double> theta) {
      // Seed fixed per evaluation: the sampled objective is a
      // deterministic function of theta, so restarts compare fairly and
      // resumed slices stitch exactly.
      Rng rng(options_.sample_seed ^ 0x0051ed2700c1a9ULL);
      const std::vector<std::size_t> samples =
          sampler->sample(theta, shots, rng);
      std::vector<double> values(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i)
        values[i] = ham_.classical_value_bits(samples[i]);
      return qaoa::objective_value(options_.objective, std::move(values));
    };
    trained = qaoa::train_objective(ansatz.num_params(), value, *optimizer,
                                    options_.train, state, preempt);
  }

  ResumableEvaluation out;
  out.evaluations_done = trained.evaluations;
  if (trained.preempted) {
    // Parked mid-training: report the partial accounting; the sampling pass
    // waits for the completing slice.
    out.result.mixer = mixer;
    out.result.p = p;
    out.result.energy = trained.energy;
    out.result.theta = trained.theta;
    out.result.evaluations = trained.evaluations;
    out.result.eval_seconds = timer.seconds();
    return out;
  }

  CandidateResult r;
  r.mixer = mixer;
  r.p = p;
  r.energy = trained.energy;
  r.ratio = ratio_of(trained.energy);
  // Eq. 3 numerator: expected best value among sampled measurements. Seeded
  // per-candidate for determinism regardless of evaluation order. The
  // default MaxCut spec keeps the legacy statevector scoring path (and its
  // exact draw stream); generalized Hamiltonians score through the compiled
  // sampler on the configured engine.
  Rng sample_rng(options_.sample_seed ^ (p * 0x9e3779b97f4a7c15ULL) ^
                 mixer.gates.size());
  if (options_.hamiltonian.is_default()) {
    const double best_cut =
        qaoa::expected_best_cut(ansatz, trained.theta, graph_, options_.shots,
                                options_.sample_trials, sample_rng);
    r.sampled_ratio = ratio_of(best_cut);
  } else {
    if (!sampler.has_value()) sampler.emplace(ansatz, sampler_options());
    const double best_value = qaoa::expected_best_value(
        *sampler, trained.theta, ham_, options_.shots, options_.sample_trials,
        sample_rng);
    r.sampled_ratio = ratio_of(best_value);
  }
  r.theta = trained.theta;
  r.evaluations = trained.evaluations;
  // The service overwrites this with its own timestamps; direct callers get
  // the training+sampling wall-clock of this call.
  r.eval_seconds = timer.seconds();
  out.completed = true;
  out.result = std::move(r);
  return out;
}

}  // namespace qarch::search
