#include "search/evaluator.hpp"

#include "circuit/optimizer.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "graph/maxcut.hpp"
#include "optim/multistart.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/sampling.hpp"

namespace qarch::search {

Evaluator::Evaluator(const graph::Graph& g, EvaluatorOptions options)
    : graph_(g),
      options_(std::move(options)),
      energy_(graph_, options_.effective_energy()),
      cobyla_(options_.cobyla) {
  QARCH_REQUIRE(g.num_edges() >= 1, "evaluation graph needs edges");
  QARCH_REQUIRE(options_.restarts >= 1, "need at least one training start");
  classical_optimum_ = graph::maxcut_exact(graph_).value;
}

CandidateResult Evaluator::evaluate(const qaoa::MixerSpec& mixer,
                                    std::size_t p) const {
  optim::OptimState scratch;
  ResumableEvaluation run = evaluate_resumable(mixer, p, scratch, nullptr);
  QARCH_REQUIRE(run.completed, "unpreempted evaluation must complete");
  return run.result;
}

ResumableEvaluation Evaluator::evaluate_resumable(
    const qaoa::MixerSpec& mixer, std::size_t p, optim::OptimState& state,
    optim::PreemptToken* preempt) const {
  Timer timer;
  circuit::Circuit ansatz = qaoa::build_qaoa_circuit(graph_, p, mixer);
  // Searched sequences routinely contain mergeable structure (rx·rx, h·h
  // pairs); shrinking the candidate benefits every engine — the compiled
  // statevector plan, the per-edge TN lightcones, and the sampling pass.
  if (options_.simplify_circuit) ansatz = circuit::optimize(ansatz);
  qaoa::TrainResult trained;
  if (options_.restarts > 1) {
    // Restarts split the COBYLA budget; train_qaoa's cached plan is the one
    // objective every restart shares, so the candidate compiles exactly once
    // on EITHER engine: one SimProgram (statevector) or one per-edge set of
    // ContractionPrograms (qtensor) — probes: sim::program_compile_count()
    // and qtensor::network_build_count().
    optim::MultiStartConfig ms;
    ms.restarts = options_.restarts;
    ms.total_evals = options_.cobyla.max_evals;
    ms.perturbation = options_.restart_perturbation;
    ms.seed = options_.restart_seed;
    const optim::MultiStart multistart(
        [this](std::size_t budget) -> std::unique_ptr<optim::Optimizer> {
          optim::CobylaConfig per_run = options_.cobyla;
          per_run.max_evals = budget;
          return std::make_unique<optim::Cobyla>(per_run);
        },
        ms);
    trained =
        qaoa::train_qaoa(ansatz, energy_, multistart, options_.train, state,
                         preempt);
  } else {
    trained = qaoa::train_qaoa(ansatz, energy_, cobyla_, options_.train, state,
                               preempt);
  }

  ResumableEvaluation out;
  out.evaluations_done = trained.evaluations;
  if (trained.preempted) {
    // Parked mid-training: report the partial accounting; the sampling pass
    // waits for the completing slice.
    out.result.mixer = mixer;
    out.result.p = p;
    out.result.energy = trained.energy;
    out.result.theta = trained.theta;
    out.result.evaluations = trained.evaluations;
    out.result.eval_seconds = timer.seconds();
    return out;
  }

  CandidateResult r;
  r.mixer = mixer;
  r.p = p;
  r.energy = trained.energy;
  r.ratio = qaoa::approximation_ratio(trained.energy, classical_optimum_);
  // Eq. 3 numerator: expected best cut among sampled measurements. Seeded
  // per-candidate for determinism regardless of evaluation order.
  Rng sample_rng(options_.sample_seed ^ (p * 0x9e3779b97f4a7c15ULL) ^
                 mixer.gates.size());
  const double best_cut =
      qaoa::expected_best_cut(ansatz, trained.theta, graph_, options_.shots,
                              options_.sample_trials, sample_rng);
  r.sampled_ratio = qaoa::approximation_ratio(best_cut, classical_optimum_);
  r.theta = trained.theta;
  r.evaluations = trained.evaluations;
  // The service overwrites this with its own timestamps; direct callers get
  // the training+sampling wall-clock of this call.
  r.eval_seconds = timer.seconds();
  out.completed = true;
  out.result = std::move(r);
  return out;
}

}  // namespace qarch::search
