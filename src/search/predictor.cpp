#include "search/predictor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qarch::search {

ExhaustivePredictor::ExhaustivePredictor(const GateAlphabet& alphabet,
                                         std::size_t k_max,
                                         CombinationMode mode) {
  const QBuilder builder(alphabet);
  for (const qaoa::MixerSpec& spec : all_combinations(alphabet, k_max, mode))
    encodings_.push_back(builder.encode(spec));
}

std::vector<Encoding> ExhaustivePredictor::propose(std::size_t max_batch) {
  const std::size_t take =
      std::min(max_batch, encodings_.size() - cursor_);
  std::vector<Encoding> out(encodings_.begin() + static_cast<long>(cursor_),
                            encodings_.begin() +
                                static_cast<long>(cursor_ + take));
  cursor_ += take;
  return out;
}

RandomPredictor::RandomPredictor(const GateAlphabet& alphabet,
                                 std::size_t k_max, std::size_t budget,
                                 std::uint64_t seed, CombinationMode mode)
    : alphabet_(alphabet),
      k_max_(k_max),
      budget_(budget),
      mode_(mode),
      rng_(seed),
      builder_(alphabet) {
  QARCH_REQUIRE(budget_ >= 1, "random predictor budget must be >= 1");
}

std::vector<Encoding> RandomPredictor::propose(std::size_t max_batch) {
  const std::size_t take = std::min(max_batch, budget_ - proposed_);
  std::vector<Encoding> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i)
    out.push_back(builder_.encode(
        random_combination(alphabet_, k_max_, mode_, rng_)));
  proposed_ += take;
  return out;
}

}  // namespace qarch::search
