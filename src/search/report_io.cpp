#include "search/report_io.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace qarch::search {

namespace {

// Graph fingerprints are raw bytes (packed integers + doubles), not UTF-8;
// they cross the JSON boundary hex-encoded.
std::string hex_encode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

std::string hex_decode(const std::string& hex) {
  QARCH_REQUIRE(hex.size() % 2 == 0, "odd-length hex string");
  const auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw InvalidArgument("invalid hex digit");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  return out;
}

// Whole-file-or-nothing JSON publish shared by every persistent cache:
// write to a unique tmp name (pid + process-wide counter, so concurrent
// writers — other processes AND other services in this process — never
// interleave into the same scratch file), flush-and-check BEFORE the rename
// (buffered data can still fail at close, e.g. ENOSPC, and renaming a
// truncated tmp over a valid cache would break atomicity), then rename so
// readers see either the old complete file or the new one.
void atomic_write_json(const json::Value& value, const std::string& path,
                       const char* what) {
  static std::atomic<unsigned> save_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(save_counter.fetch_add(1));
  {
    std::ofstream out(tmp);
    if (!out) throw Error(std::string(what) + ": cannot open " + tmp);
    out << value.dump(2) << '\n';
    out.close();
    if (out.fail()) {
      std::remove(tmp.c_str());
      throw Error(std::string(what) + ": write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(std::string(what) + ": cannot rename " + tmp + " to " + path);
  }
}

}  // namespace

json::Value candidate_to_json(const CandidateResult& candidate) {
  json::Value obj = json::Value::object();
  json::Value gates = json::Value::array();
  for (circuit::GateKind g : candidate.mixer.gates)
    gates.push_back(circuit::gate_name(g));
  obj.set("mixer", std::move(gates));
  obj.set("p", candidate.p);
  obj.set("energy", candidate.energy);
  obj.set("ratio", candidate.ratio);
  obj.set("sampled_ratio", candidate.sampled_ratio);
  obj.set("evaluations", candidate.evaluations);
  obj.set("queue_seconds", candidate.queue_seconds);
  obj.set("eval_seconds", candidate.eval_seconds);
  obj.set("from_cache", candidate.from_cache);
  json::Value theta = json::Value::array();
  for (double t : candidate.theta) theta.push_back(t);
  obj.set("theta", std::move(theta));
  return obj;
}

CandidateResult candidate_from_json(const json::Value& value) {
  CandidateResult c;
  const json::Value& gates = value.at("mixer");
  for (std::size_t i = 0; i < gates.size(); ++i)
    c.mixer.gates.push_back(circuit::gate_from_name(gates.at(i).as_string()));
  c.p = static_cast<std::size_t>(value.at("p").as_number());
  c.energy = value.at("energy").as_number();
  c.ratio = value.at("ratio").as_number();
  c.sampled_ratio = value.at("sampled_ratio").as_number();
  c.evaluations =
      static_cast<std::size_t>(value.at("evaluations").as_number());
  // Accounting fields postdate the original schema; absent in old reports.
  if (value.contains("queue_seconds"))
    c.queue_seconds = value.at("queue_seconds").as_number();
  if (value.contains("eval_seconds"))
    c.eval_seconds = value.at("eval_seconds").as_number();
  if (value.contains("from_cache"))
    c.from_cache = value.at("from_cache").as_bool();
  const json::Value& theta = value.at("theta");
  for (std::size_t i = 0; i < theta.size(); ++i)
    c.theta.push_back(theta.at(i).as_number());
  return c;
}

json::Value report_to_json(const SearchReport& report) {
  json::Value obj = json::Value::object();
  obj.set("best", candidate_to_json(report.best));
  json::Value all = json::Value::array();
  for (const CandidateResult& c : report.evaluated)
    all.push_back(candidate_to_json(c));
  obj.set("evaluated", std::move(all));
  obj.set("seconds", report.seconds);
  obj.set("num_candidates", report.num_candidates);
  obj.set("cache_hits", report.cache_hits);
  obj.set("cache_misses", report.cache_misses);
  json::Value rej = json::Value::object();
  for (const auto& [name, count] : report.rejections) rej.set(name, count);
  obj.set("rejections", std::move(rej));
  return obj;
}

SearchReport report_from_json(const json::Value& value) {
  SearchReport r;
  r.best = candidate_from_json(value.at("best"));
  const json::Value& all = value.at("evaluated");
  for (std::size_t i = 0; i < all.size(); ++i)
    r.evaluated.push_back(candidate_from_json(all.at(i)));
  r.seconds = value.at("seconds").as_number();
  r.num_candidates =
      static_cast<std::size_t>(value.at("num_candidates").as_number());
  if (value.contains("cache_hits"))
    r.cache_hits =
        static_cast<std::size_t>(value.at("cache_hits").as_number());
  if (value.contains("cache_misses"))
    r.cache_misses =
        static_cast<std::size_t>(value.at("cache_misses").as_number());
  if (value.contains("rejections"))
    for (const auto& [name, count] : value.at("rejections").items())
      r.rejections[name] = static_cast<std::size_t>(count.as_number());
  return r;
}

void save_report(const SearchReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("save_report: cannot open " + path);
  out << report_to_json(report).dump(2) << '\n';
}

SearchReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return report_from_json(json::parse(buffer.str()));
}

json::Value result_cache_to_json(const std::vector<CacheEntry>& entries,
                                 const std::string& code_version) {
  json::Value obj = json::Value::object();
  obj.set("format", "qarch-result-cache");
  obj.set("code_version", code_version);
  json::Value list = json::Value::array();
  for (const CacheEntry& e : entries) {
    json::Value entry = json::Value::object();
    entry.set("graph_fp", hex_encode(e.graph_fp));
    entry.set("training_evals", e.training_evals);
    entry.set("engine", e.engine);
    entry.set("result", candidate_to_json(e.result));
    list.push_back(std::move(entry));
  }
  obj.set("entries", std::move(list));
  return obj;
}

std::vector<CacheEntry> result_cache_from_json(
    const json::Value& value, const std::string& code_version) {
  std::vector<CacheEntry> entries;
  if (!value.contains("format") ||
      value.at("format").as_string() != "qarch-result-cache")
    return entries;
  if (!value.contains("code_version") ||
      value.at("code_version").as_string() != code_version)
    return entries;  // stale semantics: results are not comparable
  if (!value.contains("entries")) return entries;
  const json::Value& list = value.at("entries");
  for (std::size_t i = 0; i < list.size(); ++i) {
    try {
      const json::Value& item = list.at(i);
      CacheEntry e;
      e.graph_fp = hex_decode(item.at("graph_fp").as_string());
      e.training_evals = static_cast<std::size_t>(
          item.at("training_evals").as_number());
      e.engine = item.at("engine").as_string();
      e.result = candidate_from_json(item.at("result"));
      entries.push_back(std::move(e));
    } catch (const std::exception&) {
      // One mangled entry must not poison the rest of the warm start.
    }
  }
  return entries;
}

void save_result_cache(const std::vector<CacheEntry>& entries,
                       const std::string& path,
                       const std::string& code_version) {
  atomic_write_json(result_cache_to_json(entries, code_version), path,
                    "save_result_cache");
}

std::vector<CacheEntry> load_result_cache(const std::string& path,
                                          const std::string& code_version) {
  std::ifstream in(path);
  if (!in) return {};  // no cache yet: every run starts cold once
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return result_cache_from_json(json::parse(buffer.str()), code_version);
  } catch (const std::exception& e) {
    log::warn("ignoring corrupt result cache ", path, ": ", e.what());
    return {};
  }
}

json::Value plan_cache_to_json(const std::vector<qtensor::CachedPlan>& plans,
                               const std::string& code_version) {
  json::Value obj = json::Value::object();
  obj.set("format", "qarch-plan-cache");
  obj.set("code_version", code_version);
  json::Value list = json::Value::array();
  for (const qtensor::CachedPlan& p : plans) {
    json::Value entry = json::Value::object();
    entry.set("shape_key", p.shape_key);
    // 64-bit hashes do not round-trip through JSON doubles; go via string.
    entry.set("structure_hash", std::to_string(p.structure_hash));
    entry.set("heuristic", p.heuristic);
    json::Value order = json::Value::array();
    for (qtensor::VarId v : p.order) order.push_back(v);
    entry.set("order", std::move(order));
    list.push_back(std::move(entry));
  }
  obj.set("entries", std::move(list));
  return obj;
}

std::vector<qtensor::CachedPlan> plan_cache_from_json(
    const json::Value& value, const std::string& code_version) {
  std::vector<qtensor::CachedPlan> plans;
  if (!value.contains("format") ||
      value.at("format").as_string() != "qarch-plan-cache")
    return plans;
  if (!value.contains("code_version") ||
      value.at("code_version").as_string() != code_version)
    return plans;  // planner semantics changed: replan rather than trust
  if (!value.contains("entries")) return plans;
  const json::Value& list = value.at("entries");
  for (std::size_t i = 0; i < list.size(); ++i) {
    try {
      const json::Value& item = list.at(i);
      qtensor::CachedPlan p;
      p.shape_key = item.at("shape_key").as_string();
      p.structure_hash = std::stoull(item.at("structure_hash").as_string());
      p.heuristic = item.at("heuristic").as_string();
      const json::Value& order = item.at("order");
      for (std::size_t k = 0; k < order.size(); ++k)
        p.order.push_back(
            static_cast<qtensor::VarId>(order.at(k).as_number()));
      plans.push_back(std::move(p));
    } catch (const std::exception&) {
      // One mangled entry must not poison the rest of the warm start.
    }
  }
  return plans;
}

void save_plan_cache(const std::vector<qtensor::CachedPlan>& plans,
                     const std::string& path,
                     const std::string& code_version) {
  atomic_write_json(plan_cache_to_json(plans, code_version), path,
                    "save_plan_cache");
}

std::vector<qtensor::CachedPlan> load_plan_cache(
    const std::string& path, const std::string& code_version) {
  std::ifstream in(path);
  if (!in) return {};  // no cache yet: the first run plans cold once
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return plan_cache_from_json(json::parse(buffer.str()), code_version);
  } catch (const std::exception& e) {
    log::warn("ignoring corrupt plan cache ", path, ": ", e.what());
    return {};
  }
}

}  // namespace qarch::search
