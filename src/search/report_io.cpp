#include "search/report_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"
#include "common/log.hpp"

namespace qarch::search {

namespace {

// Graph fingerprints are raw bytes (packed integers + doubles), not UTF-8;
// they cross the JSON boundary hex-encoded.
std::string hex_encode(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

std::string hex_decode(const std::string& hex) {
  QARCH_REQUIRE(hex.size() % 2 == 0, "odd-length hex string");
  const auto nibble = [](char c) -> unsigned {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    throw InvalidArgument("invalid hex digit");
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  return out;
}

// Whole-file-or-nothing JSON publish shared by every persistent cache:
// write to a unique tmp name (pid + process-wide counter, so concurrent
// writers — other processes AND other services in this process — never
// interleave into the same scratch file), fsync BEFORE the rename (a rename
// only orders metadata: without the data flush a crash right after the
// publish can leave the DESTINATION pointing at a zero-length or truncated
// file, exactly what the crash-resume path must never see), then rename so
// readers see either the old complete file or the new one. Rename failures
// (e.g. a cross-filesystem cache_path target) surface as errors rather than
// silently dropping the persist. The directory fsync afterwards makes the
// rename itself durable; it is best-effort because some filesystems refuse
// directory fds.
void atomic_write_json(const json::Value& value, const std::string& path,
                       const char* what) {
  static std::atomic<unsigned> save_counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) +
                          "." + std::to_string(save_counter.fetch_add(1));
  const std::string payload = value.dump(2) + '\n';
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr)
    throw Error(std::string(what) + ": cannot open " + tmp);
  bool ok =
      std::fwrite(payload.data(), 1, payload.size(), out) == payload.size();
  ok = std::fflush(out) == 0 && ok;
  ok = ::fsync(::fileno(out)) == 0 && ok;
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw Error(std::string(what) + ": write failed for " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(std::string(what) + ": cannot rename " + tmp + " to " + path);
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

}  // namespace

json::Value candidate_to_json(const CandidateResult& candidate) {
  json::Value obj = json::Value::object();
  json::Value gates = json::Value::array();
  for (circuit::GateKind g : candidate.mixer.gates)
    gates.push_back(circuit::gate_name(g));
  obj.set("mixer", std::move(gates));
  obj.set("p", candidate.p);
  obj.set("energy", candidate.energy);
  obj.set("ratio", candidate.ratio);
  obj.set("sampled_ratio", candidate.sampled_ratio);
  obj.set("evaluations", candidate.evaluations);
  obj.set("queue_seconds", candidate.queue_seconds);
  obj.set("eval_seconds", candidate.eval_seconds);
  obj.set("from_cache", candidate.from_cache);
  json::Value theta = json::Value::array();
  for (double t : candidate.theta) theta.push_back(t);
  obj.set("theta", std::move(theta));
  return obj;
}

CandidateResult candidate_from_json(const json::Value& value) {
  CandidateResult c;
  const json::Value& gates = value.at("mixer");
  for (std::size_t i = 0; i < gates.size(); ++i)
    c.mixer.gates.push_back(circuit::gate_from_name(gates.at(i).as_string()));
  c.p = static_cast<std::size_t>(value.at("p").as_number());
  c.energy = value.at("energy").as_number();
  c.ratio = value.at("ratio").as_number();
  c.sampled_ratio = value.at("sampled_ratio").as_number();
  c.evaluations =
      static_cast<std::size_t>(value.at("evaluations").as_number());
  // Accounting fields postdate the original schema; absent in old reports.
  if (value.contains("queue_seconds"))
    c.queue_seconds = value.at("queue_seconds").as_number();
  if (value.contains("eval_seconds"))
    c.eval_seconds = value.at("eval_seconds").as_number();
  if (value.contains("from_cache"))
    c.from_cache = value.at("from_cache").as_bool();
  const json::Value& theta = value.at("theta");
  for (std::size_t i = 0; i < theta.size(); ++i)
    c.theta.push_back(theta.at(i).as_number());
  return c;
}

json::Value report_to_json(const SearchReport& report) {
  json::Value obj = json::Value::object();
  obj.set("best", candidate_to_json(report.best));
  json::Value all = json::Value::array();
  for (const CandidateResult& c : report.evaluated)
    all.push_back(candidate_to_json(c));
  obj.set("evaluated", std::move(all));
  obj.set("seconds", report.seconds);
  obj.set("num_candidates", report.num_candidates);
  obj.set("cache_hits", report.cache_hits);
  obj.set("cache_misses", report.cache_misses);
  json::Value rej = json::Value::object();
  for (const auto& [name, count] : report.rejections) rej.set(name, count);
  obj.set("rejections", std::move(rej));
  return obj;
}

SearchReport report_from_json(const json::Value& value) {
  SearchReport r;
  r.best = candidate_from_json(value.at("best"));
  const json::Value& all = value.at("evaluated");
  for (std::size_t i = 0; i < all.size(); ++i)
    r.evaluated.push_back(candidate_from_json(all.at(i)));
  r.seconds = value.at("seconds").as_number();
  r.num_candidates =
      static_cast<std::size_t>(value.at("num_candidates").as_number());
  if (value.contains("cache_hits"))
    r.cache_hits =
        static_cast<std::size_t>(value.at("cache_hits").as_number());
  if (value.contains("cache_misses"))
    r.cache_misses =
        static_cast<std::size_t>(value.at("cache_misses").as_number());
  if (value.contains("rejections"))
    for (const auto& [name, count] : value.at("rejections").items())
      r.rejections[name] = static_cast<std::size_t>(count.as_number());
  return r;
}

void save_report(const SearchReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("save_report: cannot open " + path);
  out << report_to_json(report).dump(2) << '\n';
}

SearchReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return report_from_json(json::parse(buffer.str()));
}

json::Value result_cache_to_json(const std::vector<CacheEntry>& entries,
                                 const std::string& code_version) {
  json::Value obj = json::Value::object();
  obj.set("format", "qarch-result-cache");
  obj.set("code_version", code_version);
  json::Value list = json::Value::array();
  for (const CacheEntry& e : entries) {
    json::Value entry = json::Value::object();
    entry.set("graph_fp", hex_encode(e.graph_fp));
    entry.set("training_evals", e.training_evals);
    entry.set("engine", e.engine);
    // Spec tags are written only when non-default, so files produced by
    // default-objective runs stay byte-compatible with older readers.
    if (!e.objective.empty()) entry.set("objective", e.objective);
    if (!e.hamiltonian.empty()) entry.set("hamiltonian", e.hamiltonian);
    entry.set("result", candidate_to_json(e.result));
    list.push_back(std::move(entry));
  }
  obj.set("entries", std::move(list));
  return obj;
}

std::vector<CacheEntry> result_cache_from_json(
    const json::Value& value, const std::string& code_version) {
  std::vector<CacheEntry> entries;
  if (!value.contains("format") ||
      value.at("format").as_string() != "qarch-result-cache")
    return entries;
  if (!value.contains("code_version") ||
      value.at("code_version").as_string() != code_version)
    return entries;  // stale semantics: results are not comparable
  if (!value.contains("entries")) return entries;
  const json::Value& list = value.at("entries");
  for (std::size_t i = 0; i < list.size(); ++i) {
    try {
      const json::Value& item = list.at(i);
      CacheEntry e;
      e.graph_fp = hex_decode(item.at("graph_fp").as_string());
      e.training_evals = static_cast<std::size_t>(
          item.at("training_evals").as_number());
      e.engine = item.at("engine").as_string();
      if (item.contains("objective"))
        e.objective = item.at("objective").as_string();
      if (item.contains("hamiltonian"))
        e.hamiltonian = item.at("hamiltonian").as_string();
      e.result = candidate_from_json(item.at("result"));
      entries.push_back(std::move(e));
    } catch (const std::exception&) {
      // One mangled entry must not poison the rest of the warm start.
    }
  }
  return entries;
}

void save_result_cache(const std::vector<CacheEntry>& entries,
                       const std::string& path,
                       const std::string& code_version) {
  atomic_write_json(result_cache_to_json(entries, code_version), path,
                    "save_result_cache");
}

std::vector<CacheEntry> load_result_cache(const std::string& path,
                                          const std::string& code_version) {
  std::ifstream in(path);
  if (!in) return {};  // no cache yet: every run starts cold once
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return result_cache_from_json(json::parse(buffer.str()), code_version);
  } catch (const std::exception& e) {
    log::warn("ignoring corrupt result cache ", path, ": ", e.what());
    return {};
  }
}

json::Value plan_cache_to_json(const std::vector<qtensor::CachedPlan>& plans,
                               const std::string& code_version) {
  json::Value obj = json::Value::object();
  obj.set("format", "qarch-plan-cache");
  obj.set("code_version", code_version);
  json::Value list = json::Value::array();
  for (const qtensor::CachedPlan& p : plans) {
    json::Value entry = json::Value::object();
    entry.set("shape_key", p.shape_key);
    // 64-bit hashes do not round-trip through JSON doubles; go via string.
    entry.set("structure_hash", std::to_string(p.structure_hash));
    entry.set("heuristic", p.heuristic);
    json::Value order = json::Value::array();
    for (qtensor::VarId v : p.order) order.push_back(v);
    entry.set("order", std::move(order));
    list.push_back(std::move(entry));
  }
  obj.set("entries", std::move(list));
  return obj;
}

std::vector<qtensor::CachedPlan> plan_cache_from_json(
    const json::Value& value, const std::string& code_version) {
  std::vector<qtensor::CachedPlan> plans;
  if (!value.contains("format") ||
      value.at("format").as_string() != "qarch-plan-cache")
    return plans;
  if (!value.contains("code_version") ||
      value.at("code_version").as_string() != code_version)
    return plans;  // planner semantics changed: replan rather than trust
  if (!value.contains("entries")) return plans;
  const json::Value& list = value.at("entries");
  for (std::size_t i = 0; i < list.size(); ++i) {
    try {
      const json::Value& item = list.at(i);
      qtensor::CachedPlan p;
      p.shape_key = item.at("shape_key").as_string();
      p.structure_hash = std::stoull(item.at("structure_hash").as_string());
      p.heuristic = item.at("heuristic").as_string();
      const json::Value& order = item.at("order");
      for (std::size_t k = 0; k < order.size(); ++k)
        p.order.push_back(
            static_cast<qtensor::VarId>(order.at(k).as_number()));
      plans.push_back(std::move(p));
    } catch (const std::exception&) {
      // One mangled entry must not poison the rest of the warm start.
    }
  }
  return plans;
}

void save_plan_cache(const std::vector<qtensor::CachedPlan>& plans,
                     const std::string& path,
                     const std::string& code_version) {
  atomic_write_json(plan_cache_to_json(plans, code_version), path,
                    "save_plan_cache");
}

std::vector<qtensor::CachedPlan> load_plan_cache(
    const std::string& path, const std::string& code_version) {
  std::ifstream in(path);
  if (!in) return {};  // no cache yet: the first run plans cold once
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return plan_cache_from_json(json::parse(buffer.str()), code_version);
  } catch (const std::exception& e) {
    log::warn("ignoring corrupt plan cache ", path, ": ", e.what());
    return {};
  }
}

namespace {

// Optimizer internals may legitimately hold non-finite doubles (an untouched
// +inf incumbent before any restart completes). JSON has no inf/nan tokens,
// so those cross as tagged strings; everything finite stays a plain number
// (%.17g — bit-exact round trip).
json::Value finite_or_tag(double v) {
  if (std::isfinite(v)) return {v};
  if (std::isnan(v)) return {"nan"};
  return {v > 0 ? "inf" : "-inf"};
}

double number_or_tag(const json::Value& v) {
  if (v.type() == json::Value::Type::String) {
    const std::string& s = v.as_string();
    if (s == "inf") return std::numeric_limits<double>::infinity();
    if (s == "-inf") return -std::numeric_limits<double>::infinity();
    if (s == "nan") return std::numeric_limits<double>::quiet_NaN();
    throw InvalidArgument("bad tagged number: " + s);
  }
  return v.as_number();
}

}  // namespace

json::Value optim_state_to_json(const optim::OptimState& state) {
  json::Value obj = json::Value::object();
  obj.set("optimizer", state.optimizer);
  obj.set("evaluations", state.evaluations);
  json::Value history = json::Value::array();
  for (double h : state.history) history.push_back(finite_or_tag(h));
  obj.set("history", std::move(history));
  json::Value numbers = json::Value::array();
  for (double n : state.numbers) numbers.push_back(finite_or_tag(n));
  obj.set("numbers", std::move(numbers));
  // 64-bit words (counters, RNG state) do not round-trip through JSON
  // doubles; go via strings like the plan cache's structure hashes.
  json::Value words = json::Value::array();
  for (std::uint64_t w : state.words) words.push_back(std::to_string(w));
  obj.set("words", std::move(words));
  json::Value child = json::Value::array();
  for (const optim::OptimState& c : state.child)
    child.push_back(optim_state_to_json(c));
  obj.set("child", std::move(child));
  return obj;
}

optim::OptimState optim_state_from_json(const json::Value& value) {
  optim::OptimState state;
  state.optimizer = value.at("optimizer").as_string();
  state.evaluations =
      static_cast<std::size_t>(value.at("evaluations").as_number());
  const json::Value& history = value.at("history");
  for (std::size_t i = 0; i < history.size(); ++i)
    state.history.push_back(number_or_tag(history.at(i)));
  const json::Value& numbers = value.at("numbers");
  for (std::size_t i = 0; i < numbers.size(); ++i)
    state.numbers.push_back(number_or_tag(numbers.at(i)));
  const json::Value& words = value.at("words");
  for (std::size_t i = 0; i < words.size(); ++i)
    state.words.push_back(std::stoull(words.at(i).as_string()));
  const json::Value& child = value.at("child");
  for (std::size_t i = 0; i < child.size(); ++i)
    state.child.push_back(optim_state_from_json(child.at(i)));
  return state;
}

json::Value checkpoints_to_json(const std::vector<TrainingCheckpoint>& entries,
                                const std::string& code_version) {
  json::Value obj = json::Value::object();
  obj.set("format", "qarch-checkpoints");
  obj.set("code_version", code_version);
  json::Value list = json::Value::array();
  for (const TrainingCheckpoint& e : entries) {
    json::Value entry = json::Value::object();
    entry.set("graph_fp", hex_encode(e.graph_fp));
    json::Value gates = json::Value::array();
    for (circuit::GateKind g : e.mixer.gates)
      gates.push_back(circuit::gate_name(g));
    entry.set("mixer", std::move(gates));
    entry.set("p", e.p);
    entry.set("training_evals", e.training_evals);
    entry.set("engine", e.engine);
    if (!e.objective.empty()) entry.set("objective", e.objective);
    if (!e.hamiltonian.empty()) entry.set("hamiltonian", e.hamiltonian);
    entry.set("state", optim_state_to_json(e.state));
    list.push_back(std::move(entry));
  }
  obj.set("entries", std::move(list));
  return obj;
}

std::vector<TrainingCheckpoint> checkpoints_from_json(
    const json::Value& value, const std::string& code_version) {
  std::vector<TrainingCheckpoint> entries;
  if (!value.contains("format") ||
      value.at("format").as_string() != "qarch-checkpoints")
    return entries;
  if (!value.contains("code_version") ||
      value.at("code_version").as_string() != code_version)
    return entries;  // optimizer internals changed: retrain rather than trust
  if (!value.contains("entries")) return entries;
  const json::Value& list = value.at("entries");
  for (std::size_t i = 0; i < list.size(); ++i) {
    try {
      const json::Value& item = list.at(i);
      TrainingCheckpoint e;
      e.graph_fp = hex_decode(item.at("graph_fp").as_string());
      const json::Value& gates = item.at("mixer");
      for (std::size_t k = 0; k < gates.size(); ++k)
        e.mixer.gates.push_back(
            circuit::gate_from_name(gates.at(k).as_string()));
      e.p = static_cast<std::size_t>(item.at("p").as_number());
      e.training_evals =
          static_cast<std::size_t>(item.at("training_evals").as_number());
      e.engine = item.at("engine").as_string();
      if (item.contains("objective"))
        e.objective = item.at("objective").as_string();
      if (item.contains("hamiltonian"))
        e.hamiltonian = item.at("hamiltonian").as_string();
      e.state = optim_state_from_json(item.at("state"));
      entries.push_back(std::move(e));
    } catch (const std::exception&) {
      // One mangled checkpoint must not poison the rest; the affected
      // candidate simply retrains from scratch.
    }
  }
  return entries;
}

void save_checkpoints(const std::vector<TrainingCheckpoint>& entries,
                      const std::string& path,
                      const std::string& code_version) {
  atomic_write_json(checkpoints_to_json(entries, code_version), path,
                    "save_checkpoints");
}

std::vector<TrainingCheckpoint> load_checkpoints(
    const std::string& path, const std::string& code_version) {
  std::ifstream in(path);
  if (!in) return {};  // no checkpoints yet: nothing was in flight
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return checkpoints_from_json(json::parse(buffer.str()), code_version);
  } catch (const std::exception& e) {
    log::warn("ignoring corrupt checkpoint file ", path, ": ", e.what());
    return {};
  }
}

}  // namespace qarch::search
