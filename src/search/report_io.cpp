#include "search/report_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qarch::search {

json::Value candidate_to_json(const CandidateResult& candidate) {
  json::Value obj = json::Value::object();
  json::Value gates = json::Value::array();
  for (circuit::GateKind g : candidate.mixer.gates)
    gates.push_back(circuit::gate_name(g));
  obj.set("mixer", std::move(gates));
  obj.set("p", candidate.p);
  obj.set("energy", candidate.energy);
  obj.set("ratio", candidate.ratio);
  obj.set("sampled_ratio", candidate.sampled_ratio);
  obj.set("evaluations", candidate.evaluations);
  obj.set("queue_seconds", candidate.queue_seconds);
  obj.set("eval_seconds", candidate.eval_seconds);
  obj.set("from_cache", candidate.from_cache);
  json::Value theta = json::Value::array();
  for (double t : candidate.theta) theta.push_back(t);
  obj.set("theta", std::move(theta));
  return obj;
}

CandidateResult candidate_from_json(const json::Value& value) {
  CandidateResult c;
  const json::Value& gates = value.at("mixer");
  for (std::size_t i = 0; i < gates.size(); ++i)
    c.mixer.gates.push_back(circuit::gate_from_name(gates.at(i).as_string()));
  c.p = static_cast<std::size_t>(value.at("p").as_number());
  c.energy = value.at("energy").as_number();
  c.ratio = value.at("ratio").as_number();
  c.sampled_ratio = value.at("sampled_ratio").as_number();
  c.evaluations =
      static_cast<std::size_t>(value.at("evaluations").as_number());
  // Accounting fields postdate the original schema; absent in old reports.
  if (value.contains("queue_seconds"))
    c.queue_seconds = value.at("queue_seconds").as_number();
  if (value.contains("eval_seconds"))
    c.eval_seconds = value.at("eval_seconds").as_number();
  if (value.contains("from_cache"))
    c.from_cache = value.at("from_cache").as_bool();
  const json::Value& theta = value.at("theta");
  for (std::size_t i = 0; i < theta.size(); ++i)
    c.theta.push_back(theta.at(i).as_number());
  return c;
}

json::Value report_to_json(const SearchReport& report) {
  json::Value obj = json::Value::object();
  obj.set("best", candidate_to_json(report.best));
  json::Value all = json::Value::array();
  for (const CandidateResult& c : report.evaluated)
    all.push_back(candidate_to_json(c));
  obj.set("evaluated", std::move(all));
  obj.set("seconds", report.seconds);
  obj.set("num_candidates", report.num_candidates);
  obj.set("cache_hits", report.cache_hits);
  obj.set("cache_misses", report.cache_misses);
  json::Value rej = json::Value::object();
  for (const auto& [name, count] : report.rejections) rej.set(name, count);
  obj.set("rejections", std::move(rej));
  return obj;
}

SearchReport report_from_json(const json::Value& value) {
  SearchReport r;
  r.best = candidate_from_json(value.at("best"));
  const json::Value& all = value.at("evaluated");
  for (std::size_t i = 0; i < all.size(); ++i)
    r.evaluated.push_back(candidate_from_json(all.at(i)));
  r.seconds = value.at("seconds").as_number();
  r.num_candidates =
      static_cast<std::size_t>(value.at("num_candidates").as_number());
  if (value.contains("cache_hits"))
    r.cache_hits =
        static_cast<std::size_t>(value.at("cache_hits").as_number());
  if (value.contains("cache_misses"))
    r.cache_misses =
        static_cast<std::size_t>(value.at("cache_misses").as_number());
  if (value.contains("rejections"))
    for (const auto& [name, count] : value.at("rejections").items())
      r.rejections[name] = static_cast<std::size_t>(count.as_number());
  return r;
}

void save_report(const SearchReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("save_report: cannot open " + path);
  out << report_to_json(report).dump(2) << '\n';
}

SearchReport load_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("load_report: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return report_from_json(json::parse(buffer.str()));
}

}  // namespace qarch::search
