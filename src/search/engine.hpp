// SearchEngine: Algorithm 1 of the paper, as a CLIENT of the evaluation
// service.
//
// For each depth p = 1..p_max the engine drains the predictor's proposals,
// hands each encoding to the QBuilder, submits the candidates to a shared
// search::EvalService (one submit per candidate, collected in submission
// order), propagates rewards back, and keeps the globally best mixer
// (SELECT_BEST). The engine owns NO worker pool of its own: concurrency,
// backend selection (including BackendChoice::Auto), evaluator sharing, and
// the candidate-result cache all live in the service, so several concurrent
// searches — other SearchEngine clients, successive halving, the dataset
// driver — share plan caches and workers instead of each reinventing them.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "search/constraints.hpp"
#include "search/eval_service.hpp"
#include "search/evaluator.hpp"
#include "search/predictor.hpp"
#include "search/qbuilder.hpp"
#include "session.hpp"

namespace qarch::search {

/// Engine configuration (defaults follow the paper's profiling setup).
struct SearchConfig {
  std::size_t p_max = 4;              ///< QAOA depths searched: 1..p_max
  std::size_t batch = 0;              ///< proposals per predictor round
                                      ///< (0 = auto: max(1, 4*workers))
  GateAlphabet alphabet = GateAlphabet::standard();
  /// Backend / budget / parallelism knobs. Used to spin up a private
  /// EvalService by the run() overloads that are not handed one; ignored
  /// (except for batch sizing fallbacks) when an external service is passed.
  SessionConfig session;
  /// Fair-share weight of this engine's submissions: every run() registers
  /// its own scheduler queue on the service, so concurrent searches sharing
  /// one EvalService receive compute proportional to their weights instead
  /// of queueing FIFO behind whoever submitted first.
  double client_weight = 1.0;
  ConstraintSet constraints;          ///< candidates must pass before costing
                                      ///< evaluator budget (may be empty)
};

/// Full log of one search run.
struct SearchReport {
  CandidateResult best;                    ///< U_B^best with <C^best>
  std::vector<CandidateResult> evaluated;  ///< every candidate, in order
  /// Wall-clock of the whole search, measured on the SERVICE clock: first
  /// submission to last completion (0.0 when nothing was evaluated).
  double seconds = 0.0;
  std::size_t num_candidates = 0;
  std::size_t cache_hits = 0;    ///< submissions served from the service's
                                 ///< result cache / in-flight duplicates
  std::size_t cache_misses = 0;  ///< submissions that ran a fresh evaluation
  std::map<std::string, std::size_t> rejections;  ///< per-constraint counts

  /// Best candidate restricted to one depth (throws if none evaluated).
  [[nodiscard]] const CandidateResult& best_at_depth(std::size_t p) const;
};

/// The QArchSearch driver.
class SearchEngine {
 public:
  explicit SearchEngine(SearchConfig config = {});

  /// Runs Algorithm 1 over `g` against a SHARED evaluation service (the
  /// multi-client deployment: concurrent searches submit into one pool).
  /// The predictor is reset() at the start of every depth round.
  [[nodiscard]] SearchReport run(EvalService& service, const graph::Graph& g,
                                 Predictor& predictor) const;

  /// Convenience single-client form: spins up a private EvalService from
  /// config().session and runs against it.
  [[nodiscard]] SearchReport run(const graph::Graph& g,
                                 Predictor& predictor) const;

  /// Exhaustive search with sequences up to length k_max against a shared
  /// service (the paper's profiled configuration: k_max = 4, |A_R| = 5).
  [[nodiscard]] SearchReport run_exhaustive(
      EvalService& service, const graph::Graph& g, std::size_t k_max,
      CombinationMode mode = CombinationMode::Product) const;

  /// Exhaustive search against a private service.
  [[nodiscard]] SearchReport run_exhaustive(
      const graph::Graph& g, std::size_t k_max,
      CombinationMode mode = CombinationMode::Product) const;

  [[nodiscard]] const SearchConfig& config() const { return config_; }

 private:
  SearchConfig config_;
};

}  // namespace qarch::search
