// SearchEngine: Algorithm 1 of the paper.
//
// For each depth p = 1..p_max the engine drains the predictor's proposals,
// hands each encoding to the QBuilder + Evaluator, propagates rewards back,
// and keeps the globally best mixer (SELECT_BEST). Candidate evaluations
// within a round are independent, so the engine runs them either serially
// (the paper's baseline profile) or on an `outer_workers`-wide task pool
// (the starmap_async parallelization of Fig. 3).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "graph/graph.hpp"
#include "search/constraints.hpp"
#include "search/evaluator.hpp"
#include "search/predictor.hpp"
#include "search/qbuilder.hpp"

namespace qarch::search {

/// Engine configuration (defaults follow the paper's profiling setup).
struct SearchConfig {
  std::size_t p_max = 4;              ///< QAOA depths searched: 1..p_max
  std::size_t outer_workers = 1;      ///< 1 = serial search
  std::size_t batch = 0;              ///< proposals per predictor round
                                      ///< (0 = auto: max(1, 4*outer_workers))
  GateAlphabet alphabet = GateAlphabet::standard();
  EvaluatorOptions evaluator;
  ConstraintSet constraints;          ///< candidates must pass before costing
                                      ///< evaluator budget (may be empty)
};

/// Full log of one search run.
struct SearchReport {
  CandidateResult best;                    ///< U_B^best with <C^best>
  std::vector<CandidateResult> evaluated;  ///< every candidate, in order
  double seconds = 0.0;                    ///< wall-clock of the whole search
  std::size_t num_candidates = 0;
  std::map<std::string, std::size_t> rejections;  ///< per-constraint counts

  /// Best candidate restricted to one depth (throws if none evaluated).
  [[nodiscard]] const CandidateResult& best_at_depth(std::size_t p) const;
};

/// The QArchSearch driver.
class SearchEngine {
 public:
  explicit SearchEngine(SearchConfig config = {});

  /// Runs Algorithm 1 over `g`, drawing candidates from `predictor`.
  /// The predictor is reset() at the start of every depth round.
  [[nodiscard]] SearchReport run(const graph::Graph& g,
                                 Predictor& predictor) const;

  /// Convenience: exhaustive search with sequences up to length k_max
  /// (the paper's profiled configuration: k_max = 4, |A_R| = 5).
  [[nodiscard]] SearchReport run_exhaustive(
      const graph::Graph& g, std::size_t k_max,
      CombinationMode mode = CombinationMode::Product) const;

  [[nodiscard]] const SearchConfig& config() const { return config_; }

 private:
  SearchConfig config_;
};

}  // namespace qarch::search
