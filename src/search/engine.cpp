#include "search/engine.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "parallel/task_pool.hpp"

namespace qarch::search {

const CandidateResult& SearchReport::best_at_depth(std::size_t p) const {
  const CandidateResult* best = nullptr;
  for (const CandidateResult& c : evaluated)
    if (c.p == p && (best == nullptr || c.energy > best->energy)) best = &c;
  QARCH_REQUIRE(best != nullptr, "no candidates evaluated at this depth");
  return *best;
}

SearchEngine::SearchEngine(SearchConfig config) : config_(std::move(config)) {
  QARCH_REQUIRE(config_.p_max >= 1, "p_max must be >= 1");
  QARCH_REQUIRE(config_.outer_workers >= 1, "outer_workers must be >= 1");
}

SearchReport SearchEngine::run(const graph::Graph& g,
                               Predictor& predictor) const {
  Timer timer;
  const Evaluator evaluator(g, config_.evaluator);
  const QBuilder builder(config_.alphabet);
  const std::size_t batch =
      config_.batch > 0 ? config_.batch
                        : std::max<std::size_t>(1, 4 * config_.outer_workers);

  SearchReport report;
  report.best.energy = -1.0;

  // Optional worker pool; with outer_workers == 1 evaluation is strictly
  // sequential (the serial search baseline of Fig. 4).
  std::unique_ptr<parallel::TaskPool> pool;
  if (config_.outer_workers > 1)
    pool = std::make_unique<parallel::TaskPool>(config_.outer_workers);

  for (std::size_t p = 1; p <= config_.p_max; ++p) {
    predictor.reset();
    while (!predictor.exhausted()) {
      std::vector<Encoding> encodings = predictor.propose(batch);
      if (encodings.empty()) break;

      // Constraint filter: rejected candidates never reach the evaluator but
      // do receive a zero reward so learning predictors avoid them.
      if (!config_.constraints.empty()) {
        std::vector<Encoding> admitted, rejected;
        for (Encoding& enc : encodings) {
          const qaoa::MixerSpec mixer = builder.decode(enc);
          const circuit::Circuit layer =
              qaoa::build_mixer_circuit(g.num_vertices(), mixer);
          std::string rejected_by;
          if (config_.constraints.admits(mixer, layer, &rejected_by)) {
            admitted.push_back(std::move(enc));
          } else {
            ++report.rejections[rejected_by];
            rejected.push_back(std::move(enc));
          }
        }
        if (!rejected.empty())
          predictor.feedback(rejected,
                             std::vector<double>(rejected.size(), 0.0));
        encodings = std::move(admitted);
        if (encodings.empty()) continue;
      }

      std::vector<CandidateResult> results;
      if (pool) {
        auto handle = pool->map_async(
            [&](const Encoding& enc) {
              return evaluator.evaluate(builder.decode(enc), p);
            },
            encodings);
        results = handle.get();
      } else {
        results.reserve(encodings.size());
        for (const Encoding& enc : encodings)
          results.push_back(evaluator.evaluate(builder.decode(enc), p));
      }

      std::vector<double> rewards;
      rewards.reserve(results.size());
      for (CandidateResult& r : results) {
        rewards.push_back(r.ratio);
        if (r.energy > report.best.energy) report.best = r;
        report.evaluated.push_back(std::move(r));
      }
      predictor.feedback(encodings, rewards);
    }
    log::debug("depth p=", p, ": best-so-far <C>=", report.best.energy, " ",
               report.best.mixer.to_string());
  }

  report.num_candidates = report.evaluated.size();
  report.seconds = timer.seconds();
  return report;
}

SearchReport SearchEngine::run_exhaustive(const graph::Graph& g,
                                          std::size_t k_max,
                                          CombinationMode mode) const {
  ExhaustivePredictor predictor(config_.alphabet, k_max, mode);
  return run(g, predictor);
}

}  // namespace qarch::search
