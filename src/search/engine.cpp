#include "search/engine.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/log.hpp"

namespace qarch::search {

const CandidateResult& SearchReport::best_at_depth(std::size_t p) const {
  const CandidateResult* best = nullptr;
  for (const CandidateResult& c : evaluated)
    if (c.p == p && (best == nullptr || c.energy > best->energy)) best = &c;
  QARCH_REQUIRE(best != nullptr, "no candidates evaluated at this depth");
  return *best;
}

SearchEngine::SearchEngine(SearchConfig config) : config_(std::move(config)) {
  QARCH_REQUIRE(config_.p_max >= 1, "p_max must be >= 1");
}

SearchReport SearchEngine::run(EvalService& service, const graph::Graph& g,
                               Predictor& predictor) const {
  const QBuilder builder(config_.alphabet);
  const std::size_t batch =
      config_.batch > 0 ? config_.batch
                        : std::max<std::size_t>(1, 4 * service.workers());

  SearchReport report;
  report.best.energy = -1.0;
  double first_submit = std::numeric_limits<double>::infinity();
  double last_finish = 0.0;

  // This run is one fair-share client: its own scheduler queue keeps a
  // concurrent wide client (another engine, a halving sweep) from starving
  // this search, and vice versa.
  EvalClient client = service.register_client("search", config_.client_weight);
  JobOptions job;
  job.client = client.id();

  for (std::size_t p = 1; p <= config_.p_max; ++p) {
    predictor.reset();
    while (!predictor.exhausted()) {
      std::vector<Encoding> encodings = predictor.propose(batch);
      if (encodings.empty()) break;

      // Constraint filter: rejected candidates never reach the service but
      // do receive a zero reward so learning predictors avoid them.
      if (!config_.constraints.empty()) {
        std::vector<Encoding> admitted, rejected;
        for (Encoding& enc : encodings) {
          const qaoa::MixerSpec mixer = builder.decode(enc);
          const circuit::Circuit layer =
              qaoa::build_mixer_circuit(g.num_vertices(), mixer);
          std::string rejected_by;
          if (config_.constraints.admits(mixer, layer, &rejected_by)) {
            admitted.push_back(std::move(enc));
          } else {
            ++report.rejections[rejected_by];
            rejected.push_back(std::move(enc));
          }
        }
        if (!rejected.empty())
          predictor.feedback(rejected,
                             std::vector<double>(rejected.size(), 0.0));
        encodings = std::move(admitted);
        if (encodings.empty()) continue;
      }

      // One submission per candidate; the service runs them on its shared
      // pool while this client blocks in collect(). Results come back in
      // submission order, so reward propagation and SELECT_BEST are
      // deterministic regardless of the service's worker count.
      std::vector<qaoa::MixerSpec> mixers;
      mixers.reserve(encodings.size());
      for (const Encoding& enc : encodings)
        mixers.push_back(builder.decode(enc));
      const std::vector<EvalTicket> tickets =
          service.submit_batch(g, mixers, p, job);
      std::vector<CandidateResult> results = service.collect(tickets);
      for (const EvalTicket& t : tickets) {
        first_submit = std::min(first_submit, t.submitted_at());
        last_finish = std::max(last_finish, t.finished_at());
        if (t.cache_hit())
          ++report.cache_hits;
        else
          ++report.cache_misses;
      }

      std::vector<double> rewards;
      rewards.reserve(results.size());
      for (CandidateResult& r : results) {
        rewards.push_back(r.ratio);
        if (r.energy > report.best.energy) report.best = r;
        report.evaluated.push_back(std::move(r));
      }
      predictor.feedback(encodings, rewards);
    }
    log::debug("depth p=", p, ": best-so-far <C>=", report.best.energy, " ",
               report.best.mixer.to_string());
  }

  report.num_candidates = report.evaluated.size();
  report.seconds =
      report.evaluated.empty() ? 0.0 : last_finish - first_submit;
  return report;
}

SearchReport SearchEngine::run(const graph::Graph& g,
                               Predictor& predictor) const {
  EvalService service(config_.session);
  return run(service, g, predictor);
}

SearchReport SearchEngine::run_exhaustive(EvalService& service,
                                          const graph::Graph& g,
                                          std::size_t k_max,
                                          CombinationMode mode) const {
  ExhaustivePredictor predictor(config_.alphabet, k_max, mode);
  return run(service, g, predictor);
}

SearchReport SearchEngine::run_exhaustive(const graph::Graph& g,
                                          std::size_t k_max,
                                          CombinationMode mode) const {
  ExhaustivePredictor predictor(config_.alphabet, k_max, mode);
  return run(g, predictor);
}

}  // namespace qarch::search
