// Evaluator module: trains a candidate circuit on the QAOA cost function and
// produces the reward propagated back to the predictor.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "optim/cobyla.hpp"
#include "qaoa/energy.hpp"
#include "qaoa/mixer.hpp"
#include "qaoa/objective.hpp"
#include "qaoa/train.hpp"
#include "query/sampler.hpp"

namespace qarch::search {

/// Everything known about one evaluated candidate.
struct CandidateResult {
  qaoa::MixerSpec mixer;
  std::size_t p = 0;
  double energy = 0.0;            ///< trained <C>
  double ratio = 0.0;             ///< energy ratio <C> / C_classical
                                  ///< (the search reward of Algorithm 1)
  double sampled_ratio = 0.0;     ///< Eq. 3: <C_max> / C_classical, the
                                  ///< expected-best-sampled-cut ratio the
                                  ///< paper's Figs. 7-9 report
  std::vector<double> theta;      ///< trained parameters
  std::size_t evaluations = 0;    ///< objective calls spent training
  // Per-candidate accounting stamped by the evaluation service (EvalService):
  double queue_seconds = 0.0;     ///< wait between submission and start
  double eval_seconds = 0.0;      ///< evaluation wall-clock (also set by
                                  ///< Evaluator::evaluate for direct calls)
  bool from_cache = false;        ///< this submission was served from the
                                  ///< service's caches (result cache or an
                                  ///< in-flight duplicate), not a fresh run
};

/// Evaluation configuration: which engine simulates, which optimizer trains.
struct EvaluatorOptions {
  qaoa::EnergyOptions energy;             ///< simulator engine selection
  optim::CobylaConfig cobyla;             ///< 200-eval COBYLA by default
  qaoa::TrainOptions train;
  bool simplify_circuit = true;           ///< run circuit::optimize on each
                                          ///< candidate before simulating
                                          ///< (action-preserving peepholes)
  /// Multi-start training: > 1 splits the COBYLA budget across seeded
  /// restarts (optim::MultiStart). All restarts of one candidate share the
  /// SAME cached energy plan — one compilation per candidate, total.
  std::size_t restarts = 1;
  double restart_perturbation = 1.0;      ///< stddev of restart-point jitter
  std::uint64_t restart_seed = 31;
  std::size_t shots = 128;                ///< samples per <C_max> batch
  std::size_t sample_trials = 8;          ///< batches averaged for <C_max>
  std::uint64_t sample_seed = 99;         ///< sampling stream seed
  /// Training objective. Expectation (default) trains on the exact <C>
  /// through the compiled energy plans — the paper's setup, bit-identical
  /// to the pre-objective evaluator. CVaR / BestOfShots train on a sampled
  /// statistic drawn from a compiled query::Sampler on the SAME engine the
  /// energy options select (spec.shots overrides `shots` when set).
  qaoa::ObjectiveSpec objective;
  /// Cost Hamiltonian. MaxCut (default) keeps the exact legacy scoring
  /// path; MIS / Ising route the ratio denominator through
  /// qaoa::classical_maximum and the sampling pass through the
  /// generalized-value scorer.
  qaoa::HamiltonianSpec hamiltonian;

  /// The energy options the evaluator actually runs with. The low-level
  /// reconciliation between EvaluatorOptions and EnergyOptions: when the
  /// evaluator pre-simplifies candidates itself, the compiled statevector
  /// plan must not re-run circuit::optimize on the result. Everything else
  /// (inner_workers, sv_plan toggles, cache capacity) passes through
  /// untouched, so callers' settings round-trip. Most callers should not
  /// wire this directly any more — qarch::SessionConfig::energy_options()
  /// is the session-level facade that absorbs this contract.
  [[nodiscard]] qaoa::EnergyOptions effective_energy() const {
    qaoa::EnergyOptions e = energy;
    if (simplify_circuit) e.sv_plan.presimplify = false;
    return e;
  }
};

/// Outcome of one resumable evaluation slice. When `completed` is false the
/// slice was parked by the PreemptToken: `result` is only partially filled
/// (no sampling pass yet) and the caller's OptimState holds the training
/// checkpoint that continues the run.
struct ResumableEvaluation {
  bool completed = false;
  CandidateResult result;
  std::size_t evaluations_done = 0;  ///< training evals consumed so far
};

/// Trains and scores candidate mixers for one fixed graph.
///
/// Thread-safe: evaluate() builds all per-candidate state locally, so one
/// Evaluator can be shared by every worker of the parallel search. The only
/// shared mutable state behind evaluate() is the per-(n, p) energy plan
/// cache in qaoa/energy.cpp, which guards itself with an annotated
/// qarch::Mutex (tier cache.energyplans, rank 50 in common/lock_order.hpp).
class Evaluator {
 public:
  Evaluator(const graph::Graph& g, EvaluatorOptions options = {});

  /// Trains the (mixer, p) candidate and returns its scored result
  /// (SIMULATE_QAOA + reward computation of Algorithm 1).
  [[nodiscard]] CandidateResult evaluate(const qaoa::MixerSpec& mixer,
                                         std::size_t p) const;

  /// Preemptible form: runs one training slice, polling `preempt` at the
  /// optimizer's safe points. A fresh `state` starts the candidate; a state
  /// packed by a previous parked slice continues it. Repeated slices stitch
  /// to a result identical to one uninterrupted evaluate() call — the final
  /// slice runs the sampling pass and completes.
  [[nodiscard]] ResumableEvaluation evaluate_resumable(
      const qaoa::MixerSpec& mixer, std::size_t p, optim::OptimState& state,
      optim::PreemptToken* preempt) const;

  /// The exact classical optimum of the configured Hamiltonian (max-cut
  /// value for the default spec, brute-force maximum otherwise).
  [[nodiscard]] double classical_optimum() const { return classical_optimum_; }

  [[nodiscard]] const graph::Graph& graph() const { return graph_; }
  [[nodiscard]] const qaoa::Hamiltonian& hamiltonian() const { return ham_; }
  [[nodiscard]] const EvaluatorOptions& options() const { return options_; }

 private:
  /// value / classical_optimum, or 0 when the optimum is not positive
  /// (possible for general Ising objectives; MaxCut optima always are).
  [[nodiscard]] double ratio_of(double value) const;
  [[nodiscard]] query::SamplerOptions sampler_options() const;

  graph::Graph graph_;
  EvaluatorOptions options_;
  qaoa::Hamiltonian ham_;
  qaoa::EnergyEvaluator energy_;
  optim::Cobyla cobyla_;
  double classical_optimum_ = 0.0;
};

}  // namespace qarch::search
