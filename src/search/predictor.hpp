// Predictor module: proposes candidate circuit encodings and learns from
// propagated rewards (Fig. 1 of the paper).
//
// Implementations:
//   * ExhaustivePredictor — enumerates every gate combination (the loop of
//     Algorithm 1; "random search" in the NAS sense of model-free search).
//   * RandomPredictor     — samples a fixed budget of uniform candidates.
//   * ReinforcePredictor  — the deep-neural-network controller trained with
//     policy gradients (declared in rl_predictor.hpp; the paper's Fig.-1
//     architecture and stated next version).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "search/combinations.hpp"
#include "search/qbuilder.hpp"

namespace qarch::search {

/// Strategy interface for proposing encodings and absorbing rewards.
class Predictor {
 public:
  virtual ~Predictor() = default;

  /// Proposes up to `max_batch` encodings (fewer near exhaustion; empty
  /// when done for this round).
  [[nodiscard]] virtual std::vector<Encoding> propose(std::size_t max_batch) = 0;

  /// Receives the reward (approximation ratio) for each proposed encoding.
  virtual void feedback(const std::vector<Encoding>& encodings,
                        const std::vector<double>& rewards) = 0;

  /// Restarts proposal for a new search round (new depth p).
  virtual void reset() = 0;

  /// True when the predictor has nothing more to propose this round.
  [[nodiscard]] virtual bool exhausted() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Enumerates all_combinations(alphabet, k_max) exactly once per round.
class ExhaustivePredictor final : public Predictor {
 public:
  ExhaustivePredictor(const GateAlphabet& alphabet, std::size_t k_max,
                      CombinationMode mode = CombinationMode::Product);

  [[nodiscard]] std::vector<Encoding> propose(std::size_t max_batch) override;
  void feedback(const std::vector<Encoding>&,
                const std::vector<double>&) override {}
  void reset() override { cursor_ = 0; }
  [[nodiscard]] bool exhausted() const override {
    return cursor_ >= encodings_.size();
  }
  [[nodiscard]] std::string name() const override { return "exhaustive"; }

  /// Total candidates enumerated per round.
  [[nodiscard]] std::size_t space_size() const { return encodings_.size(); }

 private:
  std::vector<Encoding> encodings_;
  std::size_t cursor_ = 0;
};

/// Samples `budget` uniformly random encodings per round.
class RandomPredictor final : public Predictor {
 public:
  RandomPredictor(const GateAlphabet& alphabet, std::size_t k_max,
                  std::size_t budget, std::uint64_t seed,
                  CombinationMode mode = CombinationMode::Product);

  [[nodiscard]] std::vector<Encoding> propose(std::size_t max_batch) override;
  void feedback(const std::vector<Encoding>&,
                const std::vector<double>&) override {}
  void reset() override { proposed_ = 0; }
  [[nodiscard]] bool exhausted() const override { return proposed_ >= budget_; }
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  GateAlphabet alphabet_;
  std::size_t k_max_;
  std::size_t budget_;
  CombinationMode mode_;
  Rng rng_;
  QBuilder builder_;
  std::size_t proposed_ = 0;
};

}  // namespace qarch::search
