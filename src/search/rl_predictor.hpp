// ReinforcePredictor: the deep-neural-network predictor of Fig. 1.
//
// An autoregressive controller (Zoph & Le 2016 style) emits one alphabet
// index per step; a learned STOP action terminates the sequence (so variable
// length 1..k_max mixers are reachable). Training is REINFORCE with an
// exponential-moving-average baseline: reward = approximation ratio
// propagated back by the evaluator ("Reward Propagation" in Fig. 1).
//
// The paper's released version uses random search and lists the DNN-guided
// search as the upcoming version; we implement it as the extension and
// compare the two in bench/abl_predictor.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/mlp.hpp"
#include "search/predictor.hpp"

namespace qarch::search {

/// Controller hyperparameters.
struct ReinforceConfig {
  std::size_t k_max = 4;          ///< maximum mixer sequence length
  std::size_t hidden = 32;        ///< controller hidden width
  std::size_t budget = 128;       ///< proposals per round (reset to reset)
  double learning_rate = 5e-2;
  double baseline_decay = 0.8;    ///< EMA decay of the reward baseline
  std::uint64_t seed = 2023;
};

/// Policy-gradient neural predictor.
class ReinforcePredictor final : public Predictor {
 public:
  ReinforcePredictor(const GateAlphabet& alphabet, ReinforceConfig config = {});

  [[nodiscard]] std::vector<Encoding> propose(std::size_t max_batch) override;
  void feedback(const std::vector<Encoding>& encodings,
                const std::vector<double>& rewards) override;
  void reset() override { proposed_ = 0; }
  [[nodiscard]] bool exhausted() const override {
    return proposed_ >= config_.budget;
  }
  [[nodiscard]] std::string name() const override { return "reinforce"; }

  /// Current EMA reward baseline (diagnostic).
  [[nodiscard]] double baseline() const { return baseline_; }

  /// Greedy (argmax) decode of the current policy.
  [[nodiscard]] Encoding greedy_decode() const;

 private:
  /// Feature vector for (previous action, position).
  [[nodiscard]] std::vector<double> features(std::size_t prev_action,
                                             std::size_t position) const;
  /// Masked action distribution at a step (STOP illegal at position 0).
  [[nodiscard]] std::vector<double> action_logits(std::size_t prev_action,
                                                  std::size_t position,
                                                  nn::Mlp::Trace* trace) const;

  GateAlphabet alphabet_;
  ReinforceConfig config_;
  Rng rng_;
  nn::Mlp policy_;
  nn::Adam adam_;
  double baseline_ = 0.0;
  bool baseline_init_ = false;
  std::size_t proposed_ = 0;

  std::size_t num_actions() const { return alphabet_.size() + 1; }  // + STOP
  std::size_t stop_action() const { return alphabet_.size(); }
  std::size_t start_token() const { return alphabet_.size() + 1; }
};

}  // namespace qarch::search
