#include "search/constraints.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qarch::search {

MaxDepthConstraint::MaxDepthConstraint(std::size_t max_depth)
    : max_depth_(max_depth) {
  QARCH_REQUIRE(max_depth >= 1, "max depth must be >= 1");
}

bool MaxDepthConstraint::admits(const qaoa::MixerSpec&,
                                const circuit::Circuit& layer) const {
  return layer.depth() <= max_depth_;
}

std::string MaxDepthConstraint::name() const {
  return "max-depth<=" + std::to_string(max_depth_);
}

bool TrainableConstraint::admits(const qaoa::MixerSpec& mixer,
                                 const circuit::Circuit&) const {
  return std::any_of(mixer.gates.begin(), mixer.gates.end(),
                     circuit::is_parameterized);
}

bool NoImmediateRepeatConstraint::admits(const qaoa::MixerSpec& mixer,
                                         const circuit::Circuit&) const {
  for (std::size_t i = 1; i < mixer.gates.size(); ++i)
    if (mixer.gates[i] == mixer.gates[i - 1]) return false;
  return true;
}

ForbiddenGatesConstraint::ForbiddenGatesConstraint(
    std::vector<circuit::GateKind> banned)
    : banned_(std::move(banned)) {}

bool ForbiddenGatesConstraint::admits(const qaoa::MixerSpec& mixer,
                                      const circuit::Circuit&) const {
  for (circuit::GateKind g : mixer.gates)
    if (std::find(banned_.begin(), banned_.end(), g) != banned_.end())
      return false;
  return true;
}

PredicateConstraint::PredicateConstraint(std::string name, Fn fn)
    : name_(std::move(name)), fn_(std::move(fn)) {
  QARCH_REQUIRE(fn_ != nullptr, "predicate must be callable");
}

bool PredicateConstraint::admits(const qaoa::MixerSpec& mixer,
                                 const circuit::Circuit& layer) const {
  return fn_(mixer, layer);
}

ConstraintSet& ConstraintSet::add(
    std::shared_ptr<const Constraint> constraint) {
  QARCH_REQUIRE(constraint != nullptr, "null constraint");
  constraints_.push_back(std::move(constraint));
  return *this;
}

bool ConstraintSet::admits(const qaoa::MixerSpec& mixer,
                           const circuit::Circuit& layer,
                           std::string* rejected_by) const {
  for (const auto& c : constraints_) {
    if (!c->admits(mixer, layer)) {
      if (rejected_by != nullptr) *rejected_by = c->name();
      return false;
    }
  }
  return true;
}

}  // namespace qarch::search
