#include "search/dataset.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "parallel/task_pool.hpp"

namespace qarch::search {

DatasetReport search_dataset(const std::vector<graph::Graph>& graphs,
                             const DatasetSearchConfig& config) {
  QARCH_REQUIRE(!graphs.empty(), "dataset must contain at least one graph");
  QARCH_REQUIRE(config.node_slots >= 1, "need at least one node slot");

  Timer timer;
  const SearchEngine engine(config.engine);

  // Node level: one graph's full search per slot.
  DatasetReport report;
  report.per_graph.resize(graphs.size());
  if (config.node_slots == 1) {
    for (std::size_t i = 0; i < graphs.size(); ++i)
      report.per_graph[i] =
          engine.run_exhaustive(graphs[i], config.k_max, config.mode);
  } else {
    parallel::TaskPool pool(config.node_slots);
    std::vector<std::tuple<std::size_t>> idx;
    for (std::size_t i = 0; i < graphs.size(); ++i) idx.emplace_back(i);
    report.per_graph = pool.starmap_async(
        [&](std::size_t i) {
          return engine.run_exhaustive(graphs[i], config.k_max, config.mode);
        },
        idx).get();
  }

  // Aggregate: mean reward per (mixer, p) across all graphs.
  struct Accumulator {
    double ratio_sum = 0.0;
    double sampled_sum = 0.0;
    std::size_t count = 0;
    qaoa::MixerSpec mixer;
    std::size_t p = 0;
  };
  std::map<std::string, Accumulator> by_candidate;
  for (const SearchReport& sr : report.per_graph) {
    for (const CandidateResult& c : sr.evaluated) {
      const std::string key =
          c.mixer.to_string() + "@p" + std::to_string(c.p);
      Accumulator& acc = by_candidate[key];
      acc.ratio_sum += c.ratio;
      acc.sampled_sum += c.sampled_ratio;
      acc.mixer = c.mixer;
      acc.p = c.p;
      ++acc.count;
    }
  }

  for (const auto& [_, acc] : by_candidate) {
    DatasetCandidate d;
    d.mixer = acc.mixer;
    d.p = acc.p;
    d.graphs = acc.count;
    d.mean_ratio = acc.ratio_sum / static_cast<double>(acc.count);
    d.mean_sampled_ratio = acc.sampled_sum / static_cast<double>(acc.count);
    report.ranking.push_back(std::move(d));
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const DatasetCandidate& a, const DatasetCandidate& b) {
              return a.mean_ratio > b.mean_ratio;
            });
  QARCH_CHECK(!report.ranking.empty(), "no candidates aggregated");
  report.best = report.ranking.front();
  report.seconds = timer.seconds();
  return report;
}

}  // namespace qarch::search
