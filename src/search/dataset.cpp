#include "search/dataset.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "parallel/thread.hpp"
#include "search/eval_service.hpp"

namespace qarch::search {

SessionConfig dataset_session(const std::vector<graph::Graph>& graphs,
                              const DatasetSearchConfig& config) {
  QARCH_REQUIRE(!graphs.empty(), "dataset must contain at least one graph");
  QARCH_REQUIRE(config.node_slots >= 1, "need at least one node slot");
  const std::size_t clients = std::min(config.node_slots, graphs.size());
  // One shared service for the whole dataset. Every graph needs its own
  // evaluator — up to two under backend=Auto, which can resolve different
  // candidates of one graph to different engines — so make sure interleaved
  // clients cannot thrash the LRU. The pool must also be wide enough to
  // actually serve `clients` concurrent searches: node_slots used to mean
  // node_slots private worker pools, so the shared pool gets
  // clients × workers threads (0 already means all cores). Fair-share
  // scheduling is per dataset NODE for free: each engine.run_exhaustive
  // below registers its own weighted queue (SearchConfig::client_weight) on
  // the service, so a node searching a big graph cannot starve the others.
  SessionConfig session = config.engine.session;
  session.evaluator_cache =
      std::max(session.evaluator_cache, 2 * graphs.size());
  if (session.workers != 0) session.workers *= clients;
  return session;
}

DatasetReport search_dataset(const std::vector<graph::Graph>& graphs,
                             const DatasetSearchConfig& config) {
  EvalService service(dataset_session(graphs, config));
  return search_dataset(graphs, config, service);
}

DatasetReport search_dataset(const std::vector<graph::Graph>& graphs,
                             const DatasetSearchConfig& config,
                             EvalService& service) {
  QARCH_REQUIRE(!graphs.empty(), "dataset must contain at least one graph");
  QARCH_REQUIRE(config.node_slots >= 1, "need at least one node slot");

  Timer timer;
  const std::size_t clients = std::min(config.node_slots, graphs.size());
  const SearchEngine engine(config.engine);

  DatasetReport report;
  report.per_graph.resize(graphs.size());
  if (clients <= 1) {
    for (std::size_t i = 0; i < graphs.size(); ++i)
      report.per_graph[i] =
          engine.run_exhaustive(service, graphs[i], config.k_max, config.mode);
  } else {
    // Client threads drain the graph list; all submissions land in the one
    // shared service pool (this is the multi-client deployment the service
    // exists for — NOT a second worker pool: clients mostly block in
    // collect()).
    std::atomic<std::size_t> next{0};
    Mutex error_mutex{85, "parallel.errors"};
    std::exception_ptr first_error;
    std::vector<parallel::Thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= graphs.size()) return;
          try {
            report.per_graph[i] = engine.run_exhaustive(
                service, graphs[i], config.k_max, config.mode);
          } catch (...) {
            LockGuard lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            return;
          }
        }
      });
    }
    for (parallel::Thread& t : threads) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  // Aggregate: mean reward per (mixer, p) across all graphs.
  struct Accumulator {
    double ratio_sum = 0.0;
    double sampled_sum = 0.0;
    std::size_t count = 0;
    qaoa::MixerSpec mixer;
    std::size_t p = 0;
  };
  std::map<std::string, Accumulator> by_candidate;
  for (const SearchReport& sr : report.per_graph) {
    for (const CandidateResult& c : sr.evaluated) {
      const std::string key =
          c.mixer.to_string() + "@p" + std::to_string(c.p);
      Accumulator& acc = by_candidate[key];
      acc.ratio_sum += c.ratio;
      acc.sampled_sum += c.sampled_ratio;
      acc.mixer = c.mixer;
      acc.p = c.p;
      ++acc.count;
    }
  }

  for (const auto& [_, acc] : by_candidate) {
    DatasetCandidate d;
    d.mixer = acc.mixer;
    d.p = acc.p;
    d.graphs = acc.count;
    d.mean_ratio = acc.ratio_sum / static_cast<double>(acc.count);
    d.mean_sampled_ratio = acc.sampled_sum / static_cast<double>(acc.count);
    report.ranking.push_back(std::move(d));
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const DatasetCandidate& a, const DatasetCandidate& b) {
              return a.mean_ratio > b.mean_ratio;
            });
  QARCH_CHECK(!report.ranking.empty(), "no candidates aggregated");
  report.best = report.ranking.front();
  report.seconds = timer.seconds();
  return report;
}

}  // namespace qarch::search
