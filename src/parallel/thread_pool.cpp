#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <thread>

namespace qarch::parallel {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  while (!queue_.empty() || active_ != 0) idle_cv_.wait(lock);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      // priority_queue::top() is const; moving out right before pop() is
      // safe (the element is discarded either way).
      task = std::move(const_cast<Task&>(queue_.top()).fn);
      queue_.pop();
      ++active_;
    }
    task();
    {
      LockGuard lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace qarch::parallel
