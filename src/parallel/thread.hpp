// The repo's single thread-spawn point.
//
// `tools/qarch_lint.py` forbids `std::thread` outside src/parallel/ so every
// thread in the system is created through one audited surface (this wrapper,
// ThreadPool, parallel_for). Thread is deliberately narrower than
// std::thread:
//
//   * no detach() — every qarch thread has an owner that joins it, so
//     shutdown is deterministic and sanitizer reports carry full stacks;
//   * join-on-destroy — destroying a still-running Thread joins instead of
//     calling std::terminate, making early-return error paths safe.
#pragma once

#include <thread>
#include <utility>

namespace qarch {
namespace parallel {

class Thread {
 public:
  Thread() = default;
  template <typename Fn, typename... Args>
  explicit Thread(Fn&& fn, Args&&... args)
      : t_(std::forward<Fn>(fn), std::forward<Args>(args)...) {}
  Thread(Thread&&) = default;
  Thread& operator=(Thread&& other) {
    if (this != &other) {
      if (t_.joinable()) t_.join();
      t_ = std::move(other.t_);
    }
    return *this;
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;
  ~Thread() {
    if (t_.joinable()) t_.join();
  }

  bool joinable() const { return t_.joinable(); }
  void join() { t_.join(); }

 private:
  std::thread t_;
};

}  // namespace parallel
}  // namespace qarch
