// Fork-join data parallelism (OpenMP "parallel for" idiom).
//
// Used for the *inner* level of the two-level parallelization scheme:
// distributing per-edge expectation values or tensor-contraction work across
// threads inside one candidate evaluation.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "parallel/thread.hpp"

namespace qarch::parallel {

/// Runs body(i) for i in [begin, end) on up to `workers` threads.
///
/// Work is distributed dynamically in chunks via an atomic counter (the
/// OpenMP `schedule(dynamic)` idiom) so uneven task costs balance well.
/// Exceptions thrown by the body are captured and the first one rethrown on
/// the calling thread after all workers join.
inline void parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         std::size_t workers = 0, std::size_t chunk = 1) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, n);
  if (chunk == 0) chunk = 1;

  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{begin};
  // Leaf-tier lock (see lock_order.hpp): bodies may hold cache/scratch
  // locks when they throw, but those are released by unwinding before the
  // catch block runs.
  Mutex err_mutex{85, "parallel.errors"};
  std::exception_ptr first_error;

  auto run = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk);
      if (lo >= end) return;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        LockGuard lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<Thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(run);
  run();
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs body(lo, hi) over contiguous sub-ranges of [begin, end) of at most
/// `block` elements each, distributed dynamically across `workers` threads.
/// The range-based sibling of parallel_for: one callable invocation per
/// BLOCK instead of per index, so vectorized loop bodies (SIMD statevector
/// passes) keep their throughput under dynamic scheduling. Blocks start at
/// begin + j*block, so a power-of-two `block` with an aligned `begin`
/// guarantees aligned sub-ranges.
inline void parallel_for_blocks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t workers = 0, std::size_t block = 4096) {
  if (begin >= end) return;
  if (block == 0) block = 1;
  if (workers == 0)  // family convention: 0 = all hardware threads
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t num_blocks = (end - begin + block - 1) / block;
  if (workers <= 1 || num_blocks <= 1) {
    body(begin, end);
    return;
  }
  parallel_for(
      0, num_blocks,
      [&](std::size_t j) {
        const std::size_t lo = begin + j * block;
        body(lo, std::min(end, lo + block));
      },
      workers, 1);
}

/// Parallel map: applies fn to each element of `inputs`, preserving order.
template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& inputs, Fn&& fn,
                  std::size_t workers = 0)
    -> std::vector<decltype(fn(inputs.front()))> {
  using Out = decltype(fn(inputs.front()));
  std::vector<Out> out(inputs.size());
  parallel_for(
      0, inputs.size(), [&](std::size_t i) { out[i] = fn(inputs[i]); },
      workers);
  return out;
}

/// Parallel reduction over contiguous blocks (OpenMP `reduction` idiom).
///
/// Splits [begin, end) into one contiguous block per worker (static schedule
/// — intended for uniform per-element cost like statevector sweeps), runs
/// `block(lo, hi)` on each, and folds the per-block partials IN INDEX ORDER
/// with `combine` on the calling thread. Deterministic for a fixed worker
/// count. Exceptions from blocks are rethrown after all workers join.
template <typename T, typename BlockFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                  const BlockFn& block, const CombineFn& combine,
                  std::size_t workers = 0) {
  if (begin >= end) return identity;
  const std::size_t n = end - begin;
  if (workers == 0)
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, n);

  if (workers <= 1) return combine(std::move(identity), block(begin, end));

  // One contiguous [lo, hi) block per worker; parallel_map supplies the
  // thread pool, exception capture, and ordered results.
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  blocks.reserve(workers);
  const std::size_t per = n / workers, extra = n % workers;
  std::size_t lo = begin;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t hi = lo + per + (w < extra ? 1 : 0);
    blocks.emplace_back(lo, hi);
    lo = hi;
  }
  auto partials = parallel_map(
      blocks, [&](const std::pair<std::size_t, std::size_t>& b) {
        return block(b.first, b.second);
      },
      workers);
  T out = std::move(identity);
  for (auto& p : partials) out = combine(std::move(out), std::move(p));
  return out;
}

}  // namespace qarch::parallel
