// starmap_async-style bulk task execution.
//
// The paper parallelizes the gate-combination loop with Python
// `multiprocessing.Pool.starmap_async`. `TaskPool::starmap_async` reproduces
// that contract: submit fn over a vector of argument tuples, obtain a handle,
// and collect ordered results later. Built on ThreadPool.
//
// Thread safety: TaskPool owns no locks of its own — all synchronization
// lives in ThreadPool (annotated `qarch::Mutex`, tier `pool.queue` in
// common/lock_order.hpp) and in the std::future handshake. MapResult is
// thread-compatible: one owner collects results.
#pragma once

#include <future>
#include <tuple>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace qarch::parallel {

/// Handle for an in-flight starmap_async call; `get()` blocks and returns
/// results in submission order (exactly like multiprocessing's MapResult).
template <typename R>
class MapResult {
 public:
  explicit MapResult(std::vector<std::future<R>> futures)
      : futures_(std::move(futures)) {}

  /// Blocks until every task finished; rethrows the first task exception.
  std::vector<R> get() {
    std::vector<R> out;
    out.reserve(futures_.size());
    for (auto& f : futures_) out.push_back(f.get());
    return out;
  }

  /// True when every task has completed (non-blocking poll). Futures whose
  /// results were already collected by get() count as completed.
  [[nodiscard]] bool ready() const {
    for (const auto& f : futures_) {
      if (!f.valid()) continue;  // consumed by get()
      if (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready)
        return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const { return futures_.size(); }

 private:
  std::vector<std::future<R>> futures_;
};

/// A pool facade mirroring multiprocessing.Pool's bulk-submission API.
class TaskPool {
 public:
  /// Creates the pool with `workers` threads (0 = hardware concurrency).
  explicit TaskPool(std::size_t workers = 0) : pool_(workers) {}

  [[nodiscard]] std::size_t size() const { return pool_.size(); }

  /// Applies fn to each argument tuple asynchronously; returns a handle.
  template <typename Fn, typename... Args>
  auto starmap_async(Fn fn, const std::vector<std::tuple<Args...>>& args)
      -> MapResult<decltype(std::apply(fn, args.front()))> {
    using R = decltype(std::apply(fn, args.front()));
    std::vector<std::future<R>> futures;
    futures.reserve(args.size());
    for (const auto& a : args)
      futures.push_back(pool_.submit([fn, a] { return std::apply(fn, a); }));
    return MapResult<R>(std::move(futures));
  }

  /// Applies fn to each single argument asynchronously (Pool.map_async).
  template <typename Fn, typename Arg>
  auto map_async(Fn fn, const std::vector<Arg>& args)
      -> MapResult<decltype(fn(args.front()))> {
    using R = decltype(fn(args.front()));
    std::vector<std::future<R>> futures;
    futures.reserve(args.size());
    for (const auto& a : args)
      futures.push_back(pool_.submit([fn, a] { return fn(a); }));
    return MapResult<R>(std::move(futures));
  }

  /// Submits one callable asynchronously (Pool.apply_async). The evaluation
  /// service feeds its job queue through this single-task entry point.
  /// Higher `priority` tasks jump the pool queue (FIFO among equals); the
  /// bulk starmap/map entry points always submit at the default priority 0.
  template <typename Fn>
  auto apply_async(Fn fn, int priority = 0)
      -> std::future<std::invoke_result_t<Fn>> {
    return pool_.submit(std::move(fn), priority);
  }

  /// Direct access to the underlying pool for single submissions.
  ThreadPool& raw() { return pool_; }

 private:
  ThreadPool pool_;
};

}  // namespace qarch::parallel
