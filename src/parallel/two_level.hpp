// Two-level parallelization scheme (Fig. 2 of the paper).
//
// The paper splits work across *nodes* of Polaris (one graph / search job per
// node) and, within a node, across CPUs (one candidate circuit per process)
// with the simulator optionally using a GPU. On a single machine we model the
// same structure as nested thread groups:
//
//   outer level  — `outer_workers` concurrent candidate evaluations
//   inner level  — each evaluation may use `inner_workers` threads for the
//                  simulator backend (per-edge expectations / contraction)
//
// TwoLevelExecutor owns the budget split so a fixed core budget C can be
// partitioned as outer×inner = C; the `abl_two_level` bench sweeps this.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "parallel/task_pool.hpp"

namespace qarch::parallel {

/// Splits a total core budget between outer (search) and inner (simulator)
/// parallelism and runs bulk jobs under that split.
class TwoLevelExecutor {
 public:
  /// `outer_workers` concurrent tasks, each told it may use `inner_workers`
  /// threads. Both must be >= 1.
  TwoLevelExecutor(std::size_t outer_workers, std::size_t inner_workers)
      : inner_workers_(inner_workers), pool_(outer_workers) {
    QARCH_REQUIRE(outer_workers >= 1 && inner_workers >= 1,
                  "worker counts must be >= 1");
  }

  [[nodiscard]] std::size_t outer_workers() const { return pool_.size(); }
  [[nodiscard]] std::size_t inner_workers() const { return inner_workers_; }

  /// Runs fn(item_index, inner_workers) for every index in [0, n), with at
  /// most outer_workers() in flight; returns per-item results in order.
  template <typename R>
  std::vector<R> run(std::size_t n,
                     const std::function<R(std::size_t, std::size_t)>& fn) {
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      futures.push_back(pool_.raw().submit(
          [fn, i, inner = inner_workers_] { return fn(i, inner); }));
    std::vector<R> out;
    out.reserve(n);
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  std::size_t inner_workers_;
  TaskPool pool_;
};

}  // namespace qarch::parallel
