// Fixed-size thread pool.
//
// This is the process-level parallelism substrate standing in for Python's
// `multiprocessing.Pool` in the paper: a pool of N workers pulls independent
// tasks (candidate-circuit evaluations) from a shared queue. The worker count
// is an explicit constructor argument because the Fig. 5 experiment sweeps it
// from 8 to 64 regardless of the physical core count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qarch::parallel {

/// A fixed pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// Spawns `workers` threads (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t workers = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Submits a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace qarch::parallel
