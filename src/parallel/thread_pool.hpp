// Fixed-size thread pool.
//
// This is the process-level parallelism substrate standing in for Python's
// `multiprocessing.Pool` in the paper: a pool of N workers pulls independent
// tasks (candidate-circuit evaluations) from a shared queue. The worker count
// is an explicit constructor argument because the Fig. 5 experiment sweeps it
// from 8 to 64 regardless of the physical core count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <queue>
#include <vector>

#include "common/annotations.hpp"
#include "parallel/thread.hpp"

namespace qarch::parallel {

/// A fixed pool of worker threads. Tasks are dispatched by priority (higher
/// first), FIFO among tasks of equal priority — a plain FIFO pool when
/// everything is submitted at the default priority 0.
class ThreadPool {
 public:
  /// Spawns `workers` threads (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t workers = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Submits a callable; returns a future for its result. Higher `priority`
  /// tasks are picked up before lower ones; equal priorities run FIFO.
  template <typename F>
  auto submit(F&& fn, int priority = 0)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      LockGuard lock(mutex_);
      queue_.push(Task{priority, next_seq_++, [task] { (*task)(); }});
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void wait_idle() QARCH_EXCLUDES(mutex_);

 private:
  /// One queued task: priority beats sequence; sequence restores FIFO among
  /// equal priorities.
  struct Task {
    int priority = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  struct TaskOrder {
    bool operator()(const Task& a, const Task& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;  // earlier submissions first
    }
  };

  void worker_loop() QARCH_EXCLUDES(mutex_);

  std::vector<Thread> threads_;
  Mutex mutex_{70, "pool.queue"};
  std::priority_queue<Task, std::vector<Task>, TaskOrder> queue_
      QARCH_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ QARCH_GUARDED_BY(mutex_) = 0;
  CondVar cv_;
  CondVar idle_cv_;
  std::size_t active_ QARCH_GUARDED_BY(mutex_) = 0;
  bool stop_ QARCH_GUARDED_BY(mutex_) = false;
};

}  // namespace qarch::parallel
