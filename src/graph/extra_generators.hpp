// Additional graph families and simple edge-list IO.
//
// The paper evaluates on ER and random-regular instances; these families
// (cycles, complete/bipartite graphs, grids, preferential attachment) widen
// the test surface and let users benchmark discovered mixers on structured
// topologies with known max-cut values.
#pragma once

#include <cstddef>
#include <string>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace qarch::graph {

/// The n-cycle C_n (n >= 3). Max-cut = n for even n, n-1 for odd n.
Graph cycle(std::size_t n);

/// The path P_n (n >= 2). Max-cut = n-1 (every edge cuttable).
Graph path(std::size_t n);

/// The complete graph K_n. Max-cut = floor(n/2) * ceil(n/2).
Graph complete(std::size_t n);

/// Complete bipartite K_{a,b}. Max-cut = a*b (fully cuttable).
Graph complete_bipartite(std::size_t a, std::size_t b);

/// The star S_n: one hub, n-1 leaves. Max-cut = n-1.
Graph star(std::size_t n);

/// rows x cols grid graph. Bipartite, so max-cut = all edges.
Graph grid(std::size_t rows, std::size_t cols);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m + 1` vertices, then each new vertex attaches to m distinct existing
/// vertices with probability proportional to degree.
Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng);

/// Assigns each edge a uniform random weight in [lo, hi] (fresh graph).
Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng);

/// Serializes as an edge list: first line "n m", then one "u v weight" line
/// per edge.
std::string to_edge_list(const Graph& g);

/// Parses the to_edge_list format; throws InvalidArgument on malformed text.
Graph from_edge_list(const std::string& text);

}  // namespace qarch::graph
