// Classical max-cut solvers.
//
// The approximation ratio r = <C> / C_classical (Eq. 3) needs the classical
// optimum; for the paper's 10-node instances we compute it exactly by
// enumerating all 2^(n-1) bipartitions. Greedy + local-search heuristics are
// provided for larger instances and as cross-checks.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace qarch::graph {

/// Result of a max-cut solve: the cut weight and a witness assignment
/// (z[v] in {-1, +1}).
struct CutResult {
  double value = 0.0;
  std::vector<int> assignment;
};

/// Exact max-cut by exhaustive enumeration. Feasible up to ~26 vertices.
/// Fixing vertex 0's side halves the search space (cut is symmetric).
CutResult maxcut_exact(const Graph& g);

/// Greedy constructive heuristic: place each vertex on the side that
/// currently gains more cut weight.
CutResult maxcut_greedy(const Graph& g);

/// 1-flip local search started from `start` (or greedy if empty): flips the
/// best-improving vertex until no single flip improves the cut.
CutResult maxcut_local_search(const Graph& g, std::vector<int> start = {});

/// Multi-start randomized local search with `restarts` random initial cuts.
CutResult maxcut_multistart(const Graph& g, std::size_t restarts, Rng& rng);

}  // namespace qarch::graph
