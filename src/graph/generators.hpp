// Random graph generators for the paper's workloads:
//   * Erdős–Rényi G(n, p)     — Fig. 4/5 search profiling and Fig. 8 eval
//   * random d-regular graphs — Fig. 7/9 evaluation (10-node, 4-regular)
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace qarch::graph {

/// Samples G(n, p): each of the n(n-1)/2 possible edges appears
/// independently with probability p.
Graph erdos_renyi(std::size_t n, double p, Rng& rng);

/// Samples a connected G(n, p) by rejection (at most `max_tries` attempts;
/// throws Error if none is connected — use p well above the ln(n)/n
/// connectivity threshold).
Graph erdos_renyi_connected(std::size_t n, double p, Rng& rng,
                            std::size_t max_tries = 1000);

/// Samples a uniformly random d-regular simple graph via the configuration
/// (pairing) model with restarts. Requires n*d even and d < n.
Graph random_regular(std::size_t n, std::size_t d, Rng& rng);

/// The cycle graph C_n (deterministic, 2-regular, n >= 3): the maximally
/// symmetric regular instance — every edge sees the same neighbourhood, so
/// all <Z_u Z_v> lightcone shapes coincide (the shape-dedup showcase).
Graph ring(std::size_t n);

/// The paper's profiling dataset: `count` Erdős–Rényi graphs on `n` nodes
/// with "varying degrees of connectivity" — edge probability is drawn
/// uniformly from [p_lo, p_hi] per graph.
std::vector<Graph> er_dataset(std::size_t count, std::size_t n, double p_lo,
                              double p_hi, Rng& rng);

/// The paper's evaluation dataset: `count` random d-regular graphs on n nodes.
std::vector<Graph> regular_dataset(std::size_t count, std::size_t n,
                                   std::size_t d, Rng& rng);

}  // namespace qarch::graph
