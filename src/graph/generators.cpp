#include "graph/generators.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qarch::graph {

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  QARCH_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0, 1]");
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) g.add_edge(u, v);
  return g;
}

Graph erdos_renyi_connected(std::size_t n, double p, Rng& rng,
                            std::size_t max_tries) {
  for (std::size_t t = 0; t < max_tries; ++t) {
    Graph g = erdos_renyi(n, p, rng);
    if (g.is_connected()) return g;
  }
  throw Error("erdos_renyi_connected: no connected sample found");
}

Graph ring(std::size_t n) {
  QARCH_REQUIRE(n >= 3, "ring needs at least 3 vertices");
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph random_regular(std::size_t n, std::size_t d, Rng& rng) {
  QARCH_REQUIRE(d < n, "degree must be < n");
  QARCH_REQUIRE((n * d) % 2 == 0, "n*d must be even");
  // Configuration model: n*d half-edge stubs are paired uniformly at random;
  // retry whenever the pairing produces a self-loop or a parallel edge. For
  // the paper's sizes (n=10, d=4) a valid pairing is found almost instantly.
  constexpr std::size_t kMaxRestarts = 100000;
  for (std::size_t attempt = 0; attempt < kMaxRestarts; ++attempt) {
    std::vector<std::size_t> stubs;
    stubs.reserve(n * d);
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(stubs);

    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
      const std::size_t u = stubs[i], v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) ok = false;
      else g.add_edge(u, v);
    }
    if (ok) return g;
  }
  throw Error("random_regular: pairing model failed to converge");
}

std::vector<Graph> er_dataset(std::size_t count, std::size_t n, double p_lo,
                              double p_hi, Rng& rng) {
  QARCH_REQUIRE(p_lo <= p_hi, "p_lo must be <= p_hi");
  std::vector<Graph> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double p = rng.uniform(p_lo, p_hi);
    out.push_back(erdos_renyi_connected(n, p, rng));
  }
  return out;
}

std::vector<Graph> regular_dataset(std::size_t count, std::size_t n,
                                   std::size_t d, Rng& rng) {
  std::vector<Graph> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    out.push_back(random_regular(n, d, rng));
  return out;
}

}  // namespace qarch::graph
