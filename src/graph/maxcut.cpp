#include "graph/maxcut.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace qarch::graph {

CutResult maxcut_exact(const Graph& g) {
  const std::size_t n = g.num_vertices();
  QARCH_REQUIRE(n >= 1, "empty graph");
  QARCH_REQUIRE(n <= 26, "exact solver limited to 26 vertices");
  const auto& edges = g.edges();

  double best = -1.0;
  std::uint64_t best_mask = 0;
  // Vertex 0 is fixed on side 0: the cut function is invariant under global
  // side swap, so enumerating 2^(n-1) masks covers every bipartition.
  const std::uint64_t limit = 1ULL << (n - 1);
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const std::uint64_t sides = mask << 1;  // bit v = side of vertex v
    double cut = 0.0;
    for (const auto& e : edges)
      if (((sides >> e.u) & 1ULL) != ((sides >> e.v) & 1ULL)) cut += e.weight;
    if (cut > best) {
      best = cut;
      best_mask = sides;
    }
  }

  CutResult r;
  r.value = best;
  r.assignment.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    r.assignment[v] = ((best_mask >> v) & 1ULL) ? -1 : +1;
  return r;
}

CutResult maxcut_greedy(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<std::pair<std::size_t, double>>> incident(n);
  for (const auto& e : g.edges()) {
    incident[e.u].emplace_back(e.v, e.weight);
    incident[e.v].emplace_back(e.u, e.weight);
  }
  std::vector<int> z(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    // Weighted gain of placing v on +1 vs -1 given already-placed neighbours.
    double gain_plus = 0.0, gain_minus = 0.0;
    for (const auto& [w, weight] : incident[v]) {
      if (w >= v || z[w] == 0) continue;
      if (z[w] == -1) gain_plus += weight;
      else gain_minus += weight;
    }
    z[v] = gain_plus >= gain_minus ? +1 : -1;
  }
  return CutResult{g.cut_value(z), std::move(z)};
}

namespace {

/// Runs 1-flip best-improvement local search in place; returns cut value.
double local_search_inplace(const Graph& g, std::vector<int>& z) {
  const std::size_t n = g.num_vertices();
  // Weighted incidence lists: flipping v toggles each incident edge's cut
  // membership, so the gain must use the edge WEIGHT, not a unit count.
  std::vector<std::vector<std::pair<std::size_t, double>>> incident(n);
  for (const auto& e : g.edges()) {
    incident[e.u].emplace_back(e.v, e.weight);
    incident[e.v].emplace_back(e.u, e.weight);
  }

  double cut = g.cut_value(z);
  for (;;) {
    double best_delta = 0.0;
    std::size_t best_v = n;
    for (std::size_t v = 0; v < n; ++v) {
      double delta = 0.0;
      for (const auto& [w, weight] : incident[v])
        delta += (z[v] != z[w]) ? -weight : +weight;
      if (delta > best_delta) {
        best_delta = delta;
        best_v = v;
      }
    }
    if (best_v == n) break;
    z[best_v] = -z[best_v];
    cut += best_delta;
  }
  return cut;
}

}  // namespace

CutResult maxcut_local_search(const Graph& g, std::vector<int> start) {
  if (start.empty()) start = maxcut_greedy(g).assignment;
  QARCH_REQUIRE(start.size() == g.num_vertices(), "start size mismatch");
  const double cut = local_search_inplace(g, start);
  return CutResult{cut, std::move(start)};
}

CutResult maxcut_multistart(const Graph& g, std::size_t restarts, Rng& rng) {
  QARCH_REQUIRE(restarts >= 1, "need at least one restart");
  CutResult best;
  best.value = -1.0;
  const std::size_t n = g.num_vertices();
  for (std::size_t r = 0; r < restarts; ++r) {
    std::vector<int> z(n);
    for (auto& s : z) s = rng.bernoulli(0.5) ? +1 : -1;
    const double cut = local_search_inplace(g, z);
    if (cut > best.value) best = CutResult{cut, std::move(z)};
  }
  return best;
}

}  // namespace qarch::graph
