#include "graph/extra_generators.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qarch::graph {

Graph cycle(std::size_t n) {
  QARCH_REQUIRE(n >= 3, "cycle needs n >= 3");
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph path(std::size_t n) {
  QARCH_REQUIRE(n >= 2, "path needs n >= 2");
  Graph g(n);
  for (std::size_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph complete(std::size_t n) {
  QARCH_REQUIRE(n >= 2, "complete graph needs n >= 2");
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  QARCH_REQUIRE(a >= 1 && b >= 1, "parts must be non-empty");
  Graph g(a + b);
  for (std::size_t u = 0; u < a; ++u)
    for (std::size_t v = 0; v < b; ++v) g.add_edge(u, a + v);
  return g;
}

Graph star(std::size_t n) {
  QARCH_REQUIRE(n >= 2, "star needs n >= 2");
  Graph g(n);
  for (std::size_t v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  QARCH_REQUIRE(rows >= 1 && cols >= 1 && rows * cols >= 2,
                "grid needs at least two vertices");
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return r * cols + c;
  };
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  QARCH_REQUIRE(m >= 1, "attachment count must be >= 1");
  QARCH_REQUIRE(n > m + 1, "need n > m + 1");
  Graph g(n);
  // Seed clique on m+1 vertices.
  for (std::size_t u = 0; u <= m; ++u)
    for (std::size_t v = u + 1; v <= m; ++v) g.add_edge(u, v);

  // Repeated-endpoint list: sampling uniformly from it is degree-
  // proportional sampling.
  std::vector<std::size_t> endpoints;
  for (const auto& e : g.edges()) {
    endpoints.push_back(e.u);
    endpoints.push_back(e.v);
  }

  for (std::size_t v = m + 1; v < n; ++v) {
    std::vector<std::size_t> targets;
    while (targets.size() < m) {
      const std::size_t pick = endpoints[rng.uniform_int(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), pick) == targets.end())
        targets.push_back(pick);
    }
    for (std::size_t t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Graph with_random_weights(const Graph& g, double lo, double hi, Rng& rng) {
  QARCH_REQUIRE(lo <= hi, "weight range inverted");
  Graph out(g.num_vertices());
  for (const auto& e : g.edges())
    out.add_edge(e.u, e.v, rng.uniform(lo, hi));
  return out;
}

std::string to_edge_list(const Graph& g) {
  std::ostringstream os;
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  os.precision(17);
  for (const auto& e : g.edges())
    os << e.u << ' ' << e.v << ' ' << e.weight << '\n';
  return os.str();
}

Graph from_edge_list(const std::string& text) {
  std::istringstream is(text);
  std::size_t n = 0, m = 0;
  if (!(is >> n >> m)) throw InvalidArgument("edge list: missing header");
  Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t u = 0, v = 0;
    double w = 0.0;
    if (!(is >> u >> v >> w))
      throw InvalidArgument("edge list: truncated at edge " +
                            std::to_string(i));
    g.add_edge(u, v, w);
  }
  return g;
}

}  // namespace qarch::graph
