// Simple undirected weighted graph used as the QAOA problem instance.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qarch::graph {

/// An undirected edge with weight (1.0 for unweighted instances).
struct Edge {
  std::size_t u = 0;
  std::size_t v = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Simple undirected graph (no self-loops, no parallel edges), stored as an
/// edge list plus adjacency sets for O(deg) neighbourhood queries.
class Graph {
 public:
  Graph() = default;

  /// Creates an empty graph on n vertices.
  explicit Graph(std::size_t n);

  /// Number of vertices.
  [[nodiscard]] std::size_t num_vertices() const { return adjacency_.size(); }

  /// Number of edges.
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Adds the undirected edge {u, v} with the given weight.
  /// Throws InvalidArgument on self-loops, out-of-range endpoints, or
  /// duplicate edges.
  void add_edge(std::size_t u, std::size_t v, double weight = 1.0);

  /// True when {u, v} is an edge.
  [[nodiscard]] bool has_edge(std::size_t u, std::size_t v) const;

  /// Degree of vertex v.
  [[nodiscard]] std::size_t degree(std::size_t v) const;

  /// Neighbours of vertex v (unsorted).
  [[nodiscard]] const std::vector<std::size_t>& neighbors(std::size_t v) const;

  /// All edges in insertion order.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Sum of all edge weights.
  [[nodiscard]] double total_weight() const;

  /// Cut value of the ±1 assignment `z` (z.size() == num_vertices()):
  /// sum of w_uv over edges with z_u != z_v. This is C_MC(z) from Eq. (1).
  [[nodiscard]] double cut_value(const std::vector<int>& z) const;

  /// True if every vertex is reachable from vertex 0 (or the graph is empty).
  [[nodiscard]] bool is_connected() const;

  /// Human-readable description, e.g. "Graph(n=10, m=20)".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> adjacency_;
};

}  // namespace qarch::graph
