#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace qarch::graph {

Graph::Graph(std::size_t n) : adjacency_(n) {}

void Graph::add_edge(std::size_t u, std::size_t v, double weight) {
  QARCH_REQUIRE(u < num_vertices() && v < num_vertices(),
                "edge endpoint out of range");
  QARCH_REQUIRE(u != v, "self-loops are not allowed");
  QARCH_REQUIRE(!has_edge(u, v), "duplicate edge");
  edges_.push_back(Edge{std::min(u, v), std::max(u, v), weight});
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
}

bool Graph::has_edge(std::size_t u, std::size_t v) const {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const std::size_t other = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

std::size_t Graph::degree(std::size_t v) const {
  QARCH_REQUIRE(v < num_vertices(), "vertex out of range");
  return adjacency_[v].size();
}

const std::vector<std::size_t>& Graph::neighbors(std::size_t v) const {
  QARCH_REQUIRE(v < num_vertices(), "vertex out of range");
  return adjacency_[v];
}

double Graph::total_weight() const {
  double s = 0.0;
  for (const auto& e : edges_) s += e.weight;
  return s;
}

double Graph::cut_value(const std::vector<int>& z) const {
  QARCH_REQUIRE(z.size() == num_vertices(), "assignment size mismatch");
  double cut = 0.0;
  for (const auto& e : edges_)
    if (z[e.u] != z[e.v]) cut += e.weight;
  return cut;
}

bool Graph::is_connected() const {
  if (num_vertices() == 0) return true;
  std::vector<bool> seen(num_vertices(), false);
  std::vector<std::size_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : adjacency_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == num_vertices();
}

std::string Graph::to_string() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges() << ")";
  return os.str();
}

}  // namespace qarch::graph
