// Max-cut cost Hamiltonian (Eq. 1 of the paper):
//   C_MC(z) = 1/2 * sum_{(u,v) in E} w_uv (1 - z_u z_v)
// As an operator: C = sum_e w_e/2 (I - Z_u Z_v).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace qarch::qaoa {

/// One Ising term: coefficient * Z_u Z_v.
struct ZZTerm {
  std::size_t u = 0;
  std::size_t v = 0;
  double coefficient = 0.0;
};

/// The max-cut Hamiltonian of a graph in the form
/// C = constant + sum_k coefficient_k Z_{u_k} Z_{v_k}.
class MaxCutHamiltonian {
 public:
  explicit MaxCutHamiltonian(const graph::Graph& g);

  /// Identity coefficient: sum_e w_e / 2.
  [[nodiscard]] double constant() const { return constant_; }

  /// ZZ terms (coefficient = -w_e / 2).
  [[nodiscard]] const std::vector<ZZTerm>& terms() const { return terms_; }

  /// Number of qubits (graph vertices).
  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }

  /// <C> given per-term <Z_u Z_v> values (aligned with terms()).
  [[nodiscard]] double energy(const std::vector<double>& zz_expectations) const;

  /// Classical value C_MC(z) for a ±1 assignment (equals the cut weight).
  [[nodiscard]] double classical_value(const std::vector<int>& z) const;

 private:
  std::size_t num_qubits_ = 0;
  double constant_ = 0.0;
  std::vector<ZZTerm> terms_;
};

}  // namespace qarch::qaoa
