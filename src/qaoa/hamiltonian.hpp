// Diagonal cost Hamiltonians over ±1 spin variables:
//   C(z) = constant + sum_k J_k z_{u_k} z_{v_k} + sum_j h_j z_j
//
// The paper only optimizes MaxCut (Eq. 1):
//   C_MC(z) = 1/2 * sum_{(u,v) in E} w_uv (1 - z_u z_v)
// but the same ZZ+Z+constant form covers weighted MaxCut, maximum
// independent set (with a quadratic edge penalty), and transverse-field-free
// Ising objectives — every named constructor below reduces its combinatorial
// objective to this form via x_i = (1 - z_i) / 2 (so basis bit b=1 means
// z=-1, matching the simulators' bit q = qubit q convention). All objectives
// are MAXIMIZED.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace qarch::qaoa {

/// One Ising coupling term: coefficient * Z_u Z_v.
struct ZZTerm {
  std::size_t u = 0;
  std::size_t v = 0;
  double coefficient = 0.0;
};

/// One field term: coefficient * Z_q.
struct ZTerm {
  std::size_t q = 0;
  double coefficient = 0.0;
};

/// Which named construction produced a Hamiltonian (for cache keys and wire
/// round-trips; the term lists are authoritative for evaluation).
enum class HamiltonianKind { MaxCut, MIS, Ising };

/// Parses "maxcut", "mis", "ising".
HamiltonianKind hamiltonian_kind_from_name(const std::string& name);

/// Canonical name of a kind.
std::string hamiltonian_kind_name(HamiltonianKind kind);

/// A diagonal cost operator C = constant + Σ J_k Z_u Z_v + Σ h_j Z_j.
class Hamiltonian {
 public:
  Hamiltonian() = default;

  /// MaxCut of a graph (the historical constructor): constant = Σ w_e / 2,
  /// ZZ coefficients -w_e / 2, no fields. classical_value == cut weight.
  explicit Hamiltonian(const graph::Graph& g);

  /// Same as the graph constructor, spelled as a factory.
  static Hamiltonian maxcut(const graph::Graph& g);

  /// Maximum independent set with a quadratic penalty:
  ///   C(x) = Σ_i x_i - penalty * Σ_{(u,v) in E} w_uv x_u x_v
  /// with x_i = (1 - z_i)/2 (bit 1 = vertex in the set). With
  /// penalty > 1 every maximizer is an independent set and C equals its size.
  static Hamiltonian mis(const graph::Graph& g, double penalty = 2.0);

  /// Ising objective (maximized):
  ///   C(z) = -coupling * Σ_{(u,v) in E} w_uv z_u z_v - field * Σ_i z_i
  /// i.e. the negated classical Ising energy with uniform longitudinal field.
  static Hamiltonian ising(const graph::Graph& g, double coupling = 1.0,
                           double field = 0.0);

  [[nodiscard]] HamiltonianKind kind() const { return kind_; }

  /// Identity coefficient.
  [[nodiscard]] double constant() const { return constant_; }

  /// ZZ coupling terms.
  [[nodiscard]] const std::vector<ZZTerm>& terms() const { return terms_; }

  /// Single-qubit field terms (empty for MaxCut).
  [[nodiscard]] const std::vector<ZTerm>& z_terms() const { return z_terms_; }

  /// Number of qubits (graph vertices).
  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }

  /// <C> given per-term <Z_u Z_v> values (aligned with terms()) and,
  /// when z_terms() is non-empty, per-term <Z_j> values (aligned with
  /// z_terms()).
  [[nodiscard]] double energy(const std::vector<double>& zz_expectations,
                              const std::vector<double>& z_expectations =
                                  {}) const;

  /// Classical value C(z) for a ±1 assignment. For MaxCut this equals the
  /// cut weight.
  [[nodiscard]] double classical_value(const std::vector<int>& z) const;

  /// Classical value of a computational-basis state: bit q of `basis_index`
  /// is qubit q, with bit b mapping to z = 1 - 2b.
  [[nodiscard]] double classical_value_bits(std::size_t basis_index) const;

 private:
  HamiltonianKind kind_ = HamiltonianKind::MaxCut;
  std::size_t num_qubits_ = 0;
  double constant_ = 0.0;
  std::vector<ZZTerm> terms_;
  std::vector<ZTerm> z_terms_;
};

/// Historical name: the graph constructor builds exactly the MaxCut form.
using MaxCutHamiltonian = Hamiltonian;

/// Exact classical maximum of C over all 2^n assignments (brute force;
/// requires num_qubits <= 30). The ratio denominator for non-MaxCut
/// objectives, where graph::maxcut_exact does not apply.
double classical_maximum(const Hamiltonian& ham);

/// Buildable description of a Hamiltonian — the SessionConfig / wire /
/// cache-key form. `build()` instantiates it for a concrete graph.
struct HamiltonianSpec {
  HamiltonianKind kind = HamiltonianKind::MaxCut;
  double penalty = 2.0;   ///< MIS edge penalty
  double coupling = 1.0;  ///< Ising ZZ coupling
  double field = 0.0;     ///< Ising longitudinal field

  [[nodiscard]] Hamiltonian build(const graph::Graph& g) const;

  /// True for the MaxCut default — the only spec whose cache keys stay
  /// byte-identical to the pre-objective cache format.
  [[nodiscard]] bool is_default() const { return kind == HamiltonianKind::MaxCut; }

  /// Stable cache-key / wire tag: "maxcut", "mis@<penalty>",
  /// "ising@<coupling>@<field>".
  [[nodiscard]] std::string tag() const;

  /// Parses a tag() string back into a spec.
  static HamiltonianSpec parse_tag(const std::string& tag);

  friend bool operator==(const HamiltonianSpec&, const HamiltonianSpec&) =
      default;
};

}  // namespace qarch::qaoa
