// Variational training of a QAOA ansatz and approximation-ratio scoring.
#pragma once

#include <memory>

#include "graph/graph.hpp"
#include "optim/optimizer.hpp"
#include "qaoa/ansatz.hpp"
#include "qaoa/energy.hpp"

namespace qarch::qaoa {

/// Outcome of training one (graph, mixer, p) candidate.
struct TrainResult {
  std::vector<double> theta;     ///< trained parameters (γ, β interleaved)
  double energy = 0.0;           ///< best <C> reached (maximized)
  std::size_t evaluations = 0;   ///< objective calls used
  bool preempted = false;        ///< run parked by the PreemptToken; the
                                 ///< OptimState continues it later
};

/// Training configuration. The optimizer MINIMIZES, so the objective is
/// -<C>; `initial_value` seeds every parameter (deterministic runs).
struct TrainOptions {
  double initial_value = 0.1;
};

/// Trains `ansatz` on the evaluator's graph with the given optimizer.
TrainResult train_qaoa(const circuit::Circuit& ansatz,
                       const EnergyEvaluator& evaluator,
                       const optim::Optimizer& optimizer,
                       const TrainOptions& options = {});

/// Resumable form: threads a training checkpoint (`state`) and a cooperative
/// preemption token through the optimizer. A fresh state starts the run; a
/// state packed by a previous preempted call continues it, and the stitched
/// final result is identical to an uninterrupted run.
TrainResult train_qaoa(const circuit::Circuit& ansatz,
                       const EnergyEvaluator& evaluator,
                       const optim::Optimizer& optimizer,
                       const TrainOptions& options, optim::OptimState& state,
                       optim::PreemptToken* preempt);

/// Generalized-objective form: trains against an arbitrary MAXIMIZED value
/// function (e.g. a sampled CVaR or best-of-shots estimator) instead of the
/// exact <C>. Same checkpoint/preemption semantics; `value` must be a
/// deterministic function of theta for a resumed run to stitch exactly.
TrainResult train_objective(std::size_t num_params,
                            const optim::Objective& value,
                            const optim::Optimizer& optimizer,
                            const TrainOptions& options,
                            optim::OptimState& state,
                            optim::PreemptToken* preempt);

/// Approximation ratio r = <C> / C_classical (Eq. 3). `classical_optimum`
/// is the exact max-cut value of the same graph.
double approximation_ratio(double energy, double classical_optimum);

}  // namespace qarch::qaoa
