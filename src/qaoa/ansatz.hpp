// The p-layer alternating QAOA ansatz (Eq. 2 of the paper):
//   |γ, β> = e^{-iβ_p B} e^{-iγ_p C} ... e^{-iβ_1 B} e^{-iγ_1 C} |s>
// with |s> = |+>^n. The cost layer is fixed by the graph; the mixer layer is
// pluggable (BUILD_QAOA_CKT of Algorithm 1).
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"
#include "qaoa/mixer.hpp"

namespace qarch::qaoa {

/// Parameter layout of the ansatz returned by build_qaoa_circuit:
/// theta[2l] = γ_{l+1}, theta[2l+1] = β_{l+1} for layer l in [0, p).
struct AnsatzLayout {
  std::size_t p = 0;
  [[nodiscard]] std::size_t num_params() const { return 2 * p; }
  [[nodiscard]] std::size_t gamma_index(std::size_t layer) const {
    return 2 * layer;
  }
  [[nodiscard]] std::size_t beta_index(std::size_t layer) const {
    return 2 * layer + 1;
  }
};

/// Appends the max-cut cost layer e^{-iγC}: RZZ(-w_e γ) per edge.
/// (Global phases from the identity part of C are dropped.)
void append_cost_layer(circuit::Circuit& target, const graph::Graph& g,
                       std::size_t gamma_param);

/// Builds the full p-layer ansatz over `g` with `mixer` as B.
/// The circuit assumes the |+>^n initial state (run with run_from_plus or
/// the QTensor expectation network, both of which bake the plus caps in).
circuit::Circuit build_qaoa_circuit(const graph::Graph& g, std::size_t p,
                                    const MixerSpec& mixer);

}  // namespace qarch::qaoa
