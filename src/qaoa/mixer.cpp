#include "qaoa/mixer.hpp"

#include <sstream>

#include "common/error.hpp"

namespace qarch::qaoa {

using circuit::GateKind;
using circuit::ParamExpr;

MixerSpec MixerSpec::parse(const std::string& text) {
  MixerSpec spec;
  std::string token;
  auto flush = [&] {
    if (!token.empty()) {
      spec.gates.push_back(circuit::gate_from_name(token));
      token.clear();
    }
  };
  for (char c : text) {
    if (c == ',' ) {
      flush();
    } else if (c == '(' || c == ')' || c == '\'' || c == '"' || c == ' ') {
      continue;  // tolerate the paper's tuple rendering
    } else {
      token += c;
    }
  }
  flush();
  QARCH_REQUIRE(!spec.gates.empty(), "empty mixer spec: " + text);
  return spec;
}

std::string MixerSpec::to_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (i) os << ", ";
    os << '\'' << circuit::gate_name(gates[i]) << '\'';
  }
  os << ')';
  return os.str();
}

void append_mixer_layer(circuit::Circuit& target, const MixerSpec& spec,
                        std::size_t beta_param) {
  QARCH_REQUIRE(!spec.gates.empty(), "mixer spec has no gates");
  const std::size_t n = target.num_qubits();
  for (GateKind kind : spec.gates) {
    if (circuit::is_two_qubit(kind)) {
      // Entangling-ring extension: gate(q, q+1) around the register.
      QARCH_REQUIRE(n >= 2, "entangling mixer needs at least two qubits");
      for (std::size_t q = 0; q < n; ++q) {
        const std::size_t next = (q + 1) % n;
        if (n == 2 && q == 1) break;  // avoid the duplicate (1, 0) edge
        if (circuit::is_parameterized(kind)) {
          target.append({kind, q, next, ParamExpr::symbol(beta_param, 2.0)});
        } else {
          target.append({kind, q, next, ParamExpr::none()});
        }
      }
      continue;
    }
    for (std::size_t q = 0; q < n; ++q) {
      if (circuit::is_parameterized(kind)) {
        // Shared β with the paper's 2β angle convention.
        target.append({kind, q, 0, ParamExpr::symbol(beta_param, 2.0)});
      } else {
        target.append({kind, q, 0, ParamExpr::none()});
      }
    }
  }
}

circuit::Circuit build_mixer_circuit(std::size_t num_qubits,
                                     const MixerSpec& spec) {
  circuit::Circuit c(num_qubits);
  const std::size_t beta = c.add_param();
  append_mixer_layer(c, spec, beta);
  return c;
}

}  // namespace qarch::qaoa
