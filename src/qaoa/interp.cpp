#include "qaoa/interp.hpp"

#include "common/error.hpp"
#include "qaoa/ansatz.hpp"

namespace qarch::qaoa {

namespace {

/// INTERP rule for one schedule (γ or β as a length-p vector): produce the
/// length-(p+1) schedule with
///   out[i] = (i / p) * in[i-1] + ((p - i) / p) * in[i],  i = 0..p
/// (in[-1] and in[p] treated as contributing nothing).
std::vector<double> interp_one(const std::vector<double>& in) {
  const std::size_t p = in.size();
  std::vector<double> out(p + 1, 0.0);
  for (std::size_t i = 0; i <= p; ++i) {
    const double left = i > 0 ? in[i - 1] : 0.0;
    const double right = i < p ? in[i] : 0.0;
    out[i] = (static_cast<double>(i) / static_cast<double>(p)) * left +
             (static_cast<double>(p - i) / static_cast<double>(p)) * right;
  }
  return out;
}

}  // namespace

std::vector<double> interp_schedule(const std::vector<double>& theta) {
  QARCH_REQUIRE(!theta.empty() && theta.size() % 2 == 0,
                "schedule must have 2p entries");
  const std::size_t p = theta.size() / 2;
  std::vector<double> gammas(p), betas(p);
  for (std::size_t l = 0; l < p; ++l) {
    gammas[l] = theta[2 * l];
    betas[l] = theta[2 * l + 1];
  }
  const std::vector<double> new_gammas = interp_one(gammas);
  const std::vector<double> new_betas = interp_one(betas);
  std::vector<double> out(2 * (p + 1));
  for (std::size_t l = 0; l <= p; ++l) {
    out[2 * l] = new_gammas[l];
    out[2 * l + 1] = new_betas[l];
  }
  return out;
}

InterpResult train_qaoa_interp(const graph::Graph& g, const MixerSpec& mixer,
                               std::size_t p_target,
                               const EnergyEvaluator& evaluator,
                               const optim::Optimizer& optimizer,
                               const TrainOptions& options) {
  QARCH_REQUIRE(p_target >= 1, "p_target must be >= 1");
  InterpResult result;
  std::vector<double> seed;
  for (std::size_t p = 1; p <= p_target; ++p) {
    const circuit::Circuit ansatz = build_qaoa_circuit(g, p, mixer);
    // Cached: re-running interp (or a later train on the same structure)
    // reuses each depth level's one compilation.
    const std::shared_ptr<const EnergyPlan> plan = evaluator.plan_for(ansatz);
    const optim::Objective objective = [&](std::span<const double> theta) {
      return -plan->energy(theta);
    };
    std::vector<double> x0 =
        p == 1 ? std::vector<double>(2, options.initial_value) : seed;
    QARCH_CHECK(x0.size() == ansatz.num_params(), "seed size mismatch");
    const optim::OptimResult opt = optimizer.minimize(objective, std::move(x0));

    TrainResult tr;
    tr.theta = opt.x;
    tr.energy = -opt.value;
    tr.evaluations = opt.evaluations;
    seed = interp_schedule(tr.theta);
    result.per_depth.push_back(std::move(tr));
  }
  return result;
}

}  // namespace qarch::qaoa
