// Training objectives over a candidate circuit.
//
// The paper always optimizes the energy expectation <C>. Sampling-aware
// objectives are standard QAOA practice beyond it:
//
//   * CVaR-α (Barkoutsos et al. 2020): the mean of the best ⌈α·shots⌉
//     sampled classical values — rewarding the tail the hardware would
//     actually keep instead of the full distribution's mean;
//   * best-of-shots: the single best sampled value, the max-of-shots
//     statistic Eq. 3 scores with after training.
//
// All objectives are MAXIMIZED (optimizers minimize their negation, exactly
// as train_qaoa does for <C>). The sample-based objectives are pure
// functions of theta: every evaluation re-seeds its Rng from the candidate
// seed, so training stays deterministic, resumable after preemption, and
// uses common random numbers across optimizer steps.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qarch::qaoa {

/// Which training objective a candidate optimizes.
enum class ObjectiveKind { Expectation, CVaR, BestOfShots };

/// Parses "expectation", "cvar", "best" / "best-of-shots".
ObjectiveKind objective_kind_from_name(const std::string& name);

/// Canonical name of a kind ("expectation", "cvar", "best").
std::string objective_kind_name(ObjectiveKind kind);

/// Buildable description of an objective — the SessionConfig / wire /
/// cache-key form.
struct ObjectiveSpec {
  ObjectiveKind kind = ObjectiveKind::Expectation;
  /// CVaR tail fraction: the objective averages the best ⌈alpha·shots⌉
  /// sampled values. alpha = 1 recovers the sampled mean.
  double alpha = 0.25;
  /// Samples drawn per objective evaluation for the sample-based kinds
  /// (0 = use EvaluatorOptions::shots).
  std::size_t shots = 0;

  /// True for the Expectation default — the only spec whose cache keys stay
  /// byte-identical to the pre-objective cache format.
  [[nodiscard]] bool is_default() const {
    return kind == ObjectiveKind::Expectation;
  }

  /// Stable cache-key / wire tag: "expectation", "cvar@<alpha>[@<shots>]",
  /// "best[@<shots>]".
  [[nodiscard]] std::string tag() const;

  /// Parses a tag() string back into a spec.
  static ObjectiveSpec parse_tag(const std::string& tag);

  friend bool operator==(const ObjectiveSpec&, const ObjectiveSpec&) = default;
};

/// CVaR_α of sample values under MAXIMIZATION: the mean of the ⌈α·n⌉ best
/// entries. `values` is consumed (partially sorted in place).
double cvar_value(std::vector<double> values, double alpha);

/// The best (largest) sample value.
double best_of_value(const std::vector<double>& values);

/// Dispatches `values` through the spec's aggregation (Expectation = mean:
/// useful for tests; training uses the exact <C> path for that kind).
double objective_value(const ObjectiveSpec& spec, std::vector<double> values);

}  // namespace qarch::qaoa
