// p=1 energy-landscape scanning.
//
// The 2-parameter p=1 surface <C>(γ, β) is the standard diagnostic for mixer
// behaviour: it shows where the optimizer must land and how a mixer reshapes
// the landscape. The scanner evaluates the energy on a (γ, β) grid and
// reports the grid optimum.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qaoa/energy.hpp"
#include "qaoa/mixer.hpp"

namespace qarch::qaoa {

/// A scanned grid of <C>(γ, β) values.
struct Landscape {
  std::vector<double> gammas;   ///< grid points along γ
  std::vector<double> betas;    ///< grid points along β
  std::vector<double> values;   ///< row-major: values[i * betas.size() + j]

  [[nodiscard]] double at(std::size_t gamma_idx, std::size_t beta_idx) const;

  /// Grid maximizer.
  struct Peak {
    double gamma = 0.0;
    double beta = 0.0;
    double value = 0.0;
  };
  [[nodiscard]] Peak peak() const;

  /// Coarse ASCII heat map (one character per cell, '.' low … '#' high).
  [[nodiscard]] std::string ascii(std::size_t max_cells = 32) const;
};

/// Scan configuration: symmetric grid over [lo, hi]^2.
struct LandscapeOptions {
  double gamma_lo = -3.14159265358979323846;
  double gamma_hi = 3.14159265358979323846;
  double beta_lo = -1.5707963267948966;
  double beta_hi = 1.5707963267948966;
  std::size_t gamma_points = 31;
  std::size_t beta_points = 31;
  std::size_t workers = 1;   ///< rows scan in parallel
};

/// Scans the p=1 landscape of `mixer` over `g`.
Landscape scan_landscape(const graph::Graph& g, const MixerSpec& mixer,
                         const EnergyEvaluator& evaluator,
                         const LandscapeOptions& options = {});

}  // namespace qarch::qaoa
