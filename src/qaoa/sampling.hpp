// Measurement sampling and the paper's approximation-ratio numerator.
//
// Eq. 3 defines r = <C_max> / C_classical where <C_max> is "the expected
// energy of the largest cut discovered by the given quantum circuit": run the
// circuit, measure `shots` bitstrings, keep the best cut among them; the
// expectation is over repetitions of that procedure. We estimate it by Monte
// Carlo over `trials` independent shot batches sampled from the exact output
// distribution (the statevector gives us the exact distribution, so no
// finite-shot bias beyond the intended max-of-shots statistic).
#pragma once

#include <cstddef>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "qaoa/hamiltonian.hpp"
#include "query/sampler.hpp"
#include "sim/statevector.hpp"

namespace qarch::qaoa {

/// Draws one computational-basis sample (bit q of the result = qubit q).
std::size_t sample_basis_state(const sim::State& state, Rng& rng);

/// Cut value of basis state `basis_index` on g.
double cut_of_basis_state(const graph::Graph& g, std::size_t basis_index);

/// Best cut among `shots` samples from `state`.
double best_sampled_cut(const sim::State& state, const graph::Graph& g,
                        std::size_t shots, Rng& rng);

/// Monte-Carlo estimate of <C_max>: mean over `trials` batches of the best
/// cut among `shots` samples of the circuit run from |+>^n with `theta`.
double expected_best_cut(const circuit::Circuit& ansatz,
                         std::span<const double> theta, const graph::Graph& g,
                         std::size_t shots, std::size_t trials, Rng& rng);

/// Engine-agnostic form: samples come from a compiled query::Sampler (either
/// the statevector engine — whose draw stream matches the legacy overload
/// above for the same rng — or direct tensor-network sampling, which never
/// materializes the state).
double expected_best_cut(const query::Sampler& sampler,
                         std::span<const double> theta, const graph::Graph& g,
                         std::size_t shots, std::size_t trials, Rng& rng);

/// Generalized-Hamiltonian form of the same statistic: mean over `trials`
/// of the best classical_value_bits among `shots` samples.
double expected_best_value(const query::Sampler& sampler,
                           std::span<const double> theta,
                           const Hamiltonian& ham, std::size_t shots,
                           std::size_t trials, Rng& rng);

}  // namespace qarch::qaoa
