#include "qaoa/train.hpp"

#include "common/error.hpp"

namespace qarch::qaoa {

TrainResult train_qaoa(const circuit::Circuit& ansatz,
                       const EnergyEvaluator& evaluator,
                       const optim::Optimizer& optimizer,
                       const TrainOptions& options) {
  optim::OptimState scratch;
  return train_qaoa(ansatz, evaluator, optimizer, options, scratch, nullptr);
}

TrainResult train_qaoa(const circuit::Circuit& ansatz,
                       const EnergyEvaluator& evaluator,
                       const optim::Optimizer& optimizer,
                       const TrainOptions& options, optim::OptimState& state,
                       optim::PreemptToken* preempt) {
  QARCH_REQUIRE(ansatz.num_params() >= 1, "ansatz has no parameters");
  // One CACHED plan for the whole run: every optimizer step — including
  // every restart of a multi-start wrapper, whose objective closure is this
  // same plan — rebinds thetas against one compilation. Re-training the
  // same ansatz structure later hits the evaluator's cache too. A resumed
  // slice re-fetches the plan from that cache, so parking a job only
  // re-pays a cache lookup, never a compile.
  const std::shared_ptr<const EnergyPlan> plan = evaluator.plan_for(ansatz);
  const optim::Objective objective = [&](std::span<const double> theta) {
    return -plan->energy(theta);  // maximize <C>
  };
  std::vector<double> x0(ansatz.num_params(), options.initial_value);
  const optim::OptimResult r =
      optimizer.minimize(objective, std::move(x0), state, preempt);

  TrainResult out;
  out.theta = r.x;
  out.energy = -r.value;
  out.evaluations = r.evaluations;
  out.preempted = r.preempted;
  return out;
}

TrainResult train_objective(std::size_t num_params,
                            const optim::Objective& value,
                            const optim::Optimizer& optimizer,
                            const TrainOptions& options,
                            optim::OptimState& state,
                            optim::PreemptToken* preempt) {
  QARCH_REQUIRE(num_params >= 1, "objective has no parameters");
  const optim::Objective objective = [&](std::span<const double> theta) {
    return -value(theta);  // maximize
  };
  std::vector<double> x0(num_params, options.initial_value);
  const optim::OptimResult r =
      optimizer.minimize(objective, std::move(x0), state, preempt);

  TrainResult out;
  out.theta = r.x;
  out.energy = -r.value;
  out.evaluations = r.evaluations;
  out.preempted = r.preempted;
  return out;
}

double approximation_ratio(double energy, double classical_optimum) {
  QARCH_REQUIRE(classical_optimum > 0.0, "classical optimum must be positive");
  return energy / classical_optimum;
}

}  // namespace qarch::qaoa
