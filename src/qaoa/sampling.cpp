#include "qaoa/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qarch::qaoa {

std::size_t sample_basis_state(const sim::State& state, Rng& rng) {
  // Inverse-CDF over |amplitude|^2. The state is normalized, but guard the
  // tail against float drift by returning the last index.
  double r = rng.uniform();
  for (std::size_t i = 0; i < state.size(); ++i) {
    const double p = std::norm(state[i]);
    if (r < p) return i;
    r -= p;
  }
  return state.size() - 1;
}

double cut_of_basis_state(const graph::Graph& g, std::size_t basis_index) {
  double cut = 0.0;
  for (const auto& e : g.edges()) {
    const bool bu = (basis_index >> e.u) & 1ULL;
    const bool bv = (basis_index >> e.v) & 1ULL;
    if (bu != bv) cut += e.weight;
  }
  return cut;
}

double best_sampled_cut(const sim::State& state, const graph::Graph& g,
                        std::size_t shots, Rng& rng) {
  QARCH_REQUIRE(shots >= 1, "need at least one shot");
  QARCH_REQUIRE(sim::state_qubits(state) == g.num_vertices(),
                "state/graph size mismatch");
  double best = 0.0;
  for (std::size_t s = 0; s < shots; ++s)
    best = std::max(best, cut_of_basis_state(g, sample_basis_state(state, rng)));
  return best;
}

double expected_best_cut(const circuit::Circuit& ansatz,
                         std::span<const double> theta, const graph::Graph& g,
                         std::size_t shots, std::size_t trials, Rng& rng) {
  QARCH_REQUIRE(trials >= 1, "need at least one trial");
  const sim::StatevectorSimulator sv;
  const sim::State state = sv.run_from_plus(ansatz, theta);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t)
    total += best_sampled_cut(state, g, shots, rng);
  return total / static_cast<double>(trials);
}

double expected_best_cut(const query::Sampler& sampler,
                         std::span<const double> theta, const graph::Graph& g,
                         std::size_t shots, std::size_t trials, Rng& rng) {
  QARCH_REQUIRE(shots >= 1, "need at least one shot");
  QARCH_REQUIRE(trials >= 1, "need at least one trial");
  QARCH_REQUIRE(sampler.num_qubits() == g.num_vertices(),
                "sampler/graph size mismatch");
  // One stream of shots*trials draws, chunked per trial — the exact stream
  // the legacy overload consumes, so the statevector engine reproduces its
  // values bit for bit for the same rng.
  const std::vector<std::size_t> samples =
      sampler.sample(theta, shots * trials, rng);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    double best = 0.0;
    for (std::size_t s = 0; s < shots; ++s)
      best = std::max(best, cut_of_basis_state(g, samples[t * shots + s]));
    total += best;
  }
  return total / static_cast<double>(trials);
}

double expected_best_value(const query::Sampler& sampler,
                           std::span<const double> theta,
                           const Hamiltonian& ham, std::size_t shots,
                           std::size_t trials, Rng& rng) {
  QARCH_REQUIRE(shots >= 1, "need at least one shot");
  QARCH_REQUIRE(trials >= 1, "need at least one trial");
  QARCH_REQUIRE(sampler.num_qubits() == ham.num_qubits(),
                "sampler/Hamiltonian size mismatch");
  const std::vector<std::size_t> samples =
      sampler.sample(theta, shots * trials, rng);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    double best = ham.classical_value_bits(samples[t * shots]);
    for (std::size_t s = 1; s < shots; ++s)
      best = std::max(best,
                      ham.classical_value_bits(samples[t * shots + s]));
    total += best;
  }
  return total / static_cast<double>(trials);
}

}  // namespace qarch::qaoa
