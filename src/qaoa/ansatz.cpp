#include "qaoa/ansatz.hpp"

#include "common/error.hpp"

namespace qarch::qaoa {

using circuit::ParamExpr;

void append_cost_layer(circuit::Circuit& target, const graph::Graph& g,
                       std::size_t gamma_param) {
  QARCH_REQUIRE(target.num_qubits() == g.num_vertices(),
                "circuit/graph size mismatch");
  for (const auto& e : g.edges()) {
    // e^{-iγ C} restricted to this edge is e^{+iγ w/2 Z_u Z_v} (up to global
    // phase) = RZZ(-w γ) since RZZ(θ) = e^{-iθ Z⊗Z / 2}.
    target.rzz(e.u, e.v, ParamExpr::symbol(gamma_param, -e.weight));
  }
}

circuit::Circuit build_qaoa_circuit(const graph::Graph& g, std::size_t p,
                                    const MixerSpec& mixer) {
  QARCH_REQUIRE(p >= 1, "ansatz depth p must be >= 1");
  circuit::Circuit c(g.num_vertices());
  for (std::size_t layer = 0; layer < p; ++layer) {
    const std::size_t gamma = c.add_param();
    const std::size_t beta = c.add_param();
    append_cost_layer(c, g, gamma);
    append_mixer_layer(c, mixer, beta);
  }
  return c;
}

}  // namespace qarch::qaoa
