// Mixer layers.
//
// The QAOA mixer operator B is the open design dimension QArchSearch
// explores. A MixerSpec is an ordered sequence of gate kinds drawn from the
// rotation-gate alphabet; the layer applies each gate of the sequence to
// EVERY qubit, and all parameterized gates in the layer share one β with the
// paper's 2β angle convention (Fig. 6: RX(2β)·RY(2β) on every qubit — one
// parameter, no extra training cost; Fig. 7 caption states the sharing).
//
// Extension ("more complex models", paper §4): a TWO-qubit gate kind in the
// sequence is applied as an entangling RING over the qubits — gate(q, q+1)
// for every q (wrapping) — so alphabets like {rx, ry, cz, rzz} search over
// entangling mixers too. Parameterized ring gates (RZZ) share the same β.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qarch::qaoa {

/// An ordered gate sequence defining one mixer layer.
struct MixerSpec {
  std::vector<circuit::GateKind> gates;

  /// Parses specs like "rx", "rx,ry", "('rx', 'ry')" — any comma-separated
  /// list of alphabet mnemonics (quotes/parens/spaces ignored).
  static MixerSpec parse(const std::string& text);

  /// Canonical rendering in the paper's tuple style: ('rx', 'ry').
  [[nodiscard]] std::string to_string() const;

  /// The paper's baseline: the standard transverse-field mixer, RX on
  /// every qubit.
  static MixerSpec baseline() { return MixerSpec{{circuit::GateKind::RX}}; }

  /// The circuit the paper's search discovers (Fig. 6): RX then RY.
  static MixerSpec qnas() {
    return MixerSpec{{circuit::GateKind::RX, circuit::GateKind::RY}};
  }

  friend bool operator==(const MixerSpec&, const MixerSpec&) = default;
};

/// Appends the mixer layer for `spec` to `target`: for each gate kind in the
/// sequence, apply it to all `num_qubits` qubits; parameterized kinds get
/// angle 2 * theta[beta_param].
void append_mixer_layer(circuit::Circuit& target, const MixerSpec& spec,
                        std::size_t beta_param);

/// Builds just the mixer circuit on n qubits with one fresh β parameter
/// (the BUILD_MIXER_CKT step of Algorithm 1).
circuit::Circuit build_mixer_circuit(std::size_t num_qubits,
                                     const MixerSpec& spec);

}  // namespace qarch::qaoa
