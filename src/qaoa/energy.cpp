#include "qaoa/energy.hpp"

#include <optional>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "qtensor/ordering.hpp"
#include "sim/state_utils.hpp"

namespace qarch::qaoa {

namespace {

/// Statevector plan: the ansatz is compiled once into a SimProgram
/// (specialized kernels, fused gates, cached matrices); every energy(theta)
/// replays it and reads all <ZZ> off the final state in one batched sweep.
/// `inner_workers` drives both the gate kernels and the sweep. The legacy
/// per-gate / per-edge path stays reachable through the EnergyOptions
/// toggles for the ablation benches.
class StatevectorPlan final : public EnergyPlan {
 public:
  StatevectorPlan(circuit::Circuit ansatz, const MaxCutHamiltonian& ham,
                  const EnergyOptions& options)
      : ansatz_(std::move(ansatz)),
        ham_(ham),
        options_(options),
        simulator_(options.inner_workers,
                   options.sv_plan.parallel_threshold_qubits) {
    if (options_.sv_compile_plan)
      program_.emplace(ansatz_, options_.sv_plan);
    pairs_.reserve(ham_.terms().size());
    for (const auto& t : ham_.terms()) pairs_.push_back({t.u, t.v});
  }

  double energy(std::span<const double> theta) const override {
    return ham_.energy(zz_expectations(theta));
  }

  std::vector<double> zz_expectations(
      std::span<const double> theta) const override {
    const sim::State state =
        program_.has_value()
            ? program_->run_from_plus(theta, options_.inner_workers)
            : simulator_.run_from_plus(ansatz_, theta);
    if (options_.sv_batch_expectations)
      return sim::batched_expectation_zz(
          state, pairs_, options_.inner_workers,
          options_.sv_plan.parallel_threshold_qubits);
    std::vector<double> zz(pairs_.size());
    for (std::size_t k = 0; k < pairs_.size(); ++k)
      zz[k] = sim::expectation_zz(state, pairs_[k].u, pairs_[k].v);
    return zz;
  }

 private:
  circuit::Circuit ansatz_;
  const MaxCutHamiltonian& ham_;
  EnergyOptions options_;
  sim::StatevectorSimulator simulator_;
  std::optional<sim::SimProgram> program_;
  std::vector<sim::ZZPair> pairs_;
};

/// Tensor-network plan: per-edge elimination orders are computed once from
/// the network STRUCTURE (wire variables depend only on the gate list, never
/// on parameter values) and reused for every subsequent theta.
class TensorNetworkPlan final : public EnergyPlan {
 public:
  TensorNetworkPlan(circuit::Circuit ansatz, const MaxCutHamiltonian& ham,
                    const EnergyOptions& options)
      : ansatz_(std::move(ansatz)),
        ham_(ham),
        options_(options),
        backend_(qtensor::make_backend(options.qtensor.backend)) {
    // Probe parameters: any values produce the same network structure.
    const std::vector<double> probe(ansatz_.num_params(), 0.1);
    const auto& terms = ham_.terms();
    orders_.resize(terms.size());
    for (std::size_t k = 0; k < terms.size(); ++k) {
      const auto net = qtensor::expectation_zz_network(
          ansatz_, probe, terms[k].u, terms[k].v, options_.qtensor.network);
      orders_[k] = make_order(net);
    }
  }

  double energy(std::span<const double> theta) const override {
    return ham_.energy(zz_expectations(theta));
  }

  std::vector<double> zz_expectations(
      std::span<const double> theta) const override {
    const auto& terms = ham_.terms();
    std::vector<double> zz(terms.size());
    parallel::parallel_for(
        0, terms.size(),
        [&](std::size_t k) {
          const auto net = qtensor::expectation_zz_network(
              ansatz_, theta, terms[k].u, terms[k].v, options_.qtensor.network);
          const auto r = qtensor::contract(net, orders_[k], *backend_);
          QARCH_CHECK(std::abs(r.value.imag()) < 1e-8,
                      "Hermitian expectation has a large imaginary part");
          zz[k] = r.value.real();
        },
        options_.inner_workers);
    return zz;
  }

 private:
  [[nodiscard]] std::vector<qtensor::VarId> make_order(
      const qtensor::TensorNetwork& net) const {
    switch (options_.qtensor.ordering) {
      case qtensor::OrderingAlgo::GreedyDegree:
        return qtensor::order_greedy_degree(net);
      case qtensor::OrderingAlgo::GreedyFill:
        return qtensor::order_greedy_fill(net);
      case qtensor::OrderingAlgo::Random: {
        Rng rng(options_.qtensor.ordering_seed);
        return qtensor::order_random(net, rng);
      }
      case qtensor::OrderingAlgo::RandomRestart: {
        Rng rng(options_.qtensor.ordering_seed);
        return qtensor::order_random_restart(
            net, options_.qtensor.random_restarts, rng);
      }
    }
    throw InternalError("unhandled ordering algorithm");
  }

  circuit::Circuit ansatz_;
  const MaxCutHamiltonian& ham_;
  EnergyOptions options_;
  std::shared_ptr<const qtensor::Backend> backend_;
  std::vector<std::vector<qtensor::VarId>> orders_;
};

}  // namespace

EnergyEvaluator::EnergyEvaluator(const graph::Graph& g, EnergyOptions options)
    : ham_(g), options_(std::move(options)) {}

std::unique_ptr<EnergyPlan> EnergyEvaluator::make_plan(
    const circuit::Circuit& ansatz) const {
  QARCH_REQUIRE(ansatz.num_qubits() == ham_.num_qubits(),
                "ansatz/Hamiltonian qubit mismatch");
  if (options_.engine == EngineKind::Statevector)
    return std::make_unique<StatevectorPlan>(ansatz, ham_, options_);
  return std::make_unique<TensorNetworkPlan>(ansatz, ham_, options_);
}

double EnergyEvaluator::energy(const circuit::Circuit& ansatz,
                               std::span<const double> theta) const {
  return make_plan(ansatz)->energy(theta);
}

std::vector<double> EnergyEvaluator::zz_expectations(
    const circuit::Circuit& ansatz, std::span<const double> theta) const {
  return make_plan(ansatz)->zz_expectations(theta);
}

}  // namespace qarch::qaoa
