#include "qaoa/energy.hpp"

#include <cmath>
#include <cstring>
#include <list>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "qtensor/ordering.hpp"
#include "qtensor/program.hpp"
#include "qtensor/shape.hpp"
#include "sim/state_utils.hpp"

namespace qarch::qaoa {

namespace {

/// Statevector plan: the ansatz is compiled once into a SimProgram
/// (specialized kernels, fused gates, cached matrices); every energy(theta)
/// replays it and reads all <ZZ> off the final state in one batched sweep.
/// `inner_workers` drives both the gate kernels and the sweep. The legacy
/// per-gate / per-edge path stays reachable through the EnergyOptions
/// toggles for the ablation benches.
class StatevectorPlan final : public EnergyPlan {
 public:
  StatevectorPlan(circuit::Circuit ansatz, const MaxCutHamiltonian& ham,
                  const EnergyOptions& options)
      : ansatz_(std::move(ansatz)),
        ham_(ham),
        options_(options),
        simulator_(options.inner_workers,
                   options.sv_plan.parallel_threshold_qubits,
                   options.sv_plan.simd) {
    if (options_.sv_compile_plan)
      program_.emplace(ansatz_, options_.sv_plan);
    pairs_.reserve(ham_.terms().size());
    for (const auto& t : ham_.terms()) pairs_.push_back({t.u, t.v});
  }

  double energy(std::span<const double> theta) const override {
    // One state computation serves both the ZZ sweep and the Z fields.
    const sim::State& state = run_state(theta);
    return ham_.energy(zz_from_state(state), z_from_state(state));
  }

  std::vector<double> zz_expectations(
      std::span<const double> theta) const override {
    return zz_from_state(run_state(theta));
  }

  std::vector<double> z_expectations(
      std::span<const double> theta) const override {
    return z_from_state(run_state(theta));
  }

 private:
  /// Per-thread scratch statevector: repeated energy(theta) calls (hundreds
  /// per training run) reuse one allocation instead of 2^n fresh complex
  /// doubles per call, and concurrent search workers each get their own
  /// buffer — no locks anywhere on the evaluation path.
  const sim::State& run_state(std::span<const double> theta) const {
    QARCH_REQUIRE(theta.size() >= ansatz_.num_params(),
                  "parameter vector too short for ansatz");
    static thread_local sim::State scratch;
    const std::size_t dim = std::size_t{1} << ansatz_.num_qubits();
    if (scratch.capacity() > dim * 4) {
      // Don't let one large evaluation pin gigabytes to this thread after
      // the workload moves back to small candidates.
      sim::State released;
      scratch.swap(released);
    }
    const double amp = 1.0 / std::sqrt(static_cast<double>(dim));
    scratch.assign(dim, sim::cplx{amp, 0.0});
    if (program_.has_value())
      program_->apply_inplace(scratch, theta, options_.inner_workers);
    else
      for (const auto& g : ansatz_.gates())
        simulator_.apply(scratch, g, theta);
    return scratch;
  }

  std::vector<double> zz_from_state(const sim::State& state) const {
    if (options_.sv_batch_expectations)
      return sim::batched_expectation_zz(
          state, pairs_, options_.inner_workers,
          options_.sv_plan.parallel_threshold_qubits, options_.sv_plan.simd);
    std::vector<double> zz(pairs_.size());
    for (std::size_t k = 0; k < pairs_.size(); ++k)
      zz[k] = sim::expectation_zz(state, pairs_[k].u, pairs_[k].v);
    return zz;
  }

  std::vector<double> z_from_state(const sim::State& state) const {
    const auto& zs = ham_.z_terms();
    std::vector<double> z(zs.size());
    for (std::size_t k = 0; k < zs.size(); ++k)
      z[k] = sim::expectation_z(state, zs[k].q);
    return z;
  }

  circuit::Circuit ansatz_;
  const MaxCutHamiltonian& ham_;
  EnergyOptions options_;
  sim::StatevectorSimulator simulator_;
  std::optional<sim::SimProgram> program_;
  std::vector<sim::ZZPair> pairs_;
};

/// Tensor-network plan. Two modes, selected by
/// QTensorOptions::compile_programs:
///
///   * compiled (default): each edge's lightcone contraction is compiled
///     ONCE into a qtensor::ContractionProgram — network built once, order
///     planned once, slicing decided once, intermediate buffers
///     preallocated — and every energy(theta) only rebinds the handful of
///     parameterized gate tensors and replays. The qtensor mirror of the
///     compiled statevector path (sim::SimProgram).
///   * legacy: per-edge elimination orders are still computed once from the
///     network STRUCTURE, but the network itself (and every intermediate
///     allocation) is rebuilt per theta.
///
/// Per-edge replays fan out over parallel::parallel_for (inner_workers);
/// each program leases per-thread scratch from its internal pool, so a
/// shared plan runs lock-free on the contraction hot path.
class TensorNetworkPlan final : public EnergyPlan {
 public:
  TensorNetworkPlan(circuit::Circuit ansatz, const MaxCutHamiltonian& ham,
                    const EnergyOptions& options)
      : ansatz_(std::move(ansatz)),
        ham_(ham),
        options_(options),
        backend_(qtensor::make_backend(options.qtensor.backend)) {
    const auto& terms = ham_.terms();
    if (options_.qtensor.compile_programs) {
      // Shape deduplication: group terms whose lightcones are isomorphic
      // and compile ONE program per group. The canonical shape key buckets
      // candidates cheaply; an exact isomorphism check against the group's
      // representative guards against key collisions, so members of one
      // group have literally equal <Z_u Z_v> for every theta.
      term_group_.resize(terms.size());
      std::unordered_map<std::string, std::vector<std::size_t>> by_key;
      for (std::size_t k = 0; k < terms.size(); ++k) {
        if (!options_.qtensor.dedup_shapes) {
          groups_.push_back({k, ""});
          term_group_[k] = groups_.size() - 1;
          continue;
        }
        const auto shape =
            qtensor::lightcone_shape(ansatz_, terms[k].u, terms[k].v);
        std::size_t gid = groups_.size();
        for (std::size_t cand : by_key[shape.key]) {
          const auto& rep = terms[groups_[cand].rep_term];
          if (qtensor::lightcone_equivalent(ansatz_, rep.u, rep.v, terms[k].u,
                                            terms[k].v)) {
            gid = cand;
            break;
          }
        }
        if (gid == groups_.size()) {
          groups_.push_back({k, shape.key});
          by_key[shape.key].push_back(gid);
        }
        term_group_[k] = gid;
      }

      // Compile the group representatives — speculatively parallel across
      // groups; with a single group the planner itself fans its heuristic
      // competitors across the inner workers instead.
      qtensor::ProgramOptions po = options_.qtensor.program_options();
      if (groups_.size() == 1 && po.planner.workers <= 1)
        po.planner.workers = std::max<std::size_t>(1, options_.inner_workers);
      programs_.resize(groups_.size());
      parallel::parallel_for(
          0, groups_.size(),
          [&](std::size_t g) {
            qtensor::ProgramOptions local = po;
            local.shape_key = groups_[g].key;
            const auto& rep = terms[groups_[g].rep_term];
            programs_[g] = std::make_unique<qtensor::ContractionProgram>(
                ansatz_, rep.u, rep.v, local);
          },
          options_.inner_workers);
      // Field terms compile one single-qubit <Z_q> program each; the shared
      // plan cache dedups the planning across equal lightcone structures.
      const auto& zs = ham_.z_terms();
      z_programs_.resize(zs.size());
      parallel::parallel_for(
          0, zs.size(),
          [&](std::size_t k) {
            z_programs_[k] = std::make_unique<qtensor::ContractionProgram>(
                ansatz_, zs[k].q, options_.qtensor.program_options());
          },
          options_.inner_workers);
      return;
    }
    // Probe parameters: any values produce the same network structure.
    const std::vector<double> probe(ansatz_.num_params(), 0.1);
    orders_.resize(terms.size());
    for (std::size_t k = 0; k < terms.size(); ++k) {
      const auto net = qtensor::expectation_zz_network(
          ansatz_, probe, terms[k].u, terms[k].v, options_.qtensor.network);
      orders_[k] = make_order(net);
    }
    z_orders_.resize(ham_.z_terms().size());
    for (std::size_t k = 0; k < ham_.z_terms().size(); ++k) {
      const auto net = qtensor::expectation_z_network(
          ansatz_, probe, ham_.z_terms()[k].q, options_.qtensor.network);
      z_orders_[k] = make_order(net);
    }
  }

  double energy(std::span<const double> theta) const override {
    return ham_.energy(zz_expectations(theta), z_expectations(theta));
  }

  std::vector<double> zz_expectations(
      std::span<const double> theta) const override {
    const auto& terms = ham_.terms();
    std::vector<double> zz(terms.size());
    if (!programs_.empty()) {
      // One replay per GROUP, broadcast to every member edge — symmetric
      // edges share both the compilation and the runtime contraction.
      std::vector<double> group_value(programs_.size());
      parallel::parallel_for(
          0, programs_.size(),
          [&](std::size_t g) {
            group_value[g] = programs_[g]->expectation_zz(theta, *backend_);
          },
          options_.inner_workers);
      for (std::size_t k = 0; k < terms.size(); ++k)
        zz[k] = group_value[term_group_[k]];
      return zz;
    }
    parallel::parallel_for(
        0, terms.size(),
        [&](std::size_t k) {
          const auto net = qtensor::expectation_zz_network(
              ansatz_, theta, terms[k].u, terms[k].v, options_.qtensor.network);
          const auto r = qtensor::contract(net, orders_[k], *backend_);
          QARCH_CHECK(std::abs(r.value.imag()) < 1e-8,
                      "Hermitian expectation has a large imaginary part");
          zz[k] = r.value.real();
        },
        options_.inner_workers);
    return zz;
  }

  std::vector<double> z_expectations(
      std::span<const double> theta) const override {
    const auto& zs = ham_.z_terms();
    std::vector<double> z(zs.size());
    if (zs.empty()) return z;
    if (!z_programs_.empty()) {
      parallel::parallel_for(
          0, zs.size(),
          [&](std::size_t k) {
            z[k] = z_programs_[k]->expectation_zz(theta, *backend_);
          },
          options_.inner_workers);
      return z;
    }
    parallel::parallel_for(
        0, zs.size(),
        [&](std::size_t k) {
          const auto net = qtensor::expectation_z_network(
              ansatz_, theta, zs[k].q, options_.qtensor.network);
          const auto r = qtensor::contract(net, z_orders_[k], *backend_);
          QARCH_CHECK(std::abs(r.value.imag()) < 1e-8,
                      "Hermitian expectation has a large imaginary part");
          z[k] = r.value.real();
        },
        options_.inner_workers);
    return z;
  }

  EnergyPlanInfo info() const override {
    EnergyPlanInfo i;
    i.terms = ham_.terms().size();
    i.compiled_programs = programs_.size() + z_programs_.size();
    std::set<std::string> keys;
    for (const ShapeGroup& g : groups_) keys.insert(g.key);
    i.distinct_shapes = keys.size();
    return i;
  }

 private:
  [[nodiscard]] std::vector<qtensor::VarId> make_order(
      const qtensor::TensorNetwork& net) const {
    switch (options_.qtensor.ordering) {
      case qtensor::OrderingAlgo::GreedyDegree:
        return qtensor::order_greedy_degree(net);
      case qtensor::OrderingAlgo::GreedyFill:
        return qtensor::order_greedy_fill(net);
      case qtensor::OrderingAlgo::Random: {
        Rng rng(options_.qtensor.ordering_seed);
        return qtensor::order_random(net, rng);
      }
      case qtensor::OrderingAlgo::RandomRestart: {
        Rng rng(options_.qtensor.ordering_seed);
        return qtensor::order_random_restart(
            net, options_.qtensor.random_restarts, rng);
      }
    }
    throw InternalError("unhandled ordering algorithm");
  }

  /// One lightcone-shape equivalence class of Hamiltonian terms.
  struct ShapeGroup {
    std::size_t rep_term = 0;  ///< index of the compiled representative
    std::string key;           ///< canonical shape key ("" when dedup is off)
  };

  circuit::Circuit ansatz_;
  const MaxCutHamiltonian& ham_;
  EnergyOptions options_;
  std::shared_ptr<const qtensor::Backend> backend_;
  /// Compiled mode: one program per shape group, aligned with groups_, plus
  /// one single-qubit program per field term.
  std::vector<std::unique_ptr<qtensor::ContractionProgram>> programs_;
  std::vector<std::unique_ptr<qtensor::ContractionProgram>> z_programs_;
  std::vector<ShapeGroup> groups_;
  std::vector<std::size_t> term_group_;  ///< term index -> group index
  /// Legacy mode: cached per-edge / per-field elimination orders.
  std::vector<std::vector<qtensor::VarId>> orders_;
  std::vector<std::vector<qtensor::VarId>> z_orders_;
};

/// Bit-exact structural key for one circuit: gate kinds, qubit wiring, and
/// parameter expressions (double payloads byte-copied, so -0.0 vs 0.0 and
/// NaN patterns never alias). Two circuits with equal fingerprints compile
/// to identical programs.
std::string circuit_fingerprint(const circuit::Circuit& c) {
  std::string key;
  key.reserve(16 + c.num_gates() * 32);
  const auto put = [&key](const void* p, std::size_t n) {
    key.append(static_cast<const char*>(p), n);
  };
  const std::uint64_t head[2] = {c.num_qubits(), c.num_params()};
  put(head, sizeof(head));
  for (const circuit::Gate& g : c.gates()) {
    const std::uint64_t ids[4] = {static_cast<std::uint64_t>(g.kind), g.q0,
                                  g.q1,
                                  static_cast<std::uint64_t>(g.param.kind)};
    put(ids, sizeof(ids));
    const double vals[2] = {g.param.constant, g.param.scale};
    put(vals, sizeof(vals));
    const std::uint64_t idx = g.param.index;
    put(&idx, sizeof(idx));
  }
  return key;
}

}  // namespace

/// LRU map fingerprint → shared plan. Locked only in plan_for(), i.e. once
/// per (candidate, training run) — never per energy(theta) call.
struct EnergyEvaluator::PlanCache {
  Mutex mutex{50, "cache.energyplans"};
  std::list<std::pair<std::string, std::shared_ptr<const EnergyPlan>>> order
      QARCH_GUARDED_BY(mutex);
  std::unordered_map<std::string, decltype(order)::iterator> by_key
      QARCH_GUARDED_BY(mutex);
};

EnergyEvaluator::EnergyEvaluator(const graph::Graph& g, EnergyOptions options)
    : EnergyEvaluator(Hamiltonian(g), std::move(options)) {}

EnergyEvaluator::EnergyEvaluator(Hamiltonian ham, EnergyOptions options)
    : ham_(std::move(ham)),
      options_(std::move(options)),
      cache_(std::make_unique<PlanCache>()) {}

EnergyEvaluator::~EnergyEvaluator() = default;

std::unique_ptr<EnergyPlan> EnergyEvaluator::make_plan(
    const circuit::Circuit& ansatz) const {
  QARCH_REQUIRE(ansatz.num_qubits() == ham_.num_qubits(),
                "ansatz/Hamiltonian qubit mismatch");
  if (options_.engine == EngineKind::Statevector)
    return std::make_unique<StatevectorPlan>(ansatz, ham_, options_);
  return std::make_unique<TensorNetworkPlan>(ansatz, ham_, options_);
}

std::shared_ptr<const EnergyPlan> EnergyEvaluator::plan_for(
    const circuit::Circuit& ansatz) const {
  if (options_.plan_cache_capacity == 0) return make_plan(ansatz);
  const std::string key = circuit_fingerprint(ansatz);
  {
    LockGuard lock(cache_->mutex);
    const auto it = cache_->by_key.find(key);
    if (it != cache_->by_key.end()) {
      cache_->order.splice(cache_->order.begin(), cache_->order, it->second);
      return it->second->second;
    }
  }
  // Compile outside the lock so concurrent workers never serialize on each
  // other's compilations; a racing duplicate is possible but harmless (one
  // of the two plans simply wins the cache slot).
  std::shared_ptr<const EnergyPlan> plan = make_plan(ansatz);
  LockGuard lock(cache_->mutex);
  const auto it = cache_->by_key.find(key);
  if (it != cache_->by_key.end()) return it->second->second;
  cache_->order.emplace_front(key, plan);
  cache_->by_key.emplace(key, cache_->order.begin());
  while (cache_->order.size() > options_.plan_cache_capacity) {
    cache_->by_key.erase(cache_->order.back().first);
    cache_->order.pop_back();
  }
  return plan;
}

double EnergyEvaluator::energy(const circuit::Circuit& ansatz,
                               std::span<const double> theta) const {
  return plan_for(ansatz)->energy(theta);
}

std::vector<double> EnergyEvaluator::zz_expectations(
    const circuit::Circuit& ansatz, std::span<const double> theta) const {
  return plan_for(ansatz)->zz_expectations(theta);
}

}  // namespace qarch::qaoa
