#include "qaoa/hamiltonian.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace qarch::qaoa {

HamiltonianKind hamiltonian_kind_from_name(const std::string& name) {
  if (name == "maxcut") return HamiltonianKind::MaxCut;
  if (name == "mis") return HamiltonianKind::MIS;
  if (name == "ising") return HamiltonianKind::Ising;
  throw InvalidArgument("unknown hamiltonian kind: " + name);
}

std::string hamiltonian_kind_name(HamiltonianKind kind) {
  switch (kind) {
    case HamiltonianKind::MaxCut: return "maxcut";
    case HamiltonianKind::MIS: return "mis";
    case HamiltonianKind::Ising: return "ising";
  }
  throw InvalidArgument("invalid HamiltonianKind");
}

Hamiltonian::Hamiltonian(const graph::Graph& g)
    : num_qubits_(g.num_vertices()) {
  terms_.reserve(g.num_edges());
  for (const auto& e : g.edges()) {
    constant_ += e.weight / 2.0;
    terms_.push_back(ZZTerm{e.u, e.v, -e.weight / 2.0});
  }
}

Hamiltonian Hamiltonian::maxcut(const graph::Graph& g) {
  return Hamiltonian(g);
}

Hamiltonian Hamiltonian::mis(const graph::Graph& g, double penalty) {
  QARCH_REQUIRE(penalty > 0.0, "MIS penalty must be positive");
  Hamiltonian h;
  h.kind_ = HamiltonianKind::MIS;
  h.num_qubits_ = g.num_vertices();
  // Σ_i x_i = n/2 - Σ_i z_i/2 with x = (1-z)/2.
  h.constant_ = static_cast<double>(g.num_vertices()) / 2.0;
  std::vector<double> field(g.num_vertices(), -0.5);
  // penalty * x_u x_v = penalty/4 * (1 - z_u - z_v + z_u z_v).
  h.terms_.reserve(g.num_edges());
  for (const auto& e : g.edges()) {
    const double c = penalty * e.weight / 4.0;
    h.constant_ -= c;
    field[e.u] += c;
    field[e.v] += c;
    h.terms_.push_back(ZZTerm{e.u, e.v, -c});
  }
  for (std::size_t q = 0; q < field.size(); ++q)
    if (field[q] != 0.0) h.z_terms_.push_back(ZTerm{q, field[q]});
  return h;
}

Hamiltonian Hamiltonian::ising(const graph::Graph& g, double coupling,
                               double field) {
  Hamiltonian h;
  h.kind_ = HamiltonianKind::Ising;
  h.num_qubits_ = g.num_vertices();
  h.terms_.reserve(g.num_edges());
  for (const auto& e : g.edges())
    h.terms_.push_back(ZZTerm{e.u, e.v, -coupling * e.weight});
  if (field != 0.0)
    for (std::size_t q = 0; q < g.num_vertices(); ++q)
      h.z_terms_.push_back(ZTerm{q, -field});
  return h;
}

double Hamiltonian::energy(const std::vector<double>& zz_expectations,
                           const std::vector<double>& z_expectations) const {
  QARCH_REQUIRE(zz_expectations.size() == terms_.size(),
                "expectation count mismatch");
  QARCH_REQUIRE(z_expectations.size() == z_terms_.size() ||
                    (z_terms_.empty() && z_expectations.empty()),
                "field expectation count mismatch");
  double e = constant_;
  for (std::size_t k = 0; k < terms_.size(); ++k)
    e += terms_[k].coefficient * zz_expectations[k];
  for (std::size_t k = 0; k < z_terms_.size(); ++k)
    e += z_terms_[k].coefficient * z_expectations[k];
  return e;
}

double Hamiltonian::classical_value(const std::vector<int>& z) const {
  QARCH_REQUIRE(z.size() == num_qubits_, "assignment size mismatch");
  double e = constant_;
  for (const ZZTerm& t : terms_) {
    QARCH_REQUIRE(z[t.u] == 1 || z[t.u] == -1, "assignment must be ±1");
    e += t.coefficient * static_cast<double>(z[t.u] * z[t.v]);
  }
  for (const ZTerm& t : z_terms_) {
    QARCH_REQUIRE(z[t.q] == 1 || z[t.q] == -1, "assignment must be ±1");
    e += t.coefficient * static_cast<double>(z[t.q]);
  }
  return e;
}

double Hamiltonian::classical_value_bits(std::size_t basis_index) const {
  double e = constant_;
  for (const ZZTerm& t : terms_) {
    const int zu = ((basis_index >> t.u) & 1ULL) != 0 ? -1 : 1;
    const int zv = ((basis_index >> t.v) & 1ULL) != 0 ? -1 : 1;
    e += t.coefficient * static_cast<double>(zu * zv);
  }
  for (const ZTerm& t : z_terms_) {
    const int zq = ((basis_index >> t.q) & 1ULL) != 0 ? -1 : 1;
    e += t.coefficient * static_cast<double>(zq);
  }
  return e;
}

double classical_maximum(const Hamiltonian& ham) {
  QARCH_REQUIRE(ham.num_qubits() <= 30,
                "classical_maximum: exact enumeration needs <= 30 qubits");
  const std::size_t dim = std::size_t{1} << ham.num_qubits();
  double best = ham.classical_value_bits(0);
  for (std::size_t i = 1; i < dim; ++i)
    best = std::max(best, ham.classical_value_bits(i));
  return best;
}

Hamiltonian HamiltonianSpec::build(const graph::Graph& g) const {
  switch (kind) {
    case HamiltonianKind::MaxCut: return Hamiltonian::maxcut(g);
    case HamiltonianKind::MIS: return Hamiltonian::mis(g, penalty);
    case HamiltonianKind::Ising: return Hamiltonian::ising(g, coupling, field);
  }
  throw InvalidArgument("invalid HamiltonianKind");
}

namespace {

/// Shortest round-trippable rendering of a double (no trailing noise for the
/// common 2, 1.5 cases; %.17g keeps exotic values exact).
std::string format_param(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string HamiltonianSpec::tag() const {
  switch (kind) {
    case HamiltonianKind::MaxCut: return "maxcut";
    case HamiltonianKind::MIS: return "mis@" + format_param(penalty);
    case HamiltonianKind::Ising:
      return "ising@" + format_param(coupling) + "@" + format_param(field);
  }
  throw InvalidArgument("invalid HamiltonianKind");
}

HamiltonianSpec HamiltonianSpec::parse_tag(const std::string& tag) {
  HamiltonianSpec spec;
  const std::size_t at = tag.find('@');
  const std::string name = tag.substr(0, at);
  spec.kind = hamiltonian_kind_from_name(name);
  if (at == std::string::npos) return spec;
  const std::string rest = tag.substr(at + 1);
  const std::size_t at2 = rest.find('@');
  if (spec.kind == HamiltonianKind::MIS) {
    QARCH_REQUIRE(at2 == std::string::npos, "malformed mis tag: " + tag);
    spec.penalty = std::strtod(rest.c_str(), nullptr);
  } else if (spec.kind == HamiltonianKind::Ising) {
    spec.coupling = std::strtod(rest.substr(0, at2).c_str(), nullptr);
    if (at2 != std::string::npos)
      spec.field = std::strtod(rest.substr(at2 + 1).c_str(), nullptr);
  }
  return spec;
}

}  // namespace qarch::qaoa
