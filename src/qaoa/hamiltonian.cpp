#include "qaoa/hamiltonian.hpp"

#include "common/error.hpp"

namespace qarch::qaoa {

MaxCutHamiltonian::MaxCutHamiltonian(const graph::Graph& g)
    : num_qubits_(g.num_vertices()) {
  terms_.reserve(g.num_edges());
  for (const auto& e : g.edges()) {
    constant_ += e.weight / 2.0;
    terms_.push_back(ZZTerm{e.u, e.v, -e.weight / 2.0});
  }
}

double MaxCutHamiltonian::energy(
    const std::vector<double>& zz_expectations) const {
  QARCH_REQUIRE(zz_expectations.size() == terms_.size(),
                "expectation count mismatch");
  double e = constant_;
  for (std::size_t k = 0; k < terms_.size(); ++k)
    e += terms_[k].coefficient * zz_expectations[k];
  return e;
}

double MaxCutHamiltonian::classical_value(const std::vector<int>& z) const {
  QARCH_REQUIRE(z.size() == num_qubits_, "assignment size mismatch");
  double e = constant_;
  for (const ZZTerm& t : terms_) {
    QARCH_REQUIRE(z[t.u] == 1 || z[t.u] == -1, "assignment must be ±1");
    e += t.coefficient * static_cast<double>(z[t.u] * z[t.v]);
  }
  return e;
}

}  // namespace qarch::qaoa
