// QAOA energy evaluation (SIMULATE_QAOA of Algorithm 1).
//
// Two engines compute <γ,β| C |γ,β>, and BOTH compile once per ansatz
// structure and rebind per theta (see plan_for's contract below):
//   * Statevector — the ansatz is compiled ONCE into a sim::SimProgram
//     (diagonal-phase kernels, fused single-qubit runs, cached matrices);
//     each energy(theta) replays the program and reads every <Z_u Z_v> off
//     the final state in one batched sweep. Kernels and the sweep use
//     `inner_workers` threads.
//   * TensorNetwork — one lightcone network per edge, compiled ONCE into a
//     qtensor::ContractionProgram (network built once, contraction order
//     planned once, slicing decided once, fused product+fold schedule over
//     pooled scratch); each energy(theta) rebinds the parameterized gate
//     tensors and replays. Per-edge replays run in parallel across
//     `inner_workers` threads (the inner level of the two-level scheme).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "circuit/circuit.hpp"
#include "graph/graph.hpp"
#include "qaoa/hamiltonian.hpp"
#include "qtensor/contraction.hpp"
#include "sim/sim_program.hpp"
#include "sim/statevector.hpp"

namespace qarch::qaoa {

/// Which simulator computes expectation values.
enum class EngineKind { Statevector, TensorNetwork };

/// Evaluation configuration — the full toggle surface of both engines.
/// `sv_*` fields affect EngineKind::Statevector only, `qtensor` affects
/// EngineKind::TensorNetwork only; everything else is engine-agnostic.
struct EnergyOptions {
  /// Which simulator computes <Z_u Z_v>. TensorNetwork (the paper's choice)
  /// scales with circuit structure (lightcone contraction width);
  /// Statevector scales with 2^n and wins at small n or large p.
  EngineKind engine = EngineKind::TensorNetwork;
  /// Threads INSIDE one energy(theta) call — statevector kernels + batched
  /// expectation sweeps, or concurrent per-edge tensor contractions. This
  /// is the inner level of the paper's two-level scheme; the outer level
  /// (concurrent candidates) lives in parallel::TaskPool.
  std::size_t inner_workers = 1;
  /// Compile each ansatz into a sim::SimProgram (specialized kernels,
  /// fusion, per-theta scalar rebinds). false → the legacy per-gate
  /// StatevectorSimulator::apply path (the ablation baseline).
  bool sv_compile_plan = true;
  /// Read all <Z_u Z_v> off the final state in ONE sweep
  /// (sim::batched_expectation_zz). false → one state pass per edge.
  bool sv_batch_expectations = true;
  /// Statevector compiled-plan kernel toggles (diagonal kernels, fusion,
  /// phase tables, SIMD, cache blocking) — see sim::PlanOptions.
  sim::PlanOptions sv_plan;
  /// Tensor-network engine configuration: compiled contraction programs
  /// (compile_programs, planner, slicing) and the bucket-product backend —
  /// see qtensor::QTensorOptions.
  qtensor::QTensorOptions qtensor;
  /// Capacity of the evaluator's ansatz→plan LRU cache used by plan_for()
  /// (0 disables caching: every plan_for call compiles fresh).
  std::size_t plan_cache_capacity = 16;
};

/// Compile-time facts about one plan (probed by tests and benches).
/// `compiled_programs`/`distinct_shapes` are tensor-network-plan notions;
/// both stay 0 for statevector plans and the legacy uncompiled path.
struct EnergyPlanInfo {
  std::size_t terms = 0;              ///< Hamiltonian terms served
  std::size_t compiled_programs = 0;  ///< ContractionPrograms actually built
  std::size_t distinct_shapes = 0;    ///< distinct lightcone shape keys
};

/// A reusable evaluation plan bound to one ansatz STRUCTURE: repeated
/// energy(theta) calls share precomputed state. The tensor-network plan
/// holds one compiled qtensor::ContractionProgram per lightcone-shape
/// EQUIVALENCE CLASS of edges (network, contraction order, slicing, and
/// scratch layout all depend only on the network structure, not on
/// parameter values; symmetric edges have provably equal <Z_u Z_v>), so a
/// 200-step training run pays for building and ordering once per distinct
/// shape — the same contraction-tree reuse QTensor performs, plus buffer
/// reuse across steps and edges.
class EnergyPlan {
 public:
  virtual ~EnergyPlan() = default;

  /// <γ,β| C |γ,β> at the given parameters.
  [[nodiscard]] virtual double energy(std::span<const double> theta) const = 0;

  /// Per-term <Z_u Z_v>, aligned with the evaluator's hamiltonian().terms().
  [[nodiscard]] virtual std::vector<double> zz_expectations(
      std::span<const double> theta) const = 0;

  /// Per-term <Z_q>, aligned with hamiltonian().z_terms(). Empty when the
  /// Hamiltonian has no field terms (the MaxCut case), so the default suits
  /// plans over field-free Hamiltonians.
  [[nodiscard]] virtual std::vector<double> z_expectations(
      std::span<const double> theta) const {
    (void)theta;
    return {};
  }

  /// Compile-time facts (shape dedup accounting); zeros by default.
  [[nodiscard]] virtual EnergyPlanInfo info() const { return {}; }
};

/// Evaluator of <C> over a fixed graph.
///
/// Plan-caching contract: plan_for() compiles at most once per distinct
/// ansatz STRUCTURE (gate kinds, qubits, parameter wiring — a bit-exact
/// fingerprint) and hands back a shared plan; new thetas rebind scalars at
/// energy() time, never recompile. Cached plans are owned by the evaluator's
/// LRU cache (plus whoever holds the returned shared_ptr) and reference this
/// evaluator's Hamiltonian, so they must not outlive it. Rebinding
/// invalidates nothing; only destroying the evaluator (or evicting under
/// plan_cache_capacity pressure once every external reference drops) ends a
/// plan's life. Thread-safe: the cache lock is taken once per plan_for()
/// call — per-candidate, never per theta — and plans themselves are
/// const/shareable with per-thread scratch statevectors.
class EnergyEvaluator {
 public:
  explicit EnergyEvaluator(const graph::Graph& g, EnergyOptions options = {});

  /// Generalized form: evaluate <C> for any diagonal ZZ+Z+constant
  /// Hamiltonian (MIS, Ising, weighted variants). The graph constructor is
  /// this with Hamiltonian(g).
  explicit EnergyEvaluator(Hamiltonian ham, EnergyOptions options = {});
  ~EnergyEvaluator();

  /// Builds an UNCACHED plan the caller exclusively owns. Prefer plan_for()
  /// — this exists for benches that measure compilation itself.
  [[nodiscard]] std::unique_ptr<EnergyPlan> make_plan(
      const circuit::Circuit& ansatz) const;

  /// The cached plan for this ansatz structure: compiles on first sight,
  /// returns the shared plan on every later call (training loops, multistart
  /// restarts, landscape scans all hit the same compilation).
  [[nodiscard]] std::shared_ptr<const EnergyPlan> plan_for(
      const circuit::Circuit& ansatz) const;

  /// One-shot convenience: <γ,β| C |γ,β> through the plan cache.
  [[nodiscard]] double energy(const circuit::Circuit& ansatz,
                              std::span<const double> theta) const;

  /// One-shot per-term <Z_u Z_v> values aligned with hamiltonian().terms().
  [[nodiscard]] std::vector<double> zz_expectations(
      const circuit::Circuit& ansatz, std::span<const double> theta) const;

  [[nodiscard]] const MaxCutHamiltonian& hamiltonian() const { return ham_; }
  [[nodiscard]] const EnergyOptions& options() const { return options_; }

 private:
  MaxCutHamiltonian ham_;
  EnergyOptions options_;
  struct PlanCache;
  std::unique_ptr<PlanCache> cache_;
};

}  // namespace qarch::qaoa
