// INTERP parameter initialization (Zhou et al. 2020).
//
// Training a depth-p ansatz from scratch wastes optimizer budget; the INTERP
// heuristic seeds depth p+1 by linearly interpolating the trained depth-p
// schedule. train_qaoa_interp trains p = 1..p_target incrementally and is
// the standard way production QAOA stacks reach useful depths with small
// per-depth budgets.
#pragma once

#include <cstddef>
#include <vector>

#include "optim/optimizer.hpp"
#include "qaoa/energy.hpp"
#include "qaoa/mixer.hpp"
#include "qaoa/train.hpp"

namespace qarch::qaoa {

/// Interpolates a trained depth-p schedule (our interleaved γ/β layout,
/// theta.size() == 2p) into a depth-(p+1) initial schedule (size 2p+2)
/// using the INTERP linear rule applied to γ and β independently.
std::vector<double> interp_schedule(const std::vector<double>& theta);

/// Result of incremental training: one entry per depth 1..p_target.
struct InterpResult {
  std::vector<TrainResult> per_depth;

  /// The final (deepest) trained result.
  [[nodiscard]] const TrainResult& final() const { return per_depth.back(); }
};

/// Trains depths 1..p_target over `g`, seeding each depth with the
/// interpolated schedule of the previous one.
InterpResult train_qaoa_interp(const graph::Graph& g, const MixerSpec& mixer,
                               std::size_t p_target,
                               const EnergyEvaluator& evaluator,
                               const optim::Optimizer& optimizer,
                               const TrainOptions& options = {});

}  // namespace qarch::qaoa
