#include "qaoa/objective.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "common/error.hpp"

namespace qarch::qaoa {

ObjectiveKind objective_kind_from_name(const std::string& name) {
  if (name == "expectation" || name == "energy")
    return ObjectiveKind::Expectation;
  if (name == "cvar") return ObjectiveKind::CVaR;
  if (name == "best" || name == "best-of-shots")
    return ObjectiveKind::BestOfShots;
  throw InvalidArgument("unknown objective kind: " + name);
}

std::string objective_kind_name(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::Expectation: return "expectation";
    case ObjectiveKind::CVaR: return "cvar";
    case ObjectiveKind::BestOfShots: return "best";
  }
  throw InvalidArgument("invalid ObjectiveKind");
}

namespace {

std::string format_param(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  if (std::strtod(buf, nullptr) == v) return buf;
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string ObjectiveSpec::tag() const {
  switch (kind) {
    case ObjectiveKind::Expectation: return "expectation";
    case ObjectiveKind::CVaR: {
      std::string t = "cvar@" + format_param(alpha);
      if (shots > 0) t += "@" + std::to_string(shots);
      return t;
    }
    case ObjectiveKind::BestOfShots: {
      std::string t = "best";
      if (shots > 0) t += "@" + std::to_string(shots);
      return t;
    }
  }
  throw InvalidArgument("invalid ObjectiveKind");
}

ObjectiveSpec ObjectiveSpec::parse_tag(const std::string& tag) {
  ObjectiveSpec spec;
  const std::size_t at = tag.find('@');
  spec.kind = objective_kind_from_name(tag.substr(0, at));
  if (at == std::string::npos) return spec;
  const std::string rest = tag.substr(at + 1);
  const std::size_t at2 = rest.find('@');
  if (spec.kind == ObjectiveKind::CVaR) {
    spec.alpha = std::strtod(rest.substr(0, at2).c_str(), nullptr);
    if (at2 != std::string::npos)
      spec.shots = static_cast<std::size_t>(
          std::strtoull(rest.substr(at2 + 1).c_str(), nullptr, 10));
  } else if (spec.kind == ObjectiveKind::BestOfShots) {
    QARCH_REQUIRE(at2 == std::string::npos, "malformed best tag: " + tag);
    spec.shots = static_cast<std::size_t>(
        std::strtoull(rest.c_str(), nullptr, 10));
  } else {
    throw InvalidArgument("malformed objective tag: " + tag);
  }
  return spec;
}

double cvar_value(std::vector<double> values, double alpha) {
  QARCH_REQUIRE(!values.empty(), "cvar needs at least one sample");
  QARCH_REQUIRE(alpha > 0.0 && alpha <= 1.0, "cvar alpha must be in (0, 1]");
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(alpha * static_cast<double>(values.size()))));
  std::partial_sort(values.begin(), values.begin() + keep, values.end(),
                    std::greater<double>());
  const double total =
      std::accumulate(values.begin(), values.begin() + keep, 0.0);
  return total / static_cast<double>(keep);
}

double best_of_value(const std::vector<double>& values) {
  QARCH_REQUIRE(!values.empty(), "best-of needs at least one sample");
  return *std::max_element(values.begin(), values.end());
}

double objective_value(const ObjectiveSpec& spec, std::vector<double> values) {
  switch (spec.kind) {
    case ObjectiveKind::Expectation: {
      QARCH_REQUIRE(!values.empty(), "mean needs at least one sample");
      return std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
    }
    case ObjectiveKind::CVaR: return cvar_value(std::move(values), spec.alpha);
    case ObjectiveKind::BestOfShots: return best_of_value(values);
  }
  throw InvalidArgument("invalid ObjectiveKind");
}

}  // namespace qarch::qaoa
