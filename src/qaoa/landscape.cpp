#include "qaoa/landscape.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "qaoa/ansatz.hpp"

namespace qarch::qaoa {

double Landscape::at(std::size_t gamma_idx, std::size_t beta_idx) const {
  QARCH_REQUIRE(gamma_idx < gammas.size() && beta_idx < betas.size(),
                "landscape index out of range");
  return values[gamma_idx * betas.size() + beta_idx];
}

Landscape::Peak Landscape::peak() const {
  QARCH_REQUIRE(!values.empty(), "empty landscape");
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i)
    if (values[i] > values[best]) best = i;
  Peak p;
  p.gamma = gammas[best / betas.size()];
  p.beta = betas[best % betas.size()];
  p.value = values[best];
  return p;
}

std::string Landscape::ascii(std::size_t max_cells) const {
  QARCH_REQUIRE(!values.empty(), "empty landscape");
  static const char kShades[] = " .:-=+*#%@";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double span = hi > lo ? hi - lo : 1.0;

  const std::size_t gstep = std::max<std::size_t>(1, gammas.size() / max_cells);
  const std::size_t bstep = std::max<std::size_t>(1, betas.size() / max_cells);

  std::ostringstream os;
  os << "<C>(γ,β): rows γ in [" << gammas.front() << ", " << gammas.back()
     << "], cols β in [" << betas.front() << ", " << betas.back() << "]\n";
  for (std::size_t i = 0; i < gammas.size(); i += gstep) {
    for (std::size_t j = 0; j < betas.size(); j += bstep) {
      const double t = (at(i, j) - lo) / span;
      os << kShades[static_cast<std::size_t>(t * 9.0)];
    }
    os << '\n';
  }
  return os.str();
}

Landscape scan_landscape(const graph::Graph& g, const MixerSpec& mixer,
                         const EnergyEvaluator& evaluator,
                         const LandscapeOptions& options) {
  QARCH_REQUIRE(options.gamma_points >= 2 && options.beta_points >= 2,
                "need at least a 2x2 grid");
  Landscape land;
  land.gammas.resize(options.gamma_points);
  land.betas.resize(options.beta_points);
  for (std::size_t i = 0; i < options.gamma_points; ++i)
    land.gammas[i] = options.gamma_lo +
                     (options.gamma_hi - options.gamma_lo) *
                         static_cast<double>(i) /
                         static_cast<double>(options.gamma_points - 1);
  for (std::size_t j = 0; j < options.beta_points; ++j)
    land.betas[j] = options.beta_lo +
                    (options.beta_hi - options.beta_lo) *
                        static_cast<double>(j) /
                        static_cast<double>(options.beta_points - 1);

  const circuit::Circuit ansatz = build_qaoa_circuit(g, 1, mixer);
  land.values.resize(options.gamma_points * options.beta_points);
  // Plans are const and thread-safe (per-thread scratch statevectors, cached
  // contraction orders), so ONE cached plan serves every grid worker — the
  // whole scan costs a single compilation.
  const std::shared_ptr<const EnergyPlan> plan = evaluator.plan_for(ansatz);
  parallel::parallel_for(
      0, options.gamma_points,
      [&](std::size_t i) {
        for (std::size_t j = 0; j < options.beta_points; ++j) {
          const double theta[2] = {land.gammas[i], land.betas[j]};
          land.values[i * options.beta_points + j] =
              plan->energy(std::span<const double>(theta, 2));
        }
      },
      options.workers);
  return land;
}

}  // namespace qarch::qaoa
