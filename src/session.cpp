#include "session.hpp"

#include "common/error.hpp"

namespace qarch {

BackendChoice backend_from_name(const std::string& name) {
  if (name == "sv" || name == "statevector") return BackendChoice::Statevector;
  if (name == "tn" || name == "qtensor" || name == "tensor-network")
    return BackendChoice::TensorNetwork;
  if (name == "auto") return BackendChoice::Auto;
  throw InvalidArgument("unknown backend name: " + name);
}

std::string backend_name(BackendChoice backend) {
  switch (backend) {
    case BackendChoice::Statevector: return "sv";
    case BackendChoice::TensorNetwork: return "tn";
    case BackendChoice::Auto: return "auto";
  }
  throw InvalidArgument("invalid BackendChoice");
}

search::EvaluatorOptions SessionConfig::evaluator_options(
    qaoa::EngineKind engine, std::size_t training) const {
  search::EvaluatorOptions opt = base;
  opt.energy.engine = engine;
  opt.energy.inner_workers = inner_workers;
  opt.cobyla.max_evals = training > 0 ? training : training_evals;
  opt.restarts = restarts;
  opt.simplify_circuit = simplify_circuit;
  opt.shots = shots;
  opt.sample_trials = sample_trials;
  opt.objective = objective;
  opt.hamiltonian = hamiltonian;
  return opt;
}

qaoa::EnergyOptions SessionConfig::energy_options(
    qaoa::EngineKind engine) const {
  return evaluator_options(engine).effective_energy();
}

}  // namespace qarch
