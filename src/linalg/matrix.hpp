// Dense complex matrices and vectors for gate algebra.
//
// These are deliberately small-scale types (gates are 2x2 / 4x4; verification
// matrices up to 2^n x 2^n for small n). Row-major storage, value semantics.
#pragma once

#include <complex>
#include <cstddef>
#include <string>
#include <vector>

namespace qarch::linalg {

using cplx = std::complex<double>;

/// Dense row-major complex matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of shape rows x cols.
  Matrix(std::size_t rows, std::size_t cols);

  /// Matrix from a row-major initializer (size must equal rows*cols).
  Matrix(std::size_t rows, std::size_t cols, std::vector<cplx> data);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<cplx>& data() const { return data_; }
  [[nodiscard]] std::vector<cplx>& data() { return data_; }

  /// Matrix product this * rhs.
  [[nodiscard]] Matrix matmul(const Matrix& rhs) const;

  /// Conjugate transpose.
  [[nodiscard]] Matrix dagger() const;

  /// Kronecker product this ⊗ rhs.
  [[nodiscard]] Matrix kron(const Matrix& rhs) const;

  /// Matrix-vector product this * v.
  [[nodiscard]] std::vector<cplx> apply(const std::vector<cplx>& v) const;

  /// Scales every entry by s.
  [[nodiscard]] Matrix scaled(cplx s) const;

  /// Entry-wise sum.
  [[nodiscard]] Matrix add(const Matrix& rhs) const;

  /// Frobenius norm of (this - rhs).
  [[nodiscard]] double distance(const Matrix& rhs) const;

  /// True when this† · this == I within `tol` (Frobenius).
  [[nodiscard]] bool is_unitary(double tol = 1e-10) const;

  /// True when every off-diagonal entry is < tol in magnitude.
  [[nodiscard]] bool is_diagonal(double tol = 1e-12) const;

  /// Multi-line human-readable rendering (for debugging/tests).
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<cplx> data_;
};

/// Inner product <a|b> = sum conj(a_i) b_i.
cplx inner(const std::vector<cplx>& a, const std::vector<cplx>& b);

/// Euclidean norm of a complex vector.
double norm(const std::vector<cplx>& v);

}  // namespace qarch::linalg
