#include "linalg/matrix.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace qarch::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<cplx> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  QARCH_REQUIRE(data_.size() == rows_ * cols_, "matrix data size mismatch");
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::matmul(const Matrix& rhs) const {
  QARCH_REQUIRE(cols_ == rhs.rows_, "matmul shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(i, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out(i, j) += a * rhs(k, j);
    }
  return out;
}

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out(j, i) = std::conj((*this)(i, j));
  return out;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      const cplx a = (*this)(i, j);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t r = 0; r < rhs.rows_; ++r)
        for (std::size_t c = 0; c < rhs.cols_; ++c)
          out(i * rhs.rows_ + r, j * rhs.cols_ + c) = a * rhs(r, c);
    }
  return out;
}

std::vector<cplx> Matrix::apply(const std::vector<cplx>& v) const {
  QARCH_REQUIRE(v.size() == cols_, "matvec shape mismatch");
  std::vector<cplx> out(rows_, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < rows_; ++i) {
    cplx s{0.0, 0.0};
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::scaled(cplx s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

Matrix Matrix::add(const Matrix& rhs) const {
  QARCH_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "add shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

double Matrix::distance(const Matrix& rhs) const {
  QARCH_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "distance shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const cplx d = data_[i] - rhs.data_[i];
    s += std::norm(d);
  }
  return std::sqrt(s);
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  return dagger().matmul(*this).distance(identity(rows_)) < tol;
}

bool Matrix::is_diagonal(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      if (i != j && std::abs((*this)(i, j)) >= tol) return false;
  return true;
}

std::string Matrix::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const cplx v = (*this)(i, j);
      os << '(' << v.real() << (v.imag() >= 0 ? "+" : "") << v.imag() << "i) ";
    }
    os << '\n';
  }
  return os.str();
}

cplx inner(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  QARCH_REQUIRE(a.size() == b.size(), "inner product size mismatch");
  cplx s{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}

double norm(const std::vector<cplx>& v) {
  double s = 0.0;
  for (const cplx& x : v) s += std::norm(x);
  return std::sqrt(s);
}

}  // namespace qarch::linalg
