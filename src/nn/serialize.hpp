// MLP weight persistence.
//
// The REINFORCE controller is trained online during a search; persisting its
// weights lets a later search (or a bigger cluster job) resume from a warm
// policy instead of re-exploring. JSON format keeps checkpoints diffable.
#pragma once

#include <string>

#include "common/json.hpp"
#include "nn/mlp.hpp"

namespace qarch::nn {

/// Serializes all weights/biases plus layer shapes.
json::Value mlp_to_json(const Mlp& model);

/// Restores weights into a model of IDENTICAL architecture; throws
/// InvalidArgument on any shape mismatch.
void mlp_from_json(const json::Value& value, Mlp& model);

/// Convenience file wrappers.
void save_mlp(const Mlp& model, const std::string& path);
void load_mlp(const std::string& path, Mlp& model);

}  // namespace qarch::nn
