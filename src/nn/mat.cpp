#include "nn/mat.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qarch::nn {

Mat::Mat(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Mat Mat::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Mat m(rows, cols);
  const double bound = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& x : m.data_) x = rng.uniform(-bound, bound);
  return m;
}

std::vector<double> Mat::matvec(const std::vector<double>& x) const {
  QARCH_REQUIRE(x.size() == cols_, "matvec shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * x[c];
    y[r] = s;
  }
  return y;
}

std::vector<double> Mat::matvec_transposed(const std::vector<double>& x) const {
  QARCH_REQUIRE(x.size() == rows_, "matvec_transposed shape mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) y[c] += (*this)(r, c) * x[r];
  return y;
}

void Mat::add_outer(const std::vector<double>& a, const std::vector<double>& b,
                    double scale) {
  QARCH_REQUIRE(a.size() == rows_ && b.size() == cols_,
                "add_outer shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      (*this)(r, c) += scale * a[r] * b[c];
}

void Mat::add_scaled(const Mat& rhs, double scale) {
  QARCH_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "add_scaled shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += scale * rhs.data_[i];
}

void Mat::zero() { std::fill(data_.begin(), data_.end(), 0.0); }

std::vector<double> softmax(const std::vector<double>& logits) {
  QARCH_REQUIRE(!logits.empty(), "softmax of empty vector");
  const double m = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - m);
    z += p[i];
  }
  for (double& v : p) v /= z;
  return p;
}

}  // namespace qarch::nn
