#include "nn/mlp.hpp"

#include <cmath>

#include "common/error.hpp"

namespace qarch::nn {

namespace {

double activate(Activation a, double x) {
  switch (a) {
    case Activation::Identity: return x;
    case Activation::Tanh: return std::tanh(x);
    case Activation::Relu: return x > 0.0 ? x : 0.0;
  }
  return x;
}

double activate_grad(Activation a, double pre) {
  switch (a) {
    case Activation::Identity: return 1.0;
    case Activation::Tanh: {
      const double t = std::tanh(pre);
      return 1.0 - t * t;
    }
    case Activation::Relu: return pre > 0.0 ? 1.0 : 0.0;
  }
  return 1.0;
}

}  // namespace

void MlpGradients::zero() {
  for (Mat& m : w) m.zero();
  for (auto& v : b) std::fill(v.begin(), v.end(), 0.0);
}

void MlpGradients::add_scaled(const MlpGradients& rhs, double scale) {
  QARCH_REQUIRE(w.size() == rhs.w.size(), "gradient shape mismatch");
  for (std::size_t l = 0; l < w.size(); ++l) {
    w[l].add_scaled(rhs.w[l], scale);
    for (std::size_t i = 0; i < b[l].size(); ++i)
      b[l][i] += scale * rhs.b[l][i];
  }
}

Mlp::Mlp(const std::vector<std::size_t>& dims,
         const std::vector<Activation>& activations, Rng& rng)
    : act_(activations) {
  QARCH_REQUIRE(dims.size() >= 2, "MLP needs at least input and output dims");
  QARCH_REQUIRE(activations.size() == dims.size() - 1,
                "one activation per layer required");
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    w_.push_back(Mat::xavier(dims[l + 1], dims[l], rng));
    b_.emplace_back(dims[l + 1], 0.0);
  }
}

std::vector<double> Mlp::forward(const std::vector<double>& x,
                                 Trace* trace) const {
  QARCH_REQUIRE(x.size() == input_size(), "MLP input size mismatch");
  std::vector<double> h = x;
  if (trace != nullptr) {
    trace->inputs.clear();
    trace->pre.clear();
  }
  for (std::size_t l = 0; l < w_.size(); ++l) {
    if (trace != nullptr) trace->inputs.push_back(h);
    std::vector<double> pre = w_[l].matvec(h);
    for (std::size_t i = 0; i < pre.size(); ++i) pre[i] += b_[l][i];
    if (trace != nullptr) trace->pre.push_back(pre);
    h.resize(pre.size());
    for (std::size_t i = 0; i < pre.size(); ++i)
      h[i] = activate(act_[l], pre[i]);
  }
  return h;
}

void Mlp::backward(const Trace& trace,
                   const std::vector<double>& dloss_dout,
                   MlpGradients& grads) const {
  QARCH_REQUIRE(trace.pre.size() == w_.size(), "trace does not match model");
  QARCH_REQUIRE(dloss_dout.size() == output_size(), "output grad mismatch");

  std::vector<double> delta = dloss_dout;
  for (std::size_t l = w_.size(); l-- > 0;) {
    // delta currently holds dL/d(post-activation of layer l).
    for (std::size_t i = 0; i < delta.size(); ++i)
      delta[i] *= activate_grad(act_[l], trace.pre[l][i]);
    grads.w[l].add_outer(delta, trace.inputs[l], 1.0);
    for (std::size_t i = 0; i < delta.size(); ++i) grads.b[l][i] += delta[i];
    if (l > 0) delta = w_[l].matvec_transposed(delta);
  }
}

MlpGradients Mlp::make_gradients() const {
  MlpGradients g;
  for (std::size_t l = 0; l < w_.size(); ++l) {
    g.w.emplace_back(w_[l].rows(), w_[l].cols());
    g.b.emplace_back(b_[l].size(), 0.0);
  }
  return g;
}

std::size_t Mlp::input_size() const { return w_.front().cols(); }
std::size_t Mlp::output_size() const { return w_.back().rows(); }

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < w_.size(); ++l)
    n += w_[l].rows() * w_[l].cols() + b_[l].size();
  return n;
}

Adam::Adam(const Mlp& model, AdamConfig config)
    : config_(config), m_(model.make_gradients()), v_(model.make_gradients()) {}

void Adam::step(Mlp& model, const MlpGradients& grads) {
  ++t_;
  const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(t_));

  for (std::size_t l = 0; l < model.weights().size(); ++l) {
    auto& w = model.weights()[l];
    auto& b = model.biases()[l];
    for (std::size_t i = 0; i < w.data().size(); ++i) {
      const double g = grads.w[l].data()[i];
      auto& m = m_.w[l].data()[i];
      auto& v = v_.w[l].data()[i];
      m = config_.beta1 * m + (1.0 - config_.beta1) * g;
      v = config_.beta2 * v + (1.0 - config_.beta2) * g * g;
      w.data()[i] -=
          config_.lr * (m / bc1) / (std::sqrt(v / bc2) + config_.eps);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
      const double g = grads.b[l][i];
      auto& m = m_.b[l][i];
      auto& v = v_.b[l][i];
      m = config_.beta1 * m + (1.0 - config_.beta1) * g;
      v = config_.beta2 * v + (1.0 - config_.beta2) * g * g;
      b[i] -= config_.lr * (m / bc1) / (std::sqrt(v / bc2) + config_.eps);
    }
  }
}

}  // namespace qarch::nn
