// A small multilayer perceptron with manual backprop and an Adam optimizer —
// the deep-neural-net predictor of Fig. 1 is built from this.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "nn/mat.hpp"

namespace qarch::nn {

/// Per-layer activation.
enum class Activation { Identity, Tanh, Relu };

/// Gradients mirroring an Mlp's parameters.
struct MlpGradients {
  std::vector<Mat> w;
  std::vector<std::vector<double>> b;

  void zero();
  void add_scaled(const MlpGradients& rhs, double scale);
};

/// Fully connected network: dims = {in, hidden..., out}; activations has one
/// entry per layer (dims.size() - 1 entries).
class Mlp {
 public:
  Mlp(const std::vector<std::size_t>& dims,
      const std::vector<Activation>& activations, Rng& rng);

  /// Forward pass caches per-layer pre/post activations for backprop.
  struct Trace {
    std::vector<std::vector<double>> inputs;  ///< input to each layer
    std::vector<std::vector<double>> pre;     ///< pre-activation per layer
  };

  /// Output for input x; fills `trace` when non-null.
  [[nodiscard]] std::vector<double> forward(const std::vector<double>& x,
                                            Trace* trace = nullptr) const;

  /// Backpropagates dL/d(output) through `trace`, accumulating into `grads`.
  void backward(const Trace& trace, const std::vector<double>& dloss_dout,
                MlpGradients& grads) const;

  /// Zero-initialized gradient buffers of matching shape.
  [[nodiscard]] MlpGradients make_gradients() const;

  [[nodiscard]] std::size_t input_size() const;
  [[nodiscard]] std::size_t output_size() const;
  [[nodiscard]] std::size_t num_layers() const { return w_.size(); }
  [[nodiscard]] std::size_t num_parameters() const;

  // Parameter access for the optimizer and serialization.
  std::vector<Mat>& weights() { return w_; }
  std::vector<std::vector<double>>& biases() { return b_; }
  [[nodiscard]] const std::vector<Mat>& weights() const { return w_; }
  [[nodiscard]] const std::vector<std::vector<double>>& biases() const {
    return b_;
  }

 private:
  std::vector<Mat> w_;
  std::vector<std::vector<double>> b_;
  std::vector<Activation> act_;
};

/// Adam hyperparameters.
struct AdamConfig {
  double lr = 1e-2;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

/// Adam optimizer over an Mlp's parameters.
class Adam {
 public:
  explicit Adam(const Mlp& model, AdamConfig config = {});

  /// Applies one Adam update of `grads` (gradient DESCENT direction).
  void step(Mlp& model, const MlpGradients& grads);

 private:
  AdamConfig config_;
  MlpGradients m_, v_;
  std::size_t t_ = 0;
};

}  // namespace qarch::nn
