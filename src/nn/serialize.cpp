#include "nn/serialize.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace qarch::nn {

json::Value mlp_to_json(const Mlp& model) {
  json::Value layers = json::Value::array();
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const Mat& w = model.weights()[l];
    const auto& b = model.biases()[l];
    json::Value layer = json::Value::object();
    layer.set("rows", w.rows());
    layer.set("cols", w.cols());
    json::Value weights = json::Value::array();
    for (double x : w.data()) weights.push_back(x);
    layer.set("w", std::move(weights));
    json::Value bias = json::Value::array();
    for (double x : b) bias.push_back(x);
    layer.set("b", std::move(bias));
    layers.push_back(std::move(layer));
  }
  json::Value obj = json::Value::object();
  obj.set("format", "qarch-mlp-v1");
  obj.set("layers", std::move(layers));
  return obj;
}

void mlp_from_json(const json::Value& value, Mlp& model) {
  QARCH_REQUIRE(value.contains("format") &&
                    value.at("format").as_string() == "qarch-mlp-v1",
                "not a qarch MLP checkpoint");
  const json::Value& layers = value.at("layers");
  QARCH_REQUIRE(layers.size() == model.num_layers(),
                "layer count mismatch");
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    const json::Value& layer = layers.at(l);
    Mat& w = model.weights()[l];
    auto& b = model.biases()[l];
    QARCH_REQUIRE(
        static_cast<std::size_t>(layer.at("rows").as_number()) == w.rows() &&
            static_cast<std::size_t>(layer.at("cols").as_number()) == w.cols(),
        "weight shape mismatch at layer " + std::to_string(l));
    const json::Value& weights = layer.at("w");
    QARCH_REQUIRE(weights.size() == w.data().size(), "weight count mismatch");
    for (std::size_t i = 0; i < w.data().size(); ++i)
      w.data()[i] = weights.at(i).as_number();
    const json::Value& bias = layer.at("b");
    QARCH_REQUIRE(bias.size() == b.size(), "bias count mismatch");
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = bias.at(i).as_number();
  }
}

void save_mlp(const Mlp& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("save_mlp: cannot open " + path);
  out << mlp_to_json(model).dump(2) << '\n';
}

void load_mlp(const std::string& path, Mlp& model) {
  std::ifstream in(path);
  if (!in) throw Error("load_mlp: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  mlp_from_json(json::parse(buffer.str()), model);
}

}  // namespace qarch::nn
