// Real-valued dense matrix for the neural predictor.
//
// Kept separate from linalg::Matrix (complex, gate-algebra oriented): the
// controller network is real-valued and needs gradient-style ops.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace qarch::nn {

/// Row-major dense matrix of doubles.
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Xavier/Glorot-uniform initialization.
  static Mat xavier(std::size_t rows, std::size_t cols, Rng& rng);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  /// y = this * x (matrix-vector).
  [[nodiscard]] std::vector<double> matvec(
      const std::vector<double>& x) const;

  /// y = this^T * x.
  [[nodiscard]] std::vector<double> matvec_transposed(
      const std::vector<double>& x) const;

  /// this += scale * (a outer b), where a has rows() entries, b cols().
  void add_outer(const std::vector<double>& a, const std::vector<double>& b,
                 double scale);

  /// this += scale * rhs (same shape).
  void add_scaled(const Mat& rhs, double scale);

  /// Sets every entry to zero.
  void zero();

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Numerically stable softmax of a logit vector.
std::vector<double> softmax(const std::vector<double>& logits);

}  // namespace qarch::nn
