// Direct sampling from a parameterized circuit on either engine.
//
// Statevector sampling materializes |psi> once and inverse-CDF-samples the
// 2^n probability vector. Tensor-network sampling never materializes the
// state: qubits are drawn one at a time, MSB (qubit n-1) first, each from
// the JOINT marginal p(prefix, bit) contracted directly from the network
// with the already-drawn prefix fixed by rebindable projector caps
// (qtensor::measure_query_network, WireRole::Fix + Diagonal). All n
// per-qubit marginal programs are compiled once per Sampler through the
// shared planner / plan cache and replayed per shot.
//
// Both engines consume exactly ONE rng.uniform() per shot and map it
// through the same ascending-index inverse CDF (the subtractive scheme of
// qaoa::sample_basis_state, which the per-qubit joint-marginal walk
// reproduces exactly), so:
//
//   * a given (engine, seed) stream is bit-for-bit deterministic, at every
//     worker count — the contraction kernels compute each output entry on
//     one thread in a fixed order;
//   * the two engines agree in distribution, and disagree on a draw only
//     when r lands within float error of a CDF boundary.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "query/program.hpp"
#include "sim/sim_program.hpp"

namespace qarch::query {

/// Which engine draws the samples.
enum class SamplerEngine {
  Statevector,    ///< materialize |psi>, sample the probability vector
  TensorNetwork,  ///< qubit-by-qubit marginal contraction, no statevector
};

/// Compile-time configuration of a Sampler.
struct SamplerOptions {
  SamplerEngine engine = SamplerEngine::Statevector;
  /// Tensor-network engine: compile config for the per-qubit marginal
  /// programs (planner, plan cache, lightcone toggles).
  QueryOptions query;
  /// Tensor-network engine: contraction backend spec ("serial",
  /// "parallel[:N]").
  std::string tn_backend = "serial";
  /// Statevector engine: compile config and replay workers.
  sim::PlanOptions sv_plan;
  std::size_t sv_workers = 1;
};

/// Compiled basis-state sampler for one ansatz. Thread-safe replays;
/// bit q of a returned sample is the measured value of qubit q.
class Sampler {
 public:
  explicit Sampler(const circuit::Circuit& ansatz,
                   const SamplerOptions& options = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Draws `shots` basis states, one rng.uniform() each.
  [[nodiscard]] std::vector<std::size_t> sample(std::span<const double> theta,
                                                std::size_t shots,
                                                Rng& rng) const;

  /// Exact probability of one basis state: |<basis|psi>|^2 on the
  /// statevector engine, the fully-fixed marginal on the tensor-network
  /// engine.
  [[nodiscard]] double probability(std::span<const double> theta,
                                   std::size_t basis) const;

  [[nodiscard]] std::size_t num_qubits() const;
  [[nodiscard]] SamplerEngine engine() const;
  /// Tensor-network engine: per-qubit marginal program stats (empty on the
  /// statevector engine). steps()[k] samples qubit num_qubits-1-k.
  [[nodiscard]] std::vector<QueryStats> step_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qarch::query
