#include "query/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <optional>

#include "common/error.hpp"
#include "qtensor/backend.hpp"

namespace qarch::query {

struct Sampler::Impl {
  SamplerOptions options;
  std::size_t n = 0;
  // Statevector engine.
  std::optional<sim::SimProgram> program;
  // Tensor-network engine: steps[k] opens qubit n-1-k, fixes qubits above
  // it, traces qubits below it.
  std::unique_ptr<qtensor::Backend> backend;
  std::vector<std::unique_ptr<QueryProgram>> steps;

  /// |psi> for the statevector engine, reusing one per-thread buffer across
  /// calls (same idiom as qaoa's StatevectorPlan).
  const sim::State& state(std::span<const double> theta) const {
    static thread_local sim::State scratch;
    const std::size_t dim = std::size_t{1} << n;
    if (scratch.capacity() > dim * 4) {
      sim::State released;
      scratch.swap(released);
    }
    const double amp = 1.0 / std::sqrt(static_cast<double>(dim));
    scratch.assign(dim, sim::cplx{amp, 0.0});
    program->apply_inplace(scratch, theta, options.sv_workers);
    return scratch;
  }

  /// Joint marginal [p(prefix, q=0), p(prefix, q=1)] for step k, where the
  /// prefix is the already-drawn bits of qubits above q, read from `idx`.
  void step_marginal(std::size_t k, std::span<const double> theta,
                     std::size_t idx, std::vector<int>& caps,
                     double out[2]) const {
    const std::size_t q = n - 1 - k;
    caps.clear();
    for (std::size_t j = q + 1; j < n; ++j)
      caps.push_back(static_cast<int>((idx >> j) & 1));
    cplx buf[2];
    steps[k]->run(theta, caps, *backend, std::span<cplx>(buf, 2));
    out[0] = std::max(0.0, buf[0].real());
    out[1] = std::max(0.0, buf[1].real());
  }
};

Sampler::Sampler(const circuit::Circuit& ansatz, const SamplerOptions& options)
    : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  impl_->n = ansatz.num_qubits();
  QARCH_REQUIRE(impl_->n >= 1, "sampler needs at least one qubit");
  if (options.engine == SamplerEngine::Statevector) {
    impl_->program.emplace(ansatz, options.sv_plan);
    return;
  }
  impl_->backend = qtensor::make_backend(options.tn_backend);
  impl_->steps.reserve(impl_->n);
  for (std::size_t k = 0; k < impl_->n; ++k) {
    const std::size_t q = impl_->n - 1 - k;
    std::vector<qtensor::WireRole> roles(impl_->n, qtensor::WireRole::Trace);
    roles[q] = qtensor::WireRole::Diagonal;
    for (std::size_t j = q + 1; j < impl_->n; ++j)
      roles[j] = qtensor::WireRole::Fix;
    qtensor::QueryNetwork network = qtensor::measure_query_network(
        ansatz, std::vector<double>(ansatz.num_params(), 0.0), roles,
        options.query.network);
    std::vector<qtensor::VarId> final_labels = network.open_labels;
    impl_->steps.push_back(std::make_unique<QueryProgram>(
        std::move(network), std::move(final_labels), ansatz.num_params(),
        options.query, "q:chain" + std::to_string(q)));
  }
}

Sampler::~Sampler() = default;

std::size_t Sampler::num_qubits() const { return impl_->n; }

SamplerEngine Sampler::engine() const { return impl_->options.engine; }

std::vector<QueryStats> Sampler::step_stats() const {
  std::vector<QueryStats> stats;
  stats.reserve(impl_->steps.size());
  for (const auto& s : impl_->steps) stats.push_back(s->stats());
  return stats;
}

std::vector<std::size_t> Sampler::sample(std::span<const double> theta,
                                         std::size_t shots, Rng& rng) const {
  std::vector<std::size_t> out;
  out.reserve(shots);
  if (impl_->options.engine == SamplerEngine::Statevector) {
    const sim::State& state = impl_->state(theta);
    for (std::size_t s = 0; s < shots; ++s) {
      // Subtractive inverse CDF over |amplitude|^2, ascending index, with
      // the tail guarded against float drift — identical to
      // qaoa::sample_basis_state so legacy streams are preserved.
      double r = rng.uniform();
      std::size_t idx = state.size() - 1;
      for (std::size_t i = 0; i < state.size(); ++i) {
        const double p = std::norm(state[i]);
        if (r < p) {
          idx = i;
          break;
        }
        r -= p;
      }
      out.push_back(idx);
    }
    return out;
  }
  // Tensor-network engine: walk qubits MSB-first, choosing each bit from
  // its JOINT marginal with the subtractive residue. This reproduces the
  // ascending-index inverse CDF exactly: after fixing a prefix, the residue
  // r lies in [0, p(prefix)) and p(prefix, next=0) splits that interval the
  // same way the flat CDF does.
  std::vector<int> caps;
  caps.reserve(impl_->n);
  for (std::size_t s = 0; s < shots; ++s) {
    double r = rng.uniform();
    std::size_t idx = 0;
    for (std::size_t k = 0; k < impl_->n; ++k) {
      const std::size_t q = impl_->n - 1 - k;
      double m[2];
      impl_->step_marginal(k, theta, idx, caps, m);
      if (r < m[0]) continue;  // bit stays 0
      r -= m[0];
      idx |= std::size_t{1} << q;
    }
    out.push_back(idx);
  }
  return out;
}

double Sampler::probability(std::span<const double> theta,
                            std::size_t basis) const {
  QARCH_REQUIRE(basis < (std::size_t{1} << impl_->n),
                "basis index out of range");
  if (impl_->options.engine == SamplerEngine::Statevector) {
    const sim::State& state = impl_->state(theta);
    return std::norm(state[basis]);
  }
  // The last chain step fixes every qubit but 0; its joint marginal AT the
  // full prefix is the basis probability itself.
  std::vector<int> caps;
  double m[2];
  impl_->step_marginal(impl_->n - 1, theta, basis, caps, m);
  return m[basis & 1];
}

}  // namespace qarch::query
