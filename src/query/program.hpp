// Compiled query programs — open-index contraction over both engines' TN
// machinery.
//
// ContractionProgram (qtensor/program.hpp) compiles CLOSED networks: every
// variable is eliminated and the result is a scalar expectation. The query
// subsystem generalizes that pipeline to networks with OPEN output labels,
// which is what amplitudes with free wires, reduced density matrices, and
// per-qubit sampling marginals all are:
//
//   * the network is built once (qtensor::amplitude_query_network /
//     measure_query_network) with its theta rebind points (GateBinding) and
//     basis rebind points (CapBinding) recorded;
//   * the contraction order comes from the SAME planner and the SAME
//     persistent plan cache as the closed programs — open variables are
//     filtered out of the planned order, so a warm process replays queries
//     with zero planner invocations;
//   * bucket elimination over the closed variables is flattened into the
//     same static product_sum_into schedule, and the surviving open-label
//     slots are combined by one Backend::product_into into the caller's
//     2^k output buffer.
//
// A replay therefore costs a per-symbol-gate rebind, a per-cap 2-entry
// rewrite, and the schedule — no network rebuild, no ordering, no
// allocation. Replays are const and thread-safe via the same pooled-scratch
// idiom as ContractionProgram.
//
// Queries are NOT sliced: open-index contractions in this repo are narrow
// (amplitude lightcones, k-qubit marginals with small k), and the planned
// width is guarded instead (max_width) so a pathological query fails loudly
// rather than allocating 2^40 entries.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/annotations.hpp"
#include "qtensor/backend.hpp"
#include "qtensor/contraction.hpp"
#include "qtensor/network.hpp"
#include "qtensor/plan_cache.hpp"
#include "qtensor/planner.hpp"

namespace qarch::query {

using qtensor::cplx;

/// Compile-time configuration shared by every query program.
struct QueryOptions {
  qtensor::NetworkOptions network;  ///< lightcone / diagonal rank reduction
  qtensor::PlannerOptions planner;  ///< ordering heuristics that compete
  /// Shared persistent plan cache (the same object ContractionProgram uses;
  /// query keys carry a "q:" prefix so the key spaces never collide).
  std::shared_ptr<qtensor::PlanCache> plan_cache;
  /// Hard ceiling on the compiled schedule's intermediate rank. Queries are
  /// not sliced, so a plan wider than this is a usage error (too many open
  /// qubits / marginal targets), reported at compile time.
  std::size_t max_width = 30;
};

/// Derives QueryOptions from the facade / energy-engine option block — the
/// query-side reconciliation point mirroring
/// qtensor::QTensorOptions::program_options().
[[nodiscard]] QueryOptions query_options(
    const qtensor::QTensorOptions& options);

/// Compile-time facts about one query program.
struct QueryStats {
  std::size_t tensors = 0;        ///< network tensors (inputs)
  std::size_t bound_tensors = 0;  ///< theta-rebindable tensors
  std::size_t cap_tensors = 0;    ///< bit-rebindable caps / projectors
  std::size_t open_labels = 0;    ///< open output variables (output rank)
  std::size_t steps = 0;          ///< bucket-elimination steps
  std::size_t width = 0;          ///< max intermediate rank (incl. output)
  double est_flops = 0.0;         ///< planner cost model estimate
  std::string heuristic;          ///< winning ordering heuristic
  bool plan_cached = false;       ///< order came from the plan cache
  std::string shape_key;          ///< plan-cache key ("q:"-prefixed)
};

/// One compiled open-index contraction: eliminates every closed variable of
/// a QueryNetwork along a planned order and writes the 2^k tensor over
/// `final_labels` (k = open label count, first label outermost). The
/// building block under AmplitudeProgram / MarginalProgram / Sampler.
class QueryProgram {
 public:
  /// `final_labels` must be a permutation of network.open_labels and fixes
  /// the output layout; `shape_key` keys the plan cache (the network
  /// structure hash guards exact applicability).
  QueryProgram(qtensor::QueryNetwork network,
               std::vector<qtensor::VarId> final_labels,
               std::size_t num_params, const QueryOptions& options,
               std::string shape_key);
  ~QueryProgram();

  QueryProgram(const QueryProgram&) = delete;
  QueryProgram& operator=(const QueryProgram&) = delete;

  /// Rebinds gates to `theta` and caps to `cap_bits` (one 0/1 per cap, in
  /// the network's cap order — ascending qubit for both builders), replays
  /// the schedule, and writes the 2^k output tensor into `out`
  /// (out.size() == output_entries()). Thread-safe.
  void run(std::span<const double> theta, std::span<const int> cap_bits,
           const qtensor::Backend& backend, std::span<cplx> out) const;

  [[nodiscard]] std::size_t num_caps() const { return caps_.size(); }
  [[nodiscard]] std::size_t num_open() const { return final_labels_.size(); }
  [[nodiscard]] std::size_t output_entries() const {
    return std::size_t{1} << final_labels_.size();
  }
  [[nodiscard]] std::size_t num_params() const { return num_params_; }
  [[nodiscard]] const QueryStats& stats() const { return stats_; }

 private:
  /// Flattened bucket step, identical to ContractionProgram's.
  struct Step {
    std::vector<std::size_t> factors;  ///< input slot ids
    std::vector<qtensor::VarId> out_labels;  ///< eliminated var first
    std::size_t out_slot = 0;
    std::size_t entries = 0;  ///< 2^|out_labels|
  };

  struct Scratch;
  struct ScratchLease;

  void compile(qtensor::TensorNetwork net, std::string shape_key);
  void init_scratch(Scratch& s) const;
  [[nodiscard]] ScratchLease lease() const;

  QueryOptions options_;
  std::size_t num_params_ = 0;
  std::vector<qtensor::Tensor> inputs_;         ///< baked network tensors
  std::vector<qtensor::GateBinding> bindings_;  ///< theta-dependent inputs
  std::vector<qtensor::CapBinding> caps_;       ///< bit-dependent inputs
  std::vector<qtensor::VarId> final_labels_;    ///< output label order
  std::vector<Step> steps_;
  std::vector<std::size_t> final_slots_;  ///< live slots after elimination
  std::size_t num_slots_ = 0;
  QueryStats stats_;

  mutable Mutex pool_mutex_{60, "cache.scratch"};
  mutable std::vector<std::unique_ptr<Scratch>> pool_
      QARCH_GUARDED_BY(pool_mutex_);
};

/// A single amplitude <bits|U|+>^n, compiled once and replayable for any
/// (theta, bits). Replaces the rebuild-per-call QTensorSimulator::amplitude
/// path (which now routes through this program).
class AmplitudeProgram {
 public:
  explicit AmplitudeProgram(const circuit::Circuit& circuit,
                            const QueryOptions& options = {});

  /// bits[q] in {0,1}, bits.size() == num_qubits.
  [[nodiscard]] cplx amplitude(std::span<const double> theta,
                               std::span<const int> bits,
                               const qtensor::Backend& backend) const;

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] const QueryStats& stats() const { return program_->stats(); }

 private:
  std::size_t num_qubits_ = 0;
  std::unique_ptr<QueryProgram> program_;
};

/// A batch of 2^k amplitudes with the qubits in `open_qubits` left free:
/// one replay yields <fixed_bits, *|U|+>^n for every assignment of the open
/// qubits. Output indexing is LSB-first over open_qubits: bit j of the
/// result index is the value of open_qubits[j].
class BatchedAmplitudeProgram {
 public:
  /// `open_qubits` must be sorted, unique, and non-empty.
  BatchedAmplitudeProgram(const circuit::Circuit& circuit,
                          std::span<const std::size_t> open_qubits,
                          const QueryOptions& options = {});

  /// `fixed_bits` has one 0/1 per NON-open qubit, ascending by qubit.
  /// Returns 2^k amplitudes indexed as documented above.
  [[nodiscard]] std::vector<cplx> amplitudes(
      std::span<const double> theta, std::span<const int> fixed_bits,
      const qtensor::Backend& backend) const;

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::vector<std::size_t>& open_qubits() const {
    return open_qubits_;
  }
  [[nodiscard]] const QueryStats& stats() const { return program_->stats(); }

 private:
  std::size_t num_qubits_ = 0;
  std::vector<std::size_t> open_qubits_;
  std::unique_ptr<QueryProgram> program_;
};

/// The reduced density matrix of `targets` (sorted, unique, non-empty):
/// rho = Tr_rest |psi><psi| as a row-major 2^k x 2^k matrix,
/// rdm[r * 2^k + c] with bit j of r and c being the value of targets[j].
/// Everything outside the targets' lightcone cancels, so small marginals of
/// shallow circuits stay cheap at any qubit count.
class MarginalProgram {
 public:
  MarginalProgram(const circuit::Circuit& circuit,
                  std::span<const std::size_t> targets,
                  const QueryOptions& options = {});

  [[nodiscard]] std::vector<cplx> rdm(std::span<const double> theta,
                                      const qtensor::Backend& backend) const;

  /// Diagonal of the RDM as real probabilities (clamped at 0): the marginal
  /// distribution of the targets, indexed LSB-first over `targets`.
  [[nodiscard]] std::vector<double> probabilities(
      std::span<const double> theta, const qtensor::Backend& backend) const;

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] const std::vector<std::size_t>& targets() const {
    return targets_;
  }
  [[nodiscard]] const QueryStats& stats() const { return program_->stats(); }

 private:
  std::size_t num_qubits_ = 0;
  std::vector<std::size_t> targets_;
  std::unique_ptr<QueryProgram> program_;
};

}  // namespace qarch::query
