#include "query/program.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.hpp"

namespace qarch::query {

using qtensor::CapBinding;
using qtensor::GateBinding;
using qtensor::QueryNetwork;
using qtensor::Tensor;
using qtensor::TensorNetwork;
using qtensor::VarId;

namespace {

/// A cached order is applicable to an open network iff it repeats nothing,
/// touches no open variable, and covers every CLOSED variable. The
/// structure-hash guard should guarantee this; validating anyway turns hash
/// collisions and corrupt cache entries into a silent replan.
bool order_applicable(const TensorNetwork& net,
                      const std::set<VarId>& open,
                      const std::vector<VarId>& order) {
  std::set<VarId> seen(order.begin(), order.end());
  if (seen.size() != order.size()) return false;
  for (VarId v : order)
    if (open.count(v) > 0) return false;
  for (VarId v : net.variables())
    if (open.count(v) == 0 && seen.count(v) == 0) return false;
  return true;
}

}  // namespace

QueryOptions query_options(const qtensor::QTensorOptions& options) {
  QueryOptions qo;
  qo.network = options.network;
  qo.planner = options.planner;
  qo.plan_cache = options.plan_cache;
  return qo;
}

struct QueryProgram::Scratch {
  bool ready = false;
  std::vector<Tensor> slots;           ///< inputs_ copies + intermediates
  std::vector<const Tensor*> factors;  ///< reusable factor-pointer list
};

struct QueryProgram::ScratchLease {
  const QueryProgram* program;
  std::unique_ptr<Scratch> scratch;

  ScratchLease(const QueryProgram* p, std::unique_ptr<Scratch> s)
      : program(p), scratch(std::move(s)) {}
  ScratchLease(ScratchLease&&) = default;
  ScratchLease(const ScratchLease&) = delete;
  ~ScratchLease() {
    if (scratch == nullptr) return;
    LockGuard lock(program->pool_mutex_);
    program->pool_.push_back(std::move(scratch));
  }
};

QueryProgram::QueryProgram(QueryNetwork network,
                           std::vector<VarId> final_labels,
                           std::size_t num_params, const QueryOptions& options,
                           std::string shape_key)
    : options_(options), num_params_(num_params) {
  bindings_ = std::move(network.bindings);
  caps_ = std::move(network.caps);
  {
    std::set<VarId> want(network.open_labels.begin(),
                         network.open_labels.end());
    std::set<VarId> got(final_labels.begin(), final_labels.end());
    QARCH_REQUIRE(want == got && final_labels.size() ==
                                     network.open_labels.size(),
                  "final_labels must permute the network's open labels");
  }
  final_labels_ = std::move(final_labels);
  compile(std::move(network.net), std::move(shape_key));
}

QueryProgram::~QueryProgram() = default;

void QueryProgram::compile(TensorNetwork net, std::string shape_key) {
  const std::set<VarId> open(final_labels_.begin(), final_labels_.end());

  // Contraction order: same plan cache, same planner as the closed
  // programs. The planner orders ALL variables; the open ones are filtered
  // out afterwards (they are output axes, not eliminations), and the
  // FILTERED order is what the cache stores — a hit replays with zero
  // planner work.
  std::vector<VarId> order;
  std::string heuristic;
  bool plan_cached = false;
  std::uint64_t structure = 0;
  if (options_.plan_cache != nullptr) {
    structure = qtensor::network_structure_hash(net);
    if (auto hit = options_.plan_cache->find(shape_key, structure);
        hit.has_value() && order_applicable(net, open, hit->order)) {
      order = std::move(hit->order);
      heuristic = hit->heuristic + "+cached";
      plan_cached = true;
    }
  }
  if (!plan_cached) {
    qtensor::ContractionPlan plan = qtensor::plan_contraction(
        net, options_.planner);
    heuristic = plan.heuristic;
    order.reserve(plan.order.size());
    for (VarId v : plan.order)
      if (open.count(v) == 0) order.push_back(v);
    if (options_.plan_cache != nullptr)
      options_.plan_cache->insert({shape_key, structure, order, heuristic});
  }
  // Score the actual schedule (open labels survive to the end), whether the
  // order came from the cache or a live plan.
  const qtensor::PlanCost sched_cost = qtensor::CostModel(net).cost(order);
  stats_.plan_cached = plan_cached;
  stats_.shape_key = std::move(shape_key);
  stats_.heuristic = std::move(heuristic);
  stats_.est_flops = sched_cost.flops;

  // Flatten bucket elimination exactly as ContractionProgram does; the only
  // difference is the invariant at the end — surviving slots carry open
  // labels instead of being scalars.
  struct Live {
    std::size_t slot;
    std::vector<VarId> labels;
  };
  std::vector<Live> live;
  live.reserve(net.tensors.size());
  for (std::size_t i = 0; i < net.tensors.size(); ++i)
    live.push_back({i, net.tensors[i].labels()});
  num_slots_ = net.tensors.size();

  for (VarId var : order) {
    std::vector<Live> rest;
    rest.reserve(live.size());
    Step step;
    std::set<VarId> union_set;
    for (Live& l : live) {
      if (std::find(l.labels.begin(), l.labels.end(), var) != l.labels.end()) {
        step.factors.push_back(l.slot);
        union_set.insert(l.labels.begin(), l.labels.end());
      } else {
        rest.push_back(std::move(l));
      }
    }
    if (step.factors.empty()) {
      live = std::move(rest);
      continue;
    }
    step.out_labels.reserve(union_set.size());
    step.out_labels.push_back(var);
    for (VarId w : union_set)
      if (w != var) step.out_labels.push_back(w);
    step.entries = std::size_t{1} << step.out_labels.size();
    step.out_slot = num_slots_++;
    stats_.width = std::max(stats_.width, step.out_labels.size());

    Live produced;
    produced.slot = step.out_slot;
    produced.labels.assign(step.out_labels.begin() + 1,
                           step.out_labels.end());
    rest.push_back(std::move(produced));
    steps_.push_back(std::move(step));
    live = std::move(rest);
  }

  // Everything still alive is a factor of the final open-label product.
  std::set<VarId> covered;
  for (const Live& l : live) {
    for (VarId v : l.labels) {
      QARCH_CHECK(open.count(v) > 0,
                  "compiled query left a closed variable uneliminated");
      covered.insert(v);
    }
    final_slots_.push_back(l.slot);
  }
  QARCH_CHECK(!final_slots_.empty(),
              "compiled query schedule consumed every tensor");
  QARCH_CHECK(covered.size() == open.size(),
              "an open label vanished from the network");
  stats_.width = std::max(stats_.width, final_labels_.size());
  QARCH_REQUIRE(stats_.width <= options_.max_width,
                "query contraction width exceeds max_width (too many open "
                "qubits for an unsliced query)");

  inputs_ = std::move(net.tensors);
  stats_.tensors = inputs_.size();
  stats_.bound_tensors = bindings_.size();
  stats_.cap_tensors = caps_.size();
  stats_.open_labels = final_labels_.size();
  stats_.steps = steps_.size();
}

void QueryProgram::init_scratch(Scratch& s) const {
  s.slots.clear();
  s.slots.reserve(num_slots_);
  for (const Tensor& t : inputs_) s.slots.push_back(t);
  for (const Step& st : steps_) {
    std::vector<VarId> labels(st.out_labels.begin() + 1, st.out_labels.end());
    s.slots.emplace_back(std::move(labels),
                         std::vector<cplx>(st.entries / 2));
  }
  s.ready = true;
}

QueryProgram::ScratchLease QueryProgram::lease() const {
  {
    LockGuard lock(pool_mutex_);
    if (!pool_.empty()) {
      std::unique_ptr<Scratch> s = std::move(pool_.back());
      pool_.pop_back();
      return {this, std::move(s)};
    }
  }
  return {this, std::make_unique<Scratch>()};
}

void QueryProgram::run(std::span<const double> theta,
                       std::span<const int> cap_bits,
                       const qtensor::Backend& backend,
                       std::span<cplx> out) const {
  QARCH_REQUIRE(theta.size() >= num_params_,
                "parameter vector too short for compiled query");
  QARCH_REQUIRE(cap_bits.size() == caps_.size(),
                "cap_bits size must match the program's cap count");
  QARCH_REQUIRE(out.size() == output_entries(),
                "output buffer size must be 2^open_labels");
  ScratchLease l = lease();
  Scratch& s = *l.scratch;
  if (!s.ready) init_scratch(s);
  for (const GateBinding& b : bindings_)
    qtensor::gate_tensor_data(b.gate, theta, b.diagonal,
                              s.slots[b.tensor_index].data());
  for (std::size_t i = 0; i < caps_.size(); ++i)
    qtensor::cap_tensor_data(cap_bits[i],
                             s.slots[caps_[i].tensor_index].data());
  for (const Step& st : steps_) {
    s.factors.clear();
    for (std::size_t f : st.factors) s.factors.push_back(&s.slots[f]);
    backend.product_sum_into(s.factors, st.out_labels,
                             s.slots[st.out_slot].data().data());
  }
  // Final combine: the surviving slots' labels are all open, so one
  // broadcast product lays the result out along final_labels_ (rank-0
  // survivors broadcast as scalars).
  s.factors.clear();
  for (std::size_t slot : final_slots_) s.factors.push_back(&s.slots[slot]);
  backend.product_into(s.factors, final_labels_, out.data());
}

// -- AmplitudeProgram ---------------------------------------------------------

AmplitudeProgram::AmplitudeProgram(const circuit::Circuit& circuit,
                                   const QueryOptions& options)
    : num_qubits_(circuit.num_qubits()) {
  QueryNetwork network = qtensor::amplitude_query_network(
      circuit, std::vector<double>(circuit.num_params(), 0.0), {},
      options.network);
  program_ = std::make_unique<QueryProgram>(
      std::move(network), std::vector<VarId>{}, circuit.num_params(), options,
      "q:amp");
}

cplx AmplitudeProgram::amplitude(std::span<const double> theta,
                                 std::span<const int> bits,
                                 const qtensor::Backend& backend) const {
  QARCH_REQUIRE(bits.size() == num_qubits_,
                "bits size must equal the qubit count");
  cplx out;
  program_->run(theta, bits, backend, std::span<cplx>(&out, 1));
  return out;
}

// -- BatchedAmplitudeProgram --------------------------------------------------

BatchedAmplitudeProgram::BatchedAmplitudeProgram(
    const circuit::Circuit& circuit, std::span<const std::size_t> open_qubits,
    const QueryOptions& options)
    : num_qubits_(circuit.num_qubits()),
      open_qubits_(open_qubits.begin(), open_qubits.end()) {
  QARCH_REQUIRE(!open_qubits_.empty(),
                "batched amplitudes need at least one open qubit "
                "(use AmplitudeProgram otherwise)");
  QueryNetwork network = qtensor::amplitude_query_network(
      circuit, std::vector<double>(circuit.num_params(), 0.0), open_qubits,
      options.network);
  // open_labels arrive ascending by qubit; reversing makes the HIGHEST open
  // qubit the outermost output axis, i.e. bit j of the result index is
  // open_qubits[j] (LSB-first, the statevector convention).
  std::vector<VarId> final_labels(network.open_labels.rbegin(),
                                  network.open_labels.rend());
  program_ = std::make_unique<QueryProgram>(
      std::move(network), std::move(final_labels), circuit.num_params(),
      options, "q:amp" + std::to_string(open_qubits_.size()));
}

std::vector<cplx> BatchedAmplitudeProgram::amplitudes(
    std::span<const double> theta, std::span<const int> fixed_bits,
    const qtensor::Backend& backend) const {
  QARCH_REQUIRE(fixed_bits.size() == num_qubits_ - open_qubits_.size(),
                "fixed_bits size must be num_qubits - open count");
  std::vector<cplx> out(program_->output_entries());
  program_->run(theta, fixed_bits, backend, out);
  return out;
}

// -- MarginalProgram ----------------------------------------------------------

MarginalProgram::MarginalProgram(const circuit::Circuit& circuit,
                                 std::span<const std::size_t> targets,
                                 const QueryOptions& options)
    : num_qubits_(circuit.num_qubits()),
      targets_(targets.begin(), targets.end()) {
  QARCH_REQUIRE(!targets_.empty(), "marginal needs at least one target");
  std::vector<qtensor::WireRole> roles(num_qubits_,
                                       qtensor::WireRole::Trace);
  for (std::size_t q : targets_) {
    QARCH_REQUIRE(q < num_qubits_, "marginal target out of range");
    QARCH_REQUIRE(roles[q] == qtensor::WireRole::Trace,
                  "duplicate marginal target");
    roles[q] = qtensor::WireRole::Cut;
  }
  QueryNetwork network = qtensor::measure_query_network(
      circuit, std::vector<double>(circuit.num_params(), 0.0), roles,
      options.network);
  // open_labels arrive [rows ascending, cols ascending]; the output wants
  // rows outermost (row-major matrix) with bit j of each index being
  // targets[j], i.e. [row_{k-1}..row_0, col_{k-1}..col_0].
  const std::size_t k = targets_.size();
  QARCH_CHECK(network.open_labels.size() == 2 * k,
              "cut wires must contribute two labels each");
  std::vector<VarId> final_labels;
  final_labels.reserve(2 * k);
  for (std::size_t j = 0; j < k; ++j)
    final_labels.push_back(network.open_labels[k - 1 - j]);
  for (std::size_t j = 0; j < k; ++j)
    final_labels.push_back(network.open_labels[2 * k - 1 - j]);
  program_ = std::make_unique<QueryProgram>(
      std::move(network), std::move(final_labels), circuit.num_params(),
      options, "q:rdm" + std::to_string(k));
}

std::vector<cplx> MarginalProgram::rdm(std::span<const double> theta,
                                       const qtensor::Backend& backend) const {
  std::vector<cplx> out(program_->output_entries());
  program_->run(theta, {}, backend, out);
  return out;
}

std::vector<double> MarginalProgram::probabilities(
    std::span<const double> theta, const qtensor::Backend& backend) const {
  const std::vector<cplx> rho = rdm(theta, backend);
  const std::size_t dim = std::size_t{1} << targets_.size();
  std::vector<double> probs(dim);
  for (std::size_t i = 0; i < dim; ++i)
    probs[i] = std::max(0.0, rho[i * dim + i].real());
  return probs;
}

}  // namespace qarch::query
