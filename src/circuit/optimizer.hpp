// Circuit simplification passes.
//
// The search explores many gate sequences whose circuits contain removable
// structure (adjacent rotations about the same axis, gate/inverse pairs,
// identity rotations). These peephole passes shrink candidates before
// simulation — the standard circuit-optimization step a production search
// stack runs between QBuilder and the evaluator (cf. Fösel et al. 2021 cited
// by the paper for learned versions of the same idea).
//
// All passes preserve the circuit's unitary action exactly (up to global
// phase for the RZ/P merge family) and never touch symbolic parameter
// structure they cannot prove equal.
#pragma once

#include <cstddef>
#include <string>

#include "circuit/circuit.hpp"

namespace qarch::circuit {

/// Statistics of one optimization run.
struct OptimizeStats {
  std::size_t gates_before = 0;
  std::size_t gates_after = 0;
  std::size_t merged_rotations = 0;   ///< adjacent same-axis rotations fused
  std::size_t cancelled_pairs = 0;    ///< gate/inverse pairs removed
  std::size_t removed_identities = 0; ///< zero-angle rotations / id gates

  [[nodiscard]] std::string to_string() const;
};

/// Options selecting which passes run.
struct OptimizeOptions {
  bool merge_rotations = true;    ///< RX(a)RX(b) -> RX(a+b), same for RY/RZ/P/RZZ
  bool cancel_inverses = true;    ///< H H -> ∅, CX CX -> ∅, S Sdg -> ∅, ...
  bool drop_identities = true;    ///< id gates and constant zero-angle rotations
  std::size_t max_rounds = 8;     ///< passes iterate to a fixed point
};

/// Runs the enabled passes to a fixed point and returns the smaller circuit.
/// `stats`, when non-null, receives counters for what each pass did.
Circuit optimize(const Circuit& input, const OptimizeOptions& options = {},
                 OptimizeStats* stats = nullptr);

}  // namespace qarch::circuit
