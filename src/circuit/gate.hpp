// Gate library: kinds, parameter expressions, and unitary matrices.
//
// Parameterized gates reference a shared symbolic parameter vector rather
// than storing angles inline — the searched mixer layers apply e.g. RX(2β)
// to every qubit with ONE shared β (Fig. 6/7 of the paper), and the QAOA
// ansatz shares γ_l / β_l across a whole layer.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace qarch::circuit {

/// Supported gate kinds. One- and two-qubit gates only (QAOA needs no more).
enum class GateKind {
  I,     ///< identity (useful as a search-alphabet no-op)
  X, Y, Z,
  H,
  S, Sdg,
  T, Tdg,
  RX, RY, RZ,   ///< rotation gates exp(-i θ P / 2)
  P,            ///< phase gate diag(1, e^{iθ})
  CX, CZ, SWAP,
  RZZ,          ///< exp(-i θ Z⊗Z / 2) — the QAOA cost-layer gate
};

/// True for gates that take an angle parameter.
bool is_parameterized(GateKind kind);

/// True for two-qubit gates.
bool is_two_qubit(GateKind kind);

/// True for gates whose matrix is diagonal in the computational basis.
/// These get rank-reduced tensors in the QTensor backend
/// (Lykov & Alexeev 2021, "Importance of Diagonal Gates").
bool is_diagonal(GateKind kind);

/// Lower-case mnemonic ("rx", "cz", ...). Matches the paper's alphabet names.
std::string gate_name(GateKind kind);

/// Parses a mnemonic; throws InvalidArgument for unknown names.
GateKind gate_from_name(const std::string& name);

/// An angle expression: either a constant or scale * theta[index] where
/// theta is the circuit's bound parameter vector.
struct ParamExpr {
  enum class Kind { None, Constant, Symbol };

  Kind kind = Kind::None;
  double constant = 0.0;    ///< used when kind == Constant
  std::size_t index = 0;    ///< used when kind == Symbol
  double scale = 1.0;       ///< used when kind == Symbol

  /// No parameter (non-parameterized gates).
  static ParamExpr none() { return {}; }

  /// Fixed numeric angle.
  static ParamExpr constant_angle(double value) {
    return ParamExpr{Kind::Constant, value, 0, 1.0};
  }

  /// scale * theta[index].
  static ParamExpr symbol(std::size_t index, double scale = 1.0) {
    return ParamExpr{Kind::Symbol, 0.0, index, scale};
  }

  /// Evaluates the angle against a bound parameter vector.
  [[nodiscard]] double value(std::span<const double> theta) const;

  friend bool operator==(const ParamExpr&, const ParamExpr&) = default;
};

/// One gate instance inside a circuit.
struct Gate {
  GateKind kind = GateKind::I;
  std::size_t q0 = 0;          ///< target (single) or first qubit
  std::size_t q1 = 0;          ///< second qubit for two-qubit gates
  ParamExpr param;

  /// Number of qubits this gate touches (1 or 2).
  [[nodiscard]] std::size_t arity() const { return is_two_qubit(kind) ? 2 : 1; }

  /// Unitary matrix (2x2 or 4x4) for the angle resolved from theta.
  [[nodiscard]] linalg::Matrix matrix(std::span<const double> theta) const;

  /// The adjoint gate (same qubits, inverted angle / dual kind).
  [[nodiscard]] Gate inverse() const;

  /// Short rendering, e.g. "rx(2.00*t0) q3" or "cx q0,q1".
  [[nodiscard]] std::string to_string() const;
};

/// The unitary of `kind` at angle `theta` (ignored for fixed gates).
linalg::Matrix gate_matrix(GateKind kind, double theta = 0.0);

/// The unitary of a non-parameterized `kind`, cached: returns a reference to
/// a lazily-built static matrix so hot simulation paths never re-allocate.
/// Throws InvalidArgument for parameterized kinds (their matrix depends on
/// the bound angle).
const linalg::Matrix& fixed_gate_matrix(GateKind kind);

}  // namespace qarch::circuit
