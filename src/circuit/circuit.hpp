// Circuit container: an ordered gate list over n qubits with a shared
// symbolic parameter space.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qarch::circuit {

/// A quantum circuit: ordered gates over `num_qubits` qubits referencing a
/// parameter vector of length `num_params`.
class Circuit {
 public:
  Circuit() = default;

  /// Empty circuit on n qubits with `params` symbolic parameters.
  explicit Circuit(std::size_t num_qubits, std::size_t num_params = 0);

  [[nodiscard]] std::size_t num_qubits() const { return num_qubits_; }
  [[nodiscard]] std::size_t num_params() const { return num_params_; }
  [[nodiscard]] std::size_t num_gates() const { return gates_.size(); }
  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }

  /// Registers one more symbolic parameter; returns its index.
  std::size_t add_param();

  /// Appends an arbitrary gate (validates qubit indices / parameter use).
  void append(Gate gate);

  // -- convenience builders ------------------------------------------------
  void h(std::size_t q)   { append({GateKind::H, q, 0, ParamExpr::none()}); }
  void x(std::size_t q)   { append({GateKind::X, q, 0, ParamExpr::none()}); }
  void y(std::size_t q)   { append({GateKind::Y, q, 0, ParamExpr::none()}); }
  void z(std::size_t q)   { append({GateKind::Z, q, 0, ParamExpr::none()}); }
  void s(std::size_t q)   { append({GateKind::S, q, 0, ParamExpr::none()}); }
  void t(std::size_t q)   { append({GateKind::T, q, 0, ParamExpr::none()}); }
  void rx(std::size_t q, ParamExpr a) { append({GateKind::RX, q, 0, a}); }
  void ry(std::size_t q, ParamExpr a) { append({GateKind::RY, q, 0, a}); }
  void rz(std::size_t q, ParamExpr a) { append({GateKind::RZ, q, 0, a}); }
  void p(std::size_t q, ParamExpr a)  { append({GateKind::P, q, 0, a}); }
  void cx(std::size_t c, std::size_t t2) {
    append({GateKind::CX, c, t2, ParamExpr::none()});
  }
  void cz(std::size_t a, std::size_t b) {
    append({GateKind::CZ, a, b, ParamExpr::none()});
  }
  void swap(std::size_t a, std::size_t b) {
    append({GateKind::SWAP, a, b, ParamExpr::none()});
  }
  void rzz(std::size_t a, std::size_t b, ParamExpr angle) {
    append({GateKind::RZZ, a, b, angle});
  }

  /// Appends every gate of `other` (same qubit count; parameter indices of
  /// `other` are shifted by this circuit's current num_params()).
  void compose(const Circuit& other);

  /// The adjoint circuit (gates reversed and inverted).
  [[nodiscard]] Circuit inverse() const;

  /// Total count of two-qubit gates (a standard hardware-cost metric).
  [[nodiscard]] std::size_t two_qubit_gate_count() const;

  /// Circuit depth: longest chain of gates per qubit timeline.
  [[nodiscard]] std::size_t depth() const;

  /// Multi-line gate listing.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t num_qubits_ = 0;
  std::size_t num_params_ = 0;
  std::vector<Gate> gates_;
};

/// ASCII circuit diagram in the style of the paper's Fig. 6 (one row per
/// qubit, boxed gate mnemonics, vertical connectors for two-qubit gates).
std::string draw(const Circuit& circuit);

/// OpenQASM 2.0 text for a circuit with all parameters bound to `theta`.
std::string to_qasm(const Circuit& circuit, std::span<const double> theta);

}  // namespace qarch::circuit
