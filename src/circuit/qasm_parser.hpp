// OpenQASM 2.0 importer.
//
// Parses the subset of OpenQASM 2.0 our exporter emits plus the common
// interchange constructs: one quantum register, the qelib1 gate set we
// support, numeric angle expressions (including pi arithmetic such as
// `pi/2`, `3*pi/4`, `-pi`), comments, and measure/barrier statements
// (ignored, since the simulator is stateless). Round-trips with to_qasm().
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace qarch::circuit {

/// Parses OpenQASM 2.0 source into a Circuit with constant-bound angles.
/// Throws InvalidArgument with a line-numbered message on malformed input.
Circuit parse_qasm(const std::string& source);

}  // namespace qarch::circuit
