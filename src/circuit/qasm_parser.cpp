#include "circuit/qasm_parser.hpp"

#include <cctype>
#include <cmath>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qarch::circuit {

namespace {

constexpr double kPi = 3.14159265358979323846;

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  std::ostringstream os;
  os << "qasm parse error (line " << line << "): " << message;
  throw InvalidArgument(os.str());
}

/// Strips `// ...` comments and surrounding whitespace.
std::string clean_line(std::string s) {
  const auto comment = s.find("//");
  if (comment != std::string::npos) s.erase(comment);
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// Minimal recursive-descent evaluator for angle expressions:
///   expr   := term (('+'|'-') term)*
///   term   := factor (('*'|'/') factor)*
///   factor := ('-')? (number | 'pi' | '(' expr ')')
class AngleParser {
 public:
  AngleParser(const std::string& text, std::size_t line)
      : text_(text), line_(line) {}

  double parse() {
    const double v = expr();
    skip_ws();
    if (pos_ != text_.size()) fail(line_, "trailing angle characters");
    return v;
  }

 private:
  double expr() {
    double v = term();
    for (;;) {
      skip_ws();
      if (accept('+')) v += term();
      else if (accept('-')) v -= term();
      else return v;
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      skip_ws();
      if (accept('*')) v *= factor();
      else if (accept('/')) {
        const double d = factor();
        if (d == 0.0) fail(line_, "division by zero in angle");
        v /= d;
      } else {
        return v;
      }
    }
  }

  double factor() {
    skip_ws();
    if (accept('-')) return -factor();
    if (accept('(')) {
      const double v = expr();
      skip_ws();
      if (!accept(')')) fail(line_, "missing ')' in angle");
      return v;
    }
    if (text_.compare(pos_, 2, "pi") == 0) {
      pos_ += 2;
      return kPi;
    }
    // Number literal.
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))))
      ++pos_;
    if (pos_ == start) fail(line_, "expected a number or 'pi'");
    return std::stod(text_.substr(start, pos_ - start));
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  const std::string& text_;
  std::size_t line_;
  std::size_t pos_ = 0;
};

/// Parses "q[3]" against the declared register name; returns the index.
std::size_t parse_qubit(const std::string& token, const std::string& reg,
                        std::size_t reg_size, std::size_t line) {
  const auto open = token.find('[');
  const auto close = token.find(']');
  if (open == std::string::npos || close == std::string::npos || close < open)
    fail(line, "expected <reg>[<index>], got '" + token + "'");
  const std::string name = token.substr(0, open);
  if (name != reg) fail(line, "unknown register '" + name + "'");
  const std::string idx_text = token.substr(open + 1, close - open - 1);
  char* end = nullptr;
  const unsigned long idx = std::strtoul(idx_text.c_str(), &end, 10);
  if (end == idx_text.c_str() || *end != '\0')
    fail(line, "bad qubit index '" + idx_text + "'");
  if (idx >= reg_size) fail(line, "qubit index out of range");
  return static_cast<std::size_t>(idx);
}

/// Splits "a,b" outside of brackets/parens into operand tokens.
std::vector<std::string> split_operands(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  int depth = 0;
  for (char c : text) {
    if (c == '[' || c == '(') ++depth;
    if (c == ']' || c == ')') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(clean_line(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!clean_line(cur).empty()) out.push_back(clean_line(cur));
  return out;
}

}  // namespace

Circuit parse_qasm(const std::string& source) {
  std::istringstream in(source);
  std::string raw;
  std::size_t line_no = 0;

  bool saw_header = false;
  std::string reg_name;
  std::size_t reg_size = 0;
  std::optional<Circuit> circuit;

  // Statements may span lines until ';'; accumulate.
  std::string pending;
  std::vector<std::pair<std::string, std::size_t>> statements;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::string cleaned = clean_line(raw);
    if (cleaned.empty()) continue;
    pending += (pending.empty() ? "" : " ") + cleaned;
    std::size_t semi;
    while ((semi = pending.find(';')) != std::string::npos) {
      const std::string stmt = clean_line(pending.substr(0, semi));
      pending = clean_line(pending.substr(semi + 1));
      if (!stmt.empty()) statements.emplace_back(stmt, line_no);
    }
  }
  if (!clean_line(pending).empty())
    fail(line_no, "unterminated statement (missing ';')");

  for (const auto& [stmt, line] : statements) {
    if (stmt.rfind("OPENQASM", 0) == 0) {
      if (stmt.find("2.0") == std::string::npos)
        fail(line, "only OPENQASM 2.0 is supported");
      saw_header = true;
      continue;
    }
    if (stmt.rfind("include", 0) == 0) continue;
    if (stmt.rfind("creg", 0) == 0 || stmt.rfind("barrier", 0) == 0 ||
        stmt.rfind("measure", 0) == 0)
      continue;  // classical/no-op constructs: ignored by the simulator

    if (stmt.rfind("qreg", 0) == 0) {
      if (circuit.has_value()) fail(line, "multiple qreg declarations");
      const std::string decl = clean_line(stmt.substr(4));
      const auto open = decl.find('[');
      const auto close = decl.find(']');
      if (open == std::string::npos || close == std::string::npos)
        fail(line, "malformed qreg declaration");
      reg_name = clean_line(decl.substr(0, open));
      const std::string size_text = decl.substr(open + 1, close - open - 1);
      char* end = nullptr;
      reg_size = std::strtoul(size_text.c_str(), &end, 10);
      if (end == size_text.c_str() || *end != '\0' || reg_size == 0)
        fail(line, "bad qreg size");
      circuit.emplace(reg_size);
      continue;
    }

    // Gate application: name[(angle)] operand(,operand)*
    if (!saw_header) fail(line, "missing OPENQASM 2.0 header");
    if (!circuit.has_value()) fail(line, "gate before qreg declaration");

    std::size_t name_end = 0;
    while (name_end < stmt.size() &&
           (std::isalnum(static_cast<unsigned char>(stmt[name_end]))))
      ++name_end;
    const std::string name = stmt.substr(0, name_end);
    std::string rest = clean_line(stmt.substr(name_end));

    double angle = 0.0;
    bool has_angle = false;
    if (!rest.empty() && rest[0] == '(') {
      // Find the MATCHING close paren — angle expressions may nest.
      int depth = 0;
      std::size_t close = std::string::npos;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == '(') ++depth;
        if (rest[i] == ')' && --depth == 0) {
          close = i;
          break;
        }
      }
      if (close == std::string::npos) fail(line, "missing ')' after angle");
      angle = AngleParser(rest.substr(1, close - 1), line).parse();
      has_angle = true;
      rest = clean_line(rest.substr(close + 1));
    }

    GateKind kind;
    try {
      kind = gate_from_name(name);
    } catch (const Error&) {
      fail(line, "unsupported gate '" + name + "'");
    }
    if (is_parameterized(kind) != has_angle)
      fail(line, "gate '" + name + "' has the wrong parameter arity");

    const auto operands = split_operands(rest);
    const std::size_t expected = is_two_qubit(kind) ? 2 : 1;
    if (operands.size() != expected)
      fail(line, "gate '" + name + "' expects " + std::to_string(expected) +
                     " operand(s)");

    Gate g;
    g.kind = kind;
    g.q0 = parse_qubit(operands[0], reg_name, reg_size, line);
    if (expected == 2) g.q1 = parse_qubit(operands[1], reg_name, reg_size, line);
    g.param = has_angle ? ParamExpr::constant_angle(angle) : ParamExpr::none();
    circuit->append(g);
  }

  if (!saw_header) throw InvalidArgument("qasm parse error: empty program");
  if (!circuit.has_value())
    throw InvalidArgument("qasm parse error: no qreg declared");
  return *circuit;
}

}  // namespace qarch::circuit
