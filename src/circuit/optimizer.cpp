#include "circuit/optimizer.hpp"

#include <cmath>
#include <optional>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace qarch::circuit {

namespace {

/// True when the two gates act on exactly the same qubit set (order-aware
/// for directional gates like CX, order-free for symmetric ones).
bool same_qubits(const Gate& a, const Gate& b) {
  if (a.arity() != b.arity()) return false;
  if (a.arity() == 1) return a.q0 == b.q0;
  const bool symmetric_a = a.kind == GateKind::CZ || a.kind == GateKind::RZZ ||
                           a.kind == GateKind::SWAP;
  if (symmetric_a)
    return (a.q0 == b.q0 && a.q1 == b.q1) || (a.q0 == b.q1 && a.q1 == b.q0);
  return a.q0 == b.q0 && a.q1 == b.q1;
}

/// True when two gates share at least one qubit (i.e. do not commute
/// trivially by acting on disjoint wires).
bool overlap(const Gate& a, const Gate& b) {
  const auto touches = [](const Gate& g, std::size_t q) {
    return g.q0 == q || (g.arity() == 2 && g.q1 == q);
  };
  if (touches(b, a.q0)) return true;
  return a.arity() == 2 && touches(b, a.q1);
}

/// Sum of two ParamExprs when it is expressible as a single ParamExpr:
/// constants add; symbols with the same index add scales.
std::optional<ParamExpr> add_params(const ParamExpr& a, const ParamExpr& b) {
  if (a.kind == ParamExpr::Kind::Constant &&
      b.kind == ParamExpr::Kind::Constant)
    return ParamExpr::constant_angle(a.constant + b.constant);
  if (a.kind == ParamExpr::Kind::Symbol && b.kind == ParamExpr::Kind::Symbol &&
      a.index == b.index)
    return ParamExpr::symbol(a.index, a.scale + b.scale);
  return std::nullopt;
}

/// True for a gate that is exactly the identity: id, or a rotation with a
/// provably zero angle (constant 0 or symbol with scale 0).
bool is_identity(const Gate& g) {
  if (g.kind == GateKind::I) return true;
  if (!is_parameterized(g.kind)) return false;
  switch (g.param.kind) {
    case ParamExpr::Kind::None:
      return true;  // parameterized gate with no angle = angle 0
    case ParamExpr::Kind::Constant:
      return g.param.constant == 0.0;
    case ParamExpr::Kind::Symbol:
      return g.param.scale == 0.0;
  }
  return false;
}

/// True when a followed by b is provably the identity.
bool are_inverse_pair(const Gate& a, const Gate& b) {
  if (!same_qubits(a, b)) return false;
  // Self-inverse fixed gates.
  const auto self_inverse = [](GateKind k) {
    switch (k) {
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::CX:
      case GateKind::CZ:
      case GateKind::SWAP:
        return true;
      default:
        return false;
    }
  };
  if (a.kind == b.kind && self_inverse(a.kind)) return true;
  // Dual pairs.
  if ((a.kind == GateKind::S && b.kind == GateKind::Sdg) ||
      (a.kind == GateKind::Sdg && b.kind == GateKind::S) ||
      (a.kind == GateKind::T && b.kind == GateKind::Tdg) ||
      (a.kind == GateKind::Tdg && b.kind == GateKind::T))
    return true;
  // Opposite rotations about the same axis.
  if (a.kind == b.kind && is_parameterized(a.kind)) {
    const auto sum = add_params(a.param, b.param);
    if (sum.has_value()) {
      const Gate merged{a.kind, a.q0, a.q1, *sum};
      return is_identity(merged);
    }
  }
  return false;
}

}  // namespace

std::string OptimizeStats::to_string() const {
  std::ostringstream os;
  os << "gates " << gates_before << " -> " << gates_after << " (merged "
     << merged_rotations << ", cancelled " << cancelled_pairs << ", dropped "
     << removed_identities << ")";
  return os.str();
}

Circuit optimize(const Circuit& input, const OptimizeOptions& options,
                 OptimizeStats* stats) {
  OptimizeStats local;
  local.gates_before = input.num_gates();

  std::vector<Gate> gates = input.gates();

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    bool changed = false;

    // Pass 1: drop identities.
    if (options.drop_identities) {
      std::vector<Gate> kept;
      kept.reserve(gates.size());
      for (const Gate& g : gates) {
        if (is_identity(g)) {
          ++local.removed_identities;
          changed = true;
        } else {
          kept.push_back(g);
        }
      }
      gates = std::move(kept);
    }

    // Pass 2: merge/cancel adjacent gates on the same wires. "Adjacent"
    // means no intervening gate shares a qubit with the pair — gates on
    // disjoint wires commute, so we scan past them.
    if (options.merge_rotations || options.cancel_inverses) {
      for (std::size_t i = 0; i < gates.size(); ++i) {
        // Find the next gate overlapping gates[i].
        std::size_t j = i + 1;
        while (j < gates.size() && !overlap(gates[i], gates[j])) ++j;
        if (j >= gates.size()) continue;

        if (options.cancel_inverses && are_inverse_pair(gates[i], gates[j])) {
          gates.erase(gates.begin() + static_cast<long>(j));
          gates.erase(gates.begin() + static_cast<long>(i));
          ++local.cancelled_pairs;
          changed = true;
          if (i > 0) --i;  // re-examine the newly adjacent neighbourhood
          continue;
        }

        if (options.merge_rotations && gates[i].kind == gates[j].kind &&
            is_parameterized(gates[i].kind) && same_qubits(gates[i], gates[j])) {
          const auto sum = add_params(gates[i].param, gates[j].param);
          if (sum.has_value()) {
            gates[i].param = *sum;
            gates.erase(gates.begin() + static_cast<long>(j));
            ++local.merged_rotations;
            changed = true;
            --i;  // the merged gate may merge or cancel again
            continue;
          }
        }
      }
    }

    if (!changed) break;
  }

  Circuit out(input.num_qubits(), input.num_params());
  for (const Gate& g : gates) out.append(g);
  local.gates_after = out.num_gates();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace qarch::circuit
