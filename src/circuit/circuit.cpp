#include "circuit/circuit.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace qarch::circuit {

Circuit::Circuit(std::size_t num_qubits, std::size_t num_params)
    : num_qubits_(num_qubits), num_params_(num_params) {}

std::size_t Circuit::add_param() { return num_params_++; }

void Circuit::append(Gate gate) {
  QARCH_REQUIRE(gate.q0 < num_qubits_, "gate qubit out of range");
  if (gate.arity() == 2) {
    QARCH_REQUIRE(gate.q1 < num_qubits_, "gate qubit out of range");
    QARCH_REQUIRE(gate.q0 != gate.q1, "two-qubit gate needs distinct qubits");
  }
  if (gate.param.kind == ParamExpr::Kind::Symbol)
    QARCH_REQUIRE(gate.param.index < num_params_,
                  "gate references unregistered parameter");
  if (!is_parameterized(gate.kind))
    QARCH_REQUIRE(gate.param.kind == ParamExpr::Kind::None,
                  "fixed gate must not carry a parameter");
  gates_.push_back(gate);
}

void Circuit::compose(const Circuit& other) {
  QARCH_REQUIRE(other.num_qubits() == num_qubits_,
                "compose: qubit count mismatch");
  const std::size_t shift = num_params_;
  num_params_ += other.num_params();
  for (Gate g : other.gates()) {
    if (g.param.kind == ParamExpr::Kind::Symbol) g.param.index += shift;
    gates_.push_back(g);
  }
}

Circuit Circuit::inverse() const {
  Circuit inv(num_qubits_, num_params_);
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
    inv.gates_.push_back(it->inverse());
  return inv;
}

std::size_t Circuit::two_qubit_gate_count() const {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.arity() == 2; }));
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> level(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    std::size_t at = level[g.q0];
    if (g.arity() == 2) at = std::max(at, level[g.q1]);
    ++at;
    level[g.q0] = at;
    if (g.arity() == 2) level[g.q1] = at;
    depth = std::max(depth, at);
  }
  return depth;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "Circuit(n=" << num_qubits_ << ", params=" << num_params_
     << ", gates=" << gates_.size() << ")\n";
  for (const Gate& g : gates_) os << "  " << g.to_string() << '\n';
  return os.str();
}

std::string draw(const Circuit& circuit) {
  const std::size_t n = circuit.num_qubits();
  // Column-compacted layout: a gate goes into the earliest column where all
  // of its qubits (and, for two-qubit gates, the qubits in between) are free.
  std::vector<std::size_t> next_col(n, 0);
  struct Cell { std::string text; bool connector = false; };
  std::vector<std::vector<Cell>> grid(n);

  auto label = [](const Gate& g) {
    std::string s = gate_name(g.kind);
    if (is_parameterized(g.kind)) {
      switch (g.param.kind) {
        case ParamExpr::Kind::None:
          break;
        case ParamExpr::Kind::Constant: {
          char buf[32];
          std::snprintf(buf, sizeof buf, "(%.2f)", g.param.constant);
          s += buf;
          break;
        }
        case ParamExpr::Kind::Symbol: {
          char buf[48];
          if (g.param.scale == 1.0)
            std::snprintf(buf, sizeof buf, "(t%zu)", g.param.index);
          else
            std::snprintf(buf, sizeof buf, "(%.3g*t%zu)", g.param.scale,
                          g.param.index);
          s += buf;
          break;
        }
      }
    }
    return s;
  };

  auto ensure_cols = [&](std::size_t q, std::size_t col) {
    while (grid[q].size() <= col) grid[q].push_back({});
  };

  for (const Gate& g : circuit.gates()) {
    if (g.arity() == 1) {
      const std::size_t col = next_col[g.q0];
      ensure_cols(g.q0, col);
      grid[g.q0][col].text = label(g);
      next_col[g.q0] = col + 1;
    } else {
      const std::size_t lo = std::min(g.q0, g.q1), hi = std::max(g.q0, g.q1);
      std::size_t col = 0;
      for (std::size_t q = lo; q <= hi; ++q) col = std::max(col, next_col[q]);
      for (std::size_t q = lo; q <= hi; ++q) {
        ensure_cols(q, col);
        if (q == g.q0) grid[q][col].text = label(g) + (g.kind == GateKind::CX ? ":c" : "");
        else if (q == g.q1) grid[q][col].text = g.kind == GateKind::CX ? "X" : label(g);
        else grid[q][col].connector = true;
        next_col[q] = col + 1;
      }
    }
  }

  std::size_t cols = 0;
  for (const auto& row : grid) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 1);
  for (const auto& row : grid)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].text.size());

  std::ostringstream os;
  for (std::size_t q = 0; q < n; ++q) {
    os << 'q' << q << (q < 10 ? " " : "") << ": ";
    for (std::size_t c = 0; c < cols; ++c) {
      const Cell cell = c < grid[q].size() ? grid[q][c] : Cell{};
      std::string body;
      if (!cell.text.empty()) {
        body = "[" + cell.text + "]";
      } else if (cell.connector) {
        body = "--|--";
      }
      const std::size_t target = width[c] + 2;
      // pad with wire dashes on both sides
      while (body.size() < target)
        body = (body.size() % 2 == 0) ? "-" + body : body + "-";
      os << '-' << body << '-';
    }
    os << "--\n";
  }
  return os.str();
}

std::string to_qasm(const Circuit& circuit, std::span<const double> theta) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  for (const Gate& g : circuit.gates()) {
    const std::string name = gate_name(g.kind);
    if (g.kind == GateKind::I) continue;  // no-op in qelib1
    os << name;
    if (is_parameterized(g.kind)) {
      // Full precision so import/export round-trips bit-exactly.
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", g.param.value(theta));
      os << '(' << buf << ')';
    }
    os << " q[" << g.q0 << ']';
    if (g.arity() == 2) os << ",q[" << g.q1 << ']';
    os << ";\n";
  }
  return os.str();
}

}  // namespace qarch::circuit
