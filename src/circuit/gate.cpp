#include "circuit/gate.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace qarch::circuit {

using linalg::cplx;
using linalg::Matrix;

bool is_parameterized(GateKind kind) {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::RZZ:
      return true;
    default:
      return false;
  }
}

bool is_two_qubit(GateKind kind) {
  switch (kind) {
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
    case GateKind::RZZ:
      return true;
    default:
      return false;
  }
}

bool is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::I:
    case GateKind::Z:
    case GateKind::S:
    case GateKind::Sdg:
    case GateKind::T:
    case GateKind::Tdg:
    case GateKind::RZ:
    case GateKind::P:
    case GateKind::CZ:
    case GateKind::RZZ:
      return true;
    default:
      return false;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::I: return "id";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::H: return "h";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::P: return "p";
    case GateKind::CX: return "cx";
    case GateKind::CZ: return "cz";
    case GateKind::SWAP: return "swap";
    case GateKind::RZZ: return "rzz";
  }
  return "?";
}

GateKind gate_from_name(const std::string& name) {
  static const std::pair<const char*, GateKind> table[] = {
      {"id", GateKind::I},   {"x", GateKind::X},     {"y", GateKind::Y},
      {"z", GateKind::Z},    {"h", GateKind::H},     {"s", GateKind::S},
      {"sdg", GateKind::Sdg},{"t", GateKind::T},     {"tdg", GateKind::Tdg},
      {"rx", GateKind::RX},  {"ry", GateKind::RY},   {"rz", GateKind::RZ},
      {"p", GateKind::P},    {"cx", GateKind::CX},   {"cz", GateKind::CZ},
      {"swap", GateKind::SWAP}, {"rzz", GateKind::RZZ},
  };
  for (const auto& [n, k] : table)
    if (name == n) return k;
  throw InvalidArgument("unknown gate name: " + name);
}

double ParamExpr::value(std::span<const double> theta) const {
  switch (kind) {
    case Kind::None:
      return 0.0;
    case Kind::Constant:
      return constant;
    case Kind::Symbol:
      QARCH_REQUIRE(index < theta.size(), "parameter index out of range");
      return scale * theta[index];
  }
  return 0.0;
}

Matrix gate_matrix(GateKind kind, double theta) {
  const cplx i{0.0, 1.0};
  const double c = std::cos(theta / 2.0), s = std::sin(theta / 2.0);
  switch (kind) {
    case GateKind::I:
      return Matrix(2, 2, {1, 0, 0, 1});
    case GateKind::X:
      return Matrix(2, 2, {0, 1, 1, 0});
    case GateKind::Y:
      return Matrix(2, 2, {0, -i, i, 0});
    case GateKind::Z:
      return Matrix(2, 2, {1, 0, 0, -1});
    case GateKind::H: {
      const double r = 1.0 / std::sqrt(2.0);
      return Matrix(2, 2, {r, r, r, -r});
    }
    case GateKind::S:
      return Matrix(2, 2, {1, 0, 0, i});
    case GateKind::Sdg:
      return Matrix(2, 2, {1, 0, 0, -i});
    case GateKind::T:
      return Matrix(2, 2, {1, 0, 0, std::exp(i * (3.14159265358979323846 / 4))});
    case GateKind::Tdg:
      return Matrix(2, 2, {1, 0, 0, std::exp(-i * (3.14159265358979323846 / 4))});
    case GateKind::RX:
      return Matrix(2, 2, {c, -i * s, -i * s, c});
    case GateKind::RY:
      return Matrix(2, 2, {c, -s, s, c});
    case GateKind::RZ:
      return Matrix(2, 2, {std::exp(-i * (theta / 2)), 0, 0,
                           std::exp(i * (theta / 2))});
    case GateKind::P:
      return Matrix(2, 2, {1, 0, 0, std::exp(i * theta)});
    case GateKind::CX:
      return Matrix(4, 4, {1, 0, 0, 0,
                           0, 1, 0, 0,
                           0, 0, 0, 1,
                           0, 0, 1, 0});
    case GateKind::CZ:
      return Matrix(4, 4, {1, 0, 0, 0,
                           0, 1, 0, 0,
                           0, 0, 1, 0,
                           0, 0, 0, -1});
    case GateKind::SWAP:
      return Matrix(4, 4, {1, 0, 0, 0,
                           0, 0, 1, 0,
                           0, 1, 0, 0,
                           0, 0, 0, 1});
    case GateKind::RZZ: {
      // exp(-i θ/2 Z⊗Z) = diag(e^{-iθ/2}, e^{iθ/2}, e^{iθ/2}, e^{-iθ/2})
      const cplx em = std::exp(-i * (theta / 2)), ep = std::exp(i * (theta / 2));
      return Matrix(4, 4, {em, 0, 0, 0,
                           0, ep, 0, 0,
                           0, 0, ep, 0,
                           0, 0, 0, em});
    }
  }
  throw InternalError("unhandled gate kind");
}

const Matrix& fixed_gate_matrix(GateKind kind) {
  QARCH_REQUIRE(!is_parameterized(kind),
                "fixed_gate_matrix called for a parameterized gate");
  // One static table for all fixed kinds, built on first use (thread-safe
  // per C++11 magic statics). Indexed by the enum value.
  static const std::vector<Matrix> table = [] {
    const GateKind fixed[] = {GateKind::I,   GateKind::X,    GateKind::Y,
                              GateKind::Z,   GateKind::H,    GateKind::S,
                              GateKind::Sdg, GateKind::T,    GateKind::Tdg,
                              GateKind::CX,  GateKind::CZ,   GateKind::SWAP};
    std::vector<Matrix> t(static_cast<std::size_t>(GateKind::RZZ) + 1);
    for (const GateKind k : fixed)
      t[static_cast<std::size_t>(k)] = gate_matrix(k);
    return t;
  }();
  const Matrix& m = table.at(static_cast<std::size_t>(kind));
  QARCH_CHECK(m.rows() != 0, "fixed_gate_matrix table misses a gate kind");
  return m;
}

Matrix Gate::matrix(std::span<const double> theta) const {
  if (!is_parameterized(kind)) return fixed_gate_matrix(kind);
  return gate_matrix(kind, param.value(theta));
}

Gate Gate::inverse() const {
  Gate g = *this;
  switch (kind) {
    case GateKind::S:   g.kind = GateKind::Sdg; return g;
    case GateKind::Sdg: g.kind = GateKind::S;   return g;
    case GateKind::T:   g.kind = GateKind::Tdg; return g;
    case GateKind::Tdg: g.kind = GateKind::T;   return g;
    default:
      break;
  }
  if (is_parameterized(kind)) {
    // Rotation adjoint = rotation by the negated angle.
    switch (g.param.kind) {
      case ParamExpr::Kind::None:
        break;
      case ParamExpr::Kind::Constant:
        g.param.constant = -g.param.constant;
        break;
      case ParamExpr::Kind::Symbol:
        g.param.scale = -g.param.scale;
        break;
    }
    return g;
  }
  // X, Y, Z, H, CX, CZ, SWAP, I are self-inverse.
  return g;
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(kind);
  if (is_parameterized(kind)) {
    os << '(';
    switch (param.kind) {
      case ParamExpr::Kind::None:
        os << '0';
        break;
      case ParamExpr::Kind::Constant:
        os << param.constant;
        break;
      case ParamExpr::Kind::Symbol:
        os << param.scale << "*t" << param.index;
        break;
    }
    os << ')';
  }
  os << " q" << q0;
  if (arity() == 2) os << ",q" << q1;
  return os.str();
}

}  // namespace qarch::circuit
