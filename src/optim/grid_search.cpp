#include "optim/grid_search.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace qarch::optim {

OptimResult GridSearch::minimize(const Objective& f, std::vector<double> x0,
                                 OptimState& state,
                                 PreemptToken* preempt) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1 && n <= 3, "grid search limited to 1-3 dimensions");
  QARCH_REQUIRE(config_.points_per_axis >= 2, "need at least 2 grid points");
  // State layout: words = [flat cursor]; numbers = [best value, best x (n)].
  const bool resuming = !state.fresh();
  if (resuming) {
    QARCH_REQUIRE(state.optimizer == name(),
                  "optim state belongs to a different optimizer");
    QARCH_REQUIRE(state.numbers.size() == 1 + n && state.words.size() == 1,
                  "grid state has the wrong shape");
  }

  const std::size_t ppa = config_.points_per_axis;
  std::size_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= ppa;

  OptimResult result;
  result.value = std::numeric_limits<double>::infinity();
  std::size_t flat_start = 0;
  if (resuming) {
    flat_start = static_cast<std::size_t>(state.words[0]);
    result.evaluations = state.evaluations;
    result.history = state.history;
    result.value = state.numbers[0];
    result.x.assign(state.numbers.begin() + 1, state.numbers.end());
  }
  const std::size_t evals_at_entry = result.evaluations;

  std::vector<double> x(n);
  for (std::size_t flat = flat_start; flat < total; ++flat) {
    // Preemption safe point between grid points.
    if (preempt && result.evaluations > evals_at_entry &&
        preempt->should_stop(result.evaluations)) {
      state.optimizer = name();
      state.evaluations = result.evaluations;
      state.history = result.history;
      state.numbers.clear();
      state.numbers.push_back(result.value);
      state.numbers.insert(state.numbers.end(), result.x.begin(),
                           result.x.end());
      state.words = {static_cast<std::uint64_t>(flat)};
      state.child.clear();
      result.preempted = true;
      return result;
    }
    std::size_t rem = flat;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = rem % ppa;
      rem /= ppa;
      x[j] = config_.lo + (config_.hi - config_.lo) *
                              static_cast<double>(k) /
                              static_cast<double>(ppa - 1);
    }
    const double v = f(x);
    ++result.evaluations;
    if (v < result.value) {
      result.value = v;
      result.x = x;
    }
    result.history.push_back(result.value);
  }
  state.clear();
  return result;
}

}  // namespace qarch::optim
