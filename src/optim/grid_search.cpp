#include "optim/grid_search.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace qarch::optim {

OptimResult GridSearch::minimize(const Objective& f,
                                 std::vector<double> x0) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1 && n <= 3, "grid search limited to 1-3 dimensions");
  QARCH_REQUIRE(config_.points_per_axis >= 2, "need at least 2 grid points");

  const std::size_t ppa = config_.points_per_axis;
  std::size_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= ppa;

  OptimResult result;
  result.value = std::numeric_limits<double>::infinity();
  std::vector<double> x(n);
  for (std::size_t flat = 0; flat < total; ++flat) {
    std::size_t rem = flat;
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = rem % ppa;
      rem /= ppa;
      x[j] = config_.lo + (config_.hi - config_.lo) *
                              static_cast<double>(k) /
                              static_cast<double>(ppa - 1);
    }
    const double v = f(x);
    ++result.evaluations;
    if (v < result.value) {
      result.value = v;
      result.x = x;
    }
    result.history.push_back(result.value);
  }
  return result;
}

}  // namespace qarch::optim
