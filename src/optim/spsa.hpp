// Simultaneous Perturbation Stochastic Approximation (Spall 1992).
//
// A standard optimizer for noisy variational-quantum objectives; included as
// an ablation alternative. Two objective calls per iteration regardless of
// dimension.
//
// Resumable: the OptimState packs the iterate, incumbent, iteration counter
// and the full RNG stream (including the Box–Muller cache), so a preempted
// run draws the exact same perturbation sequence when it continues.
#pragma once

#include <cstdint>

#include "optim/optimizer.hpp"

namespace qarch::optim {

/// Standard SPSA gain-sequence parameters.
struct SpsaConfig {
  double a = 0.2;          ///< step-size numerator
  double c = 0.1;          ///< perturbation size numerator
  double alpha = 0.602;    ///< step-size decay exponent
  double gamma = 0.101;    ///< perturbation decay exponent
  double stability = 10.0; ///< A, stability constant in a_k
  std::size_t max_evals = 200;
  std::uint64_t seed = 1234;
};

/// SPSA minimizer.
class Spsa final : public Optimizer {
 public:
  explicit Spsa(SpsaConfig config = {}) : config_(config) {}

  using Optimizer::minimize;
  [[nodiscard]] OptimResult minimize(const Objective& f, std::vector<double> x0,
                                     OptimState& state,
                                     PreemptToken* preempt) const override;
  [[nodiscard]] std::string name() const override { return "spsa"; }

 private:
  SpsaConfig config_;
};

}  // namespace qarch::optim
