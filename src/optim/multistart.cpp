#include "optim/multistart.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qarch::optim {

MultiStart::MultiStart(OptimizerFactory factory, MultiStartConfig config)
    : factory_(std::move(factory)), config_(config) {
  QARCH_REQUIRE(factory_ != nullptr, "multi-start needs a factory");
  QARCH_REQUIRE(config_.restarts >= 1, "need at least one restart");
  QARCH_REQUIRE(config_.total_evals >= config_.restarts,
                "budget smaller than restart count");
}

OptimResult MultiStart::minimize(const Objective& f,
                                 std::vector<double> x0) const {
  const std::size_t per_run = config_.total_evals / config_.restarts;
  Rng rng(config_.seed);

  OptimResult best;
  best.value = std::numeric_limits<double>::infinity();
  OptimResult combined;

  for (std::size_t r = 0; r < config_.restarts; ++r) {
    std::vector<double> start = x0;
    if (r > 0)  // first run keeps the caller's initial point
      for (double& x : start) x += rng.normal(0.0, config_.perturbation);

    const std::unique_ptr<Optimizer> base = factory_(per_run);
    const OptimResult run = base->minimize(f, std::move(start));

    combined.evaluations += run.evaluations;
    // Stitch the best-so-far history across restarts.
    const double floor = combined.history.empty()
                             ? std::numeric_limits<double>::infinity()
                             : combined.history.back();
    for (double h : run.history)
      combined.history.push_back(std::min(h, floor));
    if (run.value < best.value) best = run;
  }

  combined.x = best.x;
  combined.value = best.value;
  return combined;
}

}  // namespace qarch::optim
