#include "optim/multistart.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qarch::optim {

MultiStart::MultiStart(OptimizerFactory factory, MultiStartConfig config)
    : factory_(std::move(factory)), config_(config) {
  QARCH_REQUIRE(factory_ != nullptr, "multi-start needs a factory");
  QARCH_REQUIRE(config_.restarts >= 1, "need at least one restart");
  QARCH_REQUIRE(config_.total_evals >= config_.restarts,
                "budget smaller than restart count");
}

OptimResult MultiStart::minimize(const Objective& f, std::vector<double> x0,
                                 OptimState& state,
                                 PreemptToken* preempt) const {
  const std::size_t per_run = config_.total_evals / config_.restarts;
  Rng rng(config_.seed);

  OptimResult best;
  best.value = std::numeric_limits<double>::infinity();
  OptimResult combined;

  // State layout: words = [restart cursor, has_cached_normal, rng words
  // (4)]; numbers = [best value, cached_normal, best x (dimension implied)];
  // child = the in-progress restart's own state. `evaluations`/`history`
  // cover the COMPLETED restarts only — the partial restart's share lives
  // in the child.
  std::size_t r_start = 0;
  OptimState inner;
  const bool resuming = !state.fresh();
  if (resuming) {
    QARCH_REQUIRE(state.optimizer == name(),
                  "optim state belongs to a different optimizer");
    QARCH_REQUIRE(state.words.size() == 6 && state.numbers.size() >= 2 &&
                      state.child.size() <= 1,
                  "multi-start state has the wrong shape");
    r_start = static_cast<std::size_t>(state.words[0]);
    RngState rs;
    rs.words = {state.words[2], state.words[3], state.words[4],
                state.words[5]};
    rs.cached_normal = state.numbers[1];
    rs.has_cached_normal = state.words[1] != 0;
    rng.restore(rs);
    best.value = state.numbers[0];
    best.x.assign(state.numbers.begin() + 2, state.numbers.end());
    combined.evaluations = state.evaluations;
    combined.history = state.history;
    if (!state.child.empty()) inner = state.child[0];
  }

  auto stitch = [&](OptimResult& into, const OptimResult& run) {
    into.evaluations += run.evaluations;
    // Stitch the best-so-far history across restarts.
    const double floor = into.history.empty()
                             ? std::numeric_limits<double>::infinity()
                             : into.history.back();
    for (double h : run.history)
      into.history.push_back(std::min(h, floor));
  };

  for (std::size_t r = r_start; r < config_.restarts; ++r) {
    std::vector<double> start = x0;
    // The first run keeps the caller's initial point. A restart resumed
    // mid-run (non-fresh inner state) already consumed its jitter draws
    // before it was parked — the packed RNG stream reflects that.
    if (r > 0 && inner.fresh())
      for (double& x : start) x += rng.normal(0.0, config_.perturbation);

    const std::unique_ptr<Optimizer> base = factory_(per_run);
    const OptimResult run = base->minimize(f, std::move(start), inner, preempt);

    if (run.preempted) {
      const RngState rs = rng.state();
      state.optimizer = name();
      state.evaluations = combined.evaluations;
      state.history = combined.history;
      state.words = {static_cast<std::uint64_t>(r),
                     rs.has_cached_normal ? 1ULL : 0ULL,
                     rs.words[0], rs.words[1], rs.words[2], rs.words[3]};
      state.numbers.clear();
      state.numbers.push_back(best.value);
      state.numbers.push_back(rs.cached_normal);
      state.numbers.insert(state.numbers.end(), best.x.begin(), best.x.end());
      state.child.assign(1, inner);

      OptimResult partial = combined;
      stitch(partial, run);
      if (run.value < best.value) {
        partial.x = run.x;
        partial.value = run.value;
      } else {
        partial.x = best.x;
        partial.value = best.value;
      }
      partial.preempted = true;
      return partial;
    }

    stitch(combined, run);
    if (run.value < best.value) best = run;
  }

  combined.x = best.x;
  combined.value = best.value;
  state.clear();
  return combined;
}

}  // namespace qarch::optim
