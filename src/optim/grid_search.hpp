// Exhaustive grid search over a box; exact baseline for low dimensions
// (QAOA p=1 has just two parameters, so a fine grid is feasible).
//
// Resumable: the OptimState packs the flat grid cursor and the incumbent,
// so a preempted sweep continues from the next unvisited grid point.
#pragma once

#include "optim/optimizer.hpp"

namespace qarch::optim {

/// Axis-aligned box [lo, hi]^n sampled at `points_per_axis` per dimension.
struct GridSearchConfig {
  double lo = -3.14159265358979323846;
  double hi = 3.14159265358979323846;
  std::size_t points_per_axis = 16;
};

/// Grid-search minimizer. Ignores x0 except for its dimension. Evaluation
/// count is points_per_axis^n — use only for n <= 3.
class GridSearch final : public Optimizer {
 public:
  explicit GridSearch(GridSearchConfig config = {}) : config_(config) {}

  using Optimizer::minimize;
  [[nodiscard]] OptimResult minimize(const Objective& f, std::vector<double> x0,
                                     OptimState& state,
                                     PreemptToken* preempt) const override;
  [[nodiscard]] std::string name() const override { return "grid"; }

 private:
  GridSearchConfig config_;
};

}  // namespace qarch::optim
