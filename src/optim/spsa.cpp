#include "optim/spsa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qarch::optim {

OptimResult Spsa::minimize(const Objective& f, std::vector<double> x0,
                           OptimState& state, PreemptToken* preempt) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1, "spsa needs at least one parameter");
  QARCH_REQUIRE(config_.max_evals >= 3, "budget too small");
  // State layout: numbers = [best_so_far, cached_normal, x (n), best_x (n)];
  // words = [k, has_cached_normal, rng words (4)].
  const bool resuming = !state.fresh();
  if (resuming) {
    QARCH_REQUIRE(state.optimizer == name(),
                  "optim state belongs to a different optimizer");
    QARCH_REQUIRE(
        state.numbers.size() == 2 + 2 * n && state.words.size() == 6,
        "spsa state has the wrong shape");
  }

  Rng rng(config_.seed);
  OptimResult result;
  double best_so_far = std::numeric_limits<double>::infinity();
  std::vector<double> best_x = x0;

  auto eval = [&](std::span<const double> x) {
    const double v = f(x);
    ++result.evaluations;
    if (v < best_so_far) {
      best_so_far = v;
      best_x.assign(x.begin(), x.end());
    }
    result.history.push_back(best_so_far);
    return v;
  };

  std::vector<double> x = std::move(x0);
  std::size_t k = 0;
  std::size_t evals_at_entry = 0;
  if (resuming) {
    evals_at_entry = state.evaluations;
    result.evaluations = state.evaluations;
    result.history = state.history;
    best_so_far = state.numbers[0];
    for (std::size_t j = 0; j < n; ++j) x[j] = state.numbers[2 + j];
    for (std::size_t j = 0; j < n; ++j) best_x[j] = state.numbers[2 + n + j];
    k = static_cast<std::size_t>(state.words[0]);
    RngState rs;
    rs.words = {state.words[2], state.words[3], state.words[4],
                state.words[5]};
    rs.cached_normal = state.numbers[1];
    rs.has_cached_normal = state.words[1] != 0;
    rng.restore(rs);
  } else {
    eval(x);
  }

  auto pack = [&] {
    const RngState rs = rng.state();
    state.optimizer = name();
    state.evaluations = result.evaluations;
    state.history = result.history;
    state.numbers.clear();
    state.numbers.reserve(2 + 2 * n);
    state.numbers.push_back(best_so_far);
    state.numbers.push_back(rs.cached_normal);
    state.numbers.insert(state.numbers.end(), x.begin(), x.end());
    state.numbers.insert(state.numbers.end(), best_x.begin(), best_x.end());
    state.words = {static_cast<std::uint64_t>(k),
                   rs.has_cached_normal ? 1ULL : 0ULL,
                   rs.words[0], rs.words[1], rs.words[2], rs.words[3]};
    state.child.clear();
  };

  std::vector<double> delta(n), plus(n), minus(n);
  while (result.evaluations + 2 <= config_.max_evals) {
    // Preemption safe point: between full (plus, minus) iteration pairs.
    if (preempt && result.evaluations > evals_at_entry &&
        preempt->should_stop(result.evaluations)) {
      pack();
      result.x = best_x;
      result.value = best_so_far;
      result.preempted = true;
      return result;
    }
    const double ak =
        config_.a / std::pow(static_cast<double>(k) + 1 + config_.stability,
                             config_.alpha);
    const double ck =
        config_.c / std::pow(static_cast<double>(k) + 1, config_.gamma);

    for (std::size_t j = 0; j < n; ++j) {
      delta[j] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      plus[j] = x[j] + ck * delta[j];
      minus[j] = x[j] - ck * delta[j];
    }
    const double fp = eval(plus);
    const double fm = eval(minus);
    for (std::size_t j = 0; j < n; ++j) {
      const double ghat = (fp - fm) / (2.0 * ck * delta[j]);
      x[j] -= ak * ghat;
    }
    ++k;
  }

  result.x = std::move(best_x);
  result.value = best_so_far;
  state.clear();
  return result;
}

}  // namespace qarch::optim
