#include "optim/spsa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace qarch::optim {

OptimResult Spsa::minimize(const Objective& f, std::vector<double> x0) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1, "spsa needs at least one parameter");
  QARCH_REQUIRE(config_.max_evals >= 3, "budget too small");

  Rng rng(config_.seed);
  OptimResult result;
  double best_so_far = std::numeric_limits<double>::infinity();
  std::vector<double> best_x = x0;

  auto eval = [&](std::span<const double> x) {
    const double v = f(x);
    ++result.evaluations;
    if (v < best_so_far) {
      best_so_far = v;
      best_x.assign(x.begin(), x.end());
    }
    result.history.push_back(best_so_far);
    return v;
  };

  std::vector<double> x = std::move(x0);
  eval(x);

  std::vector<double> delta(n), plus(n), minus(n);
  for (std::size_t k = 0; result.evaluations + 2 <= config_.max_evals; ++k) {
    const double ak =
        config_.a / std::pow(static_cast<double>(k) + 1 + config_.stability,
                             config_.alpha);
    const double ck =
        config_.c / std::pow(static_cast<double>(k) + 1, config_.gamma);

    for (std::size_t j = 0; j < n; ++j) {
      delta[j] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      plus[j] = x[j] + ck * delta[j];
      minus[j] = x[j] - ck * delta[j];
    }
    const double fp = eval(plus);
    const double fm = eval(minus);
    for (std::size_t j = 0; j < n; ++j) {
      const double ghat = (fp - fm) / (2.0 * ck * delta[j]);
      x[j] -= ak * ghat;
    }
  }

  result.x = std::move(best_x);
  result.value = best_so_far;
  return result;
}

}  // namespace qarch::optim
