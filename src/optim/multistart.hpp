// Multi-start wrapper: restarts any base optimizer from several seeded
// initial points within a shared evaluation budget.
//
// QAOA landscapes are non-convex with symmetric local optima; multi-start is
// the standard mitigation when a single 200-eval run stalls. The wrapper
// divides the total budget evenly across restarts and returns the best run.
//
// Resumable: the OptimState packs the restart cursor, the incumbent, the
// jitter RNG stream, and the in-progress restart's own state as a nested
// child — so preemption composes through the wrapper to whatever base
// optimizer the factory builds.
#pragma once

#include <cstdint>
#include <memory>

#include "optim/optimizer.hpp"

namespace qarch::optim {

/// Factory for the per-restart optimizer, given its evaluation budget.
using OptimizerFactory =
    std::function<std::unique_ptr<Optimizer>(std::size_t budget)>;

/// Multi-start configuration.
struct MultiStartConfig {
  std::size_t restarts = 4;
  std::size_t total_evals = 200;   ///< budget shared across restarts
  double perturbation = 1.0;       ///< stddev of the restart-point jitter
  std::uint64_t seed = 31;
};

/// Wraps a base optimizer with seeded random restarts.
class MultiStart final : public Optimizer {
 public:
  MultiStart(OptimizerFactory factory, MultiStartConfig config = {});

  using Optimizer::minimize;
  [[nodiscard]] OptimResult minimize(const Objective& f, std::vector<double> x0,
                                     OptimState& state,
                                     PreemptToken* preempt) const override;
  [[nodiscard]] std::string name() const override { return "multi-start"; }

 private:
  OptimizerFactory factory_;
  MultiStartConfig config_;
};

}  // namespace qarch::optim
