#include "optim/cobyla.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace qarch::optim {

namespace {

/// Solves the n x n system A x = b by Gaussian elimination with partial
/// pivoting. Returns false when the matrix is (numerically) singular.
bool solve_linear(std::vector<std::vector<double>> a, std::vector<double> b,
                  std::vector<double>& x) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    if (std::abs(a[pivot][col]) < 1e-14) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  x.assign(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double s = b[r];
    for (std::size_t c = r + 1; c < n; ++c) s -= a[r][c] * x[c];
    x[r] = s / a[r][r];
  }
  return true;
}

}  // namespace

OptimResult Cobyla::minimize(const Objective& f, std::vector<double> x0,
                             OptimState& state, PreemptToken* preempt) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1, "cobyla needs at least one parameter");
  QARCH_REQUIRE(config_.max_evals >= n + 2,
                "evaluation budget too small for the initial simplex");
  // State layout: numbers = [rho, best_so_far, values (n+1), points
  // flattened ((n+1) x n, row major)].
  const std::size_t state_numbers = 2 + (n + 1) + (n + 1) * n;
  const bool resuming = !state.fresh();
  if (resuming) {
    QARCH_REQUIRE(state.optimizer == name(),
                  "optim state belongs to a different optimizer");
    QARCH_REQUIRE(state.numbers.size() == state_numbers,
                  "cobyla state has the wrong shape");
  }

  OptimResult result;
  result.history.reserve(config_.max_evals);
  double best_so_far = std::numeric_limits<double>::infinity();

  auto eval = [&](std::span<const double> x) {
    const double v = f(x);
    ++result.evaluations;
    best_so_far = std::min(best_so_far, v);
    result.history.push_back(best_so_far);
    return v;
  };

  double rho = config_.rho_begin;

  // Simplex: points[0] is the current base; points[i] = base + rho * e_i.
  std::vector<std::vector<double>> points(n + 1, x0);
  std::vector<double> values(n + 1);
  auto rebuild_simplex = [&](const std::vector<double>& base, double base_val,
                             bool have_base_val) -> bool {
    points[0] = base;
    values[0] = have_base_val ? base_val : eval(base);
    if (!have_base_val && result.evaluations >= config_.max_evals) return false;
    for (std::size_t i = 0; i < n; ++i) {
      points[i + 1] = base;
      points[i + 1][i] += rho;
      if (result.evaluations >= config_.max_evals) return false;
      values[i + 1] = eval(points[i + 1]);
    }
    return true;
  };

  std::size_t evals_at_entry = 0;
  if (resuming) {
    evals_at_entry = state.evaluations;
    result.evaluations = state.evaluations;
    result.history = state.history;
    std::size_t at = 0;
    rho = state.numbers[at++];
    best_so_far = state.numbers[at++];
    for (std::size_t i = 0; i <= n; ++i) values[i] = state.numbers[at++];
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j < n; ++j) points[i][j] = state.numbers[at++];
  } else {
    rebuild_simplex(x0, 0.0, false);
  }

  auto best_index = [&] {
    std::size_t bi = 0;
    for (std::size_t i = 1; i <= n; ++i)
      if (values[i] < values[bi]) bi = i;
    return bi;
  };

  auto pack = [&] {
    state.optimizer = name();
    state.evaluations = result.evaluations;
    state.history = result.history;
    state.numbers.clear();
    state.numbers.reserve(state_numbers);
    state.numbers.push_back(rho);
    state.numbers.push_back(best_so_far);
    for (std::size_t i = 0; i <= n; ++i) state.numbers.push_back(values[i]);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j < n; ++j) state.numbers.push_back(points[i][j]);
    state.words.clear();
    state.child.clear();
  };

  while (result.evaluations < config_.max_evals && rho > config_.rho_end) {
    // Preemption safe point: the simplex is complete and consistent here.
    // Guaranteed progress — never park before this slice made an eval.
    if (preempt && result.evaluations > evals_at_entry &&
        preempt->should_stop(result.evaluations)) {
      pack();
      const std::size_t bi = best_index();
      result.x = points[bi];
      result.value = values[bi];
      result.preempted = true;
      return result;
    }
    // Affine interpolation: f(x) ≈ values[0] + g·(x - points[0]).
    std::vector<std::vector<double>> a(n, std::vector<double>(n));
    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j)
        a[i][j] = points[i + 1][j] - points[0][j];
      rhs[i] = values[i + 1] - values[0];
    }
    std::vector<double> grad;
    const bool solvable = solve_linear(a, rhs, grad);

    const std::size_t bi = best_index();
    bool improved = false;
    if (solvable) {
      double gnorm = 0.0;
      for (double g : grad) gnorm += g * g;
      gnorm = std::sqrt(gnorm);
      if (gnorm > 1e-14) {
        // Trust-region step: move rho along the steepest model descent
        // from the best simplex point.
        std::vector<double> cand = points[bi];
        for (std::size_t j = 0; j < n; ++j) cand[j] -= rho * grad[j] / gnorm;
        const double cv = eval(cand);
        if (result.evaluations > config_.max_evals) break;
        // Replace the worst simplex point on improvement.
        std::size_t wi = 0;
        for (std::size_t i = 1; i <= n; ++i)
          if (values[i] > values[wi]) wi = i;
        if (cv < values[wi]) {
          improved = cv < values[bi];
          // Pattern move: when the step beat the incumbent, probe a doubled
          // step and modestly regrow the trust region — this lets the method
          // track curved valleys instead of only ever shrinking rho.
          if (improved && result.evaluations < config_.max_evals) {
            std::vector<double> extended = points[bi];
            for (std::size_t j = 0; j < n; ++j)
              extended[j] -= 2.0 * rho * grad[j] / gnorm;
            const double ev = eval(extended);
            if (ev < cv) {
              cand = std::move(extended);
              rho = std::min(rho * 1.5, config_.rho_begin);
              points[wi] = std::move(cand);
              values[wi] = ev;
            } else {
              points[wi] = std::move(cand);
              values[wi] = cv;
            }
          } else {
            points[wi] = std::move(cand);
            values[wi] = cv;
          }
        }
      }
    }

    if (!improved) {
      // Model stalled: shrink the trust region and rebuild the simplex
      // around the incumbent best point.
      rho *= 0.5;
      const std::size_t keep = best_index();
      const std::vector<double> base = points[keep];
      const double base_val = values[keep];
      if (result.evaluations >= config_.max_evals) break;
      if (!rebuild_simplex(base, base_val, true)) break;
    }
  }

  const std::size_t bi = best_index();
  result.x = points[bi];
  result.value = values[bi];
  state.clear();
  return result;
}

}  // namespace qarch::optim
