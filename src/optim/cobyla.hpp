// COBYLA-style linear-surrogate trust-region optimizer.
//
// The paper trains candidates with SciPy's COBYLA (Powell 1994). This is a
// from-scratch reimplementation of the method's core mechanism for the
// unconstrained case: maintain an (n+1)-point simplex, interpolate an affine
// model of the objective through it, step to the trust-region minimizer of
// the model, and shrink the trust radius when the model stops producing
// improvement. Termination on either the evaluation budget (`max_evals`,
// 200 in every paper experiment) or trust radius reaching `rho_end`.
//
// Resumable: the OptimState packs the trust radius plus the full simplex
// (points + values), so a preempted run continues bit-identically.
#pragma once

#include "optim/optimizer.hpp"

namespace qarch::optim {

/// Configuration mirroring SciPy's (rhobeg, tol, maxiter).
struct CobylaConfig {
  double rho_begin = 0.5;   ///< initial trust-region radius
  double rho_end = 1e-6;    ///< final radius (convergence threshold)
  std::size_t max_evals = 200;
};

/// Unconstrained COBYLA-style minimizer.
class Cobyla final : public Optimizer {
 public:
  explicit Cobyla(CobylaConfig config = {}) : config_(config) {}

  using Optimizer::minimize;
  [[nodiscard]] OptimResult minimize(const Objective& f, std::vector<double> x0,
                                     OptimState& state,
                                     PreemptToken* preempt) const override;
  [[nodiscard]] std::string name() const override { return "cobyla"; }

  [[nodiscard]] const CobylaConfig& config() const { return config_; }

 private:
  CobylaConfig config_;
};

}  // namespace qarch::optim
