// Nelder–Mead downhill simplex (ablation alternative to COBYLA).
//
// Resumable: the OptimState packs the simplex (points + values) and the
// current index permutation, so a preempted run continues bit-identically
// (the permutation matters because std::sort is not stable under ties).
#pragma once

#include "optim/optimizer.hpp"

namespace qarch::optim {

/// Standard Nelder–Mead coefficients plus an evaluation budget.
struct NelderMeadConfig {
  double initial_step = 0.5;  ///< simplex edge length around x0
  double alpha = 1.0;         ///< reflection
  double gamma = 2.0;         ///< expansion
  double rho = 0.5;           ///< contraction
  double sigma = 0.5;         ///< shrink
  double tol = 1e-10;         ///< spread termination threshold
  std::size_t max_evals = 200;
};

/// Downhill-simplex minimizer.
class NelderMead final : public Optimizer {
 public:
  explicit NelderMead(NelderMeadConfig config = {}) : config_(config) {}

  using Optimizer::minimize;
  [[nodiscard]] OptimResult minimize(const Objective& f, std::vector<double> x0,
                                     OptimState& state,
                                     PreemptToken* preempt) const override;
  [[nodiscard]] std::string name() const override { return "nelder-mead"; }

 private:
  NelderMeadConfig config_;
};

}  // namespace qarch::optim
