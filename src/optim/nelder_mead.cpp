#include "optim/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace qarch::optim {

OptimResult NelderMead::minimize(const Objective& f,
                                 std::vector<double> x0) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1, "nelder-mead needs at least one parameter");
  QARCH_REQUIRE(config_.max_evals >= n + 2, "budget too small for simplex");

  OptimResult result;
  double best_so_far = std::numeric_limits<double>::infinity();
  auto eval = [&](std::span<const double> x) {
    const double v = f(x);
    ++result.evaluations;
    best_so_far = std::min(best_so_far, v);
    result.history.push_back(best_so_far);
    return v;
  };
  auto budget_left = [&] { return result.evaluations < config_.max_evals; };

  // Initial simplex around x0.
  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  vals[0] = eval(pts[0]);
  for (std::size_t i = 0; i < n && budget_left(); ++i) {
    pts[i + 1][i] += config_.initial_step;
    vals[i + 1] = eval(pts[i + 1]);
  }

  std::vector<std::size_t> idx(n + 1);
  std::iota(idx.begin(), idx.end(), std::size_t{0});

  while (budget_left()) {
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    const std::size_t best = idx[0], worst = idx[n];
    const std::size_t second_worst = idx[n - 1];

    // Convergence on value spread.
    if (std::abs(vals[worst] - vals[best]) < config_.tol) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j) centroid[j] += pts[idx[k]][j];
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j)
        p[j] = centroid[j] + coeff * (centroid[j] - pts[worst][j]);
      return p;
    };

    const std::vector<double> reflected = along(config_.alpha);
    const double fr = eval(reflected);
    if (!budget_left() && fr >= vals[best]) break;

    if (fr < vals[best]) {
      // Try expanding further along the reflection direction.
      if (budget_left()) {
        const std::vector<double> expanded = along(config_.gamma);
        const double fe = eval(expanded);
        if (fe < fr) {
          pts[worst] = expanded;
          vals[worst] = fe;
          continue;
        }
      }
      pts[worst] = reflected;
      vals[worst] = fr;
      continue;
    }
    if (fr < vals[second_worst]) {
      pts[worst] = reflected;
      vals[worst] = fr;
      continue;
    }
    // Contraction toward the centroid.
    if (budget_left()) {
      const std::vector<double> contracted = along(-config_.rho);
      const double fc = eval(contracted);
      if (fc < vals[worst]) {
        pts[worst] = contracted;
        vals[worst] = fc;
        continue;
      }
    }
    // Shrink everything toward the best point.
    for (std::size_t k = 1; k <= n && budget_left(); ++k) {
      const std::size_t i = idx[k];
      for (std::size_t j = 0; j < n; ++j)
        pts[i][j] = pts[best][j] + config_.sigma * (pts[i][j] - pts[best][j]);
      vals[i] = eval(pts[i]);
    }
  }

  std::size_t bi = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (vals[i] < vals[bi]) bi = i;
  result.x = pts[bi];
  result.value = vals[bi];
  return result;
}

}  // namespace qarch::optim
