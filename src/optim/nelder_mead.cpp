#include "optim/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace qarch::optim {

OptimResult NelderMead::minimize(const Objective& f, std::vector<double> x0,
                                 OptimState& state,
                                 PreemptToken* preempt) const {
  const std::size_t n = x0.size();
  QARCH_REQUIRE(n >= 1, "nelder-mead needs at least one parameter");
  QARCH_REQUIRE(config_.max_evals >= n + 2, "budget too small for simplex");
  // State layout: numbers = [best_so_far, vals (n+1), pts flattened
  // ((n+1) x n)]; words = idx permutation (n+1).
  const std::size_t state_numbers = 1 + (n + 1) + (n + 1) * n;
  const bool resuming = !state.fresh();
  if (resuming) {
    QARCH_REQUIRE(state.optimizer == name(),
                  "optim state belongs to a different optimizer");
    QARCH_REQUIRE(state.numbers.size() == state_numbers &&
                      state.words.size() == n + 1,
                  "nelder-mead state has the wrong shape");
  }

  OptimResult result;
  double best_so_far = std::numeric_limits<double>::infinity();
  auto eval = [&](std::span<const double> x) {
    const double v = f(x);
    ++result.evaluations;
    best_so_far = std::min(best_so_far, v);
    result.history.push_back(best_so_far);
    return v;
  };
  auto budget_left = [&] { return result.evaluations < config_.max_evals; };

  // Initial simplex around x0.
  std::vector<std::vector<double>> pts(n + 1, x0);
  std::vector<double> vals(n + 1);
  std::vector<std::size_t> idx(n + 1);
  std::size_t evals_at_entry = 0;
  if (resuming) {
    evals_at_entry = state.evaluations;
    result.evaluations = state.evaluations;
    result.history = state.history;
    std::size_t at = 0;
    best_so_far = state.numbers[at++];
    for (std::size_t i = 0; i <= n; ++i) vals[i] = state.numbers[at++];
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j < n; ++j) pts[i][j] = state.numbers[at++];
    for (std::size_t i = 0; i <= n; ++i)
      idx[i] = static_cast<std::size_t>(state.words[i]);
  } else {
    vals[0] = eval(pts[0]);
    for (std::size_t i = 0; i < n && budget_left(); ++i) {
      pts[i + 1][i] += config_.initial_step;
      vals[i + 1] = eval(pts[i + 1]);
    }
    std::iota(idx.begin(), idx.end(), std::size_t{0});
  }

  auto pack = [&] {
    state.optimizer = name();
    state.evaluations = result.evaluations;
    state.history = result.history;
    state.numbers.clear();
    state.numbers.reserve(state_numbers);
    state.numbers.push_back(best_so_far);
    for (std::size_t i = 0; i <= n; ++i) state.numbers.push_back(vals[i]);
    for (std::size_t i = 0; i <= n; ++i)
      for (std::size_t j = 0; j < n; ++j) state.numbers.push_back(pts[i][j]);
    state.words.assign(idx.begin(), idx.end());
    state.child.clear();
  };

  auto final_best = [&] {
    std::size_t bi = 0;
    for (std::size_t i = 1; i <= n; ++i)
      if (vals[i] < vals[bi]) bi = i;
    return bi;
  };

  while (budget_left()) {
    // Preemption safe point: simplex complete, nothing half-applied.
    if (preempt && result.evaluations > evals_at_entry &&
        preempt->should_stop(result.evaluations)) {
      pack();
      const std::size_t bi = final_best();
      result.x = pts[bi];
      result.value = vals[bi];
      result.preempted = true;
      return result;
    }
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    const std::size_t best = idx[0], worst = idx[n];
    const std::size_t second_worst = idx[n - 1];

    // Convergence on value spread.
    if (std::abs(vals[worst] - vals[best]) < config_.tol) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t k = 0; k < n; ++k)
      for (std::size_t j = 0; j < n; ++j) centroid[j] += pts[idx[k]][j];
    for (double& c : centroid) c /= static_cast<double>(n);

    auto along = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j)
        p[j] = centroid[j] + coeff * (centroid[j] - pts[worst][j]);
      return p;
    };

    const std::vector<double> reflected = along(config_.alpha);
    const double fr = eval(reflected);
    if (!budget_left() && fr >= vals[best]) break;

    if (fr < vals[best]) {
      // Try expanding further along the reflection direction.
      if (budget_left()) {
        const std::vector<double> expanded = along(config_.gamma);
        const double fe = eval(expanded);
        if (fe < fr) {
          pts[worst] = expanded;
          vals[worst] = fe;
          continue;
        }
      }
      pts[worst] = reflected;
      vals[worst] = fr;
      continue;
    }
    if (fr < vals[second_worst]) {
      pts[worst] = reflected;
      vals[worst] = fr;
      continue;
    }
    // Contraction toward the centroid.
    if (budget_left()) {
      const std::vector<double> contracted = along(-config_.rho);
      const double fc = eval(contracted);
      if (fc < vals[worst]) {
        pts[worst] = contracted;
        vals[worst] = fc;
        continue;
      }
    }
    // Shrink everything toward the best point.
    for (std::size_t k = 1; k <= n && budget_left(); ++k) {
      const std::size_t i = idx[k];
      for (std::size_t j = 0; j < n; ++j)
        pts[i][j] = pts[best][j] + config_.sigma * (pts[i][j] - pts[best][j]);
      vals[i] = eval(pts[i]);
    }
  }

  const std::size_t bi = final_best();
  result.x = pts[bi];
  result.value = vals[bi];
  state.clear();
  return result;
}

}  // namespace qarch::optim
