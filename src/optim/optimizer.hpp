// Derivative-free optimizer interface for variational circuit training.
//
// The paper trains every candidate circuit for 200 steps of COBYLA; the
// evaluator takes any Optimizer so ablations can swap in Nelder–Mead, SPSA,
// or grid search (see bench/abl_optimizers).
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace qarch::optim {

/// Objective: maps a parameter vector to a scalar to be MINIMIZED.
using Objective = std::function<double(std::span<const double>)>;

/// Result of an optimization run.
struct OptimResult {
  std::vector<double> x;          ///< best parameters found
  double value = 0.0;             ///< objective at x
  std::size_t evaluations = 0;    ///< objective calls consumed
  std::vector<double> history;    ///< best-so-far value after each call
};

/// Abstract derivative-free minimizer.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Minimizes f starting at x0 within the optimizer's evaluation budget.
  [[nodiscard]] virtual OptimResult minimize(const Objective& f,
                                             std::vector<double> x0) const = 0;

  /// Display name ("cobyla", "nelder-mead", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace qarch::optim
