// Derivative-free optimizer interface for variational circuit training.
//
// The paper trains every candidate circuit for 200 steps of COBYLA; the
// evaluator takes any Optimizer so ablations can swap in Nelder–Mead, SPSA,
// or grid search (see bench/abl_optimizers).
//
// Every optimizer is RESUMABLE: minimize() takes an opaque OptimState plus an
// optional PreemptToken, polled at the loop-top safe points of the optimizer
// (every iteration, i.e. at most ~dim objective calls apart). When the token
// fires, the optimizer packs its complete loop state — simplex/trust region
// (COBYLA), simplex (Nelder–Mead), iteration counter + RNG stream (SPSA),
// grid cursor, restart cursor + nested state (multi-start) — into the
// OptimState and returns with `preempted = true`. Passing that state back in
// (to a fresh optimizer instance with the same configuration) continues the
// run EXACTLY where it stopped: the final x / value / evaluations / history
// are bit-identical to an uninterrupted run, no matter how often it was
// preempted. OptimState is plain data (doubles + integers + a nested child),
// serializable to JSON via search::optim_state_to_json — the evaluation
// service persists it as the in-flight training checkpoint that makes parked
// jobs and killed processes resumable.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace qarch::optim {

/// Objective: maps a parameter vector to a scalar to be MINIMIZED.
using Objective = std::function<double(std::span<const double>)>;

/// Opaque, serializable snapshot of an interrupted minimize() run. Treat the
/// contents as the producing optimizer's private business: the only public
/// contract is that a default-constructed state means "start fresh" and that
/// a packed state resumes the run that packed it (same optimizer name and
/// configuration).
struct OptimState {
  std::string optimizer;   ///< producer's name(); empty = fresh start
  std::size_t evaluations = 0;     ///< objective calls consumed so far
  std::vector<double> history;     ///< best-so-far value after each call
  std::vector<double> numbers;     ///< optimizer-specific real internals
  std::vector<std::uint64_t> words;  ///< optimizer-specific integer internals
                                     ///< (counters, RNG words)
  std::vector<OptimState> child;   ///< nested state (multi-start: the
                                   ///< in-progress restart), 0 or 1 entries

  [[nodiscard]] bool fresh() const { return optimizer.empty(); }
  void clear() { *this = OptimState(); }
};

/// Cooperative-preemption hook polled by every optimizer at its loop-top
/// safe points. Implementations decide WHY to stop (a scheduler quantum
/// expired, a checkpoint is due, a deadline passed); the optimizer only
/// guarantees that when should_stop returns true it packs its state and
/// returns promptly — and that it makes at least one objective call of
/// progress per minimize() invocation before polling, so a token that always
/// fires still terminates.
class PreemptToken {
 public:
  virtual ~PreemptToken() = default;

  /// `evaluations` is the calling optimizer's own objective-call counter —
  /// informational (it resets across multi-start restarts).
  [[nodiscard]] virtual bool should_stop(std::size_t evaluations) = 0;
};

/// The trivial token: fires once requested (tests, manual interruption).
class ManualPreempt final : public PreemptToken {
 public:
  void request_stop() { stop_.store(true); }
  void reset() { stop_.store(false); }
  [[nodiscard]] bool should_stop(std::size_t) override { return stop_.load(); }

 private:
  std::atomic<bool> stop_{false};
};

/// Result of an optimization run.
struct OptimResult {
  std::vector<double> x;          ///< best parameters found
  double value = 0.0;             ///< objective at x
  std::size_t evaluations = 0;    ///< objective calls consumed
  std::vector<double> history;    ///< best-so-far value after each call
  bool preempted = false;         ///< stopped by the PreemptToken; the
                                  ///< OptimState resumes the run
};

/// Abstract derivative-free minimizer.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Minimizes f starting at x0 within the optimizer's evaluation budget.
  [[nodiscard]] OptimResult minimize(const Objective& f,
                                     std::vector<double> x0) const {
    OptimState scratch;
    return minimize(f, std::move(x0), scratch, nullptr);
  }

  /// Resumable form. A fresh `state` starts from x0; a state packed by a
  /// previous preempted run of the same optimizer continues it (x0 is then
  /// only consulted for its dimension). When `preempt` fires, the partial
  /// result comes back with `preempted = true` and `state` holds everything
  /// needed to continue. On normal completion `state` is cleared.
  [[nodiscard]] virtual OptimResult minimize(const Objective& f,
                                             std::vector<double> x0,
                                             OptimState& state,
                                             PreemptToken* preempt) const = 0;

  /// Display name ("cobyla", "nelder-mead", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace qarch::optim
