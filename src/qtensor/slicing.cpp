#include "qtensor/slicing.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "parallel/parallel_for.hpp"
#include "qtensor/ordering.hpp"

namespace qarch::qtensor {

Tensor project(const Tensor& tensor, VarId var, int bit) {
  QARCH_REQUIRE(bit == 0 || bit == 1, "projection bit must be 0 or 1");
  const auto& labels = tensor.labels();
  const auto it = std::find(labels.begin(), labels.end(), var);
  if (it == labels.end()) return tensor;

  const std::size_t pos = static_cast<std::size_t>(it - labels.begin());
  const std::size_t r = tensor.rank();
  const std::size_t stride = std::size_t{1} << (r - 1 - pos);

  std::vector<VarId> new_labels;
  new_labels.reserve(r - 1);
  for (std::size_t k = 0; k < r; ++k)
    if (k != pos) new_labels.push_back(labels[k]);

  std::vector<cplx> out(std::size_t{1} << (r - 1));
  const auto& data = tensor.data();
  std::size_t w = 0;
  const std::size_t period = stride * 2;
  const std::size_t offset = bit == 0 ? 0 : stride;
  for (std::size_t base = 0; base < data.size(); base += period)
    for (std::size_t k = 0; k < stride; ++k)
      out[w++] = data[base + offset + k];
  return Tensor(std::move(new_labels), std::move(out));
}

TensorNetwork project_network(const TensorNetwork& network,
                              const std::vector<VarId>& slice_vars,
                              std::size_t assignment) {
  TensorNetwork out;
  out.num_vars = network.num_vars;
  out.tensors.reserve(network.tensors.size());
  for (const Tensor& t : network.tensors) {
    Tensor projected = t;
    for (std::size_t s = 0; s < slice_vars.size(); ++s)
      projected = project(projected, slice_vars[s],
                          static_cast<int>((assignment >> s) & 1));
    out.tensors.push_back(std::move(projected));
  }
  return out;
}

std::vector<VarId> choose_slice_vars(const TensorNetwork& network,
                                     std::size_t count) {
  QARCH_REQUIRE(count >= 1, "need at least one slice variable");
  LineGraph g(network);
  std::vector<VarId> chosen;
  for (std::size_t i = 0; i < count; ++i) {
    VarId best = 0;
    std::size_t best_degree = 0;
    bool found = false;
    for (VarId v : g.active_vars()) {
      const std::size_t d = g.degree(v);
      if (!found || d > best_degree) {
        best = v;
        best_degree = d;
        found = true;
      }
    }
    if (!found) break;
    chosen.push_back(best);
    g.eliminate(best);
  }
  return chosen;
}

ContractionResult contract_sliced(const TensorNetwork& network,
                                  const std::vector<VarId>& order,
                                  const std::vector<VarId>& slice_vars,
                                  const Backend& backend,
                                  std::size_t workers) {
  QARCH_REQUIRE(!slice_vars.empty(), "no slice variables given");
  QARCH_REQUIRE(slice_vars.size() <= 20, "too many slice variables");
  for (VarId v : slice_vars)
    QARCH_REQUIRE(std::find(order.begin(), order.end(), v) == order.end(),
                  "slice variable must not appear in the elimination order");

  const std::size_t num_slices = std::size_t{1} << slice_vars.size();
  std::vector<cplx> partial(num_slices, cplx{0.0, 0.0});
  std::vector<std::size_t> widths(num_slices, 0);

  parallel::parallel_for(
      0, num_slices,
      [&](std::size_t slice) {
        const TensorNetwork projected =
            project_network(network, slice_vars, slice);
        const ContractionResult r = contract(projected, order, backend);
        partial[slice] = r.value;
        widths[slice] = r.width;
      },
      workers);

  ContractionResult out;
  for (std::size_t s = 0; s < num_slices; ++s) {
    out.value += partial[s];
    out.width = std::max(out.width, widths[s]);
  }
  return out;
}

}  // namespace qarch::qtensor
